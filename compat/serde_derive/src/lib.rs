//! Derive macros for the vendored `serde` stand-in (see `compat/serde`).
//!
//! Implemented directly on `proc_macro` token streams (no `syn`/`quote`,
//! which are unavailable in hermetic builds). The macros support the shapes
//! the workspace actually derives: non-generic structs with named fields,
//! tuple structs, unit structs, and enums with unit / tuple / struct
//! variants. Field and variant names follow real serde's externally tagged
//! representation, so the emitted JSON looks like upstream's.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

#[derive(Debug)]
struct Input {
    name: String,
    shape: Shape,
}

/// Splits a token list on top-level occurrences of `sep` (outside `<...>`
/// generic arguments), dropping empty segments (trailing separators).
fn split_top_level(tokens: &[TokenTree], sep: char) -> Vec<Vec<TokenTree>> {
    let mut out = Vec::new();
    let mut current = Vec::new();
    let mut angle_depth = 0usize;
    for token in tokens {
        if let TokenTree::Punct(p) = token {
            match p.as_char() {
                '<' => angle_depth += 1,
                '>' => angle_depth = angle_depth.saturating_sub(1),
                _ => {}
            }
        }
        match token {
            TokenTree::Punct(p) if p.as_char() == sep && angle_depth == 0 => {
                if !current.is_empty() {
                    out.push(std::mem::take(&mut current));
                }
            }
            other => current.push(other.clone()),
        }
    }
    if !current.is_empty() {
        out.push(current);
    }
    out
}

/// Strips leading attributes (`#[...]`) and visibility (`pub`, `pub(...)`).
fn skip_attrs_and_vis(tokens: &[TokenTree]) -> &[TokenTree] {
    let mut rest = tokens;
    loop {
        match rest {
            [TokenTree::Punct(p), TokenTree::Group(_), tail @ ..] if p.as_char() == '#' => {
                rest = tail;
            }
            [TokenTree::Ident(id), tail @ ..] if id.to_string() == "pub" => {
                rest = match tail {
                    [TokenTree::Group(g), inner @ ..]
                        if g.delimiter() == Delimiter::Parenthesis =>
                    {
                        inner
                    }
                    other => other,
                };
            }
            _ => return rest,
        }
    }
}

fn parse_named_fields(tokens: &[TokenTree]) -> Vec<String> {
    split_top_level(tokens, ',')
        .iter()
        .filter_map(|segment| {
            let segment = skip_attrs_and_vis(segment);
            match segment.first() {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_variants(tokens: &[TokenTree]) -> Vec<Variant> {
    split_top_level(tokens, ',')
        .iter()
        .filter_map(|segment| {
            let segment = skip_attrs_and_vis(segment);
            let TokenTree::Ident(id) = segment.first()? else {
                return None;
            };
            let fields = match segment.get(1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Tuple(split_top_level(&inner, ',').len())
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    Fields::Named(parse_named_fields(&inner))
                }
                _ => Fields::Unit,
            };
            Some(Variant {
                name: id.to_string(),
                fields,
            })
        })
        .collect()
}

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut rest: &[TokenTree] = skip_attrs_and_vis(&tokens);
    let is_enum = loop {
        match rest.first() {
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => break false,
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => break true,
            Some(_) => rest = &rest[1..],
            None => return Err("expected `struct` or `enum`".to_string()),
        }
    };
    let Some(TokenTree::Ident(name)) = rest.get(1) else {
        return Err("expected type name".to_string());
    };
    let name = name.to_string();
    let rest = &rest[2..];
    if matches!(rest.first(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde stub derive does not support generic type `{name}`"
        ));
    }
    let body = rest.iter().find_map(|t| match t {
        TokenTree::Group(g) if g.delimiter() == Delimiter::Brace => {
            Some(g.stream().into_iter().collect::<Vec<_>>())
        }
        _ => None,
    });
    let shape = if is_enum {
        let body = body.ok_or("enum without body")?;
        Shape::Enum(parse_variants(&body))
    } else if let Some(body) = body {
        Shape::Struct(Fields::Named(parse_named_fields(&body)))
    } else if let Some(TokenTree::Group(g)) = rest
        .iter()
        .find(|t| matches!(t, TokenTree::Group(g) if g.delimiter() == Delimiter::Parenthesis))
    {
        let inner: Vec<TokenTree> = g.stream().into_iter().collect();
        Shape::Struct(Fields::Tuple(split_top_level(&inner, ',').len()))
    } else {
        Shape::Struct(Fields::Unit)
    };
    Ok(Input { name, shape })
}

fn compile_error(message: &str) -> TokenStream {
    format!("compile_error!({message:?});").parse().unwrap()
}

/// Derives `serde::Serialize` (stub data model).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Unit) => {
            "serializer.serialize_value(::serde::Value::Object(::std::vec::Vec::new()))".to_string()
        }
        Shape::Struct(Fields::Named(fields)) => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "__fields.push(({f:?}.to_string(), ::serde::to_value(&self.{f})));\n"
                ));
            }
            format!(
                "let mut __fields: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = \
                 ::std::vec::Vec::new();\n{pushes}\
                 serializer.serialize_value(::serde::Value::Object(__fields))"
            )
        }
        Shape::Struct(Fields::Tuple(arity)) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::to_value(&self.{i})"))
                .collect();
            format!(
                "serializer.serialize_value(::serde::Value::Array(vec![{}]))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vname} => ::serde::Value::Str({vname:?}.to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vname}(__f0) => ::serde::Value::Object(vec![({vname:?}\
                         .to_string(), ::serde::to_value(__f0))]),\n"
                    )),
                    Fields::Tuple(arity) => {
                        let binds: Vec<String> = (0..*arity).map(|i| format!("__f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}\
                             .to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .enumerate()
                            .map(|(i, f)| format!("{f}: __f{i}"))
                            .collect();
                        let items: Vec<String> = fields
                            .iter()
                            .enumerate()
                            .map(|(i, f)| format!("({f:?}.to_string(), ::serde::to_value(__f{i}))"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![({vname:?}\
                             .to_string(), ::serde::Value::Object(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("serializer.serialize_value(match self {{\n{arms}}})")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<__S: ::serde::Serializer>(&self, serializer: __S) \
         -> ::core::result::Result<__S::Ok, __S::Error> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .unwrap()
}

/// Derives `serde::Deserialize` (stub data model).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let input = match parse_input(input) {
        Ok(i) => i,
        Err(e) => return compile_error(&e),
    };
    let name = &input.name;
    let body = match &input.shape {
        Shape::Struct(Fields::Unit) => format!("Ok({name})"),
        Shape::Struct(Fields::Named(fields)) => {
            let items: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::from_value(__value.field({f:?})?)?"))
                .collect();
            format!("Ok({name} {{ {} }})", items.join(", "))
        }
        Shape::Struct(Fields::Tuple(arity)) => {
            let items: Vec<String> = (0..*arity)
                .map(|i| format!("::serde::from_value(&__items[{i}])?"))
                .collect();
            format!(
                "let __items = __value.as_array({name:?})?;\n\
                 if __items.len() != {arity} {{\n\
                 return Err(::serde::Error::msg(\"wrong tuple arity\"));\n}}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vname = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!("{vname:?} => Ok({name}::{vname}),\n")),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{vname:?} => {{\n\
                         let __payload = __payload.ok_or_else(|| ::serde::Error::msg(\
                         \"missing payload for variant {vname}\"))?;\n\
                         Ok({name}::{vname}(::serde::from_value(__payload)?))\n}}\n"
                    )),
                    Fields::Tuple(arity) => {
                        let items: Vec<String> = (0..*arity)
                            .map(|i| format!("::serde::from_value(&__items[{i}])?"))
                            .collect();
                        arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let __payload = __payload.ok_or_else(|| ::serde::Error::msg(\
                             \"missing payload for variant {vname}\"))?;\n\
                             let __items = __payload.as_array({vname:?})?;\n\
                             if __items.len() != {arity} {{\n\
                             return Err(::serde::Error::msg(\"wrong variant arity\"));\n}}\n\
                             Ok({name}::{vname}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let items: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::from_value(__payload.field({f:?})?)?"))
                            .collect();
                        arms.push_str(&format!(
                            "{vname:?} => {{\n\
                             let __payload = __payload.ok_or_else(|| ::serde::Error::msg(\
                             \"missing payload for variant {vname}\"))?;\n\
                             Ok({name}::{vname} {{ {} }})\n}}\n",
                            items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "let (__tag, __payload) = __value.variant()?;\n\
                 match __tag {{\n{arms}\
                 __other => Err(::serde::Error::msg(format!(\
                 \"unknown variant `{{__other}}` of {name}\"))),\n}}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<__D: ::serde::Deserializer<'de>>(deserializer: __D) \
         -> ::core::result::Result<Self, __D::Error> {{\n\
         let __value = deserializer.take_value()?;\n\
         let __result: ::core::result::Result<Self, ::serde::Error> = (|| {{\n{body}\n}})();\n\
         __result.map_err(<__D::Error as ::core::convert::From<::serde::Error>>::from)\n\
         }}\n}}\n"
    )
    .parse()
    .unwrap()
}
