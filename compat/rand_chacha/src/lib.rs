//! A minimal stand-in for the `rand_chacha` crate (see `compat/rand`).
//!
//! Implements the real ChaCha8 block function (IETF variant, 32-byte key,
//! zero nonce, 64-bit block counter), exposed through the vendored
//! [`rand::RngCore`] / [`rand::SeedableRng`] traits. Only seeded determinism
//! is relied upon by the workspace; the stream is not byte-compatible with
//! upstream `rand_chacha`.

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A ChaCha stream cipher based generator with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buffer: [u32; 16],
    index: usize,
}

fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        // "expand 32-byte k"
        let mut state = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..4 {
            // One double round: four column rounds plus four diagonal rounds.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (out, init) in state.iter_mut().zip(initial) {
            *out = out.wrapping_add(init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (i, word) in key.iter_mut().enumerate() {
            let mut bytes = [0u8; 4];
            bytes.copy_from_slice(&seed[i * 4..i * 4 + 4]);
            *word = u32::from_le_bytes(bytes);
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn seeded_streams_are_deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn works_through_the_rng_trait() {
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        for _ in 0..100 {
            let v: usize = rng.gen_range(0..10);
            assert!(v < 10);
            let f: f32 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn clones_continue_the_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        let _ = a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
