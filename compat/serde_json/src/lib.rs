//! A minimal JSON front end for the vendored `serde` stand-in: renders
//! `serde::Value` to JSON text and parses JSON text back (see `compat/serde`
//! for why this exists).

#![forbid(unsafe_code)]

use serde::{DeserializeOwned, Serialize, Value};
use std::fmt;

/// JSON serialization/parse failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error(e.to_string())
    }
}

/// Serializes a value to compact JSON.
///
/// # Errors
///
/// Infallible for the stub data model; kept fallible for API compatibility.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&serde::to_value(value), &mut out);
    Ok(out)
}

/// Serializes a value to human-indented JSON.
///
/// # Errors
///
/// Infallible for the stub data model; kept fallible for API compatibility.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value_pretty(&serde::to_value(value), &mut out, 0);
    Ok(out)
}

/// Parses a value from JSON text.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a data-model mismatch.
pub fn from_str<T: DeserializeOwned>(text: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::msg(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    serde::from_value(&value).map_err(Error::from)
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(f: f64, out: &mut String) {
    if f.is_finite() {
        // `{:?}` prints the shortest representation that round-trips.
        let text = format!("{f:?}");
        out.push_str(&text);
    } else {
        // JSON has no NaN/Infinity; mirror real serde_json's `null`.
        out.push_str("null");
    }
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(v) => out.push_str(&v.to_string()),
        Value::UInt(v) => out.push_str(&v.to_string()),
        Value::Float(f) => write_float(*f, out),
        Value::Str(s) => write_escaped(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_escaped(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_value_pretty(value: &Value, out: &mut String, indent: usize) {
    let pad = |out: &mut String, level: usize| {
        out.push('\n');
        for _ in 0..level {
            out.push_str("  ");
        }
    };
    match value {
        Value::Array(items) if !items.is_empty() => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_value_pretty(item, out, indent + 1);
            }
            pad(out, indent);
            out.push(']');
        }
        Value::Object(fields) if !fields.is_empty() => {
            out.push('{');
            for (i, (key, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                pad(out, indent + 1);
                write_escaped(key, out);
                out.push_str(": ");
                write_value_pretty(item, out, indent + 1);
            }
            pad(out, indent);
            out.push('}');
        }
        other => write_value(other, out),
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if b.is_ascii_whitespace() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, Error> {
        self.skip_whitespace();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| Error::msg("unexpected end of JSON input"))
    }

    fn expect(&mut self, byte: u8) -> Result<(), Error> {
        if self.peek()? == byte {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}",
                byte as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, keyword: &str) -> bool {
        self.skip_whitespace();
        if self.bytes[self.pos..].starts_with(keyword.as_bytes()) {
            self.pos += keyword.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek()? {
            b'n' => {
                if self.eat_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b't' | b'f' => {
                if self.eat_keyword("true") {
                    Ok(Value::Bool(true))
                } else if self.eat_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg(format!("invalid literal at byte {}", self.pos)))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.expect(b'[')?;
                let mut items = Vec::new();
                if self.peek()? == b']' {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b']' => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected `,` or `]`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            b'{' => {
                self.expect(b'{')?;
                let mut fields = Vec::new();
                if self.peek()? == b'}' {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_whitespace();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    match self.peek()? {
                        b',' => self.pos += 1,
                        b'}' => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        other => {
                            return Err(Error::msg(format!(
                                "expected `,` or `}}`, got `{}`",
                                other as char
                            )))
                        }
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| Error::msg("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| Error::msg("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| Error::msg("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::msg("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::msg("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::msg(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Collect the full UTF-8 sequence starting at `b`.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::msg("truncated UTF-8 sequence"))?;
                    let s = std::str::from_utf8(chunk).map_err(|_| Error::msg("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        self.skip_whitespace();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("invalid number"))?;
        if text.is_empty() {
            return Err(Error::msg(format!("expected value at byte {start}")));
        }
        let is_integral = !text.contains(['.', 'e', 'E']);
        if is_integral {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::msg(format!("invalid number `{text}`")))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_round_trip_through_text() {
        let value = Value::Object(vec![
            ("name".to_string(), Value::Str("dot \"p\"\n".to_string())),
            ("count".to_string(), Value::Int(-3)),
            ("big".to_string(), Value::UInt(u64::MAX)),
            (
                "weights".to_string(),
                Value::Array(vec![Value::Float(0.25), Value::Float(1.0)]),
            ),
            ("ok".to_string(), Value::Bool(true)),
            ("none".to_string(), Value::Null),
        ]);
        let text = to_string(&value).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(back, value);
        let pretty = to_string_pretty(&value).unwrap();
        let back: Value = from_str(&pretty).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn float_precision_survives() {
        let xs = vec![0.1f64, 1.0 / 3.0, -2.5e-8, 1e20];
        let text = to_string(&xs).unwrap();
        let back: Vec<f64> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn malformed_input_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1, 2,,]").is_err());
        assert!(from_str::<Value>("nulL").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn unicode_strings_round_trip() {
        let s = "héllo ✓ \u{1F600}".to_string();
        let text = to_string(&s).unwrap();
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, s);
    }
}
