//! A minimal, dependency-free stand-in for the `serde` crate.
//!
//! The workspace builds hermetically, so the slice of serde the CHEHAB
//! reproduction uses is vendored: the [`Serialize`] / [`Deserialize`] traits,
//! `#[derive(Serialize, Deserialize)]` (from the sibling `serde_derive`
//! stub), and a self-describing [`Value`] data model that `serde_json`
//! renders to and from JSON text.
//!
//! Unlike real serde there is no visitor machinery: a [`Serializer`] receives
//! a fully built [`Value`] and a [`Deserializer`] surrenders one. Hand
//! written impls in the workspace (e.g. for interned symbols) only use
//! `serialize_str` and `String::deserialize`, which this model covers with
//! the same signatures as upstream.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every value serializes into.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A floating-point number.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Array(Vec<Value>),
    /// An ordered map with string keys (struct fields keep declaration order).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, or an error naming `context`.
    pub fn object_fields(&self, context: &str) -> Result<&[(String, Value)], Error> {
        match self {
            Value::Object(fields) => Ok(fields),
            other => Err(Error::msg(format!(
                "expected object for {context}, got {other:?}"
            ))),
        }
    }

    /// Looks up a field of an object by name.
    pub fn field(&self, name: &str) -> Result<&Value, Error> {
        self.object_fields(name)?
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
            .ok_or_else(|| Error::msg(format!("missing field `{name}`")))
    }

    /// The elements of an array, or an error naming `context`.
    pub fn as_array(&self, context: &str) -> Result<&[Value], Error> {
        match self {
            Value::Array(items) => Ok(items),
            other => Err(Error::msg(format!(
                "expected array for {context}, got {other:?}"
            ))),
        }
    }

    /// Decodes an externally tagged enum: either a bare variant-name string
    /// (unit variant) or a single-entry object `{variant: payload}`.
    pub fn variant(&self) -> Result<(&str, Option<&Value>), Error> {
        match self {
            Value::Str(tag) => Ok((tag, None)),
            Value::Object(fields) if fields.len() == 1 => {
                Ok((fields[0].0.as_str(), Some(&fields[0].1)))
            }
            other => Err(Error::msg(format!("expected enum variant, got {other:?}"))),
        }
    }
}

/// Serialization/deserialization failure.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    /// Creates an error from a message.
    pub fn msg(message: impl Into<String>) -> Self {
        Error(message.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

/// Sink of the serialization data model.
pub trait Serializer: Sized {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error;

    /// Consumes a fully built value.
    fn serialize_value(self, value: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string slice.
    fn serialize_str(self, v: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(v.to_string()))
    }
}

/// Source of the serialization data model.
pub trait Deserializer<'de>: Sized {
    /// Error type; generated code converts [`Error`] into it.
    type Error: From<Error>;

    /// Surrenders the underlying value.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// Types convertible into the data model.
pub trait Serialize {
    /// Serializes `self` into `serializer`.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Types reconstructible from the data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value out of `deserializer`.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Shorthand for types deserializable without borrowing from the input.
pub trait DeserializeOwned: for<'de> Deserialize<'de> {}
impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}

struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = Error;

    fn serialize_value(self, value: Value) -> Result<Value, Error> {
        Ok(value)
    }
}

struct ValueDeserializer(Value);

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.0)
    }
}

/// Converts any serializable value into the data model.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Value {
    match value.serialize(ValueSerializer) {
        Ok(v) => v,
        Err(e) => unreachable!("ValueSerializer is infallible: {e}"),
    }
}

/// Reconstructs a value from the data model.
pub fn from_value<T: DeserializeOwned>(value: &Value) -> Result<T, Error> {
    T::deserialize(ValueDeserializer(value.clone()))
}

// ----- impls for primitives and std containers ---------------------------------

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let wide = *self as i128;
                let value = if let Ok(v) = i64::try_from(wide) {
                    Value::Int(v)
                } else {
                    Value::UInt(*self as u64)
                };
                serializer.serialize_value(value)
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let value = deserializer.take_value()?;
                let wide: i128 = match &value {
                    Value::Int(v) => *v as i128,
                    Value::UInt(v) => *v as i128,
                    Value::Float(f) if f.fract() == 0.0 => *f as i128,
                    other => {
                        return Err(Error::msg(format!(
                            "expected integer, got {other:?}"
                        )).into())
                    }
                };
                <$t>::try_from(wide).map_err(|_| {
                    Error::msg(format!("integer {wide} out of range for {}", stringify!($t)))
                        .into()
                })
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_serde_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_value(Value::Float(*self as f64))
            }
        }
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_value()? {
                    Value::Float(f) => Ok(f as $t),
                    Value::Int(v) => Ok(v as $t),
                    Value::UInt(v) => Ok(v as $t),
                    other => Err(Error::msg(format!("expected number, got {other:?}")).into()),
                }
            }
        }
    )*};
}
impl_serde_float!(f32, f64);

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(Error::msg(format!("expected bool, got {other:?}")).into()),
        }
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(Error::msg(format!("expected string, got {other:?}")).into()),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(self.iter().map(to_value).collect()))
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(self.iter().map(to_value).collect()))
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let items = value.as_array("Vec").map_err(D::Error::from)?;
        items
            .iter()
            .map(|v| from_value(v).map_err(D::Error::from))
            .collect()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(match self {
            None => Value::Null,
            Some(v) => to_value(v),
        })
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_value()? {
            Value::Null => Ok(None),
            other => from_value(&other).map(Some).map_err(D::Error::from),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: DeserializeOwned> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(vec![to_value(&self.0), to_value(&self.1)]))
    }
}

impl<'de, A: DeserializeOwned, B: DeserializeOwned> Deserialize<'de> for (A, B) {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let pair = (|| {
            let items = value.as_array("pair")?;
            if items.len() != 2 {
                return Err(Error::msg("expected 2-element array"));
            }
            Ok((from_value(&items[0])?, from_value(&items[1])?))
        })();
        pair.map_err(D::Error::from)
    }
}

/// Maps serialize as arrays of `[key, value]` pairs so non-string keys (e.g.
/// interned symbols) round-trip without a string conversion.
impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![to_value(k), to_value(v)]))
                .collect(),
        ))
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: DeserializeOwned + std::hash::Hash + Eq,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let entries = (|| {
            let items = value.as_array("map")?;
            items
                .iter()
                .map(|pair| {
                    let kv = pair.as_array("map entry")?;
                    if kv.len() != 2 {
                        return Err(Error::msg("expected [key, value] pair"));
                    }
                    Ok((from_value(&kv[0])?, from_value(&kv[1])?))
                })
                .collect::<Result<HashMap<K, V>, Error>>()
        })();
        entries.map_err(D::Error::from)
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(
            self.iter()
                .map(|(k, v)| Value::Array(vec![to_value(k), to_value(v)]))
                .collect(),
        ))
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: DeserializeOwned + Ord,
    V: DeserializeOwned,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let entries = (|| {
            let items = value.as_array("map")?;
            items
                .iter()
                .map(|pair| {
                    let kv = pair.as_array("map entry")?;
                    if kv.len() != 2 {
                        return Err(Error::msg("expected [key, value] pair"));
                    }
                    Ok((from_value(&kv[0])?, from_value(&kv[1])?))
                })
                .collect::<Result<BTreeMap<K, V>, Error>>()
        })();
        entries.map_err(D::Error::from)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(self.iter().map(to_value).collect()))
    }
}

impl<'de, T: DeserializeOwned + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let items = value.as_array("set").map_err(D::Error::from)?;
        items
            .iter()
            .map(|v| from_value(v).map_err(D::Error::from))
            .collect()
    }
}

impl<T: Serialize, H> Serialize for HashSet<T, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(Value::Array(self.iter().map(to_value).collect()))
    }
}

impl<'de, T: DeserializeOwned + std::hash::Hash + Eq> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let items = value.as_array("set").map_err(D::Error::from)?;
        items
            .iter()
            .map(|v| from_value(v).map_err(D::Error::from))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_value(self.clone())
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        deserializer.take_value()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(from_value::<i64>(&to_value(&-7i64)).unwrap(), -7);
        assert_eq!(from_value::<usize>(&to_value(&42usize)).unwrap(), 42);
        assert_eq!(from_value::<f32>(&to_value(&1.5f32)).unwrap(), 1.5);
        assert!(from_value::<bool>(&to_value(&true)).unwrap());
        assert_eq!(from_value::<String>(&to_value("hi")).unwrap(), "hi");
        let v: Vec<u32> = vec![1, 2, 3];
        assert_eq!(from_value::<Vec<u32>>(&to_value(&v)).unwrap(), v);
        let o: Option<i32> = None;
        assert_eq!(from_value::<Option<i32>>(&to_value(&o)).unwrap(), None);
    }

    #[test]
    fn large_u64_survives() {
        let big = u64::MAX - 3;
        assert_eq!(from_value::<u64>(&to_value(&big)).unwrap(), big);
    }

    #[test]
    fn maps_round_trip() {
        let mut m = HashMap::new();
        m.insert("a".to_string(), 1u32);
        m.insert("b".to_string(), 2);
        assert_eq!(
            from_value::<HashMap<String, u32>>(&to_value(&m)).unwrap(),
            m
        );
    }

    #[test]
    fn type_mismatches_error() {
        assert!(from_value::<u32>(&Value::Str("x".into())).is_err());
        assert!(from_value::<u8>(&Value::Int(300)).is_err());
        assert!(Value::Int(1).field("x").is_err());
    }
}
