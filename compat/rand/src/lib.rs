//! A minimal, dependency-free stand-in for the `rand` crate.
//!
//! The workspace builds in hermetic environments with no access to a crates
//! registry, so the small slice of the `rand 0.8` API the CHEHAB
//! reproduction uses is vendored here: the [`RngCore`] / [`Rng`] /
//! [`SeedableRng`] traits, [`rngs::StdRng`] (xoshiro256++ under the hood),
//! uniform range sampling for the integer and float types the workspace
//! samples, and [`seq::SliceRandom::shuffle`].
//!
//! The streams produced are *not* those of the upstream crate; everything in
//! the workspace only relies on seeded determinism, not on specific values.

#![forbid(unsafe_code)]

/// Low-level uniform bit generation.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Deterministic construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanded with SplitMix64 the way
    /// upstream `rand` does.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64(state);
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next_value().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// The SplitMix64 sequence used for seed expansion.
#[derive(Debug, Clone)]
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Advances the sequence one step and returns the next value.
    pub fn next_value(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Types samplable uniformly over their whole domain with `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types with uniform sampling over an interval.
pub trait SampleUniform: Sized + Copy + PartialOrd {
    /// Draws uniformly from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_between<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + i128::from(inclusive)) as u128;
                assert!(span > 0, "cannot sample empty range");
                let offset = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )*};
}
sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_between<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(if inclusive { lo <= hi } else { lo < hi }, "cannot sample empty range");
                lo + <$t as Standard>::sample(rng) * (hi - lo)
            }
        }
    )*};
}
sample_uniform_float!(f32, f64);

/// Ranges from which `Rng::gen_range` can sample one value.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_one<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_between(rng, *self.start(), *self.end(), true)
    }
}

/// High-level sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a value uniformly over the type's whole domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_one(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = (self.s[0].wrapping_add(self.s[3]))
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point of xoshiro; nudge it.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }
}

/// Sequence-related sampling helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling and choice.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: usize = rng.gen_range(2..=3);
            assert!((2..=3).contains(&w));
            let f: f32 = rng.gen_range(-1.5..1.5);
            assert!((-1.5..1.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_respects_probability_extremes() {
        let mut rng = StdRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "a 32-element shuffle is astronomically unlikely to be identity"
        );
    }
}
