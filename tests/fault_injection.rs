//! Fault-injection and resilience tests: cancellation must stop a request
//! mid-flight (not just at dequeue), cancelled requests must not leak arena
//! buffers, a seeded fault storm must never hang or kill the engine, and
//! every non-faulted request must stay bit-identical to a clean run.

use chehab::compiler::{
    CancellationToken, Compiler, ExecOptions, FaultPlan, FheSession, RequestError,
};
use chehab::fhe::{BfvParameters, FheError};
use chehab::{benchsuite, benchsuite::Benchmark};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

fn inputs_of(benchmark: &Benchmark, seed: u64) -> HashMap<String, i64> {
    let env = benchmark.input_env(seed);
    benchmark
        .program()
        .variables()
        .into_iter()
        .map(|v| {
            let value = env.get(v.as_str()).unwrap_or(0) as i64;
            (v.to_string(), value)
        })
        .collect()
}

fn session_for(id: &str) -> (Arc<FheSession>, Benchmark) {
    let benchmark = benchsuite::by_id(id).expect("known benchmark id");
    let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
    let session = Arc::new(compiled.session(&BfvParameters::insecure_test()).unwrap());
    (session, benchmark)
}

/// Reads one counter value out of the session's Prometheus text export.
fn metric(session: &FheSession, name: &str) -> u64 {
    session
        .render_metrics()
        .lines()
        .find(|line| !line.starts_with('#') && line.starts_with(name))
        .and_then(|line| line.split_whitespace().last())
        .and_then(|value| value.parse().ok())
        .unwrap_or_else(|| panic!("metric {name} missing from the export"))
}

/// The tentpole acceptance check: a request cancelled at dispatch index 8
/// while 8 dataflow workers are chewing on it stops scheduling the
/// remaining instructions — the plan's dispatch counter (the telemetry both
/// executors feed) stays strictly below the schedule length — and the
/// request resolves with `FheError::Cancelled`.
#[test]
fn cancellation_stops_a_dataflow_request_mid_flight() {
    let (session, benchmark) = session_for("Hamm. Dist. 32");
    let total = session.schedule().instrs().len() as u64;
    assert!(
        total > 24,
        "kernel must be large enough that a mid-flight stop is observable"
    );

    let token = CancellationToken::new();
    let plan = FaultPlan::new();
    plan.cancel_token_at(8, &token);
    let options = ExecOptions::new().with_threads_per_request(8);
    let error = session
        .run_resilient(
            &inputs_of(&benchmark, 7),
            &options,
            Some(&token),
            Some(&plan),
        )
        .expect_err("the cancelled request must not produce a report");
    assert_eq!(error, FheError::Cancelled);

    // At most the 8 in-flight dispatches that raced the cancellation ran
    // past the trigger; the bulk of the schedule never dispatched.
    let dispatched = plan.instructions_dispatched();
    assert!(
        dispatched < total,
        "cancelled request dispatched all {total} instructions"
    );
    // A cancelled request leaves no trace in the cumulative calibration.
    assert_eq!(session.stats().calibration.sample_count(), 0);
    assert_eq!(session.stats().requests_served, 0);

    // The session remains fully serviceable afterwards.
    let report = session.run(&inputs_of(&benchmark, 7)).unwrap();
    assert!(report.decryption_ok);
}

/// An already-dead token fails before any ciphertext work: zero dispatches.
#[test]
fn a_pre_cancelled_token_fails_before_binding() {
    let (session, benchmark) = session_for("Dot Product 8");
    let token = CancellationToken::new();
    token.cancel();
    let plan = FaultPlan::new();
    let error = session
        .run_resilient(
            &inputs_of(&benchmark, 1),
            &ExecOptions::sequential(),
            Some(&token),
            Some(&plan),
        )
        .unwrap_err();
    assert_eq!(error, FheError::Cancelled);
    assert_eq!(plan.instructions_dispatched(), 0);

    let expired = CancellationToken::deadline_in(Duration::ZERO);
    std::thread::sleep(Duration::from_millis(1));
    let error = session
        .run_resilient(
            &inputs_of(&benchmark, 1),
            &ExecOptions::sequential(),
            Some(&expired),
            None,
        )
        .unwrap_err();
    assert_eq!(error, FheError::DeadlineExceeded);
}

/// 100 cancel cycles leak nothing: after warm-up, cancelled requests return
/// every arena buffer to the session pool, so the pool's fresh-allocation
/// counter stays flat across the whole run.
#[test]
fn one_hundred_cancel_cycles_leak_no_arena_buffers() {
    let (session, benchmark) = session_for("Dot Product 8");
    let inputs = inputs_of(&benchmark, 9);
    let options = ExecOptions::new().with_threads_per_request(4);

    // Warm-up: complete runs and one cancelled run at each trigger point we
    // will use, so every buffer length class is pooled.
    session.run_parallel(&inputs, &options).unwrap();
    session.run_parallel(&inputs, &options).unwrap();
    for trigger in [1, 2, 3, 4] {
        let token = CancellationToken::new();
        let plan = FaultPlan::new();
        plan.cancel_token_at(trigger, &token);
        let _ = session.run_resilient(&inputs, &options, Some(&token), Some(&plan));
    }

    let fresh_before = metric(&session, "chehab_arena_fresh_allocations_total");
    for cycle in 0..100u64 {
        let token = CancellationToken::new();
        let plan = FaultPlan::new();
        // Triggers stay well inside the 7-instruction schedule so at least
        // one dispatch after the trigger observes the cancelled token.
        plan.cancel_token_at(1 + (cycle % 4), &token);
        let error = session
            .run_resilient(&inputs, &options, Some(&token), Some(&plan))
            .expect_err("every cycle cancels");
        assert_eq!(error, FheError::Cancelled, "cycle {cycle}");
    }
    // A real leak grows linearly — ~100 fresh allocations here. The pool's
    // high-water mark may still creep up a couple of times when a scheduling
    // race briefly needs one more concurrent buffer than any warm-up run
    // did, so allow a small constant while still catching per-cycle leaks.
    let fresh_after = metric(&session, "chehab_arena_fresh_allocations_total");
    let grown = fresh_after - fresh_before;
    assert!(
        grown < 10,
        "cancelled requests leaked arena buffers ({grown} fresh allocations across 100 cycles)"
    );

    // And the session still serves clean requests bit-identically.
    let clean = session.run_parallel(&inputs, &options).unwrap();
    assert!(clean.decryption_ok);
}

/// A seeded fault storm — planned worker panics, latency spikes, forced
/// queue-full rejections — over a serving engine completes with zero hangs
/// and zero engine deaths, errors stay bounded by the plan, and every
/// non-faulted request's outputs are bit-identical to a clean solo run.
#[test]
fn a_seeded_fault_storm_never_hangs_and_non_faulted_outputs_are_exact() {
    for id in ["Dot Product 8", "Linear Reg. 4", "L2 Distance 8"] {
        let (session, benchmark) = session_for(id);
        let requests = 10usize;
        let input_sets: Vec<HashMap<String, i64>> = (0..requests)
            .map(|seed| inputs_of(&benchmark, 900 + seed as u64))
            .collect();
        let clean: Vec<Vec<u64>> = input_sets
            .iter()
            .map(|inputs| session.run(inputs).unwrap().outputs)
            .collect();

        // One panic point somewhere in the first requests' dispatch range,
        // plus latency spikes and two forced queue-full rejections.
        let span = (session.schedule().instrs().len() * requests) as u64;
        let plan = FaultPlan::storm(0xC4A05, span.max(1), 2);
        plan.force_queue_full(2);
        let engine = session.serve_resilient(
            &ExecOptions::new().with_request_threads(3),
            None,
            Some(plan.clone()),
        );

        let mut handles = Vec::new();
        for inputs in &input_sets {
            // Retry-with-backoff rides out the forced queue-full faults.
            let handle = engine
                .submit_with_retry(inputs.clone(), 8, Duration::from_millis(1))
                .expect("retries outlast the forced queue-full budget");
            handles.push(handle);
        }

        let mut failed = 0usize;
        for (i, handle) in handles.into_iter().enumerate() {
            match handle.wait() {
                Ok(report) => assert_eq!(
                    report.outputs, clean[i],
                    "{id}: non-faulted request {i} diverged from the clean run"
                ),
                Err(FheError::WorkerPanic { .. }) => failed += 1,
                Err(other) => panic!("{id}: unexpected storm error: {other}"),
            }
        }
        // Bounded error count: at most one failure per planned panic point.
        assert!(failed <= 2, "{id}: {failed} failures from 2 panic points");
        let stats = engine.shutdown();
        assert_eq!(stats.completed, requests as u64, "{id}: zero hangs");
        assert_eq!(stats.resilience.worker_panics as usize, failed);

        // The storm's panics were isolated: the engine survived, and the
        // session still serves clean requests afterwards.
        let after = session.run(&input_sets[0]).unwrap();
        assert_eq!(after.outputs, clean[0]);
    }
}

/// A worker killed *outside* the handler (the hard-failure mode) abandons
/// exactly its in-flight request instead of hanging the waiter, and the
/// remaining workers keep serving.
#[test]
fn a_killed_worker_abandons_its_request_without_hanging_waiters() {
    let (session, benchmark) = session_for("Dot Product 8");
    let plan = FaultPlan::new();
    plan.kill_workers(1);
    let engine = session.serve_resilient(
        &ExecOptions::new().with_request_threads(2),
        None,
        Some(plan),
    );
    let handles: Vec<_> = (0..6)
        .map(|seed| engine.submit(inputs_of(&benchmark, 40 + seed)).unwrap())
        .collect();
    let mut abandoned = 0usize;
    let mut served = 0usize;
    for handle in handles {
        match handle.try_wait() {
            Ok(result) => {
                served += 1;
                assert!(result.expect("served request succeeds").decryption_ok);
            }
            Err(RequestError::Abandoned) => abandoned += 1,
            Err(RequestError::Panicked) => panic!("handler panics are caught, not re-raised here"),
        }
    }
    assert_eq!(abandoned, 1, "exactly the killed worker's request is lost");
    assert_eq!(served, 5, "the surviving worker drains the rest");
    let stats = engine.shutdown();
    assert!(stats.resilience.worker_panics >= 1);
    assert_eq!(
        session.resilience().worker_panics,
        stats.resilience.worker_panics
    );
}

/// Deadlines flow end to end: a serving engine with an aggressive deadline
/// resolves late requests with `FheError::DeadlineExceeded`, counts them in
/// the resilience stats, and mirrors the count into the session's
/// Prometheus export.
#[test]
fn deadlines_resolve_requests_with_deadline_exceeded_and_are_counted() {
    let (session, benchmark) = session_for("Linear Reg. 4");
    // Warm the session so one clean baseline exists.
    let clean = session.run(&inputs_of(&benchmark, 3)).unwrap();
    assert!(clean.decryption_ok);

    let engine = session.serve_resilient(
        &ExecOptions::new()
            .with_request_threads(1)
            .with_deadline(Duration::from_nanos(1)),
        None,
        None,
    );
    let handle = engine.submit(inputs_of(&benchmark, 3)).unwrap();
    let error = handle.wait().expect_err("a 1ns deadline always expires");
    assert_eq!(error, FheError::DeadlineExceeded);
    let stats = engine.shutdown();
    assert_eq!(stats.resilience.deadline_missed, 1);
    assert_eq!(metric(&session, "chehab_deadline_missed_total"), 1);
    // The failed request fed neither the request counter nor the
    // calibration beyond the clean baseline.
    assert_eq!(session.stats().requests_served, 1);
}
