//! Equivalence tests for the RNS multi-limb coefficient engine.
//!
//! Three angles:
//!
//! 1. **k=1 bit-identity** — with a single-limb chain the generalized
//!    segment-walking kernels degenerate to the pre-RNS Goldilocks stripe
//!    path; every fused payload kernel must match a from-first-principles
//!    scalar oracle exactly, so the existing single-modulus behavior is the
//!    bit-identity floor for the generalized code.
//! 2. **CRT round-trip** — Garner reconstruction and lifting are exact
//!    inverses: random per-limb residues survive
//!    `crt_reconstruct -> crt_lift` unchanged at every chain length, and a
//!    base value below the Goldilocks modulus reconstructs to itself.
//! 3. **End-to-end sweep** — all 46 benchsuite kernels at limb counts 2 and
//!    3 produce outputs, operation counts, noise accounting and decryption
//!    outcomes identical to the k=1 engine, under the process-wide policy
//!    forced to scalar and to the vector back end, at 1 and 4 threads under
//!    both schedulers. Multi-limb payloads only widen the cost-model
//!    arithmetic; the slot pipeline is exact and must not notice.

use chehab::benchsuite::{self, Benchmark};
use chehab::compiler::{Compiler, ExecOptions, SchedulerKind};
use chehab::fhe::poly::{p_add, p_mul, p_sub, Domain, MODULUS};
use chehab::fhe::rns::{add_mod, neg_mod};
use chehab::fhe::{BfvParameters, CtPayload, ModulusChain, SimdPolicy};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

fn random_residues(rng: &mut ChaCha8Rng, n: usize, q: u64) -> Vec<u64> {
    (0..n).map(|_| rng.gen::<u64>() % q).collect()
}

/// Canonical `a·b mod q` straight from the 128-bit product — the oracle
/// every limb's multiply (Goldilocks epsilon-fold or Barrett) must match.
fn naive_mul(a: u64, b: u64, q: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(q)) as u64
}

/// Canonical `a + b mod q` in 128-bit arithmetic (the Goldilocks limb's
/// operand sum can overflow 64 bits).
fn naive_add(a: u64, b: u64, q: u64) -> u64 {
    ((u128::from(a) + u128::from(b)) % u128::from(q)) as u64
}

/// Canonical `a - b mod q` in 128-bit arithmetic (adding `q` first can
/// overflow 64 bits on the Goldilocks limb).
fn naive_sub(a: u64, b: u64, q: u64) -> u64 {
    ((u128::from(a) + u128::from(q) - u128::from(b)) % u128::from(q)) as u64
}

/// Builds a `k`-limb payload with canonical per-limb residues plus a
/// half-length (`k * degree`) per-limb operand stripe.
fn random_limb_payload(
    rng: &mut ChaCha8Rng,
    chain: &ModulusChain,
    domain: Domain,
) -> (CtPayload, Vec<u64>) {
    let k = chain.limb_count();
    let degree = chain.degree();
    let half = k * degree;
    let mut stripe = vec![0u64; 2 * half];
    let mut operand = vec![0u64; half];
    for li in 0..k {
        let q = chain.limb(li).modulus();
        for j in 0..degree {
            stripe[li * degree + j] = rng.gen::<u64>() % q;
            stripe[half + li * degree + j] = rng.gen::<u64>() % q;
            operand[li * degree + j] = rng.gen::<u64>() % q;
        }
    }
    (CtPayload::from_limb_stripe(stripe, k, domain), operand)
}

/// With a single-limb chain every generalized kernel must reproduce the
/// pre-RNS Goldilocks stripe arithmetic bit for bit — checked against
/// scalar `p_mul`/`p_add`/`p_sub` oracles rather than the kernels
/// themselves, so a segment-walk bug cannot cancel out.
#[test]
fn k1_kernels_are_bit_identical_to_the_goldilocks_oracle() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9B5_0001);
    for degree in [8usize, 64, 512] {
        let chain = ModulusChain::new(1, degree, false);
        for policy in [SimdPolicy::Scalar, SimdPolicy::detected()] {
            let a = CtPayload::from_stripe(
                random_residues(&mut rng, 2 * degree, MODULUS),
                Domain::Eval,
            );
            let b = CtPayload::from_stripe(
                random_residues(&mut rng, 2 * degree, MODULUS),
                Domain::Eval,
            );
            let m = random_residues(&mut rng, degree, MODULUS);
            let s0 = random_residues(&mut rng, degree, MODULUS);
            let s1 = random_residues(&mut rng, degree, MODULUS);

            let mut out = vec![0u64; 2 * degree];
            a.mul_eval2(&m, &mut out, 1, policy, &chain);
            for i in 0..degree {
                assert_eq!(out[i], p_mul(a.c0()[i], m[i]), "mul_eval2 c0 @{i}");
                assert_eq!(out[degree + i], p_mul(a.c1()[i], m[i]), "mul_eval2 c1 @{i}");
            }

            // The fused tensor + key-switch kernel: c2 = a1·b1,
            // out0 = a0·b0 + c2·s0, out1 = a0·b1 + a1·b0 + c2·s1.
            a.mul_add_eval2(&b, &s0, &s1, &mut out, 1, policy, &chain);
            for i in 0..degree {
                let c2 = p_mul(a.c1()[i], b.c1()[i]);
                let want0 = p_add(p_mul(a.c0()[i], b.c0()[i]), p_mul(c2, s0[i]));
                let want1 = p_add(
                    p_add(p_mul(a.c0()[i], b.c1()[i]), p_mul(a.c1()[i], b.c0()[i])),
                    p_mul(c2, s1[i]),
                );
                assert_eq!(out[i], want0, "mul_add_eval2 c0 @{i}");
                assert_eq!(out[degree + i], want1, "mul_add_eval2 c1 @{i}");
            }

            a.add2(&b, &mut out, policy, &chain);
            for (i, &got) in out.iter().enumerate() {
                assert_eq!(got, p_add(a.stripe()[i], b.stripe()[i]), "add2 @{i}");
            }
            a.sub2(&b, &mut out, policy, &chain);
            for (i, &got) in out.iter().enumerate() {
                assert_eq!(got, p_sub(a.stripe()[i], b.stripe()[i]), "sub2 @{i}");
            }
        }
    }
}

/// Multi-limb kernels reduce each limb stripe by its own prime and match
/// the same scalar oracles limb by limb, under both policies.
#[test]
fn multi_limb_kernels_match_per_limb_oracles() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x9B5_0002);
    for k in [2usize, 3] {
        for degree in [8usize, 64, 256] {
            let chain = ModulusChain::new(k, degree, false);
            let half = k * degree;
            for policy in [SimdPolicy::Scalar, SimdPolicy::detected()] {
                let (a, m) = random_limb_payload(&mut rng, &chain, Domain::Eval);
                let (b, _) = random_limb_payload(&mut rng, &chain, Domain::Eval);

                let mut out = vec![0u64; 2 * half];
                a.mul_eval2(&m, &mut out, 1, policy, &chain);
                for li in 0..k {
                    let q = chain.limb(li).modulus();
                    for j in 0..degree {
                        let i = li * degree + j;
                        assert_eq!(
                            out[i],
                            naive_mul(a.c0()[i], m[i], q),
                            "mul_eval2 c0 limb {li} @{j} (k={k})"
                        );
                        assert_eq!(
                            out[half + i],
                            naive_mul(a.c1()[i], m[i], q),
                            "mul_eval2 c1 limb {li} @{j} (k={k})"
                        );
                    }
                }

                a.add2(&b, &mut out, policy, &chain);
                for li in 0..k {
                    let q = chain.limb(li).modulus();
                    for j in 0..degree {
                        let i = li * degree + j;
                        assert_eq!(out[i], naive_add(a.c0()[i], b.c0()[i], q));
                        assert_eq!(out[half + i], naive_add(a.c1()[i], b.c1()[i], q));
                    }
                }
                a.sub2(&b, &mut out, policy, &chain);
                for li in 0..k {
                    let q = chain.limb(li).modulus();
                    for j in 0..degree {
                        let i = li * degree + j;
                        assert_eq!(out[i], naive_sub(a.c0()[i], b.c0()[i], q));
                        assert_eq!(out[half + i], naive_sub(a.c1()[i], b.c1()[i], q));
                    }
                }
                let mut neg = vec![0u64; 2 * half];
                a.neg2(&mut neg, policy, &chain);
                for li in 0..k {
                    let q = chain.limb(li).modulus();
                    for j in 0..degree {
                        let i = li * degree + j;
                        assert_eq!(neg[i], neg_mod(a.c0()[i], q), "neg2 limb {li} @{j}");
                        assert_eq!(
                            add_mod(neg[i], a.c0()[i], q),
                            0,
                            "neg2 must be the additive inverse"
                        );
                    }
                }
            }
        }
    }
}

/// Garner CRT: reconstruction and lifting are exact inverses for random
/// per-limb residues at every chain length, and a base value below every
/// modulus reconstructs to itself (single-word integer).
#[test]
fn crt_reconstruct_and_lift_round_trip_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC27_0003);
    for k in 1..=4usize {
        let chain = ModulusChain::new(k, 8, false);
        for _ in 0..200 {
            let residues: Vec<u64> = (0..k)
                .map(|i| rng.gen::<u64>() % chain.limb(i).modulus())
                .collect();
            let words = chain.crt_reconstruct(&residues);
            assert_eq!(words.len(), k, "one 64-bit word per limb");
            assert_eq!(
                chain.crt_lift(&words),
                residues,
                "crt_lift(crt_reconstruct(r)) must be the identity (k={k})"
            );
        }
        // A base value smaller than every modulus is its own reconstruction.
        let min_q = chain.limbs().iter().map(|l| l.modulus()).min().unwrap();
        for _ in 0..50 {
            let x = rng.gen::<u64>() % min_q;
            let residues: Vec<u64> = (0..k).map(|i| chain.lift_base(i, x)).collect();
            let words = chain.crt_reconstruct(&residues);
            assert_eq!(words[0], x, "small values reconstruct to themselves");
            assert!(words[1..].iter().all(|&w| w == 0));
        }
    }
}

fn inputs_of(benchmark: &Benchmark, seed: u64) -> HashMap<String, i64> {
    let env = benchmark.input_env(seed);
    benchmark
        .program()
        .variables()
        .into_iter()
        .map(|v| {
            let value = env.get(v.as_str()).unwrap_or(0) as i64;
            (v.to_string(), value)
        })
        .collect()
}

/// All 46 benchsuite kernels end to end at limb counts 2 and 3: outputs,
/// operation counts, noise accounting and decryption outcomes are identical
/// to the k=1 engine, under the process-wide policy forced to scalar and to
/// the vector back end, across 1/4 threads and both schedulers.
#[test]
fn every_kernel_is_identical_across_limb_counts_policies_and_schedulers() {
    let base = BfvParameters {
        payload_degree: 64,
        simulate_compute: true,
        ..BfvParameters::insecure_test()
    };
    assert_eq!(base.limb_count, 1, "the default path is the k=1 oracle");
    for benchmark in benchsuite::full_suite() {
        let compiled = Compiler::without_optimizer().compile(benchmark.id(), benchmark.program());
        let inputs = inputs_of(&benchmark, 31);
        for policy in [SimdPolicy::Scalar, SimdPolicy::Avx2] {
            SimdPolicy::set_global(policy);
            let oracle = compiled
                .session(&base)
                .unwrap_or_else(|e| panic!("{}: k=1 session failed: {e}", benchmark.id()))
                .run(&inputs)
                .unwrap_or_else(|e| panic!("{}: k=1 run failed: {e}", benchmark.id()));
            for k in [2usize, 3] {
                let session = compiled
                    .session(&base.clone().with_limb_count(k))
                    .unwrap_or_else(|e| panic!("{}: k={k} session failed: {e}", benchmark.id()));
                let solo = session.run(&inputs).unwrap_or_else(|e| {
                    panic!("{}: k={k} run failed under {policy:?}: {e}", benchmark.id())
                });
                assert_eq!(
                    solo.outputs,
                    oracle.outputs,
                    "{}: outputs depend on the limb count (k={k}, {policy:?})",
                    benchmark.id()
                );
                assert_eq!(
                    solo.operation_stats,
                    oracle.operation_stats,
                    "{}: operation counts depend on the limb count (k={k})",
                    benchmark.id()
                );
                assert_eq!(
                    solo.noise_budget_consumed,
                    oracle.noise_budget_consumed,
                    "{}: noise accounting depends on the limb count (k={k})",
                    benchmark.id()
                );
                assert_eq!(
                    solo.decryption_ok,
                    oracle.decryption_ok,
                    "{}: decryption outcome depends on the limb count (k={k})",
                    benchmark.id()
                );
                for (threads, scheduler) in [
                    (1usize, SchedulerKind::Dataflow),
                    (4, SchedulerKind::Dataflow),
                    (4, SchedulerKind::Leveled),
                ] {
                    let options = ExecOptions::sequential()
                        .with_threads_per_request(threads)
                        .with_scheduler(scheduler);
                    let parallel = session.run_parallel(&inputs, &options).unwrap_or_else(|e| {
                        panic!(
                            "{}: k={k} {threads}-thread {scheduler:?} run failed under \
                             {policy:?}: {e}",
                            benchmark.id()
                        )
                    });
                    assert_eq!(
                        parallel.outputs,
                        oracle.outputs,
                        "{}: outputs diverged at k={k}, {threads} threads, \
                         {scheduler:?}/{policy:?}",
                        benchmark.id()
                    );
                    assert_eq!(
                        parallel.operation_stats,
                        oracle.operation_stats,
                        "{}: operation counts diverged at k={k}, {threads} threads, \
                         {scheduler:?}/{policy:?}",
                        benchmark.id()
                    );
                }
            }
        }
        SimdPolicy::set_global(SimdPolicy::detected());
    }
}
