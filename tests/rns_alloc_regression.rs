//! Allocation-regression test for the RNS multi-limb payload engine.
//!
//! PR 5's zero-allocation property must survive the limb generalization: a
//! warm `FheSession` whose ciphertexts carry `k >= 2` limb stripes still
//! serves steady-state requests with **zero fresh buffer allocations** —
//! the wider `2·k·degree` stripes, the per-limb key polynomials and the
//! multi-limb plaintext splats all round-trip through the same arena pools
//! as the single-limb engine, just at a larger buffer width.
//!
//! Like `alloc_regression.rs`, this file holds a single test because the
//! process-global `PolyArena` counters are shared by every thread; a
//! separate integration-test file gives the assertion its own process.

use chehab::benchsuite;
use chehab::compiler::Compiler;
use chehab::fhe::{BfvParameters, PolyArena};
use std::collections::HashMap;

#[test]
fn warm_multi_limb_kernel_sweep_performs_zero_fresh_buffer_allocations() {
    for limb_count in [2usize, 3] {
        let params = BfvParameters {
            payload_degree: 64,
            simulate_compute: true,
            limb_count,
            ..BfvParameters::insecure_test()
        };
        for benchmark in benchsuite::full_suite() {
            let compiled =
                Compiler::without_optimizer().compile(benchmark.id(), benchmark.program());
            let session = compiled.session(&params).unwrap_or_else(|e| {
                panic!(
                    "{}: session construction failed at k={limb_count}: {e}",
                    benchmark.id()
                )
            });
            let env = benchmark.input_env(29);
            let inputs: HashMap<String, i64> = benchmark
                .program()
                .variables()
                .into_iter()
                .map(|v| (v.to_string(), env.get(v.as_str()).unwrap_or(0) as i64))
                .collect();

            // Two passes fill the pool with the k-limb stripe widths; the
            // third proves the pool round-trips them.
            let cold = session
                .run(&inputs)
                .unwrap_or_else(|e| panic!("{}: cold run failed: {e}", benchmark.id()));
            let warm_up = session.run(&inputs).unwrap();
            assert_eq!(warm_up.outputs, cold.outputs, "{}", benchmark.id());

            PolyArena::reset_counters();
            let warm = session.run(&inputs).unwrap();
            let fresh = PolyArena::fresh_allocations();
            let reuses = PolyArena::reuses();
            assert_eq!(
                fresh,
                0,
                "{}: a warm k={limb_count} request must serve every slot vector and \
                 limb stripe from the arena ({reuses} reuses recorded)",
                benchmark.id()
            );
            assert!(
                reuses > 0,
                "{}: a served k={limb_count} request must actually draw buffers from the arena",
                benchmark.id()
            );
            assert_eq!(
                warm.outputs,
                cold.outputs,
                "{}: buffer reuse must not change results at k={limb_count}",
                benchmark.id()
            );
        }
    }
}
