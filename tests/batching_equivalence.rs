//! Cross-request SIMD batching equivalence: packing many users into the
//! slot lanes of shared ciphertexts must change *throughput only*. A
//! one-user batch takes the same encryption layout and call order as the
//! unbatched path (hence bit-identical ciphertexts and reports), and every
//! user of a multi-user batch must read exactly the outputs it would have
//! gotten from its own solo request — on every benchsuite kernel.

use chehab::benchsuite::{self, Benchmark};
use chehab::compiler::{BatchPolicy, Compiler, ExecOptions};
use chehab::fhe::BfvParameters;
use std::collections::HashMap;

fn inputs_of(benchmark: &Benchmark, seed: u64) -> HashMap<String, i64> {
    let env = benchmark.input_env(seed);
    benchmark
        .program()
        .variables()
        .into_iter()
        .map(|v| {
            let value = env.get(v.as_str()).unwrap_or(0) as i64;
            (v.to_string(), value)
        })
        .collect()
}

/// Batch size 1 is the degenerate case the whole design pivots on: the
/// flattened lane layout collapses to the unbatched layout, so outputs,
/// operation stats, noise consumption and decryption status must all be
/// bit-identical to [`FheSession::run`] on all 46 kernels.
#[test]
fn a_one_user_batch_is_bit_identical_to_the_unbatched_path() {
    let params = BfvParameters::insecure_test();
    let options = ExecOptions::sequential().with_batching(BatchPolicy::default());
    for benchmark in benchsuite::full_suite() {
        let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
        let session = compiled
            .session(&params)
            .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
        let inputs = inputs_of(&benchmark, 41);

        let unbatched = session
            .run(&inputs)
            .unwrap_or_else(|e| panic!("{}: unbatched run failed: {e}", benchmark.id()));
        let batched = session
            .run_batched(std::slice::from_ref(&inputs), &options)
            .unwrap_or_else(|e| panic!("{}: batched run failed: {e}", benchmark.id()));

        assert_eq!(batched.len(), 1, "{}: one user, one report", benchmark.id());
        let report = &batched[0];
        assert_eq!(
            report.outputs,
            unbatched.outputs,
            "{}: batch-1 outputs diverged",
            benchmark.id()
        );
        assert_eq!(
            report.operation_stats,
            unbatched.operation_stats,
            "{}: batch-1 executed different operations",
            benchmark.id()
        );
        assert_eq!(
            report.noise_budget_consumed,
            unbatched.noise_budget_consumed,
            "{}: batch-1 noise diverged",
            benchmark.id()
        );
        assert_eq!(report.decryption_ok, unbatched.decryption_ok);
    }
}

/// Multi-user batches: each user's lane window must scatter back exactly
/// the outputs that user's solo request produces, even though the whole
/// batch shared one homomorphic execution.
#[test]
fn every_user_of_a_batch_reads_its_own_solo_result() {
    let params = BfvParameters::insecure_test();
    let options = ExecOptions::sequential().with_batching(BatchPolicy::default());
    for benchmark in benchsuite::full_suite() {
        let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
        let session = compiled
            .session(&params)
            .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
        assert!(session.lane_stride() >= 1);
        assert!(session.batch_capacity() >= 1);

        let users = session.batch_capacity().min(3);
        let input_sets: Vec<HashMap<String, i64>> = (0..users as u64)
            .map(|k| inputs_of(&benchmark, 120 + 7 * k))
            .collect();
        let batched = session
            .run_batched(&input_sets, &options)
            .unwrap_or_else(|e| panic!("{}: batched run failed: {e}", benchmark.id()));
        assert_eq!(
            batched.len(),
            users,
            "{}: one report per user",
            benchmark.id()
        );

        for (lane, inputs) in input_sets.iter().enumerate() {
            let solo = session
                .run(inputs)
                .unwrap_or_else(|e| panic!("{}: solo run failed: {e}", benchmark.id()));
            assert_eq!(
                batched[lane].outputs,
                solo.outputs,
                "{}: user {lane} of {users} read someone else's lane",
                benchmark.id()
            );
            assert_eq!(batched[lane].decryption_ok, solo.decryption_ok);
        }
    }
}

/// A batch larger than the effective lane capacity splits into full chunks
/// plus a ragged tail, each executing as its own shared ciphertext — and
/// still scatters per-user-correct results in input order.
#[test]
fn ragged_chunking_preserves_per_user_results_and_input_order() {
    let params = BfvParameters::insecure_test();
    let benchmark = benchsuite::by_id("Dot Product 8").expect("known benchmark id");
    let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
    let session = compiled.session(&params).unwrap();

    // Cap batches at 2 lanes: 5 users chunk as [2, 2, 1].
    let options = ExecOptions::sequential().with_batching(BatchPolicy::default().with_max_batch(2));
    let input_sets: Vec<HashMap<String, i64>> =
        (0..5u64).map(|k| inputs_of(&benchmark, 300 + k)).collect();
    let batched = session.run_batched(&input_sets, &options).unwrap();
    assert_eq!(batched.len(), 5);

    for (k, inputs) in input_sets.iter().enumerate() {
        let solo = session.run(inputs).unwrap();
        assert_eq!(batched[k].outputs, solo.outputs, "user {k} out of order");
    }

    // Three chunks formed, 5 requests served through them.
    let text = session.render_metrics();
    assert!(
        text.contains("chehab_batches_formed_total 3"),
        "batch counter missing or wrong:\n{text}"
    );
}
