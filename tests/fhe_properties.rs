//! Property-based tests of the FHE backend: homomorphism of every operation,
//! NTT correctness, and consistency between the IR interpreter and
//! homomorphic execution of compiled circuits.
//!
//! Written as seeded randomized case loops (the `proptest` crate is
//! unavailable in hermetic builds); every case prints its inputs on failure
//! so a reproduction is one seed away.

use chehab::compiler::Compiler;
use chehab::datagen::LlmLikeSynthesizer;
use chehab::fhe::{poly, BfvParameters, Decryptor, Encryptor, Evaluator, FheContext, KeyGenerator};
use chehab::ir::{evaluate, Env, Ty};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

const CASES: usize = 32;

/// `decrypt(op(encrypt(x), encrypt(y))) == op(x, y)` for every evaluator
/// operation.
#[test]
fn evaluator_operations_are_homomorphic() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF4E_00A);
    let ctx = FheContext::new(BfvParameters::insecure_test()).unwrap();
    let mut keygen = KeyGenerator::new(ctx.params(), 1);
    let mut enc = Encryptor::new(&ctx, &keygen.public_key());
    let dec = Decryptor::new(&ctx, &keygen.secret_key());
    let mut eval = Evaluator::new(&ctx);
    let relin = keygen.relin_keys();
    // Keys for every step the test may draw (the default key set only
    // covers powers of two).
    let galois = keygen.galois_keys(&[1, 2, 3]);
    let t = ctx.plain_modulus() as i64;

    for case in 0..CASES {
        let xs: Vec<i64> = (0..rng.gen_range(1..6usize))
            .map(|_| rng.gen_range(0..1000))
            .collect();
        let ys: Vec<i64> = (0..rng.gen_range(1..6usize))
            .map(|_| rng.gen_range(0..1000))
            .collect();
        let step = rng.gen_range(1..4i64);

        let a = enc.encrypt_values(&xs).unwrap();
        let b = enc.encrypt_values(&ys).unwrap();
        let len = xs.len().max(ys.len());
        let at = |v: &[i64], i: usize| v.get(i).copied().unwrap_or(0);

        let sum = dec.decrypt(&eval.add(&a, &b)).unwrap();
        let product = dec.decrypt(&eval.multiply(&a, &b, &relin)).unwrap();
        let difference = dec.decrypt(&eval.sub(&a, &b)).unwrap();
        for i in 0..len {
            let context = format!("case {case}: xs={xs:?} ys={ys:?} slot {i}");
            assert_eq!(
                sum.slots()[i] as i64,
                (at(&xs, i) + at(&ys, i)).rem_euclid(t),
                "{context}"
            );
            assert_eq!(
                product.slots()[i] as i64,
                (at(&xs, i) * at(&ys, i)).rem_euclid(t),
                "{context}"
            );
            assert_eq!(
                difference.slots()[i] as i64,
                (at(&xs, i) - at(&ys, i)).rem_euclid(t),
                "{context}"
            );
        }

        // Rotation towards slot zero behaves like a zero-filled shift over the
        // live prefix.
        let rotated = dec
            .decrypt(&eval.rotate(&a, step, &galois).unwrap())
            .unwrap();
        for i in 0..xs.len() {
            let expected = at(&xs, i + step as usize).rem_euclid(t);
            assert_eq!(
                rotated.slots()[i] as i64,
                expected,
                "case {case}: xs={xs:?} step={step} slot {i}"
            );
        }
    }
}

/// NTT-based negacyclic multiplication agrees with the schoolbook product.
#[test]
fn ntt_multiplication_matches_schoolbook() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xF4E_00B);
    let tables = poly::NttTables::new(16);
    for case in 0..CASES {
        let a: Vec<u64> = (0..16).map(|_| rng.gen_range(0..1_000_000)).collect();
        let b: Vec<u64> = (0..16).map(|_| rng.gen_range(0..1_000_000)).collect();
        let pa = poly::Poly::from_coeffs(a.clone());
        let pb = poly::Poly::from_coeffs(b.clone());
        assert_eq!(
            pa.mul_ntt(&pb, &tables),
            pa.mul_naive(&pb),
            "case {case}: a={a:?} b={b:?}"
        );
    }
}

/// Compiling and homomorphically executing synthesized programs matches
/// the IR interpreter.
#[test]
fn compiled_programs_match_the_interpreter() {
    let mut executed = 0usize;
    for seed in 0u64..400 {
        if executed >= CASES {
            break;
        }
        let mut synth = LlmLikeSynthesizer::with_seed(seed);
        let program = synth.generate();
        // The same preconditions the original proptest assumed away: small
        // programs whose noise budget survives greedy compilation.
        if program.node_count() > 60 || chehab::ir::multiplicative_depth(&program) > 2 {
            continue;
        }

        let compiled = Compiler::greedy().compile("prop", &program);
        let mut env = Env::new();
        let mut inputs = HashMap::new();
        for (i, v) in program.variables().into_iter().enumerate() {
            let value = (i as i64 % 9) + 1;
            env.bind(v.clone(), value);
            inputs.insert(v.to_string(), value);
        }
        let expected = evaluate(&program, &env).unwrap();
        let live = program.ty().map(Ty::slots).unwrap_or(1);
        let report = compiled
            .execute(&inputs, &BfvParameters::insecure_test())
            .unwrap();
        if !report.decryption_ok {
            continue;
        }
        executed += 1;
        let expected_slots: Vec<u64> = expected.slots().into_iter().take(live).collect();
        let got: Vec<u64> = report
            .outputs
            .iter()
            .copied()
            .take(expected_slots.len())
            .collect();
        assert_eq!(got, expected_slots, "seed {seed}");
    }
    assert!(
        executed >= CASES / 2,
        "too few synthesized programs survived the preconditions"
    );
}
