//! Allocation-regression test for the zero-allocation memory engine.
//!
//! A warm `FheSession` must serve steady-state requests with **zero fresh
//! buffer allocations**: every ciphertext slot vector, payload stripe,
//! *plaintext-encode slot vector*, and *plaintext payload splat* is drawn
//! from the session's `ArenaPool` and returned when its value dies
//! (last-use analysis frees registers mid-run — plaintext registers
//! included — and the output is recycled after decryption). Key-generation
//! scratch buffers round-trip through the `KeyGenerator`'s own pool, so a
//! session issuing dozens of Galois keys samples them all from a handful
//! of buffers. The process-global `PolyArena` counters record every pool
//! miss, so replaying a request against a warm session and asserting the
//! miss count stays zero pins the property across the whole benchsuite.
//!
//! This file deliberately holds a **single test**: the counters are shared
//! by every thread of the process, so the assertion needs its own test
//! process (Cargo gives each integration-test file one).

use chehab::benchsuite;
use chehab::compiler::Compiler;
use chehab::fhe::{BfvParameters, PolyArena};
use std::collections::HashMap;

#[test]
fn warm_kernel_sweep_performs_zero_fresh_buffer_allocations() {
    // Payload simulation on, small ring: the allocation behavior is
    // identical at every degree, only the buffer sizes change.
    let params = BfvParameters {
        payload_degree: 64,
        simulate_compute: true,
        ..BfvParameters::insecure_test()
    };
    for benchmark in benchsuite::full_suite() {
        let compiled = Compiler::without_optimizer().compile(benchmark.id(), benchmark.program());
        let session = compiled
            .session(&params)
            .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
        let env = benchmark.input_env(29);
        let inputs: HashMap<String, i64> = benchmark
            .program()
            .variables()
            .into_iter()
            .map(|v| (v.to_string(), env.get(v.as_str()).unwrap_or(0) as i64))
            .collect();

        // Two passes fill the pool: the first allocates every buffer the
        // request shape needs, the second proves the pool round-trips.
        let cold = session
            .run(&inputs)
            .unwrap_or_else(|e| panic!("{}: cold run failed: {e}", benchmark.id()));
        let warm_up = session.run(&inputs).unwrap();
        assert_eq!(warm_up.outputs, cold.outputs, "{}", benchmark.id());

        PolyArena::reset_counters();
        let warm = session.run(&inputs).unwrap();
        let fresh = PolyArena::fresh_allocations();
        let reuses = PolyArena::reuses();
        assert_eq!(
            fresh,
            0,
            "{}: a warm request must serve every slot vector and payload \
             stripe from the arena ({reuses} reuses recorded)",
            benchmark.id()
        );
        assert!(
            reuses > 0,
            "{}: a served request must actually draw buffers from the arena",
            benchmark.id()
        );
        assert_eq!(
            warm.outputs,
            cold.outputs,
            "{}: buffer reuse must not change results",
            benchmark.id()
        );
    }

    // Direct round-trip pin for the plaintext-encode path: an encode drawn
    // from a warm arena must be a pool hit, and recycling must return the
    // slot vector so the next encode of the same width hits again.
    let ctx = chehab::fhe::FheContext::new(params).expect("context");
    let mut arena = PolyArena::new();
    let first = ctx.encode_in(&[1, 2, 3], &mut arena).expect("encode");
    first.recycle_into(&mut arena);
    PolyArena::reset_counters();
    let second = ctx.encode_in(&[4, 5, 6], &mut arena).expect("encode");
    assert_eq!(
        PolyArena::fresh_allocations(),
        0,
        "a recycled plaintext's slot vector must serve the next encode"
    );
    assert_eq!(PolyArena::reuses(), 1);
    assert_eq!(ctx.decode(&second, 3), vec![4, 5, 6]);
}
