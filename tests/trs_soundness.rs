//! Property-based soundness tests for the term rewriting system: every rule
//! in the catalog, applied at any location of randomly generated programs,
//! must preserve the program's live output slots under random inputs.
//!
//! Written as seeded randomized case loops (the `proptest` crate is
//! unavailable in hermetic builds); every assertion names the seed that
//! produced the failing program.

use chehab::datagen::{LlmLikeSynthesizer, RandomGenerator};
use chehab::ir::{equivalent_on_live_slots, Env, Expr, Ty};
use chehab::trs::RewriteEngine;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

fn random_program(seed: u64) -> Expr {
    if seed.is_multiple_of(2) {
        LlmLikeSynthesizer::with_seed(seed).generate()
    } else {
        RandomGenerator::with_seed(seed)
            .generate_with((seed % 6 + 2) as usize, (seed % 5 + 1) as usize)
    }
}

fn live_slots(expr: &Expr) -> usize {
    expr.ty().map(Ty::slots).unwrap_or(1)
}

/// Applying any applicable rule anywhere preserves semantics on the live
/// output slots.
#[test]
fn every_rule_application_is_sound() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7125_0001);
    for _ in 0..48 {
        let seed = rng.gen_range(0u64..5_000);
        let value_seed = rng.gen_range(1i64..1_000);
        let program = random_program(seed);
        let engine = RewriteEngine::new();
        let slots = live_slots(&program);
        let mut env = Env::new();
        let mut counter = value_seed;
        env.bind_all(&program, |_| {
            counter = counter
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            (counter.rem_euclid(97)) + 1
        });

        for rule_index in 0..engine.rule_count() {
            for (occurrence, _) in engine.matches(&program, rule_index).iter().enumerate() {
                if let Some(rewritten) =
                    engine.apply_at_occurrence(&program, rule_index, occurrence)
                {
                    assert!(
                        equivalent_on_live_slots(&program, &rewritten, &env, slots).unwrap(),
                        "seed {}: rule `{}` at occurrence {} changed semantics of {}",
                        seed,
                        engine.rules()[rule_index].name(),
                        occurrence,
                        program,
                    );
                }
            }
        }
    }
}

/// Sequences of random rule applications (like an RL episode) stay sound.
#[test]
fn random_rewrite_sequences_are_sound() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7125_0002);
    for _ in 0..48 {
        let seed = rng.gen_range(0u64..2_000);
        let steps = rng.gen_range(1usize..12);
        let program = random_program(seed);
        let engine = RewriteEngine::new();
        let slots = live_slots(&program);
        let mut env = Env::new();
        env.bind_all(&program, |s| {
            (s.as_str().bytes().map(i64::from).sum::<i64>() % 43) + 2
        });

        let mut current = program.clone();
        let mut rng_state = seed
            .wrapping_mul(0x9E3779B97F4A7C15)
            .wrapping_add(steps as u64);
        for _ in 0..steps {
            let matches = engine.all_matches(&current);
            if matches.is_empty() {
                break;
            }
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pick = &matches[(rng_state >> 33) as usize % matches.len()];
            if let Some(next) = engine.apply_at_path(&current, pick.rule_index, &pick.path) {
                current = next;
            }
        }
        assert!(
            equivalent_on_live_slots(&program, &current, &env, slots).unwrap(),
            "seed {seed}, {steps} steps: rewrite sequence changed semantics of {program}"
        );
    }
}

/// The greedy optimizer never increases the cost model and stays sound.
#[test]
fn greedy_optimization_is_sound_and_monotone() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x7125_0003);
    for _ in 0..48 {
        let seed = rng.gen_range(0u64..1_000);
        let program = random_program(seed);
        let engine = RewriteEngine::new();
        let model = chehab::ir::CostModel::default();
        let slots = live_slots(&program);
        let (optimized, _) = engine.greedy_optimize(&program, &model, 25);
        assert!(
            model.cost(&optimized) <= model.cost(&program) + 1e-9,
            "seed {seed}: greedy optimization increased cost"
        );
        let mut env = Env::new();
        env.bind_all(&program, |s| (s.as_str().len() as i64 % 11) + 1);
        assert!(
            equivalent_on_live_slots(&program, &optimized, &env, slots).unwrap(),
            "seed {seed}: greedy optimization changed semantics"
        );
    }
}
