//! Property-based soundness tests for the term rewriting system: every rule
//! in the catalog, applied at any location of randomly generated programs,
//! must preserve the program's live output slots under random inputs.

use chehab::datagen::{LlmLikeSynthesizer, RandomGenerator};
use chehab::ir::{equivalent_on_live_slots, Env, Expr, Ty};
use chehab::trs::RewriteEngine;
use proptest::prelude::*;

fn random_program(seed: u64) -> Expr {
    if seed % 2 == 0 {
        LlmLikeSynthesizer::with_seed(seed).generate()
    } else {
        RandomGenerator::with_seed(seed).generate_with((seed % 6 + 2) as usize, (seed % 5 + 1) as usize)
    }
}

fn live_slots(expr: &Expr) -> usize {
    expr.ty().map(Ty::slots).unwrap_or(1)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Applying any applicable rule anywhere preserves semantics on the live
    /// output slots.
    #[test]
    fn every_rule_application_is_sound(seed in 0u64..5_000, value_seed in 1i64..1_000) {
        let program = random_program(seed);
        let engine = RewriteEngine::new();
        let slots = live_slots(&program);
        let mut env = Env::new();
        let mut counter = value_seed;
        env.bind_all(&program, |_| {
            counter = counter.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (counter.rem_euclid(97)) + 1
        });

        for rule_index in 0..engine.rule_count() {
            for (occurrence, _) in engine.matches(&program, rule_index).iter().enumerate() {
                if let Some(rewritten) = engine.apply_at_occurrence(&program, rule_index, occurrence) {
                    prop_assert!(
                        equivalent_on_live_slots(&program, &rewritten, &env, slots).unwrap(),
                        "rule `{}` at occurrence {} changed semantics of {}",
                        engine.rules()[rule_index].name(),
                        occurrence,
                        program,
                    );
                }
            }
        }
    }

    /// Sequences of random rule applications (like an RL episode) stay sound.
    #[test]
    fn random_rewrite_sequences_are_sound(seed in 0u64..2_000, steps in 1usize..12) {
        let program = random_program(seed);
        let engine = RewriteEngine::new();
        let slots = live_slots(&program);
        let mut env = Env::new();
        env.bind_all(&program, |s| (s.as_str().bytes().map(i64::from).sum::<i64>() % 43) + 2);

        let mut current = program.clone();
        let mut rng_state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(steps as u64);
        for _ in 0..steps {
            let matches = engine.all_matches(&current);
            if matches.is_empty() {
                break;
            }
            rng_state = rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let pick = &matches[(rng_state >> 33) as usize % matches.len()];
            if let Some(next) = engine.apply_at_path(&current, pick.rule_index, &pick.path) {
                current = next;
            }
        }
        prop_assert!(
            equivalent_on_live_slots(&program, &current, &env, slots).unwrap(),
            "rewrite sequence changed semantics of {program}"
        );
    }

    /// The greedy optimizer never increases the cost model and stays sound.
    #[test]
    fn greedy_optimization_is_sound_and_monotone(seed in 0u64..1_000) {
        let program = random_program(seed);
        let engine = RewriteEngine::new();
        let model = chehab::ir::CostModel::default();
        let slots = live_slots(&program);
        let (optimized, _) = engine.greedy_optimize(&program, &model, 25);
        prop_assert!(model.cost(&optimized) <= model.cost(&program) + 1e-9);
        let mut env = Env::new();
        env.bind_all(&program, |s| (s.as_str().len() as i64 % 11) + 1);
        prop_assert!(equivalent_on_live_slots(&program, &optimized, &env, slots).unwrap());
    }
}
