//! Hot-path equivalence tests: the lazy NTT-domain evaluator must be
//! functionally indistinguishable from the seed coefficient-domain engine,
//! and it must actually be lazy.
//!
//! Three angles:
//!
//! 1. **Kernel equivalence** — every benchsuite kernel produces identical
//!    outputs, operation counts and noise accounting whether payload
//!    simulation (the part the hot-path rewrite changed) is on or off, so
//!    the payload representation provably cannot leak into results.
//! 2. **Randomized ring equivalence** — Eval-domain products and Galois
//!    permutations agree with the coefficient-domain reference on random
//!    polynomials (seeded loops, inputs printed on failure).
//! 3. **Transform minimality** — a multiply→rotate→multiply chain performs
//!    *zero* forward/inverse transforms (operands are born in NTT form, key
//!    payloads are pre-transformed at keygen), and a ct-pt multiply
//!    transforms its plaintext splat exactly once, read through the
//!    telemetry-facing [`chehab::fhe::TransformStats`] snapshot of the
//!    context's `NttTables`.

use chehab::benchsuite::{self, Benchmark};
use chehab::compiler::Compiler;
use chehab::fhe::poly::{Domain, NttTables, Poly, MODULUS};
use chehab::fhe::{
    BfvParameters, Decryptor, Encryptor, Evaluator, FheContext, KeyGenerator, TransformStats,
};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

fn inputs_of(benchmark: &Benchmark, seed: u64) -> HashMap<String, i64> {
    let env = benchmark.input_env(seed);
    benchmark
        .program()
        .variables()
        .into_iter()
        .map(|v| {
            let value = env.get(v.as_str()).unwrap_or(0) as i64;
            (v.to_string(), value)
        })
        .collect()
}

/// Test parameters with payload simulation enabled (small payload ring so
/// all 46 kernels stay fast).
fn simulated_params() -> BfvParameters {
    BfvParameters {
        payload_degree: 64,
        simulate_compute: true,
        ..BfvParameters::insecure_test()
    }
}

/// The payload representation cannot leak into results: every kernel's
/// outputs, noise accounting and operation counts are identical with
/// payload simulation on (the lazy Eval-domain engine doing real ring
/// arithmetic) and off (no payload work at all). Combined with the seed's
/// own invariant that results never depended on payload values, this pins
/// the Eval-domain engine to the seed coefficient-domain path bit for bit.
#[test]
fn every_kernel_is_bit_identical_with_and_without_payload_simulation() {
    let plain = BfvParameters::insecure_test();
    let simulated = simulated_params();
    for benchmark in benchsuite::full_suite() {
        let compiled = Compiler::without_optimizer().compile(benchmark.id(), benchmark.program());
        let inputs = inputs_of(&benchmark, 53);
        let reference = compiled
            .execute(&inputs, &plain)
            .unwrap_or_else(|e| panic!("{}: plain execution failed: {e}", benchmark.id()));
        let lazy = compiled
            .execute(&inputs, &simulated)
            .unwrap_or_else(|e| panic!("{}: simulated execution failed: {e}", benchmark.id()));
        assert_eq!(lazy.outputs, reference.outputs, "{}", benchmark.id());
        assert_eq!(
            lazy.operation_stats,
            reference.operation_stats,
            "{}",
            benchmark.id()
        );
        assert_eq!(
            lazy.noise_budget_consumed,
            reference.noise_budget_consumed,
            "{}",
            benchmark.id()
        );
        assert_eq!(
            lazy.decryption_ok,
            reference.decryption_ok,
            "{}",
            benchmark.id()
        );
    }
}

/// Eval-domain pointwise products agree with the coefficient-domain NTT
/// product (and the schoolbook reference) on random polynomials.
#[test]
fn eval_domain_products_match_coefficient_domain_on_random_polys() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x40EA7);
    for degree in [16usize, 64, 256] {
        let tables = NttTables::new(degree);
        for case in 0..16 {
            let a: Vec<u64> = (0..degree).map(|_| rng.gen::<u64>() % MODULUS).collect();
            let b: Vec<u64> = (0..degree).map(|_| rng.gen::<u64>() % MODULUS).collect();
            let pa = Poly::from_coeffs(a.clone());
            let pb = Poly::from_coeffs(b.clone());
            let reference = pa.mul_naive(&pb);
            assert_eq!(
                pa.mul_ntt(&pb, &tables),
                reference,
                "degree {degree} case {case}: a={a:?} b={b:?}"
            );
            let lazy = pa.to_eval(&tables).mul_eval(&pb.to_eval(&tables));
            assert_eq!(lazy.domain(), Domain::Eval);
            assert_eq!(
                lazy.to_coeff(&tables),
                reference,
                "degree {degree} case {case}: a={a:?} b={b:?}"
            );
        }
    }
}

/// The Eval-domain Galois permutation agrees with the coefficient-domain
/// automorphism for every odd Galois element of a small ring.
#[test]
fn eval_domain_galois_matches_coefficient_domain_for_all_odd_elements() {
    let mut rng = ChaCha8Rng::seed_from_u64(0xB0B5);
    let degree = 32usize;
    let tables = NttTables::new(degree);
    let coeffs: Vec<u64> = (0..degree).map(|_| rng.gen::<u64>() % MODULUS).collect();
    let p = Poly::from_coeffs(coeffs.clone());
    let p_eval = p.to_eval(&tables);
    for galois_elt in (1..2 * degree).step_by(2) {
        let reference = p.apply_galois(galois_elt);
        let lazy = p_eval.apply_galois_eval(galois_elt).to_coeff(&tables);
        assert_eq!(lazy, reference, "galois element {galois_elt}: p={coeffs:?}");
    }
}

/// A multiply→rotate→multiply chain performs **zero** transforms: fresh
/// ciphertexts are born in NTT form, relinearization and Galois key
/// payloads were pre-transformed at keygen, and nothing downstream of the
/// chain observes coefficient form. A ct-pt multiply costs exactly one
/// forward transform (its plaintext splat), amortized across both payload
/// components and across repeated uses of the same plaintext.
#[test]
fn multiply_rotate_multiply_chain_is_transform_free() {
    let ctx = FheContext::new(simulated_params()).unwrap();
    let mut keygen = KeyGenerator::new(ctx.params(), 7);
    let mut encryptor = Encryptor::new(&ctx, &keygen.public_key());
    let decryptor = Decryptor::new(&ctx, &keygen.secret_key());
    let relin = keygen.relin_keys();
    let galois = keygen.galois_keys(&[1]);
    let mut evaluator = Evaluator::new(&ctx);

    let a = encryptor.encrypt_values(&[1, 2, 3, 4]).unwrap();
    let b = encryptor.encrypt_values(&[5, 6, 7, 8]).unwrap();
    // Everything above (context build, keygen, encryption) is session-setup
    // work; the chain below is the steady-state request path.
    ctx.reset_transform_counts();

    let product = evaluator.multiply(&a, &b, &relin);
    let rotated = evaluator.rotate(&product, 1, &galois).unwrap();
    let chained = evaluator.multiply(&rotated, &b, &relin);
    assert_eq!(
        ctx.transform_stats(),
        TransformStats::default(),
        "the multiply-rotate-multiply chain must not transform at all"
    );

    // Decryption stays transform-free too (slots only).
    let pt = decryptor.decrypt(&chained).unwrap();
    assert_eq!(ctx.transform_stats(), TransformStats::default());
    // Functional sanity of the chain: ((a*b) << 1) * b =
    // [12*5, 21*6, 32*7] on the live slots.
    assert_eq!(ctx.decode(&pt, 3), vec![60, 126, 224]);

    // One plaintext splat: exactly one forward transform on first use,
    // zero on reuse (cached on the plaintext across both components).
    let one_splat = TransformStats {
        forward: 1,
        inverse: 0,
    };
    let plain = ctx.encode(&[2, 2, 2, 2]).unwrap();
    let _ = evaluator.multiply_plain(&chained, &plain);
    assert_eq!(ctx.transform_stats(), one_splat);
    let _ = evaluator.multiply_plain(&chained, &plain);
    assert_eq!(ctx.transform_stats(), one_splat);
}

/// A plaintext first used under one context stays correct when reused
/// under a context with a different payload degree: the Eval-splat cache
/// must never serve a wrong-degree hit (it rebuilds an uncached splat at
/// the operation's own degree instead).
#[test]
fn plaintext_splat_cache_survives_cross_context_reuse() {
    let params_small = BfvParameters {
        payload_degree: 16,
        simulate_compute: true,
        ..BfvParameters::insecure_test()
    };
    let params_large = BfvParameters {
        payload_degree: 64,
        simulate_compute: true,
        ..BfvParameters::insecure_test()
    };
    let ctx_small = FheContext::new(params_small).unwrap();
    let ctx_large = FheContext::new(params_large).unwrap();
    let keygen_small = KeyGenerator::new(ctx_small.params(), 3);
    let keygen_large = KeyGenerator::new(ctx_large.params(), 3);
    let mut enc_small = Encryptor::new(&ctx_small, &keygen_small.public_key());
    let mut enc_large = Encryptor::new(&ctx_large, &keygen_large.public_key());
    let mut eval_small = Evaluator::new(&ctx_small);
    let mut eval_large = Evaluator::new(&ctx_large);

    let ct_small = enc_small.encrypt_values(&[1, 2]).unwrap();
    let ct_large = enc_large.encrypt_values(&[1, 2]).unwrap();
    // One shared plaintext, first multiplied under the small context (which
    // fills its splat cache at degree 16), then under the large one.
    let shared = ctx_small.encode(&[3, 3]).unwrap();
    let small_product = eval_small.multiply_plain(&ct_small, &shared);
    let crossed = eval_large.multiply_plain(&ct_large, &shared);
    // The reference never saw the small context at all.
    let fresh = ctx_large.encode(&[3, 3]).unwrap();
    let reference = eval_large.multiply_plain(&ct_large, &fresh);
    assert_eq!(crossed.payload(), reference.payload());
    assert_eq!(small_product.payload().degree(), 16);
    assert_eq!(crossed.payload().degree(), 64);
}

/// Intra-op chunking is a pure wall-clock knob: the payload polynomials,
/// slots and noise of every operation are bit-identical at any worker
/// budget, and the evaluator records how many operations actually split.
#[test]
fn intra_op_chunking_is_bit_identical_and_counted() {
    let params = BfvParameters {
        payload_degree: 4096,
        simulate_compute: true,
        ..BfvParameters::insecure_test()
    };
    let ctx = FheContext::new(params).unwrap();
    let mut keygen = KeyGenerator::new(ctx.params(), 9);
    let mut encryptor = Encryptor::new(&ctx, &keygen.public_key());
    let relin = keygen.relin_keys();
    let galois = keygen.galois_keys(&[1]);
    let a = encryptor.encrypt_values(&[3, 1, 4]).unwrap();
    let b = encryptor.encrypt_values(&[1, 5, 9]).unwrap();

    let mut sequential = Evaluator::new(&ctx);
    let seq_mul = sequential.multiply(&a, &b, &relin);
    let seq_rot = sequential.rotate(&seq_mul, 1, &galois).unwrap();
    assert_eq!(sequential.intra_op_splits(), 0);

    for threads in [2, 4] {
        let mut chunked = Evaluator::new(&ctx);
        chunked.set_intra_op_threads(threads);
        assert_eq!(chunked.intra_op_threads(), threads);
        let par_mul = chunked.multiply(&a, &b, &relin);
        let par_rot = chunked.rotate(&par_mul, 1, &galois).unwrap();
        assert_eq!(par_mul.payload(), seq_mul.payload(), "{threads} threads");
        assert_eq!(par_rot.payload(), seq_rot.payload(), "{threads} threads");
        assert_eq!(
            par_mul.noise_consumed_bits(),
            seq_mul.noise_consumed_bits(),
            "{threads} threads"
        );
        assert_eq!(
            chunked.intra_op_splits(),
            2,
            "both heavy ops must report an intra-op split at {threads} threads"
        );
    }
}
