//! SIMD-vs-scalar equivalence tests for the hardware-floor arithmetic
//! engine: the AVX2 stripe kernels and the lazy-reduction NTT must be
//! **bit-identical** to the portable scalar/eager oracles, at every thread
//! count, under both schedulers.
//!
//! Four angles:
//!
//! 1. **Fused-kernel equivalence** — every `CtPayload` kernel (the fused
//!    dual-component multiply/add/sub/neg family plus the Galois gather)
//!    produces identical stripes under `SimdPolicy::Scalar` and the detected
//!    vector policy, on random inputs, in both domains, at tail-exercising
//!    lengths, across intra-op thread counts.
//! 2. **Transform equivalence** — forward and inverse NTTs (plain and
//!    `_threaded`) agree between policies on random polynomials at several
//!    degrees.
//! 3. **Lazy-reduction invariant** — the lazy engine keeps values unreduced
//!    across butterfly layers, so the observable contract is that the single
//!    end normalization yields fully canonical outputs that match a
//!    from-first-principles schoolbook negacyclic reference exactly.
//! 4. **End-to-end sweep** — all 46 benchsuite kernels produce identical
//!    outputs, operation counts and noise accounting with the process-wide
//!    policy forced to scalar and to the vector back end
//!    ([`SimdPolicy::set_global`], the test-side spelling of `CHEHAB_SIMD`),
//!    at 1 and 4 threads under both schedulers. Only this test touches the
//!    global policy; the others pass policies explicitly.
//!
//! On hardware without AVX2 the detected policy degrades to scalar and the
//! comparisons hold trivially — the sweep still exercises the dispatch
//! plumbing.

use chehab::benchsuite::{self, Benchmark};
use chehab::compiler::{Compiler, ExecOptions, SchedulerKind};
use chehab::fhe::poly::{Domain, NttTables, Poly, MODULUS};
use chehab::fhe::{BfvParameters, CtPayload, ModulusChain, SimdPolicy};
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::collections::HashMap;

fn random_residues(rng: &mut ChaCha8Rng, n: usize) -> Vec<u64> {
    (0..n).map(|_| rng.gen::<u64>() % MODULUS).collect()
}

/// Runs one payload kernel under both policies and asserts bit-identity.
fn assert_kernel_identical(
    label: &str,
    n: usize,
    domain: Domain,
    threads: usize,
    detected: SimdPolicy,
    kernel: impl Fn(SimdPolicy) -> Vec<u64>,
) {
    let scalar = kernel(SimdPolicy::Scalar);
    let vector = kernel(detected);
    assert_eq!(
        scalar,
        vector,
        "{label}: scalar and {} stripes diverged (n={n}, domain={domain:?}, threads={threads})",
        detected.name()
    );
}

/// Every fused dual-component kernel is bit-identical between the scalar
/// oracle and the detected vector policy — random inputs, both domains,
/// lengths chosen to exercise full vectors, scalar tails, and sub-vector
/// slices, at 1 and 4 intra-op threads.
#[test]
fn fused_payload_kernels_are_bit_identical_under_every_policy() {
    let detected = SimdPolicy::detected();
    let mut rng = ChaCha8Rng::seed_from_u64(0x51DE0);
    // Degrees must be powers of two (stripe invariant); sub-vector slices
    // and scalar tails are exercised through the thread counts below — a
    // 3-way chunking of these lengths lands mid-vector.
    for n in [4usize, 8, 64, 1024] {
        let chain = ModulusChain::new(1, n, false);
        for domain in [Domain::Coeff, Domain::Eval] {
            let a = CtPayload::from_stripe(random_residues(&mut rng, 2 * n), domain);
            let b = CtPayload::from_stripe(random_residues(&mut rng, 2 * n), domain);
            let mult = random_residues(&mut rng, n);
            let s0 = random_residues(&mut rng, n);
            let s1 = random_residues(&mut rng, n);
            let k = rng.gen::<u64>() % MODULUS;
            // An arbitrary index permutation is enough for gather
            // equivalence (the real Galois permutations are a subset).
            let perm: Vec<u32> = (0..n).map(|i| ((i * 7 + 3) % n) as u32).collect();
            let key = random_residues(&mut rng, n);

            for threads in [1usize, 3, 4] {
                assert_kernel_identical("mul_eval2", n, domain, threads, detected, |policy| {
                    let mut out = vec![0u64; 2 * n];
                    a.mul_eval2(&mult, &mut out, threads, policy, &chain);
                    out
                });
                assert_kernel_identical(
                    "mul_scalar_eval2",
                    n,
                    domain,
                    threads,
                    detected,
                    |policy| {
                        let mut out = vec![0u64; 2 * n];
                        a.mul_scalar_eval2(&mult, k, &mut out, threads, policy, &chain);
                        out
                    },
                );
                assert_kernel_identical("mul_add_eval2", n, domain, threads, detected, |policy| {
                    let mut out = vec![0u64; 2 * n];
                    a.mul_add_eval2(&b, &s0, &s1, &mut out, threads, policy, &chain);
                    out
                });
                if domain == Domain::Eval {
                    assert_kernel_identical(
                        "galois_eval2",
                        n,
                        domain,
                        threads,
                        detected,
                        |policy| {
                            let mut out = vec![0u64; 2 * n];
                            a.galois_eval2(&perm, &key, &mut out, threads, policy, &chain);
                            out
                        },
                    );
                }
            }

            // Whole-stripe kernels take no thread count.
            assert_kernel_identical("add2", n, domain, 1, detected, |policy| {
                let mut out = vec![0u64; 2 * n];
                a.add2(&b, &mut out, policy, &chain);
                out
            });
            assert_kernel_identical("sub2", n, domain, 1, detected, |policy| {
                let mut out = vec![0u64; 2 * n];
                a.sub2(&b, &mut out, policy, &chain);
                out
            });
            assert_kernel_identical("neg2", n, domain, 1, detected, |policy| {
                let mut out = vec![0u64; 2 * n];
                a.neg2(&mut out, policy, &chain);
                out
            });
            assert_kernel_identical("add_assign2", n, domain, 1, detected, |policy| {
                let mut acc = a.clone();
                acc.add_assign2(&b, policy, &chain);
                acc.into_stripe()
            });
            assert_kernel_identical("sub_assign2", n, domain, 1, detected, |policy| {
                let mut acc = a.clone();
                acc.sub_assign2(&b, policy, &chain);
                acc.into_stripe()
            });
            assert_kernel_identical("neg_assign2", n, domain, 1, detected, |policy| {
                let mut acc = a.clone();
                acc.neg_assign2(policy, &chain);
                acc.into_stripe()
            });
        }
    }
}

/// Forward and inverse transforms (plain and threaded) are bit-identical
/// between a scalar-policy and a detected-policy table set.
#[test]
fn ntt_transforms_are_bit_identical_under_every_policy() {
    let detected = SimdPolicy::detected();
    let mut rng = ChaCha8Rng::seed_from_u64(0x77A_B1E);
    for degree in [16usize, 64, 512, 2048] {
        let scalar = NttTables::with_policy(degree, SimdPolicy::Scalar);
        let vector = NttTables::with_policy(degree, detected);
        for round in 0..4 {
            let input = random_residues(&mut rng, degree);

            let mut a = input.clone();
            let mut b = input.clone();
            scalar.forward(&mut a);
            vector.forward(&mut b);
            assert_eq!(a, b, "forward diverged (degree={degree}, round={round})");

            let mut at = input.clone();
            let mut bt = input.clone();
            scalar.forward_threaded(&mut at, 4);
            vector.forward_threaded(&mut bt, 4);
            assert_eq!(at, a, "forward_threaded diverged from forward (scalar)");
            assert_eq!(bt, a, "forward_threaded diverged from forward (vector)");

            scalar.inverse(&mut a);
            vector.inverse(&mut b);
            assert_eq!(a, b, "inverse diverged (degree={degree}, round={round})");
            assert_eq!(a, input, "round-trip is not the identity");

            scalar.inverse_threaded(&mut at, 4);
            vector.inverse_threaded(&mut bt, 4);
            assert_eq!(at, input, "inverse_threaded round-trip (scalar)");
            assert_eq!(bt, input, "inverse_threaded round-trip (vector)");
        }
    }
}

/// The lazy-reduction invariant: butterflies keep values unreduced across
/// layers, and the single normalization at the end makes every output
/// canonical (`< p`) and *exactly* equal to the eager reference — here the
/// from-first-principles schoolbook negacyclic product, computed without any
/// NTT at all.
#[test]
fn lazy_ntt_normalization_matches_schoolbook_reference_exactly() {
    let mut rng = ChaCha8Rng::seed_from_u64(0x1A27);
    for degree in [16usize, 64, 128] {
        for policy in [SimdPolicy::Scalar, SimdPolicy::detected()] {
            let tables = NttTables::with_policy(degree, policy);
            let a = Poly::from_reduced(random_residues(&mut rng, degree), Domain::Coeff);
            let b = Poly::from_reduced(random_residues(&mut rng, degree), Domain::Coeff);

            // Forward outputs are fully canonical: the lazy residues never
            // escape the transform.
            let mut fa = a.coeffs().to_vec();
            tables.forward(&mut fa);
            assert!(
                fa.iter().all(|&c| c < MODULUS),
                "lazy forward NTT leaked a non-canonical value ({policy:?}, degree={degree})"
            );

            // The full pipeline (forward, pointwise, inverse — all lazy
            // inside) agrees with the O(n^2) schoolbook product exactly.
            let via_ntt = a.mul_ntt(&b, &tables);
            let reference = a.mul_naive(&b);
            assert_eq!(
                via_ntt.coeffs(),
                reference.coeffs(),
                "lazy NTT product diverged from schoolbook ({policy:?}, degree={degree})"
            );
            assert!(via_ntt.coeffs().iter().all(|&c| c < MODULUS));
        }
    }
}

fn inputs_of(benchmark: &Benchmark, seed: u64) -> HashMap<String, i64> {
    let env = benchmark.input_env(seed);
    benchmark
        .program()
        .variables()
        .into_iter()
        .map(|v| {
            let value = env.get(v.as_str()).unwrap_or(0) as i64;
            (v.to_string(), value)
        })
        .collect()
}

/// All 46 benchsuite kernels, end to end, with the process-wide policy
/// forced to scalar and then to the vector back end: outputs, operation
/// counts, noise accounting and decryption outcomes are identical, per
/// policy across 1/4 threads and both schedulers, and across the two
/// policies.
#[test]
fn every_kernel_is_bit_identical_under_forced_scalar_and_vectorized_policies() {
    let params = BfvParameters {
        payload_degree: 64,
        simulate_compute: true,
        ..BfvParameters::insecure_test()
    };
    for benchmark in benchsuite::full_suite() {
        let compiled = Compiler::without_optimizer().compile(benchmark.id(), benchmark.program());
        let inputs = inputs_of(&benchmark, 29);
        let mut reference = None;
        for policy in [SimdPolicy::Scalar, SimdPolicy::Avx2] {
            SimdPolicy::set_global(policy);
            let session = compiled
                .session(&params)
                .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
            let solo = session
                .run(&inputs)
                .unwrap_or_else(|e| panic!("{}: run failed under {policy:?}: {e}", benchmark.id()));
            for (threads, scheduler) in [
                (1usize, SchedulerKind::Dataflow),
                (4, SchedulerKind::Dataflow),
                (4, SchedulerKind::Leveled),
            ] {
                let options = ExecOptions::sequential()
                    .with_threads_per_request(threads)
                    .with_scheduler(scheduler);
                let parallel = session.run_parallel(&inputs, &options).unwrap_or_else(|e| {
                    panic!(
                        "{}: {threads}-thread {scheduler:?} run failed under {policy:?}: {e}",
                        benchmark.id()
                    )
                });
                assert_eq!(
                    parallel.outputs,
                    solo.outputs,
                    "{}: outputs diverged at {threads} threads under {scheduler:?}/{policy:?}",
                    benchmark.id()
                );
                assert_eq!(
                    parallel.operation_stats,
                    solo.operation_stats,
                    "{}: operation counts diverged at {threads} threads under {scheduler:?}/{policy:?}",
                    benchmark.id()
                );
            }
            match &reference {
                None => reference = Some(solo),
                Some(oracle) => {
                    assert_eq!(
                        solo.outputs,
                        oracle.outputs,
                        "{}: outputs depend on the SIMD policy",
                        benchmark.id()
                    );
                    assert_eq!(
                        solo.operation_stats,
                        oracle.operation_stats,
                        "{}: operation counts depend on the SIMD policy",
                        benchmark.id()
                    );
                    assert_eq!(
                        solo.noise_budget_consumed,
                        oracle.noise_budget_consumed,
                        "{}: noise accounting depends on the SIMD policy",
                        benchmark.id()
                    );
                    assert_eq!(
                        solo.decryption_ok,
                        oracle.decryption_ok,
                        "{}: decryption outcome depends on the SIMD policy",
                        benchmark.id()
                    );
                }
            }
        }
        // Leave the process-wide policy as detection would have set it.
        SimdPolicy::set_global(SimdPolicy::detected());
    }
}
