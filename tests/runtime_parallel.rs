//! Equivalence and scheduling tests for the parallel execution runtime:
//! session-based parallel execution must produce bit-identical outputs to
//! the sequential path on every benchsuite kernel, batches must match
//! individual runs, the historical `execute*` shims must match the session
//! API they wrap, and every lowered schedule must respect the wavefront
//! invariant (operands in strictly earlier levels).

use chehab::benchsuite::{self, Benchmark};
use chehab::compiler::{BatchOptions, CompiledProgram, Compiler, ExecOptions, FheSession};
use chehab::fhe::BfvParameters;
use chehab::runtime::Instr;
use std::collections::HashMap;

fn test_params() -> BfvParameters {
    BfvParameters::insecure_test()
}

fn inputs_of(benchmark: &Benchmark, seed: u64) -> HashMap<String, i64> {
    let env = benchmark.input_env(seed);
    benchmark
        .program()
        .variables()
        .into_iter()
        .map(|v| {
            let value = env.get(v.as_str()).unwrap_or(0) as i64;
            (v.to_string(), value)
        })
        .collect()
}

/// Compiles with the unoptimizing pipeline: the raw scalar kernels have the
/// widest wavefronts (every scalar op is independent), which is exactly what
/// stresses the parallel executor hardest.
fn compile_initial(benchmark: &Benchmark) -> CompiledProgram {
    Compiler::without_optimizer().compile(benchmark.id(), benchmark.program())
}

fn session_of(benchmark: &Benchmark) -> FheSession {
    compile_initial(benchmark)
        .session(&test_params())
        .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()))
}

/// `run_parallel` is output-identical to sequential `run` on every
/// benchsuite kernel (Porcupine, Coyote, trees) across 1/2/4 threads — all
/// through one shared session per kernel (keys + schedule built once).
#[test]
fn parallel_execution_matches_sequential_on_every_kernel() {
    for benchmark in benchsuite::full_suite() {
        let session = session_of(&benchmark);
        let inputs = inputs_of(&benchmark, 17);
        let sequential = session
            .run(&inputs)
            .unwrap_or_else(|e| panic!("{}: sequential execution failed: {e}", benchmark.id()));
        for threads in [1usize, 2, 4] {
            let options = ExecOptions::sequential().with_threads_per_request(threads);
            let parallel = session.run_parallel(&inputs, &options).unwrap_or_else(|e| {
                panic!("{}: {threads}-thread execution failed: {e}", benchmark.id())
            });
            assert_eq!(
                parallel.outputs,
                sequential.outputs,
                "{}: outputs diverged at {threads} threads",
                benchmark.id()
            );
            assert_eq!(
                parallel.decryption_ok,
                sequential.decryption_ok,
                "{}: decryption outcome diverged at {threads} threads",
                benchmark.id()
            );
            assert_eq!(
                parallel.operation_stats,
                sequential.operation_stats,
                "{}: operation counts diverged at {threads} threads",
                benchmark.id()
            );
            assert_eq!(
                parallel.noise_budget_consumed,
                sequential.noise_budget_consumed,
                "{}: noise accounting diverged at {threads} threads",
                benchmark.id()
            );
        }
    }
}

/// The greedy-optimized (vectorized) circuits stay equivalent too — their
/// schedules are narrower but exercise rotations and packed layouts.
#[test]
fn parallel_execution_matches_sequential_on_optimized_kernels() {
    let params = test_params();
    for id in [
        "Dot Product 16",
        "Box Blur 3x3",
        "L2 Distance 8",
        "Max 3",
        "Tree 50-50-5",
    ] {
        let benchmark = benchsuite::by_id(id).expect("known benchmark id");
        let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
        let session = compiled.session(&params).unwrap();
        let inputs = inputs_of(&benchmark, 23);
        let sequential = session.run(&inputs).unwrap();
        for threads in [2usize, 4] {
            let options = ExecOptions::sequential().with_threads_per_request(threads);
            let parallel = session.run_parallel(&inputs, &options).unwrap();
            assert_eq!(
                parallel.outputs, sequential.outputs,
                "{id}: outputs diverged"
            );
            assert_eq!(
                parallel.operation_stats, sequential.operation_stats,
                "{id}: operation counts diverged"
            );
        }
    }
}

/// Every instruction's operands land in strictly earlier levels, for every
/// benchsuite kernel's schedule.
#[test]
fn schedules_respect_the_wavefront_invariant_on_every_kernel() {
    for benchmark in benchsuite::full_suite() {
        let schedule = compile_initial(&benchmark).schedule();
        let mut level_of = vec![None; schedule.slot_count()];
        for si in schedule.instrs() {
            level_of[si.dst] = Some(si.level);
        }
        for si in schedule.instrs() {
            let operands: Vec<usize> = match &si.instr {
                Instr::Bin { a, b, .. } => vec![*a, *b],
                Instr::Neg { a } | Instr::Rot { a, .. } => vec![*a],
                Instr::Pack { elems } => elems.clone(),
            };
            for operand in operands {
                match level_of[operand] {
                    // Pre-bound operands are available before level 0.
                    None => {}
                    Some(produced) => assert!(
                        produced < si.level,
                        "{}: operand {operand} produced at level {produced}, used at {}",
                        benchmark.id(),
                        si.level
                    ),
                }
            }
        }
        // Level ranges partition the instruction list in level order.
        let mut expected_start = 0;
        for (level, range) in schedule.levels().iter().enumerate() {
            assert_eq!(
                range.start,
                expected_start,
                "{}: gap before level {level}",
                benchmark.id()
            );
            assert!(
                range.end > range.start,
                "{}: empty level {level}",
                benchmark.id()
            );
            expected_start = range.end;
        }
        assert_eq!(expected_start, schedule.instrs().len());
    }
}

/// Two-level batch execution through one session matches one-at-a-time
/// execution, under every thread-allocation split.
#[test]
fn batch_execution_matches_individual_execution() {
    let benchmark = benchsuite::by_id("Dot Product 8").expect("known benchmark id");
    let session = session_of(&benchmark);
    let input_sets: Vec<HashMap<String, i64>> = (0..8)
        .map(|seed| inputs_of(&benchmark, 100 + seed))
        .collect();
    let solo: Vec<Vec<u64>> = input_sets
        .iter()
        .map(|inputs| session.run(inputs).unwrap().outputs)
        .collect();
    for (request_threads, threads_per_request) in [(1, 4), (4, 1), (2, 2)] {
        let options = ExecOptions::new()
            .with_request_threads(request_threads)
            .with_threads_per_request(threads_per_request);
        let reports = session.run_batch(&input_sets, &options).unwrap();
        let outputs: Vec<Vec<u64>> = reports.into_iter().map(|r| r.outputs).collect();
        assert_eq!(
            outputs, solo,
            "batch ({request_threads}x{threads_per_request}) diverged from solo runs"
        );
    }
}

/// The historical `execute` / `execute_parallel` / `execute_batch` shims
/// match the session API they now wrap.
#[test]
fn execute_shims_match_the_session_api() {
    let params = test_params();
    let benchmark = benchsuite::by_id("Linear Reg. 4").expect("known benchmark id");
    let compiled = compile_initial(&benchmark);
    let session = compiled.session(&params).unwrap();
    let inputs = inputs_of(&benchmark, 41);

    let from_session = session.run(&inputs).unwrap();
    let from_shim = compiled.execute(&inputs, &params).unwrap();
    assert_eq!(from_shim.outputs, from_session.outputs);
    assert_eq!(from_shim.operation_stats, from_session.operation_stats);

    let parallel_shim = compiled.execute_parallel(&inputs, &params, 4).unwrap();
    assert_eq!(parallel_shim.outputs, from_session.outputs);

    let input_sets: Vec<HashMap<String, i64>> = (0..4)
        .map(|seed| inputs_of(&benchmark, 200 + seed))
        .collect();
    let batch_options = BatchOptions {
        request_threads: 2,
        threads_per_request: 1,
    };
    let shim_batch = compiled
        .execute_batch(&input_sets, &params, &batch_options)
        .unwrap();
    let session_batch = session
        .run_batch(&input_sets, &ExecOptions::from(batch_options))
        .unwrap();
    for (a, b) in shim_batch.iter().zip(&session_batch) {
        assert_eq!(a.outputs, b.outputs);
        assert_eq!(a.operation_stats, b.operation_stats);
    }
}

/// The timing breakdown is populated and matches the schedule under both
/// scheduler kinds; the session accumulates calibration across requests.
#[test]
fn timing_breakdown_reflects_the_schedule() {
    use chehab::compiler::SchedulerKind;
    let benchmark = benchsuite::by_id("Linear Reg. 4").expect("known benchmark id");
    let session = session_of(&benchmark);
    let schedule = session.schedule();

    // Dataflow (the default): no levels, but per-instruction run spans and
    // queue waits, and a reclaimed-slack figure versus the leveled makespan.
    let dataflow = session
        .run_parallel(
            &inputs_of(&benchmark, 3),
            &ExecOptions::sequential().with_threads_per_request(4),
        )
        .unwrap();
    assert_eq!(dataflow.timing.scheduler, SchedulerKind::Dataflow);
    assert!(dataflow.timing.levels.is_empty());
    assert_eq!(dataflow.timing.instr_times.len(), schedule.instrs().len());
    assert_eq!(dataflow.timing.queue_waits.len(), schedule.instrs().len());
    assert!(dataflow.timing.wall > std::time::Duration::ZERO);
    assert!(dataflow.timing.total_wall() == dataflow.timing.wall);
    assert!(dataflow.timing.queue_wait_percentile(0.5).is_some());
    assert_eq!(
        dataflow.timing.reclaimed_slack,
        schedule
            .makespan(&dataflow.timing.instr_times, dataflow.timing.threads)
            .saturating_sub(
                schedule.dataflow_makespan(&dataflow.timing.instr_times, dataflow.timing.threads)
            )
    );

    let report = session
        .run_parallel(
            &inputs_of(&benchmark, 3),
            &ExecOptions::sequential()
                .with_threads_per_request(4)
                .with_scheduler(SchedulerKind::Leveled),
        )
        .unwrap();
    assert_eq!(report.timing.scheduler, SchedulerKind::Leveled);
    assert_eq!(report.timing.levels.len(), schedule.level_count());
    assert_eq!(
        report
            .timing
            .levels
            .iter()
            .map(|l| l.instructions)
            .sum::<usize>(),
        schedule.instrs().len()
    );
    assert_eq!(report.timing.steals, 0);
    assert!(report.timing.queue_waits.is_empty());
    // One sample per instruction, not per evaluator call: packs and
    // multi-part rotations bundle several calls.
    assert!(report.timing.per_op.sample_count() > 0);
    // The calibration measured at least additions and multiplications, so a
    // calibrated cost model can be derived.
    let model = report
        .timing
        .per_op
        .to_cost_model(&chehab::ir::CostModel::default());
    assert!(model.op_costs.vec_mul_ct_ct > 0.0);

    // The session-level calibration is cumulative: every request (dataflow
    // and leveled alike) adds one sample set.
    let per_request = report.timing.per_op.sample_count();
    assert_eq!(dataflow.timing.per_op.sample_count(), per_request);
    session.run(&inputs_of(&benchmark, 4)).unwrap();
    let stats = session.stats();
    assert_eq!(stats.requests_served, 3);
    assert_eq!(stats.calibration.sample_count(), 3 * per_request);
}
