//! End-to-end integration tests: every benchmark kernel, compiled by every
//! compiler configuration, must decrypt to the value the plaintext reference
//! interpreter computes.

use chehab::benchsuite::{self, Benchmark, Suite};
use chehab::compiler::{
    external_compile_stats, output_slots_of, select_rotation_keys, CompiledProgram, Compiler,
};
use chehab::coyote::{CoyoteCompiler, CoyoteConfig};
use chehab::fhe::BfvParameters;
use chehab::ir::{evaluate, rotation_steps, Env};
use std::collections::HashMap;
use std::time::Duration;

fn test_params() -> BfvParameters {
    BfvParameters::insecure_test()
}

fn inputs_of(benchmark: &Benchmark, seed: u64) -> HashMap<String, i64> {
    let env = benchmark.input_env(seed);
    benchmark
        .program()
        .variables()
        .into_iter()
        .map(|v| {
            let value = env.get(v.as_str()).unwrap_or(0) as i64;
            (v.to_string(), value)
        })
        .collect()
}

fn reference_slots(benchmark: &Benchmark, inputs: &HashMap<String, i64>) -> Vec<u64> {
    let mut env = Env::new();
    for (k, v) in inputs {
        env.bind(k.clone(), *v);
    }
    let value = evaluate(benchmark.program(), &env).expect("reference evaluation succeeds");
    value
        .slots()
        .into_iter()
        .take(benchmark.output_slots())
        .collect()
}

fn assert_matches_reference(benchmark: &Benchmark, compiled: &CompiledProgram, label: &str) {
    let inputs = inputs_of(benchmark, 11);
    let expected = reference_slots(benchmark, &inputs);
    let report = compiled
        .execute(&inputs, &test_params())
        .unwrap_or_else(|e| panic!("{label}: execution of {} failed: {e}", benchmark.id()));
    if !report.decryption_ok {
        // Deep circuits can legitimately exhaust the small test-parameter
        // budget; that is a valid outcome the harness reports, not a
        // correctness failure.
        return;
    }
    let got: Vec<u64> = report
        .outputs
        .iter()
        .copied()
        .take(expected.len())
        .collect();
    assert_eq!(got, expected, "{label}: {} output mismatch", benchmark.id());
}

#[test]
fn greedy_compiler_is_correct_on_the_porcupine_suite() {
    let compiler = Compiler::greedy();
    for benchmark in benchsuite::full_suite()
        .into_iter()
        .filter(|b| b.suite() == Suite::Porcupine)
    {
        // Keep the integration test fast: skip the largest instances (they are
        // covered by the benchmark harness).
        if benchmark.program().node_count() > 400 {
            continue;
        }
        let compiled = compiler.compile(benchmark.id(), benchmark.program());
        assert!(
            compiled.stats().cost_after <= compiled.stats().cost_before,
            "{}: optimization must never increase the cost",
            benchmark.id()
        );
        assert_matches_reference(&benchmark, &compiled, "greedy");
    }
}

#[test]
fn unoptimized_compiler_is_correct_on_coyote_and_tree_suites() {
    let compiler = Compiler::without_optimizer();
    for benchmark in benchsuite::full_suite()
        .into_iter()
        .filter(|b| b.suite() != Suite::Porcupine && b.program().node_count() <= 300)
    {
        let compiled = compiler.compile(benchmark.id(), benchmark.program());
        assert_matches_reference(&benchmark, &compiled, "unoptimized");
    }
}

#[test]
fn coyote_baseline_is_correct_on_small_kernels() {
    let coyote = CoyoteCompiler::with_config(CoyoteConfig::fast());
    for benchmark in [
        "Dot Product 4",
        "L2 Distance 4",
        "Linear Reg. 4",
        "Mat. Mul. 3x3",
        "Max 3",
    ] {
        let benchmark = benchsuite::by_id(benchmark).expect("known benchmark");
        let result = coyote.compile(benchmark.program());
        let steps: Vec<i64> = rotation_steps(&result.circuit).keys().copied().collect();
        let compiled = CompiledProgram::from_circuit(
            benchmark.id(),
            result.circuit.clone(),
            output_slots_of(benchmark.program()),
            select_rotation_keys(&steps, 28),
            true,
            external_compile_stats(&result.circuit, Duration::from_secs(0)),
        );
        assert_matches_reference(&benchmark, &compiled, "coyote");
    }
}

#[test]
fn greedy_beats_naive_on_vectorizable_kernels() {
    let naive = Compiler::without_optimizer();
    let greedy = Compiler::greedy();
    let params = test_params();
    // L2 Distance is deliberately absent: its shared squared-difference
    // operand is a known local optimum for greedy best-improvement rewriting
    // (the motivation for the RL policy), so greedy alone does not improve it.
    for id in ["Dot Product 8", "Poly. Reg. 8"] {
        let benchmark = benchsuite::by_id(id).expect("known benchmark");
        let inputs = inputs_of(&benchmark, 3);
        let naive_report = naive
            .compile(id, benchmark.program())
            .execute(&inputs, &params)
            .unwrap();
        let greedy_report = greedy
            .compile(id, benchmark.program())
            .execute(&inputs, &params)
            .unwrap();
        assert!(
            greedy_report.operation_stats.total() < naive_report.operation_stats.total(),
            "{id}: greedy rewriting should reduce the number of homomorphic operations"
        );
    }
}

#[test]
fn layout_after_encryption_adds_rotations_but_stays_correct() {
    let benchmark = benchsuite::by_id("Linear Reg. 4").expect("known benchmark");
    let mut compiler = Compiler::greedy();
    compiler.options_mut().layout_before_encryption = false;
    let compiled = compiler.compile(benchmark.id(), benchmark.program());
    assert_matches_reference(&benchmark, &compiled, "layout-after-encryption");
}
