//! Equivalence and liveness tests for the dataflow executor: barrier-free
//! dependency-counting execution must produce bit-identical outputs to the
//! leveled wavefront on every benchsuite kernel at every thread count, must
//! fully drain adversarial DAG shapes (long dependent chains interleaved
//! with wide fan-out) without deadlocking, and must be deterministic in its
//! results no matter how the steal order falls out.

use chehab::benchsuite;
use chehab::compiler::{
    external_compile_stats, output_slots_of, select_rotation_keys, CompiledProgram, Compiler,
    ExecOptions, ExecutionReport, SchedulerKind,
};
use chehab::fhe::BfvParameters;
use std::collections::HashMap;
use std::time::Duration;

fn test_params() -> BfvParameters {
    BfvParameters::insecure_test()
}

fn dataflow_options(threads: usize) -> ExecOptions {
    ExecOptions::sequential()
        .with_threads_per_request(threads)
        .with_scheduler(SchedulerKind::Dataflow)
}

fn leveled_options(threads: usize) -> ExecOptions {
    ExecOptions::sequential()
        .with_threads_per_request(threads)
        .with_scheduler(SchedulerKind::Leveled)
}

fn assert_equivalent(a: &ExecutionReport, b: &ExecutionReport, context: &str) {
    assert_eq!(a.outputs, b.outputs, "{context}: outputs diverged");
    assert_eq!(
        a.decryption_ok, b.decryption_ok,
        "{context}: decryption outcome diverged"
    );
    assert_eq!(
        a.operation_stats, b.operation_stats,
        "{context}: operation counts diverged"
    );
    assert_eq!(
        a.noise_budget_consumed, b.noise_budget_consumed,
        "{context}: noise accounting diverged"
    );
}

/// Dataflow execution is output-identical to the leveled wavefront on every
/// benchsuite kernel across 1/2/4/8 threads — the unoptimized lowering has
/// the widest schedules, which stresses the ready queue hardest.
#[test]
fn dataflow_matches_wavefront_on_every_kernel() {
    for benchmark in benchsuite::full_suite() {
        let compiled = Compiler::without_optimizer().compile(benchmark.id(), benchmark.program());
        let session = compiled
            .session(&test_params())
            .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
        let env = benchmark.input_env(17);
        let inputs: HashMap<String, i64> = benchmark
            .program()
            .variables()
            .into_iter()
            .map(|v| {
                let value = env.get(v.as_str()).unwrap_or(0) as i64;
                (v.to_string(), value)
            })
            .collect();
        let leveled = session
            .run_parallel(&inputs, &leveled_options(1))
            .unwrap_or_else(|e| panic!("{}: leveled execution failed: {e}", benchmark.id()));
        for threads in [1usize, 2, 4, 8] {
            let dataflow = session
                .run_parallel(&inputs, &dataflow_options(threads))
                .unwrap_or_else(|e| {
                    panic!("{}: {threads}-thread dataflow failed: {e}", benchmark.id())
                });
            assert_equivalent(
                &dataflow,
                &leveled,
                &format!("{} at {threads} dataflow threads", benchmark.id()),
            );
            // Full drain: every instruction ran exactly once (operation
            // counts already match), and the breakdown carries one measured
            // span and one queue wait per instruction.
            let schedule = session.schedule();
            assert_eq!(
                dataflow.timing.instr_times.len(),
                schedule.instrs().len(),
                "{}: missing instruction timings",
                benchmark.id()
            );
            assert_eq!(
                dataflow.timing.queue_waits.len(),
                schedule.instrs().len(),
                "{}: missing queue waits",
                benchmark.id()
            );
        }
    }
}

/// A seeded adversarial schedule: `width` independent products (wide
/// fan-out, all ready at once) drained through a left-fold accumulation
/// chain (every add depends on the previous add *and* one product), plus an
/// independent long chain of additions. Exercises injector fan-out, local
/// deque growth and cross-chain stealing at once.
fn adversarial_program(width: usize, chain: usize) -> CompiledProgram {
    let mut products = String::new();
    let mut fold = String::new();
    for i in 0..width {
        let product = format!("(VecMul (Vec a{i} b{i}) (Vec c{i} d{i}))");
        fold = if i == 0 {
            product
        } else {
            format!("(VecAdd {fold} {product})")
        };
        products.push(' ');
    }
    let mut tail = String::from("(Vec x0 y0)");
    for i in 1..chain {
        tail = format!("(VecAdd {tail} (Vec x{i} y{i}))");
    }
    let source = format!("(VecAdd {fold} {tail})");
    let circuit = chehab::ir::parse(&source).expect("well-formed adversarial source");
    let steps: Vec<i64> = chehab::ir::rotation_steps(&circuit)
        .keys()
        .copied()
        .collect();
    let slots = output_slots_of(&circuit);
    CompiledProgram::from_circuit(
        "adversarial",
        circuit.clone(),
        slots,
        select_rotation_keys(&steps, 28),
        true,
        external_compile_stats(&circuit, Duration::from_millis(1)),
    )
}

fn adversarial_inputs(width: usize, chain: usize, seed: i64) -> HashMap<String, i64> {
    let mut inputs = HashMap::new();
    for i in 0..width as i64 {
        inputs.insert(format!("a{i}"), (seed + i) % 7 + 1);
        inputs.insert(format!("b{i}"), (seed + 2 * i) % 5 + 1);
        inputs.insert(format!("c{i}"), (seed + 3 * i) % 11 + 1);
        inputs.insert(format!("d{i}"), (seed + 5 * i) % 3 + 1);
    }
    for i in 0..chain as i64 {
        inputs.insert(format!("x{i}"), (seed + 7 * i) % 13 + 1);
        inputs.insert(format!("y{i}"), (seed + 11 * i) % 9 + 1);
    }
    inputs
}

/// The adversarial DAG (wide fan-out + long chains) executes to completion
/// at every thread count — no deadlock, no lost instruction — and matches
/// the sequential result bit for bit.
#[test]
fn adversarial_dag_drains_fully_without_deadlock() {
    let (width, chain) = (24, 40);
    let program = adversarial_program(width, chain);
    let session = program.session(&test_params()).unwrap();
    let schedule = session.schedule();
    // The shape is as intended: a ready set as wide as the fan-out and a
    // dependency depth at least the chain length.
    assert!(schedule.max_width() >= width);
    assert!(schedule.level_count() >= chain);

    let inputs = adversarial_inputs(width, chain, 3);
    let sequential = session.run(&inputs).unwrap();
    assert!(sequential.decryption_ok);
    for threads in [2usize, 4, 8, 16] {
        let dataflow = session
            .run_parallel(&inputs, &dataflow_options(threads))
            .unwrap_or_else(|e| panic!("{threads}-thread adversarial run failed: {e}"));
        assert_equivalent(
            &dataflow,
            &sequential,
            &format!("adversarial DAG at {threads} threads"),
        );
        assert_eq!(
            dataflow.timing.instr_times.len(),
            schedule.instrs().len(),
            "full drain records every instruction"
        );
    }
}

/// Result registers are independent of the steal order: repeated runs at
/// the same thread count (each with its own nondeterministic interleaving)
/// and runs across different thread counts all produce identical outputs,
/// operation counts and noise accounting.
#[test]
fn results_are_independent_of_steal_order() {
    let (width, chain) = (16, 24);
    let program = adversarial_program(width, chain);
    let session = program.session(&test_params()).unwrap();
    let inputs = adversarial_inputs(width, chain, 11);
    let reference = session.run(&inputs).unwrap();
    for round in 0..6 {
        for threads in [4usize, 8] {
            let report = session
                .run_parallel(&inputs, &dataflow_options(threads))
                .unwrap();
            assert_equivalent(
                &report,
                &reference,
                &format!("round {round} at {threads} threads"),
            );
        }
    }
}

/// The serving engine exports scheduler counters: after a stream of served
/// requests the stats carry one recorded request per submission, queue-wait
/// percentiles, and the reclaimed-slack aggregate.
#[test]
fn serving_stats_export_scheduler_counters() {
    use std::sync::Arc;
    let benchmark = benchsuite::by_id("Hamm. Dist. 4").expect("known benchmark id");
    let compiled = Compiler::without_optimizer().compile(benchmark.id(), benchmark.program());
    let session = Arc::new(compiled.session(&test_params()).unwrap());
    let engine = session.serve(
        &ExecOptions::sequential()
            .with_threads_per_request(4)
            .with_scheduler(SchedulerKind::Dataflow),
    );
    let env = benchmark.input_env(5);
    let inputs: HashMap<String, i64> = benchmark
        .program()
        .variables()
        .into_iter()
        .map(|v| (v.to_string(), env.get(v.as_str()).unwrap_or(0) as i64))
        .collect();
    let handles: Vec<_> = (0..6)
        .map(|_| engine.submit(inputs.clone()).unwrap())
        .collect();
    for handle in handles {
        assert!(handle.wait().unwrap().decryption_ok);
    }
    let stats = engine.shutdown();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.scheduler.requests, 6);
    assert!(
        stats.scheduler.queue_wait_p50.is_some(),
        "dataflow requests record queue waits"
    );
    assert!(stats.scheduler.queue_wait_p95 >= stats.scheduler.queue_wait_p50);
    assert!(stats.scheduler.reclaimed_slack_per_request().is_some());

    // A leveled engine records requests too, with empty wait samples.
    let engine = session.serve(&ExecOptions::sequential().with_scheduler(SchedulerKind::Leveled));
    engine.submit(inputs).unwrap().wait().unwrap();
    let stats = engine.shutdown();
    assert_eq!(stats.scheduler.requests, 1);
    assert_eq!(stats.scheduler.steals, 0);
    assert_eq!(stats.scheduler.queue_wait_p50, None);
}
