//! Asserts the serving contract of the session API: key generation and
//! schedule lowering happen exactly once per `FheSession`, no matter how
//! many requests the session serves and through which entry point.
//!
//! This file holds a single test on purpose: `KeyGenerator::instances_created`
//! is a process-global counter, and every integration-test *file* runs as its
//! own process, so no unrelated test can race the counter here.

use chehab::benchsuite;
use chehab::compiler::{Compiler, ExecOptions};
use chehab::fhe::{BfvParameters, KeyGenerator};
use std::collections::HashMap;
use std::sync::Arc;

#[test]
fn keygen_and_lowering_happen_exactly_once_per_session() {
    let params = BfvParameters::insecure_test();
    let benchmark = benchsuite::by_id("Dot Product 8").expect("known benchmark id");
    let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
    let input_sets: Vec<HashMap<String, i64>> = (0..4)
        .map(|seed| {
            let env = benchmark.input_env(500 + seed);
            benchmark
                .program()
                .variables()
                .into_iter()
                .map(|v| {
                    let value = env.get(v.as_str()).unwrap_or(0) as i64;
                    (v.to_string(), value)
                })
                .collect()
        })
        .collect();

    // Session construction generates keys exactly once...
    let before = KeyGenerator::instances_created();
    let session = Arc::new(compiled.session(&params).unwrap());
    let after_construction = KeyGenerator::instances_created();
    assert_eq!(
        after_construction,
        before + 1,
        "session construction runs keygen exactly once"
    );
    let lowering_time = session.stats().lowering_time;

    // ...and no request after that regenerates anything, through any entry
    // point: run, run_parallel, run_batch, or the serving engine.
    for inputs in &input_sets {
        session.run(inputs).unwrap();
    }
    session
        .run_parallel(
            &input_sets[0],
            &ExecOptions::sequential().with_threads_per_request(2),
        )
        .unwrap();
    session
        .run_batch(&input_sets, &ExecOptions::new().with_request_threads(2))
        .unwrap();
    let engine = session.serve(&ExecOptions::new().with_request_threads(2));
    let handles: Vec<_> = input_sets
        .iter()
        .map(|inputs| {
            engine
                .submit(inputs.clone())
                .expect("engine accepts while live")
        })
        .collect();
    for handle in handles {
        handle.wait().unwrap();
    }
    engine.shutdown();

    assert_eq!(
        KeyGenerator::instances_created(),
        after_construction,
        "no request through a session regenerates keys"
    );
    let stats = session.stats();
    assert_eq!(stats.requests_served, 4 + 1 + 4 + 4);
    assert_eq!(
        stats.lowering_time, lowering_time,
        "schedule lowering is a one-time construction cost"
    );

    // The historical shim, by contrast, rebuilds a session (and its keys)
    // on every call — that is exactly the per-request cost serving avoids.
    compiled.execute(&input_sets[0], &params).unwrap();
    assert_eq!(
        KeyGenerator::instances_created(),
        after_construction + 1,
        "the execute shim pays keygen per call"
    );
}
