//! Trace-export tests: a traced request must observe without perturbing —
//! outputs bit-identical to an untraced run on every benchsuite kernel —
//! and the exported Chrome-trace JSON must be well-formed: a `traceEvents`
//! array whose `ph:"X"` duration events carry the required fields and whose
//! per-track spans never overlap (each track is recorded sequentially by a
//! single thread).

use chehab::benchsuite::{self, Benchmark};
use chehab::compiler::{BatchPolicy, Compiler, ExecOptions, TraceSink};
use chehab::fhe::BfvParameters;
use serde::Value;
use std::collections::HashMap;
use std::sync::Arc;

fn inputs_of(benchmark: &Benchmark, seed: u64) -> HashMap<String, i64> {
    let env = benchmark.input_env(seed);
    benchmark
        .program()
        .variables()
        .into_iter()
        .map(|v| {
            let value = env.get(v.as_str()).unwrap_or(0) as i64;
            (v.to_string(), value)
        })
        .collect()
}

/// Asserts one exported Chrome-trace document is schema-conformant:
/// top-level `traceEvents` array, every event an object with `name`, `ph`,
/// `pid` and `tid`, metadata events (`ph:"M"`) naming their thread, and
/// duration events (`ph:"X"`) carrying numeric `ts`/`dur` microsecond
/// stamps. Returns the number of duration events.
fn assert_wellformed_chrome_trace(json: &str, context: &str) -> usize {
    let document: Value =
        serde_json::from_str(json).unwrap_or_else(|e| panic!("{context}: export is not JSON: {e}"));
    let events = document
        .field("traceEvents")
        .unwrap_or_else(|e| panic!("{context}: missing traceEvents: {e}"))
        .as_array("traceEvents")
        .unwrap_or_else(|e| panic!("{context}: traceEvents is not an array: {e}"));
    let mut duration_events = 0;
    for event in events {
        let field = |name: &str| {
            event
                .field(name)
                .unwrap_or_else(|e| panic!("{context}: event missing {name}: {e}"))
        };
        assert!(
            matches!(field("name"), Value::Str(_)),
            "{context}: event name is a string"
        );
        assert!(
            matches!(field("pid"), Value::UInt(_) | Value::Int(_)),
            "{context}: pid is numeric"
        );
        assert!(
            matches!(field("tid"), Value::UInt(_) | Value::Int(_)),
            "{context}: tid is numeric"
        );
        let Value::Str(ph) = field("ph") else {
            panic!("{context}: ph is a string")
        };
        match ph.as_str() {
            "M" => {
                // Metadata events name their track.
                let args = field("args");
                assert!(
                    matches!(args.field("name"), Ok(Value::Str(_))),
                    "{context}: thread_name metadata carries a name"
                );
            }
            "X" => {
                duration_events += 1;
                for stamp in ["ts", "dur"] {
                    match field(stamp) {
                        Value::Float(v) => assert!(
                            v.is_finite() && *v >= 0.0,
                            "{context}: {stamp} is a finite non-negative number"
                        ),
                        Value::UInt(_) | Value::Int(_) => {}
                        other => panic!("{context}: {stamp} is not numeric: {other:?}"),
                    }
                }
            }
            other => panic!("{context}: unexpected event phase {other:?}"),
        }
    }
    duration_events
}

/// Every benchsuite kernel: a traced request is bit-identical to an
/// untraced one, the capture holds exactly three session-phase spans plus
/// one span per scheduled instruction, the Chrome-trace export is
/// well-formed, and the spans of each track are strictly non-overlapping.
#[test]
fn traced_requests_are_bit_identical_and_export_wellformed_chrome_json() {
    let params = BfvParameters::insecure_test();
    let options = ExecOptions::sequential().with_threads_per_request(2);
    for benchmark in benchsuite::full_suite() {
        let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
        let session = compiled
            .session(&params)
            .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
        let inputs = inputs_of(&benchmark, 97);

        let untraced = session
            .run_parallel(&inputs, &options)
            .unwrap_or_else(|e| panic!("{}: untraced run failed: {e}", benchmark.id()));
        let (traced, trace) = session
            .trace_request(&inputs, &options)
            .unwrap_or_else(|e| panic!("{}: traced run failed: {e}", benchmark.id()));

        // Tracing observes, never perturbs.
        assert_eq!(
            traced.outputs,
            untraced.outputs,
            "{}: tracing changed the outputs",
            benchmark.id()
        );
        assert_eq!(traced.operation_stats, untraced.operation_stats);
        assert_eq!(traced.noise_budget_consumed, untraced.noise_budget_consumed);

        // Span census: three session phases plus one span per instruction.
        let session_spans = trace.events().iter().filter(|e| e.cat == "session").count();
        let instr_spans = trace.events().iter().filter(|e| e.cat == "instr").count();
        assert_eq!(session_spans, 3, "{}: bind/execute/decrypt", benchmark.id());
        assert_eq!(
            instr_spans,
            session.schedule().instrs().len(),
            "{}: one span per scheduled instruction",
            benchmark.id()
        );

        // Spans on one track are recorded sequentially by a single thread,
        // so they must never overlap.
        for track in 0..trace.track_labels().len() {
            let mut previous_end = 0u64;
            for event in trace.events().iter().filter(|e| e.track == track) {
                assert!(
                    event.start_ns >= previous_end,
                    "{}: overlapping spans on track {track}",
                    benchmark.id()
                );
                previous_end = event.start_ns + event.dur_ns;
            }
        }

        let json = trace.to_chrome_json();
        let duration_events = assert_wellformed_chrome_trace(&json, &benchmark.id());
        assert_eq!(
            duration_events,
            trace.events().len(),
            "{}: every span exports as one ph:X event",
            benchmark.id()
        );
    }
}

/// The traced serving engine records one request-level span per served job,
/// with the queue wait attached, and the capture exports as well-formed
/// Chrome-trace JSON.
#[test]
fn traced_serving_records_one_request_span_per_job() {
    let params = BfvParameters::insecure_test();
    let benchmark = benchsuite::by_id("Dot Product 8").expect("known benchmark id");
    let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
    let session = Arc::new(compiled.session(&params).unwrap());

    let requests = 9usize;
    let sink = Arc::new(TraceSink::new());
    let engine = session.serve_traced(
        &ExecOptions::new().with_request_threads(2),
        Some(Arc::clone(&sink)),
    );
    let handles: Vec<_> = (0..requests)
        .map(|seed| {
            engine
                .submit(inputs_of(&benchmark, 800 + seed as u64))
                .expect("engine accepts while live")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("served request succeeds");
    }
    engine.shutdown();

    let trace = Arc::try_unwrap(sink)
        .expect("engine dropped its sink clone at shutdown")
        .into_trace();
    assert_eq!(trace.events().len(), requests);
    for event in trace.events() {
        assert_eq!(event.cat, "request");
        assert!(event.queue_wait_ns.is_some(), "queue wait is attached");
    }
    // Lazily allocated tracks: between 1 and `workers` of them, all named.
    let tracks = trace.track_labels();
    assert!((1..=2).contains(&tracks.len()), "tracks: {tracks:?}");
    assert!(tracks
        .iter()
        .all(|label| label.starts_with("serving worker")));
    assert_wellformed_chrome_trace(&trace.to_chrome_json(), "serving trace");
}

/// The session's Prometheus text exposition carries the cross-request
/// batching series — the batch counter (non-zero once a batch executed) and
/// the lane-occupancy gauge — alongside the request counter.
#[test]
fn batching_metrics_surface_in_the_prometheus_exposition() {
    let params = BfvParameters::insecure_test();
    let benchmark = benchsuite::by_id("Dot Product 8").expect("known benchmark id");
    let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
    let session = compiled.session(&params).unwrap();

    // Before any batch: both series exist, the counter reads zero.
    let text = session.render_metrics();
    for series in ["chehab_batches_formed_total", "chehab_batch_lane_occupancy"] {
        assert!(text.contains(series), "missing {series}:\n{text}");
    }
    assert!(text.contains("chehab_batches_formed_total 0"));

    let options = ExecOptions::sequential().with_batching(BatchPolicy::default());
    let input_sets: Vec<HashMap<String, i64>> =
        (0..3u64).map(|k| inputs_of(&benchmark, 60 + k)).collect();
    session.run_batched(&input_sets, &options).unwrap();

    let text = session.render_metrics();
    assert!(
        text.contains("chehab_batches_formed_total 1"),
        "one chunk, one batch:\n{text}"
    );
    assert!(
        text.contains("chehab_requests_served_total 3"),
        "all three users counted as served requests:\n{text}"
    );
}
