//! Serving-layer tests: one long-lived `FheSession` must be bit-identical
//! to fresh per-call execution on every benchmark kernel no matter how many
//! requests it serves, and the `ServingEngine` must pair every submission
//! with its own result even when completions happen out of order.

use chehab::benchsuite::{self, Benchmark};
use chehab::compiler::{Compiler, ExecOptions};
use chehab::fhe::BfvParameters;
use std::collections::HashMap;
use std::sync::Arc;

fn inputs_of(benchmark: &Benchmark, seed: u64) -> HashMap<String, i64> {
    let env = benchmark.input_env(seed);
    benchmark
        .program()
        .variables()
        .into_iter()
        .map(|v| {
            let value = env.get(v.as_str()).unwrap_or(0) as i64;
            (v.to_string(), value)
        })
        .collect()
}

/// One session run N times yields reports bit-identical to fresh per-call
/// execution (the historical shim), over every benchsuite kernel: outputs,
/// operation counts, noise accounting and key counts all match, so session
/// reuse is purely a latency optimization.
#[test]
fn session_reuse_is_bit_identical_to_fresh_execution_on_every_kernel() {
    let params = BfvParameters::insecure_test();
    for benchmark in benchsuite::full_suite() {
        let compiled = Compiler::without_optimizer().compile(benchmark.id(), benchmark.program());
        let inputs = inputs_of(&benchmark, 71);
        let fresh = compiled
            .execute(&inputs, &params)
            .unwrap_or_else(|e| panic!("{}: fresh execution failed: {e}", benchmark.id()));
        let session = compiled
            .session(&params)
            .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
        for round in 0..3 {
            let reused = session
                .run(&inputs)
                .unwrap_or_else(|e| panic!("{}: session run failed: {e}", benchmark.id()));
            assert_eq!(
                reused.outputs,
                fresh.outputs,
                "{}: outputs diverged on session round {round}",
                benchmark.id()
            );
            assert_eq!(
                reused.operation_stats,
                fresh.operation_stats,
                "{}: operation counts diverged on session round {round}",
                benchmark.id()
            );
            assert_eq!(
                reused.noise_budget_consumed,
                fresh.noise_budget_consumed,
                "{}: noise accounting diverged on session round {round}",
                benchmark.id()
            );
            assert_eq!(
                reused.decryption_ok,
                fresh.decryption_ok,
                "{}: decryption outcome diverged on session round {round}",
                benchmark.id()
            );
            assert_eq!(
                reused.galois_key_count,
                fresh.galois_key_count,
                "{}: key counts diverged on session round {round}",
                benchmark.id()
            );
        }
        assert_eq!(session.stats().requests_served, 3);
    }
}

/// The serving engine pairs every submission with its own result: waiting on
/// handles in submission order returns exactly what solo execution of each
/// input produces, with ids assigned in submission order, even though
/// multiple workers complete requests in whatever order they finish.
#[test]
fn serving_engine_returns_results_in_submission_order() {
    let params = BfvParameters::insecure_test();
    let benchmark = benchsuite::by_id("Dot Product 8").expect("known benchmark id");
    let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
    let session = Arc::new(compiled.session(&params).unwrap());

    let input_sets: Vec<HashMap<String, i64>> = (0..12)
        .map(|seed| inputs_of(&benchmark, 300 + seed))
        .collect();
    let solo: Vec<Vec<u64>> = input_sets
        .iter()
        .map(|inputs| session.run(inputs).unwrap().outputs)
        .collect();

    let engine = session.serve(&ExecOptions::new().with_request_threads(3));
    let handles: Vec<_> = input_sets
        .iter()
        .map(|inputs| {
            engine
                .submit(inputs.clone())
                .expect("engine accepts while live")
        })
        .collect();
    for (i, (handle, expected)) in handles.into_iter().zip(&solo).enumerate() {
        assert_eq!(handle.id(), i as u64, "ids follow submission order");
        let report = handle.wait().expect("served request succeeds");
        assert_eq!(
            &report.outputs, expected,
            "request {i} received another request's result"
        );
    }
    let stats = engine.shutdown();
    assert_eq!(stats.submitted, 12);
    assert_eq!(stats.completed, 12);
    assert_eq!(stats.queue_depth, 0);
}

/// `shutdown` drains requests that are still queued or in flight before
/// returning, and the session's cumulative stats see every one of them.
#[test]
fn engine_shutdown_drains_in_flight_requests() {
    let params = BfvParameters::insecure_test();
    let benchmark = benchsuite::by_id("Linear Reg. 4").expect("known benchmark id");
    let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
    let session = Arc::new(compiled.session(&params).unwrap());

    let engine = session.serve(&ExecOptions::new().with_request_threads(2));
    let handles: Vec<_> = (0..6)
        .map(|seed| {
            engine
                .submit(inputs_of(&benchmark, 400 + seed))
                .expect("engine accepts while live")
        })
        .collect();
    // Shut down immediately: queued work must still complete.
    let stats = engine.shutdown();
    assert_eq!(stats.completed, 6);
    assert_eq!(stats.in_flight, 0);
    for handle in handles {
        assert!(handle.is_finished());
        let report = handle
            .try_poll()
            .expect("drained request has a result")
            .expect("drained request succeeded");
        assert!(report.decryption_ok);
    }
    assert_eq!(session.stats().requests_served, 6);
}

/// Under the (default) dataflow scheduler, a served request stream
/// populates the engine's latency histograms: per-request wall and queue
/// wait with guarded, ordered percentiles, and per-op-kind histograms whose
/// sample counts match the schedule's instruction mix times the request
/// count. Rate math stays finite even for an engine that served nothing.
#[test]
fn serving_stats_populate_latency_histograms_under_dataflow() {
    let params = BfvParameters::insecure_test();
    let benchmark = benchsuite::by_id("Dot Product 8").expect("known benchmark id");
    let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
    let session = Arc::new(compiled.session(&params).unwrap());
    let instr_count = session.schedule().instrs().len();
    assert!(instr_count > 0, "kernel lowers to a non-empty schedule");

    let requests = 8usize;
    let engine = session.serve(&ExecOptions::new().with_request_threads(2));
    let handles: Vec<_> = (0..requests)
        .map(|seed| {
            engine
                .submit(inputs_of(&benchmark, 500 + seed as u64))
                .expect("engine accepts while live")
        })
        .collect();
    for handle in handles {
        handle.wait().expect("served request succeeds");
    }
    let stats = engine.shutdown();

    let wall = &stats.latency.request_wall;
    assert_eq!(wall.count(), requests as u64);
    let (p50, p95, p99) = (
        wall.p50().expect("non-empty histogram has a median"),
        wall.p95().unwrap(),
        wall.p99().unwrap(),
    );
    assert!(p50 <= p95 && p95 <= p99, "percentiles are ordered");
    assert!(p99 <= wall.max().unwrap());
    assert!(wall.max().unwrap() > std::time::Duration::ZERO);
    assert_eq!(stats.latency.queue_wait.count(), requests as u64);

    // Every instruction of every request landed one per-op sample, keyed by
    // the schedule's own operation labels.
    let per_op_samples: u64 = stats.latency.per_op.iter().map(|(_, h)| h.count()).sum();
    assert_eq!(per_op_samples, (instr_count * requests) as u64);
    for (label, histogram) in &stats.latency.per_op {
        assert!(!histogram.is_empty(), "op {label} histogram has samples");
        assert!(
            ["add", "sub", "mul", "neg", "rot", "pack"].contains(&label.as_str()),
            "unexpected op label {label}"
        );
    }

    // The throughput guard: an engine that served nothing reports 0.0, not
    // NaN or infinity.
    let idle = session.serve(&ExecOptions::sequential());
    let idle_stats = idle.shutdown();
    assert_eq!(idle_stats.completed, 0);
    assert!(idle_stats.throughput_rps() == 0.0);
    assert!(idle_stats.latency.request_wall.is_empty());
    assert_eq!(idle_stats.latency.request_wall.p50(), None);
}

/// Session stats expose the one-time setup costs and the schedule shape.
#[test]
fn session_stats_expose_setup_costs_and_schedule_shape() {
    let params = BfvParameters::insecure_test();
    let benchmark = benchsuite::by_id("Box Blur 3x3").expect("known benchmark id");
    let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
    let session = compiled.session(&params).unwrap();
    let before = session.stats();
    assert_eq!(before.requests_served, 0);
    assert_eq!(before.calibration.sample_count(), 0);
    assert!(before.lowering_time > std::time::Duration::ZERO);
    assert_eq!(before.schedule_levels, session.schedule().level_count());
    assert_eq!(before.schedule_width, session.schedule().max_width());

    session.run(&inputs_of(&benchmark, 5)).unwrap();
    let after = session.stats();
    assert_eq!(after.requests_served, 1);
    assert!(after.calibration.sample_count() > 0);
    // The one-time costs are set at construction and never re-paid.
    assert_eq!(after.keygen_time, before.keygen_time);
    assert_eq!(after.lowering_time, before.lowering_time);
}
