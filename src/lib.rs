//! # chehab
//!
//! Facade crate of the CHEHAB RL reproduction (*CHEHAB RL: Learning to
//! Optimize Fully Homomorphic Encryption Computations*, ASPLOS 2026): it
//! re-exports the public API of every workspace crate and hosts the runnable
//! examples and the cross-crate integration tests.
//!
//! | Module | Crate | Contents |
//! |--------|-------|----------|
//! | [`ir`] | `chehab-ir` | expression IR, analyses, cost model, tokenizers |
//! | [`trs`] | `chehab-trs` | rewrite-rule catalog and engine |
//! | [`fhe`] | `chehab-fhe` | BFV-style execution backend |
//! | [`nn`] | `chehab-nn` | tensors, autodiff, Transformer/GRU encoders |
//! | [`rl`] | `chehab-rl` | rewrite environment, PPO, policies, agent |
//! | [`datagen`] | `chehab-datagen` | training-data synthesis |
//! | [`benchsuite`] | `chehab-benchsuite` | Porcupine / Coyote / tree kernels |
//! | [`coyote`] | `coyote-baseline` | search-based vectorizer baseline |
//! | [`compiler`] | `chehab-core` | DSL, pipeline, rotation keys, codegen, `FheSession` serving API |
//! | [`runtime`] | `chehab-runtime` | two-level parallel execution runtime + `ServingEngine` request queue |
//!
//! ## Quick start
//!
//! ```
//! use chehab::compiler::{Compiler, DslProgram};
//! use chehab::fhe::BfvParameters;
//! use std::collections::HashMap;
//!
//! let mut p = DslProgram::new("dot2");
//! let a = p.ciphertext_inputs("a", 2);
//! let b = p.ciphertext_inputs("b", 2);
//! let out = &(&a[0] * &b[0]) + &(&a[1] * &b[1]);
//! p.set_output(&out);
//!
//! let compiled = Compiler::greedy().compile(p.name(), &p.lower());
//! let inputs: HashMap<String, i64> =
//!     [("a_0", 1i64), ("a_1", 2), ("b_0", 3), ("b_1", 4)]
//!         .iter().map(|(k, v)| (k.to_string(), *v)).collect();
//! let report = compiled.execute(&inputs, &BfvParameters::insecure_test())?;
//! assert_eq!(report.outputs[0], 11);
//! # Ok::<(), chehab::fhe::FheError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The CHEHAB intermediate representation (re-export of `chehab-ir`).
pub mod ir {
    pub use chehab_ir::*;
}

/// The term rewriting system (re-export of `chehab-trs`).
pub mod trs {
    pub use chehab_trs::*;
}

/// The BFV-style execution backend (re-export of `chehab-fhe`).
pub mod fhe {
    pub use chehab_fhe::*;
}

/// The neural-network substrate (re-export of `chehab-nn`).
pub mod nn {
    pub use chehab_nn::*;
}

/// The reinforcement-learning stack (re-export of `chehab-rl`).
pub mod rl {
    pub use chehab_rl::*;
}

/// Training-data synthesis (re-export of `chehab-datagen`).
pub mod datagen {
    pub use chehab_datagen::*;
}

/// The evaluation benchmark kernels (re-export of `chehab-benchsuite`).
pub mod benchsuite {
    pub use chehab_benchsuite::*;
}

/// The Coyote-style baseline compiler (re-export of `coyote-baseline`).
pub mod coyote {
    pub use coyote_baseline::*;
}

/// The CHEHAB compiler pipeline (re-export of `chehab-core`).
pub mod compiler {
    pub use chehab_core::*;
}

/// The two-level parallel execution runtime and persistent serving engine
/// (re-export of `chehab-runtime`).
pub mod runtime {
    pub use chehab_runtime::*;
}
