//! `chehabc` — a small command-line front end for the CHEHAB compiler.
//!
//! Reads a program in the CHEHAB IR s-expression syntax (from a file or from
//! the command line), optimizes it with the selected optimizer, prints the
//! compiled circuit and its metrics, and optionally executes it
//! homomorphically with deterministic inputs.
//!
//! ```text
//! USAGE:
//!   chehabc [OPTIONS] <PROGRAM | --file PATH | --benchmark "Dot Product 8">
//!
//! OPTIONS:
//!   --optimizer greedy|none       rewriting strategy (default: greedy)
//!   --file PATH                   read the program from a file
//!   --benchmark ID                compile a built-in benchmark kernel
//!   --run                         execute the compiled circuit on the BFV backend
//!   --payload N                   payload degree of the cost simulation (default 1024)
//! ```
//!
//! Example: `cargo run --release --bin chehabc -- "(Vec (+ a b) (+ c d))" --run`

use chehab::benchsuite;
use chehab::compiler::{CompiledProgram, Compiler};
use chehab::fhe::BfvParameters;
use chehab::ir::{parse, Expr};
use std::collections::HashMap;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return ExitCode::SUCCESS;
    }

    let value_after = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1))
            .cloned()
    };
    let optimizer = value_after("--optimizer").unwrap_or_else(|| "greedy".to_string());
    let run = args.iter().any(|a| a == "--run");
    let payload: usize = value_after("--payload")
        .and_then(|v| v.parse().ok())
        .unwrap_or(1024);

    let program: Expr = match load_program(&args, &value_after) {
        Ok(p) => p,
        Err(message) => {
            eprintln!("error: {message}");
            return ExitCode::FAILURE;
        }
    };

    let compiler = match optimizer.as_str() {
        "greedy" => Compiler::greedy(),
        "none" => Compiler::without_optimizer(),
        other => {
            eprintln!("error: unknown optimizer `{other}` (expected `greedy` or `none`)");
            return ExitCode::FAILURE;
        }
    };

    let compiled = compiler.compile("cli", &program);
    print_report(&program, &compiled);

    if run {
        let inputs: HashMap<String, i64> = program
            .variables()
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v.to_string(), (i as i64 % 7) + 1))
            .collect();
        let params = BfvParameters {
            payload_degree: payload.next_power_of_two().max(8),
            ..BfvParameters::default_128()
        };
        match compiled.execute(&inputs, &params) {
            Ok(report) => {
                println!("\n-- execution (inputs bound to 1..7 cyclically)");
                println!("outputs:            {:?}", report.outputs);
                println!("server time:        {:?}", report.server_time);
                println!(
                    "noise budget:       {:.1} bits consumed, {:.1} bits remaining",
                    report.noise_budget_consumed, report.noise_budget_remaining
                );
                println!(
                    "operations:         {} ct-ct mul, {} ct-pt mul, {} rotations, {} additions",
                    report.operation_stats.ct_ct_multiplications,
                    report.operation_stats.ct_pt_multiplications,
                    report.operation_stats.rotations,
                    report.operation_stats.additions
                );
            }
            Err(e) => {
                eprintln!("execution failed: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

fn print_usage() {
    println!("chehabc — compile CHEHAB IR programs and run them on the BFV backend\n");
    println!("usage: chehabc [OPTIONS] <PROGRAM | --file PATH | --benchmark ID>\n");
    println!("options:");
    println!("  --optimizer greedy|none   rewriting strategy (default: greedy)");
    println!("  --file PATH               read the program from a file");
    println!("  --benchmark ID            compile a built-in benchmark (e.g. \"Dot Product 8\")");
    println!("  --run                     execute the compiled circuit");
    println!("  --payload N               payload degree of the cost simulation (default 1024)");
    println!("\nexample: chehabc \"(Vec (+ a b) (+ c d))\" --run");
}

fn load_program(
    args: &[String],
    value_after: &impl Fn(&str) -> Option<String>,
) -> Result<Expr, String> {
    if let Some(path) = value_after("--file") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        return parse(text.trim()).map_err(|e| format!("cannot parse {path}: {e}"));
    }
    if let Some(id) = value_after("--benchmark") {
        return benchsuite::by_id(&id)
            .map(|b| b.program().clone())
            .ok_or_else(|| format!("unknown benchmark `{id}` (e.g. \"Dot Product 8\")"));
    }
    let inline = args.iter().find(|a| a.starts_with('(')).ok_or_else(|| {
        "no program given (pass an s-expression, --file or --benchmark)".to_string()
    })?;
    parse(inline).map_err(|e| format!("cannot parse program: {e}"))
}

fn print_report(program: &Expr, compiled: &CompiledProgram) {
    let stats = compiled.stats();
    println!("-- input program ({} nodes)", program.node_count());
    println!("{program}");
    println!("\n-- compiled circuit");
    println!("{}", compiled.circuit());
    println!("\n-- metrics");
    println!(
        "cost model:         {:.1} -> {:.1}",
        stats.cost_before, stats.cost_after
    );
    println!("rewrite steps:      {}", stats.optimizer_steps);
    println!("compile time:       {:?}", stats.compile_time);
    println!(
        "depth:              {} -> {}",
        stats.summary_before.depth, stats.summary_after.depth
    );
    println!(
        "multiplicative depth: {} -> {}",
        stats.summary_before.multiplicative_depth, stats.summary_after.multiplicative_depth
    );
    println!(
        "ct-ct muls:         {} -> {}",
        stats.summary_before.ops.ct_ct_muls(),
        stats.summary_after.ops.ct_ct_muls()
    );
    println!(
        "rotations:          {} -> {}",
        stats.summary_before.ops.rotations, stats.summary_after.ops.rotations
    );
    println!(
        "rotation keys:      {} (budget {})",
        compiled.rotation_plan().key_count(),
        compiled.rotation_plan().budget
    );
}
