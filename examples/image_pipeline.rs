//! A privacy-preserving image-processing pipeline: Sobel gradients and a box
//! blur over an encrypted 5×5 image, compiled with the greedy optimizer and
//! compared against the Coyote-style baseline on the same BFV backend.
//!
//! This is the workload family the paper's image-processing benchmarks (Box
//! Blur, Gx, Gy, Roberts Cross) come from.
//!
//! Run with `cargo run --release --example image_pipeline`.

use chehab::benchsuite::porcupine;
use chehab::compiler::{external_compile_stats, output_slots_of, CompiledProgram, Compiler};
use chehab::coyote::{CoyoteCompiler, CoyoteConfig};
use chehab::fhe::BfvParameters;
use chehab::ir::rotation_steps;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = BfvParameters {
        payload_degree: 1024,
        ..BfvParameters::default_128()
    };
    let image_size = 5usize;

    // Encrypted 5x5 image with a bright diagonal.
    let mut inputs: HashMap<String, i64> = HashMap::new();
    for i in 0..image_size {
        for j in 0..image_size {
            let value = if i == j {
                200
            } else {
                10 + (i * image_size + j) as i64
            };
            inputs.insert(format!("img_{i}_{j}"), value);
        }
    }

    for benchmark in [
        porcupine::box_blur(image_size),
        porcupine::gx(image_size),
        porcupine::gy(image_size),
    ] {
        println!("== {}", benchmark.id());
        let program = benchmark.program();

        // CHEHAB with the greedy term-rewriting optimizer.
        let chehab = Compiler::greedy().compile(benchmark.id(), program);
        let chehab_report = chehab.execute(&inputs, &params)?;

        // Coyote-style baseline: vectorize with layout search, then run the
        // resulting circuit through the same executor and backend.
        let coyote = CoyoteCompiler::with_config(CoyoteConfig {
            base_candidates: 8,
            candidates_per_op: 1,
            max_candidates: 32,
            ..CoyoteConfig::default()
        })
        .compile(program);
        let coyote_program = CompiledProgram::from_circuit(
            format!("{} (coyote)", benchmark.id()),
            coyote.circuit.clone(),
            output_slots_of(program),
            chehab::compiler::select_rotation_keys(
                &rotation_steps(&coyote.circuit)
                    .keys()
                    .copied()
                    .collect::<Vec<_>>(),
                28,
            ),
            true,
            external_compile_stats(&coyote.circuit, coyote.compile_time),
        );
        let coyote_report = coyote_program.execute(&inputs, &params)?;

        assert_eq!(
            chehab_report.outputs, coyote_report.outputs,
            "both compilers must produce the same image"
        );

        println!(
            "  CHEHAB (greedy): {:>6} ops ({} rot, {} ct-pt), {:>8.1?} exec, {:>6.1} bits noise, compile {:?}",
            chehab_report.operation_stats.total(),
            chehab_report.operation_stats.rotations,
            chehab_report.operation_stats.ct_pt_multiplications,
            chehab_report.server_time,
            chehab_report.noise_budget_consumed,
            chehab.stats().compile_time,
        );
        println!(
            "  Coyote baseline: {:>6} ops ({} rot, {} ct-pt), {:>8.1?} exec, {:>6.1} bits noise, compile {:?}",
            coyote_report.operation_stats.total(),
            coyote_report.operation_stats.rotations,
            coyote_report.operation_stats.ct_pt_multiplications,
            coyote_report.server_time,
            coyote_report.noise_budget_consumed,
            coyote.compile_time,
        );
        println!(
            "  first row of the output image: {:?}\n",
            &chehab_report.outputs[..image_size.min(chehab_report.outputs.len())]
        );
    }
    Ok(())
}
