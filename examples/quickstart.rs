//! Quickstart: write an FHE kernel in the CHEHAB DSL, compile it with the
//! greedy optimizer, execute it homomorphically, and inspect the circuit
//! metrics the paper reports (operation counts, multiplicative depth,
//! consumed noise budget).
//!
//! Run with `cargo run --release --example quickstart`.

use chehab::compiler::{Compiler, DslProgram};
use chehab::fhe::BfvParameters;
use chehab::ir::summarize;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Write the kernel: squared L2 distance between two 8-element vectors.
    let n = 8;
    let mut program = DslProgram::new("l2_distance_8");
    let a = program.ciphertext_inputs("a", n);
    let b = program.ciphertext_inputs("b", n);
    let terms: Vec<_> = (0..n)
        .map(|i| {
            let diff = &a[i] - &b[i];
            &diff * &diff
        })
        .collect();
    let total = program.add_many(&terms);
    program.set_output(&total);
    let scalar_ir = program.lower();

    println!("== CHEHAB quickstart: {}", program.name());
    println!("scalar IR: {scalar_ir}");
    let before = summarize(&scalar_ir);
    println!(
        "before optimization: {} ct-ct muls, {} adds, multiplicative depth {}",
        before.ops.ct_ct_muls(),
        before.ops.additions(),
        before.multiplicative_depth
    );

    // 2. Compile with the greedy term-rewriting optimizer.
    let compiler = Compiler::greedy();
    let compiled = compiler.compile(program.name(), &scalar_ir);
    let after = compiled.stats().summary_after;
    println!(
        "after optimization:  {} ct-ct muls, {} vector adds, {} rotations, multiplicative depth {}",
        after.ops.ct_ct_muls(),
        after.ops.vec_add_sub,
        after.ops.rotations,
        after.multiplicative_depth
    );
    println!(
        "cost model: {:.1} -> {:.1} ({} rewrite steps, compiled in {:?})",
        compiled.stats().cost_before,
        compiled.stats().cost_after,
        compiled.stats().optimizer_steps,
        compiled.stats().compile_time
    );

    // 3. Execute homomorphically and check against the clear computation.
    let mut inputs = HashMap::new();
    let mut expected: i64 = 0;
    for i in 0..n {
        let (x, y) = (i as i64 + 1, 2 * i as i64);
        inputs.insert(format!("a_{i}"), x);
        inputs.insert(format!("b_{i}"), y);
        expected += (x - y) * (x - y);
    }
    let params = BfvParameters::default_128();
    let report = compiled.execute(&inputs, &params)?;

    println!(
        "homomorphic result: {} (expected {expected})",
        report.outputs[0]
    );
    println!(
        "server time: {:?}, noise budget consumed: {:.1} bits (remaining {:.1} of {:.0})",
        report.server_time,
        report.noise_budget_consumed,
        report.noise_budget_remaining,
        params.fresh_noise_budget_bits()
    );
    println!(
        "homomorphic operations: {} ct-ct muls, {} ct-pt muls, {} rotations, {} additions",
        report.operation_stats.ct_ct_multiplications,
        report.operation_stats.ct_pt_multiplications,
        report.operation_stats.rotations,
        report.operation_stats.additions
    );
    assert_eq!(report.outputs[0] as i64, expected);
    Ok(())
}
