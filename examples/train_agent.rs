//! Train a CHEHAB RL agent end to end: synthesize an LLM-style dataset, run
//! PPO over the rewrite environment, save the learned policy to disk, and use
//! the agent to compile a benchmark kernel.
//!
//! The default budget is intentionally small so the example finishes in a few
//! minutes; pass a number of timesteps as the first argument to train longer
//! (the paper trains for 2 million timesteps / 43 hours).
//!
//! Run with `cargo run --release --example train_agent -- 4000`.

use chehab::benchsuite::porcupine;
use chehab::compiler::{
    training::{train_agent, AgentTrainingOptions},
    Compiler,
};
use chehab::fhe::BfvParameters;
use std::collections::HashMap;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let timesteps: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(3000);

    println!("training a CHEHAB RL agent for {timesteps} timesteps...");
    let trained = train_agent(&AgentTrainingOptions {
        timesteps,
        dataset_size: 600,
        ..AgentTrainingOptions::default()
    });
    println!(
        "dataset: {} unique LLM-style expressions; episodes: {}; wall clock: {:.1}s",
        trained.dataset_size, trained.report.episodes, trained.report.wall_clock_seconds
    );
    println!("learning curve (timestep, mean episode reward):");
    for point in trained
        .report
        .curve
        .iter()
        .step_by((trained.report.curve.len() / 8).max(1))
    {
        println!(
            "  {:>8}  {:>8.3}",
            point.timestep, point.mean_episode_reward
        );
    }

    // Persist the learned policy so the compiler can reload it later.
    let policy_path = std::env::temp_dir().join("chehab_rl_policy.json");
    trained.agent.policy().save(&policy_path)?;
    println!("policy saved to {}", policy_path.display());

    // Use the agent inside the compiler on an unseen benchmark kernel.
    let benchmark = porcupine::dot_product(8);
    let compiler = Compiler::with_rl_agent(Arc::clone(&trained.agent));
    let compiled = compiler.compile(benchmark.id(), benchmark.program());
    println!(
        "\ncompiling {}: cost {:.1} -> {:.1} in {:?} ({} rewrites)",
        benchmark.id(),
        compiled.stats().cost_before,
        compiled.stats().cost_after,
        compiled.stats().compile_time,
        compiled.stats().optimizer_steps
    );

    let mut inputs = HashMap::new();
    let mut expected = 0i64;
    for i in 0..8i64 {
        inputs.insert(format!("a_{i}"), i + 1);
        inputs.insert(format!("b_{i}"), i + 5);
        expected += (i + 1) * (i + 5);
    }
    let report = compiled.execute(
        &inputs,
        &BfvParameters {
            payload_degree: 1024,
            ..BfvParameters::default_128()
        },
    )?;
    println!(
        "homomorphic result {} (expected {expected}); ops executed: {}",
        report.outputs[0],
        report.operation_stats.total()
    );
    assert_eq!(report.outputs[0] as i64, expected);
    Ok(())
}
