//! Machine-learning building blocks under FHE: dot product, L2 distance and
//! polynomial-regression residuals over encrypted data — the workloads the
//! paper's introduction motivates (private inference / private analytics).
//!
//! The example also demonstrates the rotation-key selection pass
//! (Appendix B): the dot-product reduction needs several rotation steps and
//! the compiler keeps the generated Galois keys within the configured budget.
//!
//! Run with `cargo run --release --example ml_kernels`.

use chehab::benchsuite::porcupine;
use chehab::compiler::Compiler;
use chehab::fhe::BfvParameters;
use std::collections::HashMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let params = BfvParameters {
        payload_degree: 1024,
        ..BfvParameters::default_128()
    };
    let compiler = Compiler::greedy();

    // --- Dot product of two encrypted feature vectors (length 16).
    let dot = porcupine::dot_product(16);
    let compiled = compiler.compile(dot.id(), dot.program());
    let mut inputs = HashMap::new();
    let mut expected = 0i64;
    for i in 0..16i64 {
        inputs.insert(format!("a_{i}"), i + 1);
        inputs.insert(format!("b_{i}"), 2 * i + 1);
        expected += (i + 1) * (2 * i + 1);
    }
    let report = compiled.execute(&inputs, &params)?;
    println!("== {}", dot.id());
    println!(
        "  result {} (expected {expected}); {} rotations over {} Galois keys (budget {})",
        report.outputs[0],
        report.operation_stats.rotations,
        report.galois_key_count,
        compiled.rotation_plan().budget,
    );
    println!(
        "  multiplicative depth {}, noise consumed {:.1} bits, server time {:?}",
        compiled.stats().summary_after.multiplicative_depth,
        report.noise_budget_consumed,
        report.server_time
    );
    assert_eq!(report.outputs[0] as i64, expected);

    // --- Squared L2 distance between two encrypted embeddings (length 8).
    let l2 = porcupine::l2_distance(8);
    let compiled = compiler.compile(l2.id(), l2.program());
    let mut inputs = HashMap::new();
    let mut expected = 0i64;
    for i in 0..8i64 {
        inputs.insert(format!("a_{i}"), 3 * i);
        inputs.insert(format!("b_{i}"), i + 2);
        expected += (3 * i - (i + 2)) * (3 * i - (i + 2));
    }
    let report = compiled.execute(&inputs, &params)?;
    println!("== {}", l2.id());
    println!(
        "  result {} (expected {expected}); ops: {} ct-ct muls, {} additions, {} rotations",
        report.outputs[0],
        report.operation_stats.ct_ct_multiplications,
        report.operation_stats.additions,
        report.operation_stats.rotations
    );
    assert_eq!(report.outputs[0] as i64, expected);

    // --- Polynomial-regression residuals over 8 encrypted points.
    let poly = porcupine::polynomial_regression(8);
    let compiled = compiler.compile(poly.id(), poly.program());
    let mut inputs = HashMap::new();
    let (c0, c1, c2) = (2i64, 3i64, 1i64);
    inputs.insert("c0".to_string(), c0);
    inputs.insert("c1".to_string(), c1);
    inputs.insert("c2".to_string(), c2);
    let mut expected = Vec::new();
    for i in 0..8i64 {
        let x = i - 3;
        let y = 50 + i;
        inputs.insert(format!("x_{i}"), x);
        inputs.insert(format!("y_{i}"), y);
        expected.push((y - (c0 + c1 * x + c2 * x * x)).rem_euclid(786_433) as u64);
    }
    let report = compiled.execute(&inputs, &params)?;
    println!("== {}", poly.id());
    println!(
        "  residuals {:?}; multiplicative depth {}, noise consumed {:.1} bits",
        report.outputs,
        compiled.stats().summary_after.multiplicative_depth,
        report.noise_budget_consumed
    );
    assert_eq!(report.outputs, expected);

    println!("\nall ML kernels matched their cleartext references under encryption");
    Ok(())
}
