//! The motivating example of Section 2: an unstructured scalar expression
//! over ten encrypted inputs, optimized three ways — not at all, with the
//! original CHEHAB greedy rewriting, and with a (quickly trained) CHEHAB RL
//! agent — and executed on the BFV backend to compare operation mixes,
//! multiplicative depth and noise consumption.
//!
//! Run with `cargo run --release --example motivating_example`.

use chehab::compiler::{
    training::{train_agent, AgentTrainingOptions},
    Compiler, DslProgram,
};
use chehab::fhe::BfvParameters;
use std::collections::HashMap;
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // x = (((v1·v2)·(v3·v4)) + ((v3·v4)·(v5·v6))) · ((v7·v8)·(v9·v10))
    let mut p = DslProgram::new("motivating_example");
    let v: Vec<_> = (1..=10)
        .map(|i| p.ciphertext_input(format!("v{i}")))
        .collect();
    let x = &(&(&(&v[0] * &v[1]) * &(&v[2] * &v[3])) + &(&(&v[2] * &v[3]) * &(&v[4] * &v[5])))
        * &(&(&v[6] * &v[7]) * &(&v[8] * &v[9]));
    p.set_output(&x);
    let program = p.lower();
    println!("scalar program: {program}\n");

    let inputs: HashMap<String, i64> = (1..=10)
        .map(|i| (format!("v{i}"), i as i64 % 5 + 1))
        .collect();
    let params = BfvParameters::default_128();

    let mut configurations: Vec<(&str, Compiler)> = vec![
        ("initial (no rewriting)", Compiler::without_optimizer()),
        ("CHEHAB (greedy TRS)", Compiler::greedy()),
    ];
    println!("training a small CHEHAB RL agent (scaled-down budget)...");
    let trained = train_agent(&AgentTrainingOptions {
        timesteps: 1500,
        dataset_size: 300,
        ..AgentTrainingOptions::default()
    });
    println!(
        "trained on {} synthesized programs, {} episodes, final mean reward {:.2}\n",
        trained.dataset_size,
        trained.report.episodes,
        trained.report.final_mean_reward()
    );
    configurations.push((
        "CHEHAB RL",
        Compiler::with_rl_agent(Arc::clone(&trained.agent)),
    ));

    println!(
        "{:<24} {:>8} {:>8} {:>8} {:>8} {:>10} {:>12}",
        "configuration", "ct-ct", "ct-pt", "rot", "depth*", "noise(b)", "exec time"
    );
    let mut reference: Option<u64> = None;
    for (label, compiler) in configurations {
        let compiled = compiler.compile(label, &program);
        let report = compiled.execute(&inputs, &params)?;
        let summary = compiled.stats().summary_after;
        println!(
            "{:<24} {:>8} {:>8} {:>8} {:>8} {:>10.1} {:>12?}",
            label,
            report.operation_stats.ct_ct_multiplications,
            report.operation_stats.ct_pt_multiplications,
            report.operation_stats.rotations,
            summary.multiplicative_depth,
            report.noise_budget_consumed,
            report.server_time
        );
        match reference {
            None => reference = Some(report.outputs[0]),
            Some(expected) => assert_eq!(
                report.outputs[0], expected,
                "{label} produced a different result than the naive circuit"
            ),
        }
    }
    println!("\n(depth* = multiplicative depth of the compiled circuit)");
    println!(
        "all three configurations decrypt to the same value: {}",
        reference.unwrap_or(0)
    );
    Ok(())
}
