//! The serving scenario: compile one kernel, build one long-lived
//! `FheSession` (keys + schedule generated exactly once), then stream
//! requests through a persistent `ServingEngine` request queue.
//!
//! Run with `cargo run --release --example parallel_serving`.

use chehab::benchsuite;
use chehab::compiler::{Compiler, ExecOptions};
use chehab::fhe::BfvParameters;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

fn main() {
    let benchmark = benchsuite::by_id("Dot Product 16").expect("known kernel");
    let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
    let params = BfvParameters::insecure_test();

    // Keygen + schedule lowering happen here, once, regardless of how many
    // requests the session serves afterwards.
    let session = Arc::new(compiled.session(&params).expect("session construction"));
    let stats = session.stats();
    println!(
        "== {}: session up in {:.2?} keygen + {:.2?} lowering; {} instructions across {} \
         wavefront levels (width {})",
        session.program().name(),
        stats.keygen_time,
        stats.lowering_time,
        session.schedule().instrs().len(),
        stats.schedule_levels,
        stats.schedule_width
    );

    // Sixteen independent requests, each with its own input set.
    let requests: Vec<HashMap<String, i64>> = (0..16)
        .map(|seed| {
            benchmark
                .program()
                .variables()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v.to_string(), (seed + i as i64) % 13 + 1))
                .collect()
        })
        .collect();

    // A persistent request queue over the shared session: submit returns a
    // handle immediately; workers drain the queue in the background.
    let options = ExecOptions::new().with_queue_capacity(32);
    let engine = session.serve(&options);
    let started = Instant::now();
    let handles: Vec<_> = requests
        .iter()
        .map(|inputs| {
            engine
                .submit(inputs.clone())
                .expect("engine accepts while live")
        })
        .collect();

    // Handles pair each submission with its own result, so results arrive in
    // submission order even if completions interleave.
    for handle in handles {
        let id = handle.id();
        let report = handle.wait().expect("request execution succeeds");
        println!(
            "request {id:2}: output {:?}, {} homomorphic ops, {:.1} noise bits",
            report.outputs,
            report.operation_stats.total(),
            report.noise_budget_consumed
        );
    }
    let elapsed = started.elapsed();

    let serving = engine.shutdown();
    let session_stats = session.stats();
    let calibrated = session_stats
        .calibration
        .to_cost_model(&chehab::ir::CostModel::default());
    println!(
        "served {} requests in {elapsed:.2?} ({} workers, {:.1} req/s); keygen ran once for all \
         of them; calibrated ct-ct mul cost: {:.1} additions (from {} samples across the whole \
         session)",
        serving.completed,
        serving.workers,
        serving.throughput_rps(),
        calibrated.op_costs.vec_mul_ct_ct,
        session_stats.calibration.sample_count()
    );
}
