//! The serving scenario: compile one kernel, then execute a stream of
//! independently encrypted requests through the two-level parallel runtime.
//!
//! Run with `cargo run --release --example parallel_serving`.

use chehab::benchsuite;
use chehab::compiler::{BatchOptions, Compiler};
use chehab::fhe::BfvParameters;
use std::collections::HashMap;
use std::time::Instant;

fn main() {
    let benchmark = benchsuite::by_id("Dot Product 16").expect("known kernel");
    let compiled = Compiler::greedy().compile(benchmark.id(), benchmark.program());
    let params = BfvParameters::insecure_test();
    let schedule = compiled.schedule();
    println!(
        "== {}: {} instructions across {} wavefront levels (width {})",
        compiled.name(),
        schedule.instrs().len(),
        schedule.level_count(),
        schedule.max_width()
    );

    // Sixteen independent requests, each with its own input set.
    let requests: Vec<HashMap<String, i64>> = (0..16)
        .map(|seed| {
            benchmark
                .program()
                .variables()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v.to_string(), (seed + i as i64) % 13 + 1))
                .collect()
        })
        .collect();

    let options = BatchOptions {
        request_threads: 4,
        threads_per_request: 1,
    };
    let started = Instant::now();
    let reports = compiled
        .execute_batch(&requests, &params, &options)
        .expect("batch execution succeeds");
    let elapsed = started.elapsed();

    for (i, report) in reports.iter().enumerate() {
        println!(
            "request {i:2}: output {:?}, {} homomorphic ops, {:.1} noise bits",
            report.outputs,
            report.operation_stats.total(),
            report.noise_budget_consumed
        );
    }
    let calibrated = reports
        .last()
        .expect("at least one request")
        .timing
        .per_op
        .to_cost_model(&chehab::ir::CostModel::default());
    println!(
        "batch of {} served in {elapsed:.2?} ({} request workers); calibrated ct-ct mul cost: \
         {:.1} additions",
        reports.len(),
        options.request_threads,
        calibrated.op_costs.vec_mul_ct_ct
    );
}
