//! Polynomial arithmetic in the negacyclic ring `Z_p[x] / (x^n + 1)`.
//!
//! This is the computational workhorse of the execution engine: ciphertext
//! payload polynomials live in this ring, and multiplications use a
//! negacyclic number-theoretic transform (NTT) so that the measured cost of
//! homomorphic operations scales the way BFV's does (`O(n log n)` for
//! transforms, `O(n)` for evaluation-domain products and additions).
//!
//! The working prime is the Goldilocks prime `p = 2^64 - 2^32 + 1`, whose
//! multiplicative group has 2-adicity 32, so power-of-two NTTs up to huge
//! sizes are available. Because `2^64 ≡ 2^32 - 1 (mod p)` and
//! `2^96 ≡ -1 (mod p)`, a 128-bit product reduces with a handful of 64-bit
//! adds/subs instead of a 128-bit division — see [`reduce128`].
//!
//! Polynomials carry an explicit [`Domain`] tag: `Coeff` (coefficient form)
//! or `Eval` (NTT / evaluation form). The evaluator keeps ciphertext payloads
//! in `Eval` form across whole operation chains, so products are pointwise
//! (`O(n)`) and forward/inverse transforms only happen at representation
//! boundaries.

use crate::simd::{self, SimdPolicy};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The Goldilocks prime `2^64 - 2^32 + 1`.
pub const MODULUS: u64 = 0xFFFF_FFFF_0000_0001;

/// `2^64 mod p = 2^32 - 1`, the constant the fast reduction multiplies by.
const EPSILON: u64 = 0xFFFF_FFFF;

/// Slices shorter than this are transformed sequentially even when a thread
/// budget is available: below it, thread-spawn latency exceeds the butterfly
/// work a helper would take over.
const MIN_SPLIT: usize = 2048;

/// Modular addition in `Z_p`.
#[inline]
pub fn p_add(a: u64, b: u64) -> u64 {
    let (sum, overflow) = a.overflowing_add(b);
    let mut r = sum;
    if overflow || sum >= MODULUS {
        r = sum.wrapping_sub(MODULUS);
    }
    r
}

/// Modular subtraction in `Z_p`.
#[inline]
pub fn p_sub(a: u64, b: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a.wrapping_add(MODULUS).wrapping_sub(b)
    }
}

/// Modular negation in `Z_p`.
#[inline]
pub fn p_neg(a: u64) -> u64 {
    if a == 0 {
        0
    } else {
        MODULUS - a
    }
}

/// Reduces a 128-bit value modulo the Goldilocks prime without dividing.
///
/// Write `x = x_lo + 2^64·(x_hi_lo + 2^32·x_hi_hi)` with 64/32/32-bit limbs.
/// Using `2^64 ≡ 2^32 - 1` and `2^96 ≡ -1 (mod p)`:
///
/// ```text
/// x ≡ x_lo + (2^32 - 1)·x_hi_lo - x_hi_hi   (mod p)
/// ```
///
/// Each wrap of the 64-bit intermediate is compensated by adding or
/// subtracting `2^64 mod p = 2^32 - 1`, and one final conditional subtract
/// canonicalizes (the intermediate is `< 2^64 < 2p`). Branch-light: two
/// conditional fix-ups plus the canonicalizing compare, no division.
#[inline]
pub fn reduce128(x: u128) -> u64 {
    let x_lo = x as u64;
    let x_hi = (x >> 64) as u64;
    let x_hi_hi = x_hi >> 32;
    let x_hi_lo = x_hi & EPSILON;

    let (mut t0, borrow) = x_lo.overflowing_sub(x_hi_hi);
    if borrow {
        // The wrap added 2^64 ≡ EPSILON; take it back out. `t0` is at least
        // `2^64 - x_hi_hi > EPSILON` here, so this cannot wrap again.
        t0 = t0.wrapping_sub(EPSILON);
    }
    let t1 = x_hi_lo * EPSILON;
    let (sum, carry) = t0.overflowing_add(t1);
    let mut r = sum;
    if carry {
        // The wrap removed 2^64 ≡ EPSILON; put it back. `sum` is at most
        // `2^64 - 2^33` here, so this cannot overflow.
        r = sum.wrapping_add(EPSILON);
    }
    if r >= MODULUS {
        r -= MODULUS;
    }
    r
}

/// Modular multiplication in `Z_p` via the branch-light Goldilocks reduction
/// (no 128-bit division).
#[inline]
pub fn p_mul(a: u64, b: u64) -> u64 {
    reduce128(u128::from(a) * u128::from(b))
}

/// Fused modular multiply-add `a·b + c mod p` with a single reduction.
///
/// The 128-bit accumulator cannot overflow: `(2^64-1)^2 + (2^64-1) < 2^128`.
#[inline]
pub fn p_mul_add(a: u64, b: u64, c: u64) -> u64 {
    reduce128(u128::from(a) * u128::from(b) + u128::from(c))
}

/// Modular exponentiation in `Z_p`.
pub fn p_pow(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= MODULUS;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = p_mul(acc, base);
        }
        base = p_mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Modular inverse in `Z_p` (Fermat's little theorem; `a` must be non-zero).
pub fn p_inv(a: u64) -> u64 {
    debug_assert!(a != 0, "zero has no inverse");
    p_pow(a, MODULUS - 2)
}

/// A multiplicative generator of `Z_p^*` for the Goldilocks prime.
const GENERATOR: u64 = 7;

/// The representation a [`Poly`]'s stored values are in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Domain {
    /// Coefficient form: entry `i` is the coefficient of `x^i`.
    Coeff,
    /// Evaluation (NTT) form: entry `i` is the value at the `i`-th root in
    /// the transform's bit-reversed evaluation order. Ring products are
    /// pointwise in this domain.
    Eval,
}

/// Cumulative forward/inverse transform counters of one [`NttTables`]
/// instance (shared across clones).
///
/// The counters exist so tests can assert *representation laziness* — e.g.
/// that a multiply→rotate→multiply chain performs no transforms at all once
/// operands are in [`Domain::Eval`] — and cost one relaxed atomic increment
/// per whole transform, which is noise next to the transform itself.
#[derive(Debug, Default)]
struct TransformCounters {
    forward: AtomicU64,
    inverse: AtomicU64,
}

/// A snapshot of one [`NttTables`] instance's cumulative transform counts
/// ([`NttTables::transform_stats`]): telemetry for the NTT hot path,
/// exposed through the session metrics registry and usable in tests to
/// assert representation laziness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TransformStats {
    /// Forward (coefficient → evaluation) transforms performed.
    pub forward: u64,
    /// Inverse (evaluation → coefficient) transforms performed.
    pub inverse: u64,
}

/// Precomputed twiddle factors for negacyclic NTTs of a fixed degree.
#[derive(Debug, Clone)]
pub struct NttTables {
    degree: usize,
    /// Powers of the 2n-th root of unity `psi`, in bit-reversed order, for
    /// the forward transform.
    psi_rev: Vec<u64>,
    /// Powers of `psi^{-1}`, bit-reversed, for the inverse transform.
    inv_psi_rev: Vec<u64>,
    /// `n^{-1} mod p`.
    inv_degree: u64,
    /// Transform counters, shared by clones of the same table set.
    counters: Arc<TransformCounters>,
    /// The SIMD back end the butterfly stages run on, snapshotted at
    /// construction (see [`SimdPolicy::global`]).
    policy: SimdPolicy,
}

impl NttTables {
    /// Builds tables for degree `n` (must be a power of two, at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two, is smaller than 2 or exceeds the
    /// 2-adicity of the field (`2^31`).
    pub fn new(degree: usize) -> Self {
        Self::with_policy(degree, SimdPolicy::global())
    }

    /// [`NttTables::new`] with an explicit SIMD policy instead of the
    /// process-wide one (tests and benches use this to run both back ends in
    /// one process).
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`NttTables::new`].
    pub fn with_policy(degree: usize, policy: SimdPolicy) -> Self {
        assert!(
            degree.is_power_of_two() && degree >= 2,
            "degree must be a power of two >= 2"
        );
        assert!(degree <= (1 << 31), "degree exceeds the field's 2-adicity");
        // psi is a primitive 2n-th root of unity.
        let log2_2n = (2 * degree).trailing_zeros();
        let psi = p_pow(GENERATOR, (MODULUS - 1) >> log2_2n);
        debug_assert_eq!(p_pow(psi, degree as u64), MODULUS - 1, "psi^n must be -1");
        let inv_psi = p_inv(psi);

        let mut psi_rev = vec![0u64; degree];
        let mut inv_psi_rev = vec![0u64; degree];
        let log_n = degree.trailing_zeros();
        let mut power = 1u64;
        let mut inv_power = 1u64;
        let mut powers = vec![0u64; degree];
        let mut inv_powers = vec![0u64; degree];
        for i in 0..degree {
            powers[i] = power;
            inv_powers[i] = inv_power;
            power = p_mul(power, psi);
            inv_power = p_mul(inv_power, inv_psi);
        }
        for (i, (p, ip)) in powers.iter().zip(&inv_powers).enumerate() {
            let rev = (i as u32).reverse_bits() >> (32 - log_n);
            psi_rev[rev as usize] = *p;
            inv_psi_rev[rev as usize] = *ip;
        }
        NttTables {
            degree,
            psi_rev,
            inv_psi_rev,
            inv_degree: p_inv(degree as u64),
            counters: Arc::new(TransformCounters::default()),
            policy,
        }
    }

    /// The polynomial degree these tables serve.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// The SIMD back end this table set's transforms run on.
    pub fn policy(&self) -> SimdPolicy {
        self.policy
    }

    /// `(forward, inverse)` transform counts since construction (or the last
    /// [`NttTables::reset_transform_counts`]), shared across clones.
    /// Positional shorthand for [`NttTables::transform_stats`].
    pub fn transform_counts(&self) -> (u64, u64) {
        let stats = self.transform_stats();
        (stats.forward, stats.inverse)
    }

    /// Cumulative transform counts since construction (or the last
    /// [`NttTables::reset_transform_counts`]), shared across clones: the
    /// telemetry view of the NTT hot path, fed into the session metrics
    /// registry and usable for representation-laziness assertions (one
    /// relaxed atomic load per field, negligible next to a transform).
    pub fn transform_stats(&self) -> TransformStats {
        TransformStats {
            forward: self.counters.forward.load(Ordering::Relaxed),
            inverse: self.counters.inverse.load(Ordering::Relaxed),
        }
    }

    /// Resets the transform counters to zero (affects all clones).
    pub fn reset_transform_counts(&self) {
        self.counters.forward.store(0, Ordering::Relaxed);
        self.counters.inverse.store(0, Ordering::Relaxed);
    }

    /// In-place forward negacyclic NTT (Cooley–Tukey, decimation in time,
    /// producing bit-reversed output that the inverse transform consumes).
    ///
    /// Butterflies use lazy (deferred) reduction: intermediate values roam
    /// the full `[0, 2^64) ⊂ [0, 2p)` lazy-residue range across stages, and
    /// the canonicalizing reduction is fused into the last butterfly stage —
    /// see the [`crate::simd`] module docs for the invariant. Output is
    /// always canonical.
    pub fn forward(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.degree);
        self.counters.forward.fetch_add(1, Ordering::Relaxed);
        self.forward_subtree(a, 1);
        debug_assert!(
            a.iter().all(|&x| x < MODULUS),
            "forward NTT output must be canonical after the fused normalization"
        );
    }

    /// Forward NTT with up to `threads` worker threads cooperating on
    /// butterfly chunks. Bit-identical to [`NttTables::forward`]: the
    /// transform recurses on independent halves after each decimation stage,
    /// so chunking never reorders a butterfly's operands. Falls back to the
    /// sequential path for small slices or `threads <= 1`.
    pub fn forward_threaded(&self, a: &mut [u64], threads: usize) {
        debug_assert_eq!(a.len(), self.degree);
        self.counters.forward.fetch_add(1, Ordering::Relaxed);
        self.forward_node(a, 1, threads);
        debug_assert!(
            a.iter().all(|&x| x < MODULUS),
            "forward NTT output must be canonical after the fused normalization"
        );
    }

    /// In-place inverse negacyclic NTT (Gentleman–Sande).
    ///
    /// Butterfly stages run lazy; the final `n^{-1}` scaling performs the
    /// single canonicalizing reduction pass, so the output is canonical.
    pub fn inverse(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.degree);
        self.counters.inverse.fetch_add(1, Ordering::Relaxed);
        self.inverse_subtree(a, 1);
        simd::scale_canonical(a, self.inv_degree, self.policy);
        debug_assert!(
            a.iter().all(|&x| x < MODULUS),
            "inverse NTT output must be canonical after the scaling pass"
        );
    }

    /// Inverse NTT with up to `threads` cooperating worker threads
    /// (bit-identical to [`NttTables::inverse`], see
    /// [`NttTables::forward_threaded`]).
    pub fn inverse_threaded(&self, a: &mut [u64], threads: usize) {
        debug_assert_eq!(a.len(), self.degree);
        self.counters.inverse.fetch_add(1, Ordering::Relaxed);
        self.inverse_node(a, 1, threads);
        simd::scale_canonical(a, self.inv_degree, self.policy);
        debug_assert!(
            a.iter().all(|&x| x < MODULUS),
            "inverse NTT output must be canonical after the scaling pass"
        );
    }

    /// Iterative Cooley–Tukey over the subtree rooted at twiddle-heap node
    /// `root` (the full transform is `root = 1`). After each decimation
    /// stage the halves are independent subtrees with heap children
    /// `2*root` and `2*root + 1`, which is what makes the threaded split
    /// safe and exact.
    /// Every butterfly runs lazy ([`simd::forward_stage`]); the subtree's
    /// finest stage (`t == 1`) is always the whole transform's last stage
    /// for these indices, so that stage canonicalizes as it goes — the
    /// "single normalization pass" is free. Each stage's twiddles occupy
    /// the contiguous heap range `psi_rev[root·m..(root + 1)·m]`, so the
    /// whole stage dispatches as one call.
    fn forward_subtree(&self, a: &mut [u64], root: usize) {
        let n = a.len();
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t /= 2;
            let canonical = 2 * m == n;
            let twiddles = &self.psi_rev[root * m..root * m + m];
            simd::forward_stage(a, twiddles, t, canonical, self.policy);
            m *= 2;
        }
    }

    /// Recursive splitter of the forward transform: performs the root
    /// butterfly stage (lazy — only leaf subtrees reach the final,
    /// canonicalizing stage), then hands the two independent halves to
    /// scoped worker threads while the budget and slice length allow.
    fn forward_node(&self, a: &mut [u64], root: usize, threads: usize) {
        let n = a.len();
        if threads <= 1 || n < MIN_SPLIT {
            self.forward_subtree(a, root);
            return;
        }
        let half = n / 2;
        let s = self.psi_rev[root];
        let (lo, hi) = a.split_at_mut(half);
        simd::forward_butterfly_block(lo, hi, s, false, self.policy);
        let (t_lo, t_hi) = (threads - threads / 2, threads / 2);
        std::thread::scope(|scope| {
            scope.spawn(|| self.forward_node(hi, 2 * root + 1, t_hi.max(1)));
            self.forward_node(lo, 2 * root, t_lo);
        });
    }

    /// Iterative Gentleman–Sande over the subtree rooted at `root`
    /// (mirror of [`NttTables::forward_subtree`]; no final `1/n` scaling).
    /// All stages lazy — the caller's scaling pass canonicalizes.
    fn inverse_subtree(&self, a: &mut [u64], root: usize) {
        let n = a.len();
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let twiddles = &self.inv_psi_rev[root * h..root * h + h];
            simd::inverse_stage(a, twiddles, t, self.policy);
            t *= 2;
            m = h;
        }
    }

    /// Recursive splitter of the inverse transform: transforms the two
    /// independent halves (on scoped worker threads while the budget
    /// allows), then performs the root combining stage (lazy).
    fn inverse_node(&self, a: &mut [u64], root: usize, threads: usize) {
        let n = a.len();
        if threads <= 1 || n < MIN_SPLIT {
            self.inverse_subtree(a, root);
            return;
        }
        let half = n / 2;
        let (lo, hi) = a.split_at_mut(half);
        let (t_lo, t_hi) = (threads - threads / 2, threads / 2);
        std::thread::scope(|scope| {
            scope.spawn(|| self.inverse_node(hi, 2 * root + 1, t_hi.max(1)));
            self.inverse_node(lo, 2 * root, t_lo);
        });
        let s = self.inv_psi_rev[root];
        simd::inverse_butterfly_block(lo, hi, s, self.policy);
    }
}

/// A dense polynomial of fixed degree in `Z_p[x] / (x^n + 1)`, tagged with
/// the [`Domain`] its stored values are in.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<u64>,
    domain: Domain,
}

impl Poly {
    /// The zero polynomial of the given degree (zero in either domain; tagged
    /// `Coeff`).
    pub fn zero(degree: usize) -> Self {
        Poly {
            coeffs: vec![0; degree],
            domain: Domain::Coeff,
        }
    }

    /// Builds a coefficient-form polynomial from coefficients (reduced modulo
    /// `p`). Public entry point for arbitrary input; internal callers with
    /// already-reduced values use [`Poly::from_reduced`] and skip the pass.
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        Poly {
            coeffs: coeffs.into_iter().map(|c| c % MODULUS).collect(),
            domain: Domain::Coeff,
        }
    }

    /// Builds a polynomial from values already reduced modulo `p`, without
    /// the re-reduction pass of [`Poly::from_coeffs`].
    ///
    /// Debug builds assert the precondition; release builds trust it.
    pub fn from_reduced(values: Vec<u64>, domain: Domain) -> Self {
        debug_assert!(
            values.iter().all(|&c| c < MODULUS),
            "from_reduced requires canonical values"
        );
        Poly {
            coeffs: values,
            domain,
        }
    }

    /// Builds an evaluation-form polynomial from values (reduced modulo `p`).
    pub fn from_eval_values(values: Vec<u64>) -> Self {
        Poly {
            coeffs: values.into_iter().map(|c| c % MODULUS).collect(),
            domain: Domain::Eval,
        }
    }

    /// The polynomial's stored values: coefficients in [`Domain::Coeff`],
    /// evaluation values in [`Domain::Eval`].
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// The domain the stored values are in.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// Consumes the polynomial and returns its owned backing buffer, so a
    /// dead polynomial's storage can go back to a [`crate::PolyArena`]
    /// instead of the allocator.
    pub(crate) fn into_coeffs(self) -> Vec<u64> {
        self.coeffs
    }

    /// The polynomial's degree bound (`n`).
    pub fn degree(&self) -> usize {
        self.coeffs.len()
    }

    /// Converts to evaluation form in place (no-op if already there).
    pub fn convert_to_eval(&mut self, tables: &NttTables) {
        if self.domain == Domain::Coeff {
            tables.forward(&mut self.coeffs);
            self.domain = Domain::Eval;
        }
    }

    /// Converts to coefficient form in place (no-op if already there).
    pub fn convert_to_coeff(&mut self, tables: &NttTables) {
        if self.domain == Domain::Eval {
            tables.inverse(&mut self.coeffs);
            self.domain = Domain::Coeff;
        }
    }

    /// A copy of this polynomial in evaluation form.
    pub fn to_eval(&self, tables: &NttTables) -> Poly {
        let mut out = self.clone();
        out.convert_to_eval(tables);
        out
    }

    /// A copy of this polynomial in coefficient form.
    pub fn to_coeff(&self, tables: &NttTables) -> Poly {
        let mut out = self.clone();
        out.convert_to_coeff(tables);
        out
    }

    /// Coefficient-wise (resp. pointwise) addition; both operands must be in
    /// the same domain, which the result keeps.
    pub fn add(&self, other: &Poly) -> Poly {
        debug_assert_eq!(self.degree(), other.degree());
        debug_assert_eq!(self.domain, other.domain, "domain mismatch in add");
        Poly {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| p_add(a, b))
                .collect(),
            domain: self.domain,
        }
    }

    /// Coefficient-wise (resp. pointwise) subtraction; both operands must be
    /// in the same domain, which the result keeps.
    pub fn sub(&self, other: &Poly) -> Poly {
        debug_assert_eq!(self.degree(), other.degree());
        debug_assert_eq!(self.domain, other.domain, "domain mismatch in sub");
        Poly {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| p_sub(a, b))
                .collect(),
            domain: self.domain,
        }
    }

    /// Coefficient-wise (resp. pointwise) negation (domain-preserving).
    pub fn negate(&self) -> Poly {
        Poly {
            coeffs: self.coeffs.iter().map(|&a| p_neg(a)).collect(),
            domain: self.domain,
        }
    }

    /// In-place variant of [`Poly::add`]: `self += other`, no allocation.
    /// Both operands must be in the same domain, which is preserved.
    pub fn add_assign(&mut self, other: &Poly) {
        debug_assert_eq!(self.degree(), other.degree());
        debug_assert_eq!(self.domain, other.domain, "domain mismatch in add_assign");
        for (a, &b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a = p_add(*a, b);
        }
    }

    /// In-place variant of [`Poly::sub`]: `self -= other`, no allocation.
    /// Both operands must be in the same domain, which is preserved.
    pub fn sub_assign(&mut self, other: &Poly) {
        debug_assert_eq!(self.degree(), other.degree());
        debug_assert_eq!(self.domain, other.domain, "domain mismatch in sub_assign");
        for (a, &b) in self.coeffs.iter_mut().zip(&other.coeffs) {
            *a = p_sub(*a, b);
        }
    }

    /// In-place variant of [`Poly::negate`] (domain-preserving, no
    /// allocation).
    pub fn neg_assign(&mut self) {
        for a in self.coeffs.iter_mut() {
            *a = p_neg(*a);
        }
    }

    /// Multiplies every stored value by a scalar (domain-preserving: scaling
    /// commutes with the transform).
    pub fn scale(&self, k: u64) -> Poly {
        Poly {
            coeffs: self.coeffs.iter().map(|&a| p_mul(a, k)).collect(),
            domain: self.domain,
        }
    }

    /// Pointwise ring product of two evaluation-form polynomials — the
    /// `O(n)` hot-path multiply the lazy representation buys.
    ///
    /// # Panics
    ///
    /// Debug builds panic unless both operands are in [`Domain::Eval`] and
    /// degrees match.
    pub fn mul_eval(&self, other: &Poly) -> Poly {
        debug_assert_eq!(self.degree(), other.degree());
        debug_assert_eq!(self.domain, Domain::Eval, "mul_eval needs Eval operands");
        debug_assert_eq!(other.domain, Domain::Eval, "mul_eval needs Eval operands");
        Poly {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| p_mul(a, b))
                .collect(),
            domain: Domain::Eval,
        }
    }

    /// Negacyclic product of two coefficient-form polynomials using the
    /// supplied NTT tables (three transforms). Evaluation-form operands
    /// should use [`Poly::mul_eval`] instead, which needs none.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the degrees of the operands and tables
    /// differ or either operand is not in coefficient form.
    pub fn mul_ntt(&self, other: &Poly, tables: &NttTables) -> Poly {
        let mut scratch = Vec::new();
        self.mul_ntt_with_scratch(other, tables, &mut scratch)
    }

    /// [`Poly::mul_ntt`] with a caller-owned scratch buffer for the second
    /// operand's transform, so repeated products reuse one allocation.
    pub fn mul_ntt_with_scratch(
        &self,
        other: &Poly,
        tables: &NttTables,
        scratch: &mut Vec<u64>,
    ) -> Poly {
        debug_assert_eq!(self.degree(), tables.degree());
        debug_assert_eq!(other.degree(), tables.degree());
        debug_assert_eq!(self.domain, Domain::Coeff, "mul_ntt needs Coeff operands");
        debug_assert_eq!(other.domain, Domain::Coeff, "mul_ntt needs Coeff operands");
        let mut a = self.coeffs.clone();
        scratch.clear();
        scratch.extend_from_slice(&other.coeffs);
        tables.forward(&mut a);
        tables.forward(scratch);
        for (x, y) in a.iter_mut().zip(scratch.iter()) {
            *x = p_mul(*x, *y);
        }
        tables.inverse(&mut a);
        Poly {
            coeffs: a,
            domain: Domain::Coeff,
        }
    }

    /// Schoolbook negacyclic product (`O(n^2)`), used to validate the NTT.
    /// Coefficient-form operands only.
    pub fn mul_naive(&self, other: &Poly) -> Poly {
        let n = self.degree();
        debug_assert_eq!(n, other.degree());
        debug_assert_eq!(self.domain, Domain::Coeff);
        debug_assert_eq!(other.domain, Domain::Coeff);
        let mut out = vec![0u64; n];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                let k = i + j;
                if k < n {
                    out[k] = p_mul_add(a, b, out[k]);
                } else {
                    out[k - n] = p_sub(out[k - n], p_mul(a, b));
                }
            }
        }
        Poly {
            coeffs: out,
            domain: Domain::Coeff,
        }
    }

    /// Applies the Galois automorphism `x -> x^galois_elt` (used by slot
    /// rotations); `galois_elt` must be odd. Coefficient-form operands only —
    /// evaluation-form polynomials use [`Poly::apply_galois_eval`], which is
    /// a pure permutation.
    pub fn apply_galois(&self, galois_elt: usize) -> Poly {
        debug_assert_eq!(self.domain, Domain::Coeff);
        let n = self.degree();
        debug_assert!(galois_elt % 2 == 1, "Galois element must be odd");
        let mut out = vec![0u64; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let raw = i * galois_elt;
            let idx = raw % n;
            // x^n = -1, so every wrap around n flips the sign.
            let wraps = (raw / n) % 2;
            if wraps == 0 {
                out[idx] = p_add(out[idx], c);
            } else {
                out[idx] = p_sub(out[idx], c);
            }
        }
        Poly {
            coeffs: out,
            domain: Domain::Coeff,
        }
    }

    /// Applies the Galois automorphism `x -> x^galois_elt` to an
    /// evaluation-form polynomial.
    ///
    /// In this domain the automorphism is a pure index permutation (see
    /// [`galois_eval_permutation`]): no ring multiplications and, crucially,
    /// no transforms. Hot-path callers that rotate repeatedly should cache
    /// the permutation and gather directly.
    ///
    /// # Panics
    ///
    /// Debug builds panic if the operand is not in [`Domain::Eval`] or
    /// `galois_elt` is even.
    pub fn apply_galois_eval(&self, galois_elt: usize) -> Poly {
        debug_assert_eq!(self.domain, Domain::Eval);
        let perm = galois_eval_permutation(self.degree(), galois_elt);
        let mut out = vec![0u64; self.degree()];
        crate::simd::gather_chunk(
            &self.coeffs,
            &perm,
            &mut out,
            crate::simd::SimdPolicy::global(),
        );
        Poly {
            coeffs: out,
            domain: Domain::Eval,
        }
    }
}

/// The index permutation realizing the Galois automorphism
/// `x -> x^galois_elt` on evaluation-form polynomials of degree `n`:
/// `out[i] = in[perm[i]]`.
///
/// The forward transform stores `A(psi^(2·br(i)+1))` at index `i` (`br` =
/// bit reversal over `log2 n` bits), and the automorphism maps the
/// evaluation at `psi^j` to the evaluation at `psi^(j·g mod 2n)` — so the
/// automorphism permutes indices, and the permutation depends only on
/// `(n, galois_elt)`, which makes it worth caching per rotation step.
///
/// # Panics
///
/// Debug builds panic if `galois_elt` is even or `n` is not a power of two.
pub fn galois_eval_permutation(n: usize, galois_elt: usize) -> Vec<u32> {
    debug_assert!(n.is_power_of_two());
    debug_assert!(galois_elt % 2 == 1, "Galois element must be odd");
    let log_n = n.trailing_zeros();
    let br = |i: usize| -> usize { ((i as u32).reverse_bits() >> (32 - log_n)) as usize };
    (0..n)
        .map(|i| {
            // The value output slot `i` must hold is A(psi^(j·g)) where
            // j = 2·br(i)+1; the input stores it at the index whose odd
            // exponent is j·g mod 2n.
            let j = 2 * br(i) + 1;
            let jg = (j * galois_elt) % (2 * n);
            br((jg - 1) / 2) as u32
        })
        .collect()
}

/// Serializes as `{"domain": "Coeff"|"Eval", "values": [...]}`.
impl serde::Serialize for Poly {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let domain = match self.domain {
            Domain::Coeff => "Coeff",
            Domain::Eval => "Eval",
        };
        serializer.serialize_value(serde::Value::Object(vec![
            ("domain".to_string(), serde::Value::Str(domain.to_string())),
            (
                "values".to_string(),
                serde::Value::Array(self.coeffs.iter().map(|&c| serde::Value::UInt(c)).collect()),
            ),
        ]))
    }
}

impl<'de> serde::Deserialize<'de> for Poly {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let domain = match value.field("domain")? {
            serde::Value::Str(s) if s == "Coeff" => Domain::Coeff,
            serde::Value::Str(s) if s == "Eval" => Domain::Eval,
            other => return Err(serde::Error::msg(format!("unknown Poly domain {other:?}")).into()),
        };
        let values = value
            .field("values")?
            .as_array("Poly::values")?
            .iter()
            .map(|v| match v {
                serde::Value::UInt(c) => Ok(*c),
                serde::Value::Int(c) if *c >= 0 => Ok(*c as u64),
                other => Err(serde::Error::msg(format!("bad Poly value {other:?}"))),
            })
            .collect::<Result<Vec<u64>, serde::Error>>()?;
        Ok(Poly::from_coeffs(values).with_domain(domain))
    }
}

impl Poly {
    /// Retags the stored values (used by deserialization; values are
    /// unchanged).
    fn with_domain(mut self, domain: Domain) -> Poly {
        self.domain = domain;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly_of(vals: &[u64]) -> Poly {
        Poly::from_coeffs(vals.to_vec())
    }

    /// Deterministic pseudo-random canonical field elements.
    fn random_values(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                // xorshift*; bias from the modulus reduction is irrelevant here.
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D) % MODULUS
            })
            .collect()
    }

    #[test]
    fn modular_arithmetic_basics() {
        assert_eq!(p_add(MODULUS - 1, 1), 0);
        assert_eq!(p_sub(0, 1), MODULUS - 1);
        assert_eq!(p_neg(0), 0);
        assert_eq!(p_mul(MODULUS - 1, MODULUS - 1), 1);
        assert_eq!(p_mul(p_inv(12345), 12345), 1);
        assert_eq!(p_pow(3, 0), 1);
    }

    #[test]
    fn fast_reduction_matches_division() {
        // Boundary products plus pseudo-random pairs: the fast path must
        // agree with the 128-bit `%` it replaced on every limb pattern.
        let specials = [
            0u64,
            1,
            2,
            EPSILON - 1,
            EPSILON,
            EPSILON + 1,
            1 << 32,
            (1 << 32) + 1,
            MODULUS - 2,
            MODULUS - 1,
            u64::MAX, // non-canonical input still reduces correctly
        ];
        for &a in &specials {
            for &b in &specials {
                let expected = ((u128::from(a) * u128::from(b)) % u128::from(MODULUS)) as u64;
                assert_eq!(p_mul(a, b), expected, "a={a:#x} b={b:#x}");
            }
        }
        let values = random_values(512, 0xDEC0DE);
        for pair in values.chunks(2) {
            let (a, b) = (pair[0], pair[1]);
            let expected = ((u128::from(a) * u128::from(b)) % u128::from(MODULUS)) as u64;
            assert_eq!(p_mul(a, b), expected, "a={a:#x} b={b:#x}");
            let c = a ^ b;
            let expected_fused = ((u128::from(a) * u128::from(b) + u128::from(c % MODULUS))
                % u128::from(MODULUS)) as u64;
            assert_eq!(p_mul_add(a, b, c % MODULUS), expected_fused);
        }
    }

    #[test]
    fn ntt_round_trips() {
        let tables = NttTables::new(64);
        let original: Vec<u64> = (0..64u64).map(|i| i * i + 7).collect();
        let mut a = original.clone();
        tables.forward(&mut a);
        tables.inverse(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn threaded_transforms_are_bit_identical_to_sequential() {
        let degree = 4096;
        let tables = NttTables::new(degree);
        let original = random_values(degree, 0xBEEF);
        let mut sequential = original.clone();
        tables.forward(&mut sequential);
        for threads in [2, 3, 4, 8] {
            let mut threaded = original.clone();
            tables.forward_threaded(&mut threaded, threads);
            assert_eq!(threaded, sequential, "forward with {threads} threads");
        }
        let mut back_seq = sequential.clone();
        tables.inverse(&mut back_seq);
        assert_eq!(back_seq, original);
        for threads in [2, 3, 4, 8] {
            let mut back = sequential.clone();
            tables.inverse_threaded(&mut back, threads);
            assert_eq!(back, original, "inverse with {threads} threads");
        }
    }

    #[test]
    fn transform_counters_count_whole_transforms() {
        let tables = NttTables::new(16);
        assert_eq!(tables.transform_counts(), (0, 0));
        let mut a = vec![1u64; 16];
        tables.forward(&mut a);
        tables.forward_threaded(&mut a, 2);
        tables.inverse(&mut a);
        assert_eq!(tables.transform_counts(), (2, 1));
        // Clones share the counters.
        let clone = tables.clone();
        clone.inverse(&mut a);
        assert_eq!(tables.transform_counts(), (2, 2));
        tables.reset_transform_counts();
        assert_eq!(clone.transform_counts(), (0, 0));
    }

    #[test]
    fn ntt_multiplication_matches_schoolbook() {
        let tables = NttTables::new(32);
        let a = Poly::from_coeffs(
            (0..32u64)
                .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
                .collect(),
        );
        let b = Poly::from_coeffs(
            (0..32u64)
                .map(|i| (i + 3).wrapping_mul(0xD1B54A32D192ED03))
                .collect(),
        );
        assert_eq!(a.mul_ntt(&b, &tables), a.mul_naive(&b));
    }

    #[test]
    fn eval_domain_product_matches_coefficient_product() {
        let tables = NttTables::new(64);
        let a = Poly::from_coeffs(random_values(64, 3));
        let b = Poly::from_coeffs(random_values(64, 5));
        let expected = a.mul_ntt(&b, &tables);
        let lazy = a.to_eval(&tables).mul_eval(&b.to_eval(&tables));
        assert_eq!(lazy.domain(), Domain::Eval);
        assert_eq!(lazy.to_coeff(&tables), expected);
    }

    #[test]
    fn eval_domain_galois_matches_coefficient_galois() {
        let tables = NttTables::new(32);
        let a = Poly::from_coeffs(random_values(32, 0xA5));
        for galois_elt in [1usize, 3, 5, 7, 9, 31, 63] {
            let expected = a.apply_galois(galois_elt);
            let lazy = a.to_eval(&tables).apply_galois_eval(galois_elt);
            assert_eq!(
                lazy.to_coeff(&tables),
                expected,
                "galois element {galois_elt}"
            );
        }
    }

    #[test]
    fn from_reduced_skips_re_reduction_and_agrees_with_from_coeffs() {
        let values = random_values(16, 9);
        assert_eq!(
            Poly::from_reduced(values.clone(), Domain::Coeff),
            Poly::from_coeffs(values.clone())
        );
        assert_eq!(
            Poly::from_reduced(values.clone(), Domain::Eval),
            Poly::from_eval_values(values)
        );
    }

    #[test]
    fn poly_serialization_round_trips() {
        let tables = NttTables::new(16);
        let p = Poly::from_coeffs(random_values(16, 11)).to_eval(&tables);
        let value = serde::to_value(&p);
        let back: Poly = serde::from_value(&value).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn negacyclic_wraparound_is_negative() {
        // (x^(n-1)) * x = x^n = -1 in the negacyclic ring.
        let n = 16;
        let tables = NttTables::new(n);
        let mut xs = vec![0u64; n];
        xs[n - 1] = 1;
        let x_pow_n_minus_1 = Poly::from_coeffs(xs);
        let mut xs = vec![0u64; n];
        xs[1] = 1;
        let x = Poly::from_coeffs(xs);
        let prod = x_pow_n_minus_1.mul_ntt(&x, &tables);
        let mut expected = vec![0u64; n];
        expected[0] = MODULUS - 1;
        assert_eq!(prod.coeffs(), &expected[..]);
    }

    #[test]
    fn addition_and_negation_are_inverse() {
        let a = poly_of(&[1, 2, 3, 4]);
        let sum = a.add(&a.negate());
        assert_eq!(sum, Poly::zero(4));
        assert_eq!(a.sub(&a), Poly::zero(4));
    }

    #[test]
    fn in_place_ops_match_their_allocating_counterparts() {
        let a = Poly::from_coeffs(random_values(32, 21));
        let b = Poly::from_coeffs(random_values(32, 22));
        let mut acc = a.clone();
        acc.add_assign(&b);
        assert_eq!(acc, a.add(&b));
        let mut acc = a.clone();
        acc.sub_assign(&b);
        assert_eq!(acc, a.sub(&b));
        let mut acc = a.clone();
        acc.neg_assign();
        assert_eq!(acc, a.negate());
        // Domain is preserved by the in-place forms too.
        let tables = NttTables::new(32);
        let mut eval = a.to_eval(&tables);
        eval.add_assign(&b.to_eval(&tables));
        assert_eq!(eval.domain(), Domain::Eval);
        assert_eq!(eval, a.to_eval(&tables).add(&b.to_eval(&tables)));
    }

    #[test]
    fn scaling_distributes_over_addition() {
        let a = poly_of(&[5, 6, 7, 8]);
        let b = poly_of(&[9, 10, 11, 12]);
        assert_eq!(a.add(&b).scale(3), a.scale(3).add(&b.scale(3)));
    }

    #[test]
    fn galois_automorphism_is_a_signed_permutation() {
        let n = 8;
        let a = Poly::from_coeffs((1..=n as u64).collect());
        let g = a.apply_galois(3);
        // Every original coefficient magnitude appears exactly once (up to sign).
        let mut seen = vec![false; n + 1];
        for &c in g.coeffs() {
            let magnitude = if c > MODULUS / 2 {
                (MODULUS - c) as usize
            } else {
                c as usize
            };
            assert!(magnitude >= 1 && magnitude <= n);
            assert!(!seen[magnitude], "coefficient duplicated by automorphism");
            seen[magnitude] = true;
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn tables_reject_non_power_of_two_degree() {
        let _ = NttTables::new(48);
    }
}
