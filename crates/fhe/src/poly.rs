//! Polynomial arithmetic in the negacyclic ring `Z_p[x] / (x^n + 1)`.
//!
//! This is the computational workhorse of the execution engine: ciphertext
//! payload polynomials live in this ring, and multiplications use a
//! negacyclic number-theoretic transform (NTT) so that the measured cost of
//! homomorphic operations scales the way BFV's does (`O(n log n)` for
//! multiplications and key switching, `O(n)` for additions).
//!
//! The working prime is the Goldilocks prime `p = 2^64 - 2^32 + 1`, whose
//! multiplicative group has 2-adicity 32, so power-of-two NTTs up to huge
//! sizes are available.

/// The Goldilocks prime `2^64 - 2^32 + 1`.
pub const MODULUS: u64 = 0xFFFF_FFFF_0000_0001;

/// Modular addition in `Z_p`.
#[inline]
pub fn p_add(a: u64, b: u64) -> u64 {
    let (sum, overflow) = a.overflowing_add(b);
    let mut r = sum;
    if overflow || sum >= MODULUS {
        r = sum.wrapping_sub(MODULUS);
    }
    r
}

/// Modular subtraction in `Z_p`.
#[inline]
pub fn p_sub(a: u64, b: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a.wrapping_add(MODULUS).wrapping_sub(b)
    }
}

/// Modular negation in `Z_p`.
#[inline]
pub fn p_neg(a: u64) -> u64 {
    if a == 0 {
        0
    } else {
        MODULUS - a
    }
}

/// Modular multiplication in `Z_p` via 128-bit arithmetic.
#[inline]
pub fn p_mul(a: u64, b: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(MODULUS)) as u64
}

/// Modular exponentiation in `Z_p`.
pub fn p_pow(mut base: u64, mut exp: u64) -> u64 {
    let mut acc = 1u64;
    base %= MODULUS;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = p_mul(acc, base);
        }
        base = p_mul(base, base);
        exp >>= 1;
    }
    acc
}

/// Modular inverse in `Z_p` (Fermat's little theorem; `a` must be non-zero).
pub fn p_inv(a: u64) -> u64 {
    debug_assert!(a != 0, "zero has no inverse");
    p_pow(a, MODULUS - 2)
}

/// A multiplicative generator of `Z_p^*` for the Goldilocks prime.
const GENERATOR: u64 = 7;

/// Precomputed twiddle factors for negacyclic NTTs of a fixed degree.
#[derive(Debug, Clone)]
pub struct NttTables {
    degree: usize,
    /// Powers of the 2n-th root of unity `psi`, in bit-reversed order, for
    /// the forward transform.
    psi_rev: Vec<u64>,
    /// Powers of `psi^{-1}`, bit-reversed, for the inverse transform.
    inv_psi_rev: Vec<u64>,
    /// `n^{-1} mod p`.
    inv_degree: u64,
}

impl NttTables {
    /// Builds tables for degree `n` (must be a power of two, at least 2).
    ///
    /// # Panics
    ///
    /// Panics if `n` is not a power of two, is smaller than 2 or exceeds the
    /// 2-adicity of the field (`2^31`).
    pub fn new(degree: usize) -> Self {
        assert!(
            degree.is_power_of_two() && degree >= 2,
            "degree must be a power of two >= 2"
        );
        assert!(degree <= (1 << 31), "degree exceeds the field's 2-adicity");
        // psi is a primitive 2n-th root of unity.
        let log2_2n = (2 * degree).trailing_zeros();
        let psi = p_pow(GENERATOR, (MODULUS - 1) >> log2_2n);
        debug_assert_eq!(p_pow(psi, degree as u64), MODULUS - 1, "psi^n must be -1");
        let inv_psi = p_inv(psi);

        let mut psi_rev = vec![0u64; degree];
        let mut inv_psi_rev = vec![0u64; degree];
        let log_n = degree.trailing_zeros();
        let mut power = 1u64;
        let mut inv_power = 1u64;
        let mut powers = vec![0u64; degree];
        let mut inv_powers = vec![0u64; degree];
        for i in 0..degree {
            powers[i] = power;
            inv_powers[i] = inv_power;
            power = p_mul(power, psi);
            inv_power = p_mul(inv_power, inv_psi);
        }
        for (i, (p, ip)) in powers.iter().zip(&inv_powers).enumerate() {
            let rev = (i as u32).reverse_bits() >> (32 - log_n);
            psi_rev[rev as usize] = *p;
            inv_psi_rev[rev as usize] = *ip;
        }
        NttTables {
            degree,
            psi_rev,
            inv_psi_rev,
            inv_degree: p_inv(degree as u64),
        }
    }

    /// The polynomial degree these tables serve.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// In-place forward negacyclic NTT (Cooley–Tukey, decimation in time,
    /// producing bit-reversed output that the inverse transform consumes).
    pub fn forward(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.degree);
        let n = self.degree;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let j2 = j1 + t;
                let s = self.psi_rev[m + i];
                for j in j1..j2 {
                    let u = a[j];
                    let v = p_mul(a[j + t], s);
                    a[j] = p_add(u, v);
                    a[j + t] = p_sub(u, v);
                }
            }
            m *= 2;
        }
    }

    /// In-place inverse negacyclic NTT (Gentleman–Sande).
    pub fn inverse(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.degree);
        let n = self.degree;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0usize;
            for i in 0..h {
                let j2 = j1 + t;
                let s = self.inv_psi_rev[h + i];
                for j in j1..j2 {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = p_add(u, v);
                    a[j + t] = p_mul(p_sub(u, v), s);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = p_mul(*x, self.inv_degree);
        }
    }
}

/// A dense polynomial of fixed degree in `Z_p[x] / (x^n + 1)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Poly {
    coeffs: Vec<u64>,
}

impl Poly {
    /// The zero polynomial of the given degree.
    pub fn zero(degree: usize) -> Self {
        Poly {
            coeffs: vec![0; degree],
        }
    }

    /// Builds a polynomial from coefficients (reduced modulo `p`).
    pub fn from_coeffs(coeffs: Vec<u64>) -> Self {
        Poly {
            coeffs: coeffs.into_iter().map(|c| c % MODULUS).collect(),
        }
    }

    /// The polynomial's coefficients.
    pub fn coeffs(&self) -> &[u64] {
        &self.coeffs
    }

    /// The polynomial's degree bound (`n`).
    pub fn degree(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient-wise addition.
    pub fn add(&self, other: &Poly) -> Poly {
        debug_assert_eq!(self.degree(), other.degree());
        Poly {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| p_add(a, b))
                .collect(),
        }
    }

    /// Coefficient-wise subtraction.
    pub fn sub(&self, other: &Poly) -> Poly {
        debug_assert_eq!(self.degree(), other.degree());
        Poly {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(&a, &b)| p_sub(a, b))
                .collect(),
        }
    }

    /// Coefficient-wise negation.
    pub fn negate(&self) -> Poly {
        Poly {
            coeffs: self.coeffs.iter().map(|&a| p_neg(a)).collect(),
        }
    }

    /// Multiplies every coefficient by a scalar.
    pub fn scale(&self, k: u64) -> Poly {
        Poly {
            coeffs: self.coeffs.iter().map(|&a| p_mul(a, k)).collect(),
        }
    }

    /// Negacyclic product using the supplied NTT tables.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if the degrees of the operands and tables differ.
    pub fn mul_ntt(&self, other: &Poly, tables: &NttTables) -> Poly {
        debug_assert_eq!(self.degree(), tables.degree());
        debug_assert_eq!(other.degree(), tables.degree());
        let mut a = self.coeffs.clone();
        let mut b = other.coeffs.clone();
        tables.forward(&mut a);
        tables.forward(&mut b);
        for (x, y) in a.iter_mut().zip(&b) {
            *x = p_mul(*x, *y);
        }
        tables.inverse(&mut a);
        Poly { coeffs: a }
    }

    /// Schoolbook negacyclic product (`O(n^2)`), used to validate the NTT.
    pub fn mul_naive(&self, other: &Poly) -> Poly {
        let n = self.degree();
        debug_assert_eq!(n, other.degree());
        let mut out = vec![0u64; n];
        for (i, &a) in self.coeffs.iter().enumerate() {
            if a == 0 {
                continue;
            }
            for (j, &b) in other.coeffs.iter().enumerate() {
                let prod = p_mul(a, b);
                let k = i + j;
                if k < n {
                    out[k] = p_add(out[k], prod);
                } else {
                    out[k - n] = p_sub(out[k - n], prod);
                }
            }
        }
        Poly { coeffs: out }
    }

    /// Applies the Galois automorphism `x -> x^galois_elt` (used by slot
    /// rotations); `galois_elt` must be odd.
    pub fn apply_galois(&self, galois_elt: usize) -> Poly {
        let n = self.degree();
        debug_assert!(galois_elt % 2 == 1, "Galois element must be odd");
        let mut out = vec![0u64; n];
        for (i, &c) in self.coeffs.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let raw = i * galois_elt;
            let idx = raw % n;
            // x^n = -1, so every wrap around n flips the sign.
            let wraps = (raw / n) % 2;
            if wraps == 0 {
                out[idx] = p_add(out[idx], c);
            } else {
                out[idx] = p_sub(out[idx], c);
            }
        }
        Poly { coeffs: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn poly_of(vals: &[u64]) -> Poly {
        Poly::from_coeffs(vals.to_vec())
    }

    #[test]
    fn modular_arithmetic_basics() {
        assert_eq!(p_add(MODULUS - 1, 1), 0);
        assert_eq!(p_sub(0, 1), MODULUS - 1);
        assert_eq!(p_neg(0), 0);
        assert_eq!(p_mul(MODULUS - 1, MODULUS - 1), 1);
        assert_eq!(p_mul(p_inv(12345), 12345), 1);
        assert_eq!(p_pow(3, 0), 1);
    }

    #[test]
    fn ntt_round_trips() {
        let tables = NttTables::new(64);
        let original: Vec<u64> = (0..64u64).map(|i| i * i + 7).collect();
        let mut a = original.clone();
        tables.forward(&mut a);
        tables.inverse(&mut a);
        assert_eq!(a, original);
    }

    #[test]
    fn ntt_multiplication_matches_schoolbook() {
        let tables = NttTables::new(32);
        let a = Poly::from_coeffs(
            (0..32u64)
                .map(|i| i.wrapping_mul(0x9E3779B97F4A7C15))
                .collect(),
        );
        let b = Poly::from_coeffs(
            (0..32u64)
                .map(|i| (i + 3).wrapping_mul(0xD1B54A32D192ED03))
                .collect(),
        );
        assert_eq!(a.mul_ntt(&b, &tables), a.mul_naive(&b));
    }

    #[test]
    fn negacyclic_wraparound_is_negative() {
        // (x^(n-1)) * x = x^n = -1 in the negacyclic ring.
        let n = 16;
        let tables = NttTables::new(n);
        let mut xs = vec![0u64; n];
        xs[n - 1] = 1;
        let x_pow_n_minus_1 = Poly::from_coeffs(xs);
        let mut xs = vec![0u64; n];
        xs[1] = 1;
        let x = Poly::from_coeffs(xs);
        let prod = x_pow_n_minus_1.mul_ntt(&x, &tables);
        let mut expected = vec![0u64; n];
        expected[0] = MODULUS - 1;
        assert_eq!(prod.coeffs(), &expected[..]);
    }

    #[test]
    fn addition_and_negation_are_inverse() {
        let a = poly_of(&[1, 2, 3, 4]);
        let sum = a.add(&a.negate());
        assert_eq!(sum, Poly::zero(4));
        assert_eq!(a.sub(&a), Poly::zero(4));
    }

    #[test]
    fn scaling_distributes_over_addition() {
        let a = poly_of(&[5, 6, 7, 8]);
        let b = poly_of(&[9, 10, 11, 12]);
        assert_eq!(a.add(&b).scale(3), a.scale(3).add(&b.scale(3)));
    }

    #[test]
    fn galois_automorphism_is_a_signed_permutation() {
        let n = 8;
        let a = Poly::from_coeffs((1..=n as u64).collect());
        let g = a.apply_galois(3);
        // Every original coefficient magnitude appears exactly once (up to sign).
        let mut seen = vec![false; n + 1];
        for &c in g.coeffs() {
            let magnitude = if c > MODULUS / 2 {
                (MODULUS - c) as usize
            } else {
                c as usize
            };
            assert!(magnitude >= 1 && magnitude <= n);
            assert!(!seen[magnitude], "coefficient duplicated by automorphism");
            seen[magnitude] = true;
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn tables_reject_non_power_of_two_degree() {
        let _ = NttTables::new(48);
    }
}
