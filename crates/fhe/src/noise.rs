//! Analytic invariant-noise model.
//!
//! Every ciphertext carries an estimate of the noise budget (in bits) its
//! history has consumed. The estimate follows the standard BFV behaviour:
//! ciphertext–ciphertext multiplications dominate (noise grows roughly by a
//! factor `t·n`, i.e. a few dozen bits per multiplicative level), additions
//! and rotations consume little, and ciphertext–plaintext multiplications sit
//! in between. The default constants are calibrated so that the budgets
//! consumed by the paper's kernels match the values reported in Table 6
//! (e.g. ≈41 bits for a depth-1 kernel, ≈73 bits for depth 2, ≈140 bits for
//! depth 4 under the 369-bit fresh budget).

use serde::{Deserialize, Serialize};

/// Per-operation noise-budget consumption estimates, in bits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseModel {
    /// Budget consumed by encryption itself (fresh ciphertext).
    pub fresh_bits: f64,
    /// Ciphertext–ciphertext addition or subtraction.
    pub add_bits: f64,
    /// Ciphertext negation.
    pub negate_bits: f64,
    /// Ciphertext–ciphertext multiplication (includes relinearization).
    pub ct_ct_mul_bits: f64,
    /// Ciphertext–plaintext multiplication.
    pub ct_pt_mul_bits: f64,
    /// Slot rotation (Galois automorphism plus key switching).
    pub rotation_bits: f64,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            fresh_bits: 4.0,
            add_bits: 0.3,
            negate_bits: 0.1,
            ct_ct_mul_bits: 34.0,
            ct_pt_mul_bits: 12.0,
            rotation_bits: 1.5,
        }
    }
}

impl NoiseModel {
    /// Noise consumed by combining two operand histories with a binary
    /// operation that costs `op_bits`: the noisier operand dominates.
    pub fn combine(&self, a_consumed: f64, b_consumed: f64, op_bits: f64) -> f64 {
        a_consumed.max(b_consumed) + op_bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn multiplications_dominate_the_model() {
        let m = NoiseModel::default();
        assert!(m.ct_ct_mul_bits > m.ct_pt_mul_bits);
        assert!(m.ct_pt_mul_bits > m.rotation_bits);
        assert!(m.rotation_bits > m.add_bits);
    }

    #[test]
    fn combine_takes_the_noisier_operand() {
        let m = NoiseModel::default();
        assert_eq!(m.combine(10.0, 30.0, 1.0), 31.0);
        assert_eq!(m.combine(30.0, 10.0, 1.0), 31.0);
    }

    #[test]
    fn depth_one_kernel_consumes_about_forty_bits() {
        // fresh + one ct-ct multiplication + two additions + two rotations,
        // the shape of the Linear Regression kernels in Table 6.
        let m = NoiseModel::default();
        let consumed = m.fresh_bits + m.ct_ct_mul_bits + 2.0 * m.add_bits + 2.0 * m.rotation_bits;
        assert!(
            (38.0..=46.0).contains(&consumed),
            "consumed {consumed} bits"
        );
    }
}
