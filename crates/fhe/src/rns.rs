//! Residue-number-system (RNS) multi-limb coefficient arithmetic.
//!
//! The single Goldilocks modulus caps coefficient precision at 64 bits. An
//! RNS representation over `k` word-sized primes `q_0 · q_1 ⋯ q_{k-1}`
//! multiplies the representable coefficient range — and the arithmetic
//! intensity per byte of payload moved — by `k`, at the price of carrying
//! `k` *limb stripes* per ring element and running every pointwise kernel
//! once per limb.
//!
//! # The chain
//!
//! [`ModulusChain`] pins **limb 0 to the Goldilocks prime** `p = 2^64 -
//! 2^32 + 1`: that limb keeps running the existing ε-identity
//! lazy-reduction kernels and AVX2 NTT verbatim, which is what makes the
//! `k = 1` configuration *bit-identical* to the single-modulus engine (the
//! limb walk degenerates to exactly the old code path). Limbs `1..k` use
//! NTT-friendly primes `q ≡ 1 (mod 2n)` found by deterministic
//! Miller–Rabin, descending from just below `2^61`; every generic prime
//! satisfies `2^60 < q < 2^61`, the window in which both reduction
//! strategies below are valid.
//!
//! # Per-prime reduction strategies
//!
//! Goldilocks sits above `2^63`, so the Shoup/Barrett tricks of classical
//! RNS libraries do not apply to it — it gets the ε-identity arithmetic of
//! [`crate::simd`]. The generic limbs get the classical pair:
//!
//! * **Barrett pointwise products** ([`barrett_mul`]): one precomputed
//!   `mu = ⌊2^124 / q⌋` per limb turns every modular multiply into two
//!   wide multiplies plus two conditional subtracts (estimate error is
//!   provably `< 3q`). The AVX2 twin lives in [`crate::simd`].
//! * **Shoup butterflies** ([`LimbNtt`]): negacyclic NTTs in the
//!   Longa–Naehrig lazy style, twiddles stored with their Shoup
//!   companions `w' = ⌊w·2^64 / q⌋`, operands riding in `[0, 4q)` forward
//!   and `[0, 2q)` inverse, canonicalized once at the end.
//!
//! # CRT lift and reconstruction
//!
//! Encryption *lifts* a base coefficient `x` into the chain (`x mod q_i`
//! per limb); decryption *reconstructs* the multiword integer with
//! Garner's mixed-radix algorithm ([`ModulusChain::crt_reconstruct`]),
//! using only per-limb precomputed inverses — no big-integer division.
//! [`ModulusChain::crt_checksum`] folds a full reconstruction pass over a
//! component's limbs into one word, which the decryptor feeds through
//! `black_box` so the simulation pays the real CRT cost.

use crate::poly::MODULUS;

/// Number of bits below which the Barrett scheme of this module is
/// invalid: generic limb primes must exceed `2^60` so that
/// `mu = ⌊2^124 / q⌋` fits a word (and the error bound holds).
const GENERIC_LIMB_MIN_BITS: u32 = 60;

/// Upper bound (exclusive) for generic limb primes: staying below `2^61`
/// keeps `4q < 2^63`, the headroom the lazy Shoup butterflies need.
const GENERIC_LIMB_MAX: u64 = 1 << 61;

// ---------------------------------------------------------------------------
// Scalar modular arithmetic for generic (< 2^61) limb primes
// ---------------------------------------------------------------------------

/// `(a + b) mod q` for canonical `a, b < q < 2^63`.
#[inline]
pub fn add_mod(a: u64, b: u64, q: u64) -> u64 {
    let s = a + b;
    if s >= q {
        s - q
    } else {
        s
    }
}

/// `(a - b) mod q` for canonical `a, b < q`.
#[inline]
pub fn sub_mod(a: u64, b: u64, q: u64) -> u64 {
    if a >= b {
        a - b
    } else {
        a + q - b
    }
}

/// `-a mod q` for canonical `a < q`.
#[inline]
pub fn neg_mod(a: u64, q: u64) -> u64 {
    if a == 0 {
        0
    } else {
        q - a
    }
}

/// Barrett constant `mu = ⌊2^124 / q⌋` for a generic limb prime
/// (`2^60 < q < 2^61`, which makes `mu` fit a word).
#[inline]
pub fn barrett_mu(q: u64) -> u64 {
    debug_assert!(q.leading_zeros() < 64 - GENERIC_LIMB_MIN_BITS && q < GENERIC_LIMB_MAX);
    ((1u128 << 124) / u128::from(q)) as u64
}

/// Canonical `a·b mod q` by Barrett reduction with the precomputed
/// `mu = ⌊2^124 / q⌋` of [`barrett_mu`].
///
/// Valid for `2^60 < q < 2^61` and canonical inputs: the quotient
/// estimate `⌊(⌊x/2^60⌋·mu)/2^64⌋` undershoots `⌊x/q⌋` by at most 2, so
/// two conditional subtracts canonicalize. **Never valid for the
/// Goldilocks limb** (`q > 2^63`); that limb uses the ε-identity kernels.
#[inline]
pub fn barrett_mul(a: u64, b: u64, q: u64, mu: u64) -> u64 {
    let x = u128::from(a) * u128::from(b);
    let shifted = (x >> 60) as u64;
    let q_hat = ((u128::from(shifted) * u128::from(mu)) >> 64) as u64;
    // True value of x - q_hat·q is in [0, 3q) ⊂ [0, 2^64), so the wrapped
    // 64-bit computation is exact.
    let mut r = (x as u64).wrapping_sub(q_hat.wrapping_mul(q));
    if r >= q {
        r -= q;
    }
    if r >= q {
        r -= q;
    }
    r
}

/// `a·b mod q` by u128 widening division — the oracle [`barrett_mul`] is
/// tested against, and the workhorse of table construction (off the hot
/// path, so the division cost is irrelevant).
#[inline]
fn mul_mod_u128(a: u64, b: u64, q: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(q)) as u64
}

/// `base^exp mod q` by square-and-multiply (table construction only).
fn pow_mod(base: u64, mut exp: u64, q: u64) -> u64 {
    let mut acc = 1u64;
    let mut base = base % q;
    while exp > 0 {
        if exp & 1 == 1 {
            acc = mul_mod_u128(acc, base, q);
        }
        base = mul_mod_u128(base, base, q);
        exp >>= 1;
    }
    acc
}

/// `a^{-1} mod q` for prime `q` (Fermat).
fn inv_mod(a: u64, q: u64) -> u64 {
    debug_assert!(!a.is_multiple_of(q), "zero has no inverse");
    pow_mod(a, q - 2, q)
}

// ---------------------------------------------------------------------------
// Deterministic primality (Miller–Rabin) and prime search
// ---------------------------------------------------------------------------

/// Deterministic Miller–Rabin for `u64`: the first twelve prime bases are
/// a proven witness set for every `n < 3.3·10^24`, which covers the whole
/// `u64` range.
fn is_prime(n: u64) -> bool {
    if n < 2 {
        return false;
    }
    for p in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        if n == p {
            return true;
        }
        if n.is_multiple_of(p) {
            return false;
        }
    }
    let s = (n - 1).trailing_zeros();
    let d = (n - 1) >> s;
    'witness: for a in [2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37] {
        let mut x = pow_mod(a, d, n);
        if x == 1 || x == n - 1 {
            continue;
        }
        for _ in 1..s {
            x = mul_mod_u128(x, x, n);
            if x == n - 1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Finds the `count` largest NTT-friendly primes `q ≡ 1 (mod 2n)` below
/// `2^61` (descending, so the result is deterministic for a given
/// `(count, degree)`), panicking if the search would leave the `(2^60,
/// 2^61)` validity window — which cannot happen for any practical degree.
fn find_generic_primes(count: usize, degree: usize) -> Vec<u64> {
    let step = 2 * degree as u64;
    let mut candidate = ((GENERIC_LIMB_MAX - 2) / step) * step + 1;
    let mut primes = Vec::with_capacity(count);
    while primes.len() < count {
        assert!(
            candidate > 1 << GENERIC_LIMB_MIN_BITS,
            "prime search left the Barrett validity window"
        );
        if is_prime(candidate) {
            primes.push(candidate);
        }
        candidate -= step;
    }
    primes
}

// ---------------------------------------------------------------------------
// Shoup lazy NTT for generic limb primes
// ---------------------------------------------------------------------------

/// Shoup companion `⌊w·2^64 / q⌋` of a canonical twiddle `w < q`.
#[inline]
fn shoup(w: u64, q: u64) -> u64 {
    ((u128::from(w) << 64) / u128::from(q)) as u64
}

/// Lazy Shoup product `y·w mod q` for `y < 4q`: returns a representative
/// in `[0, 2q)`. `wp` is the Shoup companion of `w`.
#[inline]
fn mul_shoup(y: u64, w: u64, wp: u64, q: u64) -> u64 {
    let q_hat = ((u128::from(y) * u128::from(wp)) >> 64) as u64;
    y.wrapping_mul(w).wrapping_sub(q_hat.wrapping_mul(q))
}

/// Bit-reversal of the low `bits` bits of `i`.
#[inline]
fn bit_reverse(i: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    i.reverse_bits() >> (usize::BITS - bits)
}

/// Negacyclic NTT tables for one generic limb prime, in the
/// Longa–Naehrig lazy-butterfly style: the forward transform
/// (Cooley–Tukey, natural order in, bit-reversed out) keeps operands in
/// `[0, 4q)`; the inverse (Gentleman–Sande) keeps them in `[0, 2q)`; each
/// canonicalizes once at the end. All twiddles carry precomputed Shoup
/// companions so no butterfly ever divides.
#[derive(Debug, Clone)]
pub struct LimbNtt {
    q: u64,
    degree: usize,
    /// `psi_rev[j] = ψ^{brv(j)}` with Shoup companions (ψ a primitive
    /// 2n-th root of unity mod q), indexed `[m + i]` per stage.
    psi_rev: Vec<(u64, u64)>,
    /// Mirror table of powers of `ψ^{-1}`.
    inv_psi_rev: Vec<(u64, u64)>,
    /// `n^{-1} mod q` with its Shoup companion, for the inverse's final
    /// scaling pass.
    inv_degree: (u64, u64),
}

impl LimbNtt {
    /// Builds the twiddle tables for `degree` (a power of two) over the
    /// prime `q ≡ 1 (mod 2·degree)`.
    fn new(q: u64, degree: usize) -> LimbNtt {
        assert!(degree.is_power_of_two(), "degree must be a power of two");
        assert_eq!(
            (q - 1) % (2 * degree as u64),
            0,
            "q must be NTT-friendly for 2n"
        );
        let log_n = degree.trailing_zeros();
        let psi = primitive_root_2n(q, degree);
        let inv_psi = inv_mod(psi, q);
        let scatter = |base: u64| -> Vec<(u64, u64)> {
            let mut table = vec![(0u64, 0u64); degree];
            let mut power = 1u64;
            for i in 0..degree {
                let rev = bit_reverse(i, log_n);
                table[rev] = (power, shoup(power, q));
                power = mul_mod_u128(power, base, q);
            }
            table
        };
        let inv_n = inv_mod(degree as u64, q);
        LimbNtt {
            q,
            degree,
            psi_rev: scatter(psi),
            inv_psi_rev: scatter(inv_psi),
            inv_degree: (inv_n, shoup(inv_n, q)),
        }
    }

    /// The limb prime these tables serve.
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Transform length.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// In-place forward negacyclic NTT of canonical values (canonical
    /// output, bit-reversed order).
    pub fn forward(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.degree);
        let q = self.q;
        let two_q = 2 * q;
        let n = self.degree;
        let mut t = n;
        let mut m = 1;
        while m < n {
            t >>= 1;
            for i in 0..m {
                let (w, wp) = self.psi_rev[m + i];
                let j1 = 2 * i * t;
                for j in j1..j1 + t {
                    // Lazy CT butterfly: x reduced to [0, 2q), partner via
                    // Shoup product (< 2q), both outputs < 4q.
                    let mut x = a[j];
                    if x >= two_q {
                        x -= two_q;
                    }
                    let y = mul_shoup(a[j + t], w, wp, q);
                    a[j] = x + y;
                    a[j + t] = x + two_q - y;
                }
            }
            m <<= 1;
        }
        for v in a.iter_mut() {
            // Canonicalize from [0, 4q).
            if *v >= two_q {
                *v -= two_q;
            }
            if *v >= q {
                *v -= q;
            }
        }
    }

    /// In-place inverse negacyclic NTT (bit-reversed order in, canonical
    /// natural-order output, `n^{-1}` scaling fused into the final pass).
    pub fn inverse(&self, a: &mut [u64]) {
        debug_assert_eq!(a.len(), self.degree);
        let q = self.q;
        let two_q = 2 * q;
        let n = self.degree;
        let mut t = 1;
        let mut m = n;
        while m > 1 {
            let h = m >> 1;
            let mut j1 = 0;
            for i in 0..h {
                let (w, wp) = self.inv_psi_rev[h + i];
                for j in j1..j1 + t {
                    // Lazy GS butterfly: operands < 2q in, < 2q out.
                    let x = a[j];
                    let y = a[j + t];
                    let mut s = x + y;
                    if s >= two_q {
                        s -= two_q;
                    }
                    a[j] = s;
                    a[j + t] = mul_shoup(x + two_q - y, w, wp, q);
                }
                j1 += 2 * t;
            }
            t <<= 1;
            m = h;
        }
        let (inv_n, inv_n_shoup) = self.inv_degree;
        for v in a.iter_mut() {
            let scaled = mul_shoup(*v, inv_n, inv_n_shoup, q);
            *v = if scaled >= q { scaled - q } else { scaled };
        }
    }
}

/// Finds a primitive 2n-th root of unity mod the prime `q` (requires
/// `2n | q - 1`): raise successive small bases to the cofactor power and
/// accept the first candidate whose n-th power is `-1`.
fn primitive_root_2n(q: u64, degree: usize) -> u64 {
    let order = 2 * degree as u64;
    let cofactor = (q - 1) / order;
    for base in 2u64.. {
        let candidate = pow_mod(base, cofactor, q);
        if pow_mod(candidate, degree as u64, q) == q - 1 {
            return candidate;
        }
    }
    unreachable!("a primitive root exists for every prime")
}

// ---------------------------------------------------------------------------
// Limbs and the modulus chain
// ---------------------------------------------------------------------------

/// One residue channel of the chain: its prime, the Barrett constant (for
/// generic primes), and — when compute simulation is on — its NTT tables.
/// Limb 0 is always the Goldilocks prime and carries neither: it runs the
/// ε-identity kernels and the shared [`crate::poly::NttTables`].
#[derive(Debug, Clone)]
pub struct Limb {
    q: u64,
    mu: u64,
    ntt: Option<LimbNtt>,
}

impl Limb {
    /// The limb's prime modulus.
    pub fn modulus(&self) -> u64 {
        self.q
    }

    /// Barrett constant `⌊2^124 / q⌋` (zero — and meaningless — for the
    /// Goldilocks limb, which never takes the Barrett path).
    pub fn mu(&self) -> u64 {
        self.mu
    }

    /// `true` for limb 0, the Goldilocks limb served by the existing
    /// ε-identity kernels.
    pub fn is_goldilocks(&self) -> bool {
        self.q == MODULUS
    }

    /// The limb's Shoup NTT tables (`None` for the Goldilocks limb, and
    /// for every limb when compute simulation is off).
    pub fn ntt(&self) -> Option<&LimbNtt> {
        self.ntt.as_ref()
    }
}

/// The RNS modulus chain: limb 0 is Goldilocks, limbs `1..k` are distinct
/// NTT-friendly primes in `(2^60, 2^61)`, plus the Garner precomputation
/// for CRT reconstruction across all `k` limbs.
#[derive(Debug)]
pub struct ModulusChain {
    limbs: Vec<Limb>,
    degree: usize,
    /// `garner_inv[i][j] = (q_j mod q_i)^{-1} mod q_i` for `j < i`.
    garner_inv: Vec<Vec<u64>>,
}

impl ModulusChain {
    /// Builds a chain of `limb_count ≥ 1` limbs for ring degree `degree`
    /// (a power of two). Generic-limb NTT tables are only constructed when
    /// `build_ntt` is set (compute simulation on); the `k = 1` chain is a
    /// table-free Goldilocks marker either way.
    pub fn new(limb_count: usize, degree: usize, build_ntt: bool) -> ModulusChain {
        assert!(limb_count >= 1, "a chain needs at least one limb");
        assert!(degree.is_power_of_two(), "degree must be a power of two");
        let mut limbs = Vec::with_capacity(limb_count);
        limbs.push(Limb {
            q: MODULUS,
            mu: 0,
            ntt: None,
        });
        for q in find_generic_primes(limb_count - 1, degree) {
            limbs.push(Limb {
                q,
                mu: barrett_mu(q),
                ntt: build_ntt.then(|| LimbNtt::new(q, degree)),
            });
        }
        let garner_inv = (0..limb_count)
            .map(|i| {
                let qi = limbs[i].q;
                (0..i).map(|j| inv_mod(limbs[j].q % qi, qi)).collect()
            })
            .collect();
        ModulusChain {
            limbs,
            degree,
            garner_inv,
        }
    }

    /// Number of limbs `k`.
    pub fn limb_count(&self) -> usize {
        self.limbs.len()
    }

    /// Ring degree the chain was built for.
    pub fn degree(&self) -> usize {
        self.degree
    }

    /// Limb `i` of the chain.
    pub fn limb(&self, i: usize) -> &Limb {
        &self.limbs[i]
    }

    /// All limbs, Goldilocks first.
    pub fn limbs(&self) -> &[Limb] {
        &self.limbs
    }

    /// The chain's moduli, Goldilocks first (bench/report labeling).
    pub fn moduli(&self) -> Vec<u64> {
        self.limbs.iter().map(|l| l.q).collect()
    }

    /// CRT-lifts a base value into limb `i`'s residue field: `x mod q_i`.
    #[inline]
    pub fn lift_base(&self, i: usize, x: u64) -> u64 {
        x % self.limbs[i].q
    }

    /// Garner mixed-radix digits of the integer with the given per-limb
    /// residues (`residues[i] = x mod q_i`), written into `digits`.
    fn garner_digits(&self, residues: &[u64], digits: &mut [u64]) {
        let k = self.limbs.len();
        debug_assert_eq!(residues.len(), k);
        debug_assert_eq!(digits.len(), k);
        for i in 0..k {
            let qi = self.limbs[i].q;
            let mut t = residues[i] % qi;
            for (&dj, &inv) in digits.iter().zip(&self.garner_inv[i]).take(i) {
                t = mul_mod_u128(sub_mod(t, dj % qi, qi), inv, qi);
            }
            digits[i] = t;
        }
    }

    /// Expands mixed-radix digits into the little-endian multiword integer
    /// `x = Σ v_i · Π_{j<i} q_j`, written into `words` (`k` words always
    /// suffice since every modulus fits one word).
    fn digits_to_words(&self, digits: &[u64], words: &mut [u64]) {
        let k = self.limbs.len();
        debug_assert_eq!(words.len(), k);
        words.fill(0);
        words[0] = digits[k - 1];
        for i in (0..k - 1).rev() {
            let mut carry = u128::from(digits[i]);
            for w in words.iter_mut() {
                let t = u128::from(*w) * u128::from(self.limbs[i].q) + carry;
                *w = t as u64;
                carry = t >> 64;
            }
            debug_assert_eq!(carry, 0, "product of moduli fits k words");
        }
    }

    /// Reconstructs the little-endian multiword integer `x < Π q_i` from
    /// its per-limb residues (Garner: no big-integer division).
    pub fn crt_reconstruct(&self, residues: &[u64]) -> Vec<u64> {
        let k = self.limbs.len();
        let mut digits = vec![0u64; k];
        let mut words = vec![0u64; k];
        self.garner_digits(residues, &mut digits);
        self.digits_to_words(&digits, &mut words);
        words
    }

    /// Lifts a little-endian multiword integer back to per-limb residues —
    /// the inverse of [`ModulusChain::crt_reconstruct`].
    pub fn crt_lift(&self, words: &[u64]) -> Vec<u64> {
        self.limbs
            .iter()
            .map(|limb| {
                let q = u128::from(limb.q);
                let mut r = 0u128;
                for &w in words.iter().rev() {
                    r = ((r << 64) | u128::from(w)) % q;
                }
                r as u64
            })
            .collect()
    }

    /// Runs a full Garner reconstruction over one payload component laid
    /// out as `k` consecutive limb stripes of `degree` values
    /// (`data[i·degree + j] = coefficient j mod q_i`), folding every
    /// reconstructed word into a checksum. The decryptor routes this
    /// through `black_box` so the simulation pays the genuine per-
    /// coefficient CRT cost without asserting anything about the noise-
    /// free slots.
    pub fn crt_checksum(&self, component: &[u64]) -> u64 {
        let k = self.limbs.len();
        let n = self.degree;
        debug_assert_eq!(component.len(), k * n);
        let mut residues = vec![0u64; k];
        let mut digits = vec![0u64; k];
        let mut words = vec![0u64; k];
        let mut acc = 0u64;
        for j in 0..n {
            for (i, r) in residues.iter_mut().enumerate() {
                *r = component[i * n + j];
            }
            self.garner_digits(&residues, &mut digits);
            self.digits_to_words(&digits, &mut words);
            for &w in words.iter() {
                acc = acc.rotate_left(7) ^ w;
            }
        }
        acc
    }
}

// ---------------------------------------------------------------------------
// Scalar generic-limb chunk kernels (Barrett pointwise, segment bodies)
// ---------------------------------------------------------------------------
//
// These are the generic-prime twins of the Goldilocks chunk kernels in
// `crate::simd`, called by the payload's limb walk on every limb past the
// first. The fused ct-pt product (`mul2`) is hot enough to earn an AVX2
// twin (`crate::simd::mul2_chunk_q`); the rest run scalar Barrett.

/// Generic-limb twin of [`crate::simd::mul_scalar2_chunk`]: `scaled =
/// m[i]·k` once per coefficient, both components multiply it (mod `q`).
#[allow(clippy::too_many_arguments)]
pub fn mul_scalar2_chunk_q(
    x0: &[u64],
    x1: &[u64],
    m: &[u64],
    k: u64,
    o0: &mut [u64],
    o1: &mut [u64],
    q: u64,
    mu: u64,
) {
    for i in 0..o0.len() {
        let scaled = barrett_mul(m[i], k, q, mu);
        o0[i] = barrett_mul(x0[i], scaled, q, mu);
        o1[i] = barrett_mul(x1[i], scaled, q, mu);
    }
}

/// Generic-limb twin of [`crate::simd::mul_add2_chunk`] (the fused BFV
/// tensor product + relinearization, mod `q`).
#[allow(clippy::too_many_arguments)]
pub fn mul_add2_chunk_q(
    a0: &[u64],
    a1: &[u64],
    b0: &[u64],
    b1: &[u64],
    s0: &[u64],
    s1: &[u64],
    o0: &mut [u64],
    o1: &mut [u64],
    q: u64,
    mu: u64,
) {
    for i in 0..o0.len() {
        let c2 = barrett_mul(a1[i], b1[i], q, mu);
        o0[i] = add_mod(
            barrett_mul(a0[i], b0[i], q, mu),
            barrett_mul(c2, s0[i], q, mu),
            q,
        );
        let cross = add_mod(
            barrett_mul(a0[i], b1[i], q, mu),
            barrett_mul(a1[i], b0[i], q, mu),
            q,
        );
        o1[i] = add_mod(cross, barrett_mul(c2, s1[i], q, mu), q);
    }
}

/// Generic-limb twin of [`crate::simd::galois2_chunk`]: gather by the
/// permutation window, multiply by the key window (mod `q`). `src0`/`src1`
/// are the limb's full component stripes.
#[allow(clippy::too_many_arguments)]
pub fn galois2_chunk_q(
    src0: &[u64],
    src1: &[u64],
    perm: &[u32],
    key: &[u64],
    o0: &mut [u64],
    o1: &mut [u64],
    q: u64,
    mu: u64,
) {
    for i in 0..o0.len() {
        let src = perm[i] as usize;
        o0[i] = barrett_mul(src0[src], key[i], q, mu);
        o1[i] = barrett_mul(src1[src], key[i], q, mu);
    }
}

/// Generic-limb segment addition: `out[i] = (x[i] + y[i]) mod q`.
pub fn add_chunk_q(x: &[u64], y: &[u64], out: &mut [u64], q: u64) {
    for i in 0..out.len() {
        out[i] = add_mod(x[i], y[i], q);
    }
}

/// Generic-limb segment subtraction: `out[i] = (x[i] - y[i]) mod q`.
pub fn sub_chunk_q(x: &[u64], y: &[u64], out: &mut [u64], q: u64) {
    for i in 0..out.len() {
        out[i] = sub_mod(x[i], y[i], q);
    }
}

/// Generic-limb segment negation: `out[i] = -x[i] mod q`.
pub fn neg_chunk_q(x: &[u64], out: &mut [u64], q: u64) {
    for i in 0..out.len() {
        out[i] = neg_mod(x[i], q);
    }
}

/// In-place [`add_chunk_q`].
pub fn add_chunk_q_assign(x: &mut [u64], y: &[u64], q: u64) {
    for i in 0..x.len() {
        x[i] = add_mod(x[i], y[i], q);
    }
}

/// In-place [`sub_chunk_q`].
pub fn sub_chunk_q_assign(x: &mut [u64], y: &[u64], q: u64) {
    for i in 0..x.len() {
        x[i] = sub_mod(x[i], y[i], q);
    }
}

/// In-place [`neg_chunk_q`].
pub fn neg_chunk_q_assign(x: &mut [u64], q: u64) {
    for v in x.iter_mut() {
        *v = neg_mod(*v, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_values(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D)
            })
            .collect()
    }

    #[test]
    fn miller_rabin_agrees_with_trial_division() {
        let naive = |n: u64| {
            if n < 2 {
                return false;
            }
            let mut d = 2;
            while d * d <= n {
                if n.is_multiple_of(d) {
                    return false;
                }
                d += 1;
            }
            true
        };
        for n in 0..2000u64 {
            assert_eq!(is_prime(n), naive(n), "n={n}");
        }
        assert!(is_prime(MODULUS), "Goldilocks is prime");
        assert!(!is_prime(u64::MAX));
    }

    #[test]
    fn generic_prime_search_yields_distinct_ntt_friendly_primes() {
        for degree in [64usize, 1024, 4096] {
            let primes = find_generic_primes(3, degree);
            assert_eq!(primes.len(), 3);
            for window in primes.windows(2) {
                assert!(window[0] > window[1], "descending and distinct");
            }
            for &q in &primes {
                assert!(is_prime(q));
                assert!(q > 1 << GENERIC_LIMB_MIN_BITS && q < GENERIC_LIMB_MAX);
                assert_eq!((q - 1) % (2 * degree as u64), 0, "q ≡ 1 (mod 2n)");
            }
        }
    }

    #[test]
    fn barrett_mul_matches_widening_division() {
        let chain = ModulusChain::new(3, 64, false);
        for limb in &chain.limbs()[1..] {
            let (q, mu) = (limb.modulus(), limb.mu());
            let values: Vec<u64> = random_values(64, q)
                .into_iter()
                .map(|v| v % q)
                .chain([0, 1, 2, q - 2, q - 1])
                .collect();
            for &a in &values {
                for &b in &values {
                    assert_eq!(
                        barrett_mul(a, b, q, mu),
                        mul_mod_u128(a, b, q),
                        "a={a} b={b} q={q}"
                    );
                }
            }
        }
    }

    #[test]
    fn limb_ntt_round_trips() {
        for degree in [8usize, 64, 256] {
            let chain = ModulusChain::new(2, degree, true);
            let ntt = chain.limb(1).ntt().expect("built with NTT tables");
            let q = ntt.modulus();
            let original: Vec<u64> = random_values(degree, 0xAB).iter().map(|v| v % q).collect();
            let mut work = original.clone();
            ntt.forward(&mut work);
            assert!(work.iter().all(|&v| v < q), "forward output canonical");
            ntt.inverse(&mut work);
            assert_eq!(work, original, "degree={degree}");
        }
    }

    #[test]
    fn limb_ntt_pointwise_is_negacyclic_convolution() {
        let degree = 16usize;
        let chain = ModulusChain::new(2, degree, true);
        let ntt = chain.limb(1).ntt().unwrap();
        let (q, mu) = (chain.limb(1).modulus(), chain.limb(1).mu());
        let a: Vec<u64> = random_values(degree, 3).iter().map(|v| v % q).collect();
        let b: Vec<u64> = random_values(degree, 5).iter().map(|v| v % q).collect();

        // Naive negacyclic product: x^n = -1.
        let mut naive = vec![0u64; degree];
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                let prod = mul_mod_u128(ai, bj, q);
                let idx = (i + j) % degree;
                if i + j < degree {
                    naive[idx] = add_mod(naive[idx], prod, q);
                } else {
                    naive[idx] = sub_mod(naive[idx], prod, q);
                }
            }
        }

        let (mut fa, mut fb) = (a.clone(), b.clone());
        ntt.forward(&mut fa);
        ntt.forward(&mut fb);
        let mut fc: Vec<u64> = (0..degree)
            .map(|i| barrett_mul(fa[i], fb[i], q, mu))
            .collect();
        ntt.inverse(&mut fc);
        assert_eq!(fc, naive);
    }

    #[test]
    fn garner_reconstruction_round_trips_residues() {
        for k in [2usize, 3, 4] {
            let chain = ModulusChain::new(k, 64, false);
            for seed in 1..50u64 {
                let residues: Vec<u64> = chain
                    .limbs()
                    .iter()
                    .zip(random_values(k, seed))
                    .map(|(limb, v)| v % limb.modulus())
                    .collect();
                let words = chain.crt_reconstruct(&residues);
                assert_eq!(words.len(), k);
                assert_eq!(chain.crt_lift(&words), residues, "k={k} seed={seed}");
            }
        }
    }

    #[test]
    fn single_word_values_reconstruct_to_themselves() {
        let chain = ModulusChain::new(3, 64, false);
        for &x in &[0u64, 1, 12345, MODULUS - 1, u64::MAX] {
            let residues: Vec<u64> = (0..3).map(|i| chain.lift_base(i, x)).collect();
            let words = chain.crt_reconstruct(&residues);
            // x < q_0 < Π q_i, so the reconstruction is x itself... except
            // x ≥ q_0 (e.g. u64::MAX): then the reconstruction is the
            // unique value < Π q_i congruent to x mod each q_i, which for
            // x < 2^64 with x ≥ q_0 need not equal x. Restrict the exact
            // check to canonical base values.
            if x < MODULUS {
                assert_eq!(words[0], x);
                assert!(words[1..].iter().all(|&w| w == 0));
            }
            assert_eq!(chain.crt_lift(&words), residues);
        }
    }

    #[test]
    fn k1_chain_is_a_bare_goldilocks_marker() {
        let chain = ModulusChain::new(1, 4096, true);
        assert_eq!(chain.limb_count(), 1);
        assert!(chain.limb(0).is_goldilocks());
        assert!(chain.limb(0).ntt().is_none());
        assert_eq!(chain.moduli(), vec![MODULUS]);
    }

    #[test]
    fn crt_checksum_is_deterministic_and_limb_sensitive() {
        let degree = 32usize;
        let chain = ModulusChain::new(2, degree, false);
        let mut component: Vec<u64> = Vec::new();
        for limb in chain.limbs() {
            component.extend(
                random_values(degree, limb.modulus())
                    .iter()
                    .map(|v| v % limb.modulus()),
            );
        }
        let a = chain.crt_checksum(&component);
        assert_eq!(a, chain.crt_checksum(&component), "deterministic");
        let mut perturbed = component.clone();
        perturbed[degree + 3] ^= 1;
        assert_ne!(a, chain.crt_checksum(&perturbed), "sensitive to limb 1");
    }

    #[test]
    fn generic_chunk_kernels_match_reference_arithmetic() {
        let chain = ModulusChain::new(2, 64, false);
        let (q, mu) = (chain.limb(1).modulus(), chain.limb(1).mu());
        let n = 33;
        let reduce = |v: Vec<u64>| -> Vec<u64> { v.into_iter().map(|x| x % q).collect() };
        let a0 = reduce(random_values(n, 11));
        let a1 = reduce(random_values(n, 12));
        let b0 = reduce(random_values(n, 13));
        let b1 = reduce(random_values(n, 14));
        let s0 = reduce(random_values(n, 15));
        let s1 = reduce(random_values(n, 16));

        let (mut o0, mut o1) = (vec![0u64; n], vec![0u64; n]);
        mul_add2_chunk_q(&a0, &a1, &b0, &b1, &s0, &s1, &mut o0, &mut o1, q, mu);
        for i in 0..n {
            let c2 = mul_mod_u128(a1[i], b1[i], q);
            assert_eq!(
                o0[i],
                add_mod(mul_mod_u128(a0[i], b0[i], q), mul_mod_u128(c2, s0[i], q), q)
            );
        }

        let k = 0xDEAD % q;
        mul_scalar2_chunk_q(&a0, &a1, &b0, k, &mut o0, &mut o1, q, mu);
        for i in 0..n {
            let scaled = mul_mod_u128(b0[i], k, q);
            assert_eq!(o0[i], mul_mod_u128(a0[i], scaled, q));
            assert_eq!(o1[i], mul_mod_u128(a1[i], scaled, q));
        }

        let perm: Vec<u32> = (0..n as u32).map(|i| (i * 5 + 2) % n as u32).collect();
        galois2_chunk_q(&a0, &a1, &perm, &b0, &mut o0, &mut o1, q, mu);
        for i in 0..n {
            assert_eq!(o0[i], mul_mod_u128(a0[perm[i] as usize], b0[i], q));
        }

        add_chunk_q(&a0, &a1, &mut o0, q);
        sub_chunk_q(&a0, &a1, &mut o1, q);
        let mut o2 = vec![0u64; n];
        neg_chunk_q(&a0, &mut o2, q);
        for i in 0..n {
            assert_eq!(o0[i], (a0[i] + a1[i]) % q);
            assert_eq!(o1[i], (a0[i] + q - a1[i]) % q);
            assert_eq!(o2[i], (q - a0[i]) % q);
        }
        let mut x = a0.clone();
        add_chunk_q_assign(&mut x, &a1, q);
        assert_eq!(x, o0);
        let mut x = a0.clone();
        sub_chunk_q_assign(&mut x, &a1, q);
        assert_eq!(x, o1);
        let mut x = a0.clone();
        neg_chunk_q_assign(&mut x, q);
        assert_eq!(x, o2);
    }
}
