//! Runtime-detected SIMD kernels for the striped payload and NTT hot loops,
//! plus the scalar lazy-reduction primitives they share.
//!
//! # Lazy (deferred) reduction over Goldilocks
//!
//! Classic Harvey lazy butterflies keep values in `[0, 2p)` and use Shoup
//! multiplier pairs `(w, w') = (w, ⌊w·2^64/p⌋)`; both tricks require
//! `p < 2^62`-ish so that `2p` and the Shoup remainder fit a word. The
//! Goldilocks prime `p = 2^64 - 2^32 + 1` sits *above* `2^63`, so neither
//! fits — but Goldilocks offers a strictly better deal: **every `u64` is a
//! valid lazy residue**, because `2^64 < 2p`. The role the Shoup pair plays
//! for small primes is played here by the ε-identity `2^64 ≡ ε (mod p)`
//! with `ε = 2^32 - 1`:
//!
//! ```text
//!   eager op:  reduce to canonical [0, p)   after every butterfly
//!   lazy  op:  stay anywhere in  [0, 2^64)  (⊂ [0, 2p)); every wrap of the
//!              64-bit word is compensated by ±ε, corrections never cascade
//!              more than twice, and NO canonicalizing compare runs
//!   finish:    one conditional subtract per value (x < 2^64 < 2p always)
//! ```
//!
//! Each lazy intermediate is an *exact* member of its residue class — only
//! the choice of representative is deferred — so canonicalizing at the end
//! yields outputs bit-identical to the eager path. The forward NTT fuses the
//! canonicalization into its last butterfly stage; the inverse NTT gets it
//! for free from the final `n^{-1}` scaling, which uses the full reduction.
//!
//! # SIMD dispatch
//!
//! [`SimdPolicy`] is resolved once per process (AVX2 via
//! `is_x86_feature_detected!`, forcible with `CHEHAB_SIMD={0,1}`), then
//! snapshotted by `NttTables` and `Evaluator` at construction so a given
//! session's arithmetic is uniform. The AVX2 kernels process four 64-bit
//! lanes per step using only stable `std::arch` intrinsics (no external
//! crates); 64×64→128 products are synthesized from `_mm256_mul_epu32`
//! partial products, and unsigned lane compares from the sign-flip trick.
//! The scalar path is the bit-identity oracle and the fallback for tails,
//! small blocks, and non-x86 targets: both paths run the same correction
//! algorithm element-wise, so even their *lazy representatives* agree.

// The one module in the crate allowed to use `unsafe`: stable `std::arch`
// intrinsics behind runtime feature detection. Every unsafe block is a call
// into the AVX2 back end, guarded by the policy that is only ever granted
// on CPUs reporting the feature.
#![allow(unsafe_code)]

use crate::poly::{p_add, p_mul, p_mul_add, p_neg, p_sub, MODULUS};
use std::hint::select_unpredictable;
use std::sync::atomic::{AtomicU8, Ordering};

/// `2^64 mod p = 2^32 - 1`: the wrap-compensation constant of the lazy
/// arithmetic (see the module docs).
pub const EPSILON: u64 = 0xFFFF_FFFF;

/// `x + ε` when `wrapped`, else `x` — the `+2^64 ≡ +ε` wrap compensation.
///
/// Wrap flags are data-dependent coin flips on lazy residues, so an `if`
/// here becomes a hard-to-predict branch; `select_unpredictable` pins the
/// fix-up to a conditional move (measured ~2x on the whole scalar NTT).
#[inline]
fn fold_add(x: u64, wrapped: bool) -> u64 {
    select_unpredictable(wrapped, x.wrapping_add(EPSILON), x)
}

/// `x - ε` when `wrapped`, else `x` — the borrow-side mirror of
/// [`fold_add`].
#[inline]
fn fold_sub(x: u64, wrapped: bool) -> u64 {
    select_unpredictable(wrapped, x.wrapping_sub(EPSILON), x)
}

// ---------------------------------------------------------------------------
// Scalar lazy-reduction primitives (the bit-identity oracle)
// ---------------------------------------------------------------------------

/// Reduces a 128-bit value to a **lazy** residue in `[0, 2^64)` — the same
/// limb arithmetic as [`crate::poly::reduce128`] minus the canonicalizing
/// compare. The result is an exact member of `x`'s residue class.
#[inline]
pub fn reduce128_lazy(x: u128) -> u64 {
    let x_lo = x as u64;
    let x_hi = (x >> 64) as u64;
    let x_hi_hi = x_hi >> 32;
    let x_hi_lo = x_hi & EPSILON;

    // A borrow added 2^64 ≡ ε; take it back out (cannot wrap again:
    // t0 ≥ 2^64 - x_hi_hi > ε there).
    let (t0, borrow) = x_lo.overflowing_sub(x_hi_hi);
    let t0 = fold_sub(t0, borrow);
    let t1 = x_hi_lo * EPSILON;
    // A carry removed 2^64 ≡ ε; put it back (sum ≤ 2^64 - 2^33 there,
    // cannot overflow).
    let (sum, carry) = t0.overflowing_add(t1);
    let r = fold_add(sum, carry);
    debug_assert!(u128::from(r) < 2 * u128::from(MODULUS));
    r
}

/// Lazy modular multiply: both inputs may be any `u64` lazy residues; the
/// result is a lazy residue in `[0, 2^64)` of the exact product class.
#[inline]
pub fn p_mul_lazy(a: u64, b: u64) -> u64 {
    reduce128_lazy(u128::from(a) * u128::from(b))
}

/// Lazy modular add: inputs and output are arbitrary-`u64` lazy residues.
/// Each 64-bit wrap is compensated by `+ε`; a second wrap can occur at most
/// once (the compensated value is then `< 2ε`), so two corrections always
/// suffice and the loop is branch-bounded.
#[inline]
pub fn p_add_lazy(a: u64, b: u64) -> u64 {
    // Flat (not nested) fix-ups, each a conditional move: a second wrap is
    // only possible after a first (adding 0 cannot overflow), and the
    // twice-compensated value is then `< 2ε`, so two corrections always
    // suffice.
    let (sum, overflow) = a.overflowing_add(b);
    let (sum2, overflow2) = sum.overflowing_add(select_unpredictable(overflow, EPSILON, 0));
    fold_add(sum2, overflow2)
}

/// Lazy modular subtract: mirror of [`p_add_lazy`] with `-ε` borrow
/// compensation (again at most two corrections).
#[inline]
pub fn p_sub_lazy(a: u64, b: u64) -> u64 {
    // Flat fix-ups for conditional moves, mirroring [`p_add_lazy`].
    let (diff, borrow) = a.overflowing_sub(b);
    let (diff2, borrow2) = diff.overflowing_sub(select_unpredictable(borrow, EPSILON, 0));
    fold_sub(diff2, borrow2)
}

/// Canonicalizes a lazy residue: one conditional subtract suffices because
/// every lazy value is `< 2^64 < 2p`.
#[inline]
pub fn p_canonical(x: u64) -> u64 {
    debug_assert!(u128::from(x) < 2 * u128::from(MODULUS));
    select_unpredictable(x >= MODULUS, x.wrapping_sub(MODULUS), x)
}

// ---------------------------------------------------------------------------
// Policy
// ---------------------------------------------------------------------------

/// Which arithmetic back end the hot loops run on.
///
/// Resolved once per process by [`SimdPolicy::global`] (runtime CPU feature
/// detection, overridable with `CHEHAB_SIMD=0|1` or [`SimdPolicy::set_global`]
/// for testing), then snapshotted by `NttTables` and `Evaluator` at
/// construction. The scalar path is the bit-identity oracle: outputs are
/// identical under either policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimdPolicy {
    /// Portable scalar kernels (the oracle and universal fallback).
    Scalar,
    /// AVX2 4-lane kernels (x86-64 only; selected only when the CPU
    /// supports it).
    Avx2,
}

/// Global policy cell: 0 = unresolved, 1 = scalar, 2 = AVX2.
static GLOBAL_POLICY: AtomicU8 = AtomicU8::new(0);

impl SimdPolicy {
    /// What the CPU supports, ignoring any override.
    pub fn detected() -> SimdPolicy {
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                return SimdPolicy::Avx2;
            }
        }
        SimdPolicy::Scalar
    }

    /// The process-wide policy: the first call resolves `CHEHAB_SIMD`
    /// (`0` forces scalar, `1` requests SIMD — granted only if the CPU has
    /// it) falling back to pure detection, and later calls return the cached
    /// decision. [`SimdPolicy::set_global`] overrides it at any time.
    pub fn global() -> SimdPolicy {
        match GLOBAL_POLICY.load(Ordering::Relaxed) {
            1 => return SimdPolicy::Scalar,
            2 => return SimdPolicy::Avx2,
            _ => {}
        }
        let resolved = match std::env::var("CHEHAB_SIMD").ok().as_deref() {
            Some("0") => SimdPolicy::Scalar,
            Some("1") => SimdPolicy::detected(),
            _ => SimdPolicy::detected(),
        };
        GLOBAL_POLICY.store(resolved.encode(), Ordering::Relaxed);
        resolved
    }

    /// Overrides the process-wide policy (tests and benches use this to run
    /// both back ends in one process). Forcing [`SimdPolicy::Avx2`] is
    /// ignored on hardware without AVX2 — the scalar fallback keeps outputs
    /// correct instead of faulting.
    pub fn set_global(policy: SimdPolicy) {
        let granted = match policy {
            SimdPolicy::Scalar => SimdPolicy::Scalar,
            SimdPolicy::Avx2 => SimdPolicy::detected(),
        };
        GLOBAL_POLICY.store(granted.encode(), Ordering::Relaxed);
    }

    /// `true` when this policy runs vectorized kernels.
    pub fn is_vectorized(self) -> bool {
        self == SimdPolicy::Avx2
    }

    /// Human-readable name (`"scalar"` / `"avx2"`), used in bench JSON and
    /// metrics labels.
    pub fn name(self) -> &'static str {
        match self {
            SimdPolicy::Scalar => "scalar",
            SimdPolicy::Avx2 => "avx2",
        }
    }

    fn encode(self) -> u8 {
        match self {
            SimdPolicy::Scalar => 1,
            SimdPolicy::Avx2 => 2,
        }
    }
}

// ---------------------------------------------------------------------------
// Dispatching kernel entry points (safe API)
// ---------------------------------------------------------------------------

/// Minimum slice length worth entering a vector kernel: below one full
/// vector there is nothing to vectorize.
const LANES: usize = 4;

/// Fused dual-component pointwise product chunk:
/// `o0[i] = x0[i]·m[i]`, `o1[i] = x1[i]·m[i]` (canonical outputs).
#[inline]
pub fn mul2_chunk(
    x0: &[u64],
    x1: &[u64],
    m: &[u64],
    o0: &mut [u64],
    o1: &mut [u64],
    policy: SimdPolicy,
) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && o0.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::mul2(x0, x1, m, o0, o1) };
        return;
    }
    let _ = policy;
    for i in 0..o0.len() {
        o0[i] = p_mul(x0[i], m[i]);
        o1[i] = p_mul(x1[i], m[i]);
    }
}

/// Fused dual-component scalar-scaled product chunk:
/// `scaled = m[i]·k` once per coefficient, then both components multiply it
/// (canonical outputs).
#[inline]
pub fn mul_scalar2_chunk(
    x0: &[u64],
    x1: &[u64],
    m: &[u64],
    k: u64,
    o0: &mut [u64],
    o1: &mut [u64],
    policy: SimdPolicy,
) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && o0.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::mul_scalar2(x0, x1, m, k, o0, o1) };
        return;
    }
    let _ = policy;
    for i in 0..o0.len() {
        let scaled = p_mul(m[i], k);
        o0[i] = p_mul(x0[i], scaled);
        o1[i] = p_mul(x1[i], scaled);
    }
}

/// Fused BFV tensor-product + relinearization chunk (six ring products per
/// coefficient, canonical outputs):
///
/// ```text
/// c2    = a1·b1
/// o0[i] = a0·b0 + c2·s0
/// o1[i] = a0·b1 + a1·b0 + c2·s1
/// ```
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn mul_add2_chunk(
    a0: &[u64],
    a1: &[u64],
    b0: &[u64],
    b1: &[u64],
    s0: &[u64],
    s1: &[u64],
    o0: &mut [u64],
    o1: &mut [u64],
    policy: SimdPolicy,
) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && o0.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::mul_add2(a0, a1, b0, b1, s0, s1, o0, o1) };
        return;
    }
    let _ = policy;
    for i in 0..o0.len() {
        let c2 = p_mul(a1[i], b1[i]);
        o0[i] = p_mul_add(c2, s0[i], p_mul(a0[i], b0[i]));
        o1[i] = p_mul_add(c2, s1[i], p_mul_add(a1[i], b0[i], p_mul(a0[i], b1[i])));
    }
}

/// Fused Galois gather + key-switch chunk: `o0[i] = src0[perm[i]]·key[i]`
/// and likewise for the second component (canonical outputs). `src0`/`src1`
/// are the *full* component slices (the permutation indexes the whole
/// polynomial); `perm`/`key` are the chunk's windows.
#[inline]
pub fn galois2_chunk(
    src0: &[u64],
    src1: &[u64],
    perm: &[u32],
    key: &[u64],
    o0: &mut [u64],
    o1: &mut [u64],
    policy: SimdPolicy,
) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && o0.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::galois2(src0, src1, perm, key, o0, o1) };
        return;
    }
    let _ = policy;
    for i in 0..o0.len() {
        let src = perm[i] as usize;
        o0[i] = p_mul(src0[src], key[i]);
        o1[i] = p_mul(src1[src], key[i]);
    }
}

/// Generic-limb twin of [`mul2_chunk`]: the fused dual-component
/// pointwise product over an RNS limb prime `2^60 < q < 2^61`, reduced by
/// Barrett with the precomputed `mu = ⌊2^124 / q⌋` (see
/// [`crate::rns::barrett_mul`]). Unlike the memory-bound Goldilocks path,
/// the Barrett product is compute-dense enough that the AVX2 back end
/// shows a real arithmetic-intensity win — the effect the multi-limb
/// ct-pt kernel is built to exploit.
#[inline]
#[allow(clippy::too_many_arguments)]
pub fn mul2_chunk_q(
    x0: &[u64],
    x1: &[u64],
    m: &[u64],
    o0: &mut [u64],
    o1: &mut [u64],
    q: u64,
    mu: u64,
    policy: SimdPolicy,
) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && o0.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::mul2_q(x0, x1, m, o0, o1, q, mu) };
        return;
    }
    let _ = policy;
    for i in 0..o0.len() {
        o0[i] = crate::rns::barrett_mul(x0[i], m[i], q, mu);
        o1[i] = crate::rns::barrett_mul(x1[i], m[i], q, mu);
    }
}

/// Pure permutation gather: `out[i] = src[perm[i]]` — the vectorized form
/// of the Galois index permutation applied to a standalone polynomial
/// (no key-switch product fused in). `src` is the full source slice; the
/// permutation indexes all of it.
#[inline]
pub fn gather_chunk(src: &[u64], perm: &[u32], out: &mut [u64], policy: SimdPolicy) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && out.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::gather(src, perm, out) };
        return;
    }
    let _ = policy;
    for i in 0..out.len() {
        out[i] = src[perm[i] as usize];
    }
}

/// Stripe-wide modular addition of canonical inputs (canonical output).
#[inline]
pub fn add_stripe(x: &[u64], y: &[u64], out: &mut [u64], policy: SimdPolicy) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && out.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::add(x, y, out) };
        return;
    }
    let _ = policy;
    for i in 0..out.len() {
        out[i] = p_add(x[i], y[i]);
    }
}

/// Stripe-wide modular subtraction of canonical inputs (canonical output).
#[inline]
pub fn sub_stripe(x: &[u64], y: &[u64], out: &mut [u64], policy: SimdPolicy) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && out.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::sub(x, y, out) };
        return;
    }
    let _ = policy;
    for i in 0..out.len() {
        out[i] = p_sub(x[i], y[i]);
    }
}

/// Stripe-wide modular negation of canonical input (canonical output).
#[inline]
pub fn neg_stripe(x: &[u64], out: &mut [u64], policy: SimdPolicy) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && out.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::neg(x, out) };
        return;
    }
    let _ = policy;
    for i in 0..out.len() {
        out[i] = p_neg(x[i]);
    }
}

/// In-place [`add_stripe`]: `x[i] += y[i]`.
#[inline]
pub fn add_stripe_assign(x: &mut [u64], y: &[u64], policy: SimdPolicy) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && x.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::add_assign(x, y) };
        return;
    }
    let _ = policy;
    for i in 0..x.len() {
        x[i] = p_add(x[i], y[i]);
    }
}

/// In-place [`sub_stripe`]: `x[i] -= y[i]`.
#[inline]
pub fn sub_stripe_assign(x: &mut [u64], y: &[u64], policy: SimdPolicy) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && x.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::sub_assign(x, y) };
        return;
    }
    let _ = policy;
    for i in 0..x.len() {
        x[i] = p_sub(x[i], y[i]);
    }
}

/// In-place [`neg_stripe`]: `x[i] = -x[i]`.
#[inline]
pub fn neg_stripe_assign(x: &mut [u64], policy: SimdPolicy) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && x.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::neg_assign(x) };
        return;
    }
    let _ = policy;
    for x in x.iter_mut() {
        *x = p_neg(*x);
    }
}

/// One forward Cooley–Tukey butterfly block with the shared twiddle `s`
/// (lazy arithmetic): `lo[j], hi[j] = lo[j] + hi[j]·s, lo[j] - hi[j]·s`.
/// Inputs may be arbitrary lazy residues. When `canonical` is set (the
/// transform's last stage) outputs are canonicalized in the same pass,
/// fusing the normalization into the final butterfly layer.
#[inline]
pub fn forward_butterfly_block(
    lo: &mut [u64],
    hi: &mut [u64],
    s: u64,
    canonical: bool,
    policy: SimdPolicy,
) {
    debug_assert_eq!(lo.len(), hi.len());
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && lo.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::forward_butterfly(lo, hi, s, canonical) };
        return;
    }
    let _ = policy;
    for (u, v) in lo.iter_mut().zip(hi.iter_mut()) {
        let x = *u;
        let y = p_mul_lazy(*v, s);
        let (a, b) = (p_add_lazy(x, y), p_sub_lazy(x, y));
        if canonical {
            *u = p_canonical(a);
            *v = p_canonical(b);
        } else {
            *u = a;
            *v = b;
        }
    }
}

/// One inverse Gentleman–Sande butterfly block with the shared twiddle `s`
/// (lazy arithmetic): `lo[j], hi[j] = lo[j] + hi[j], (lo[j] - hi[j])·s`.
/// Outputs stay lazy; the inverse transform's final `n^{-1}` scaling
/// ([`scale_canonical`]) canonicalizes.
#[inline]
pub fn inverse_butterfly_block(lo: &mut [u64], hi: &mut [u64], s: u64, policy: SimdPolicy) {
    debug_assert_eq!(lo.len(), hi.len());
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && lo.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::inverse_butterfly(lo, hi, s) };
        return;
    }
    let _ = policy;
    for (u, v) in lo.iter_mut().zip(hi.iter_mut()) {
        let (x, y) = (*u, *v);
        *u = p_add_lazy(x, y);
        *v = p_mul_lazy(p_sub_lazy(x, y), s);
    }
}

/// One whole forward butterfly stage: `a` is partitioned into
/// `twiddles.len()` consecutive groups of `2·t` elements, and group `i`
/// applies the Cooley–Tukey butterfly with twiddle `twiddles[i]` between
/// its two halves (lazy arithmetic; `canonical` fuses the normalization
/// into the transform's last stage).
///
/// Hoisting the group loop under a single dispatch keeps per-group call
/// and policy-check overhead off the hot path, and lets the AVX2 back end
/// vectorize the `t < LANES` final stages *across* groups with in-register
/// shuffles instead of falling back to scalar tails.
#[inline]
pub fn forward_stage(
    a: &mut [u64],
    twiddles: &[u64],
    t: usize,
    canonical: bool,
    policy: SimdPolicy,
) {
    debug_assert_eq!(a.len(), 2 * t * twiddles.len());
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::forward_stage(a, twiddles, t, canonical) };
        return;
    }
    let _ = policy;
    for (i, &s) in twiddles.iter().enumerate() {
        let j1 = 2 * i * t;
        for j in j1..j1 + t {
            let u = a[j];
            let v = p_mul_lazy(a[j + t], s);
            let (x, y) = (p_add_lazy(u, v), p_sub_lazy(u, v));
            if canonical {
                a[j] = p_canonical(x);
                a[j + t] = p_canonical(y);
            } else {
                a[j] = x;
                a[j + t] = y;
            }
        }
    }
}

/// One whole inverse (Gentleman–Sande) butterfly stage over the same group
/// layout as [`forward_stage`]: group `i` computes `lo, hi = lo + hi,
/// (lo - hi)·twiddles[i]` between its halves. All outputs stay lazy — the
/// inverse transform's final scaling pass ([`scale_canonical`])
/// canonicalizes.
#[inline]
pub fn inverse_stage(a: &mut [u64], twiddles: &[u64], t: usize, policy: SimdPolicy) {
    debug_assert_eq!(a.len(), 2 * t * twiddles.len());
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::inverse_stage(a, twiddles, t) };
        return;
    }
    let _ = policy;
    for (i, &s) in twiddles.iter().enumerate() {
        let j1 = 2 * i * t;
        for j in j1..j1 + t {
            let (x, y) = (a[j], a[j + t]);
            a[j] = p_add_lazy(x, y);
            a[j + t] = p_mul_lazy(p_sub_lazy(x, y), s);
        }
    }
}

/// Multiplies every (possibly lazy) value by the canonical scalar `k` with a
/// full canonicalizing reduction — the inverse NTT's final `n^{-1}` pass.
#[inline]
pub fn scale_canonical(a: &mut [u64], k: u64, policy: SimdPolicy) {
    #[cfg(target_arch = "x86_64")]
    if policy.is_vectorized() && a.len() >= LANES {
        // SAFETY: `Avx2` is only ever granted when the CPU reports AVX2.
        unsafe { avx2::scale(a, k) };
        return;
    }
    let _ = policy;
    for x in a.iter_mut() {
        *x = p_mul(*x, k);
    }
}

// ---------------------------------------------------------------------------
// AVX2 back end (x86-64 only, stable std::arch)
// ---------------------------------------------------------------------------

#[cfg(target_arch = "x86_64")]
#[allow(unsafe_code)]
mod avx2 {
    //! Four-lane (4 × u64) implementations of the dispatch kernels above.
    //!
    //! Every function carries `#[target_feature(enable = "avx2")]` and is
    //! reached only through the policy dispatch, which grants
    //! [`SimdPolicy::Avx2`](super::SimdPolicy::Avx2) exclusively on CPUs
    //! that report the feature. Tails shorter than one vector run the same
    //! scalar lazy algorithm, so representatives match lane-for-lane.

    use super::{p_add_lazy, p_canonical, p_mul_lazy, p_sub_lazy, EPSILON, LANES};
    use crate::poly::{p_add, p_mul, p_neg, p_sub, MODULUS};
    use core::arch::x86_64::*;

    /// Splat of the sign bit, for unsigned lane compares via sign-flip.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn sign_bit() -> __m256i {
        _mm256_set1_epi64x(i64::MIN)
    }

    /// Per-lane unsigned `a < b` mask (`cmpgt_epi64` is signed; xor-ing the
    /// sign bit into both operands makes it behave unsigned).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn lt_u64(a: __m256i, b: __m256i) -> __m256i {
        let s = sign_bit();
        _mm256_cmpgt_epi64(_mm256_xor_si256(b, s), _mm256_xor_si256(a, s))
    }

    /// Lazy add: `a + b` with up to two `+ε` wrap compensations (the exact
    /// algorithm of [`p_add_lazy`], four lanes at a time).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn add_lazy(a: __m256i, b: __m256i) -> __m256i {
        let eps = _mm256_set1_epi64x(EPSILON as i64);
        let sum = _mm256_add_epi64(a, b);
        let wrapped = lt_u64(sum, a);
        let sum2 = _mm256_add_epi64(sum, _mm256_and_si256(wrapped, eps));
        // A second wrap is only possible where the first correction applied
        // (adding 0 cannot wrap), so `sum2 < sum` already implies it.
        let wrapped2 = lt_u64(sum2, sum);
        _mm256_add_epi64(sum2, _mm256_and_si256(wrapped2, eps))
    }

    /// Lazy subtract: `a - b` with up to two `-ε` borrow compensations
    /// (mirror of [`add_lazy`]).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn sub_lazy(a: __m256i, b: __m256i) -> __m256i {
        let eps = _mm256_set1_epi64x(EPSILON as i64);
        let diff = _mm256_sub_epi64(a, b);
        let borrowed = lt_u64(a, b);
        let correction = _mm256_and_si256(borrowed, eps);
        let diff2 = _mm256_sub_epi64(diff, correction);
        let borrowed2 = lt_u64(diff, correction);
        _mm256_sub_epi64(diff2, _mm256_and_si256(borrowed2, eps))
    }

    /// Canonicalizes lazy lanes: one conditional subtract (every lazy value
    /// is `< 2^64 < 2p`).
    #[inline]
    #[target_feature(enable = "avx2")]
    fn canonical(x: __m256i) -> __m256i {
        let p = _mm256_set1_epi64x(MODULUS as i64);
        let below = lt_u64(x, p);
        _mm256_sub_epi64(x, _mm256_andnot_si256(below, p))
    }

    /// Full 64×64→128 lane product synthesized from four 32×32→64 partial
    /// products (`_mm256_mul_epu32` multiplies the low halves of each lane).
    /// Returns `(hi, lo)` 64-bit halves.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mul_64_64(a: __m256i, b: __m256i) -> (__m256i, __m256i) {
        let mask32 = _mm256_set1_epi64x(EPSILON as i64);
        let a_hi = _mm256_srli_epi64(a, 32);
        let b_hi = _mm256_srli_epi64(b, 32);
        let ll = _mm256_mul_epu32(a, b);
        let lh = _mm256_mul_epu32(a, b_hi);
        let hl = _mm256_mul_epu32(a_hi, b);
        let hh = _mm256_mul_epu32(a_hi, b_hi);
        // t = hl + (ll >> 32): at most (2^32-1)^2 + (2^32-1) < 2^64, no wrap.
        let t = _mm256_add_epi64(hl, _mm256_srli_epi64(ll, 32));
        // u = lh + (t & mask32): same bound, no wrap.
        let u = _mm256_add_epi64(lh, _mm256_and_si256(t, mask32));
        let hi = _mm256_add_epi64(
            hh,
            _mm256_add_epi64(_mm256_srli_epi64(t, 32), _mm256_srli_epi64(u, 32)),
        );
        // lo = (u << 32) | (ll & mask32): interleave the 32-bit halves.
        let lo = _mm256_blend_epi32::<0b1010_1010>(ll, _mm256_slli_epi64(u, 32));
        (hi, lo)
    }

    /// Lazy Goldilocks reduction of `(hi, lo)` lane pairs — the vector twin
    /// of [`super::reduce128_lazy`], identical correction algorithm.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn reduce128_lazy_v(hi: __m256i, lo: __m256i) -> __m256i {
        let eps = _mm256_set1_epi64x(EPSILON as i64);
        let mask32 = eps;
        let hi_hi = _mm256_srli_epi64(hi, 32);
        let hi_lo = _mm256_and_si256(hi, mask32);
        // t0 = lo - hi_hi, compensating a borrow with -ε (cannot re-borrow).
        let borrowed = lt_u64(lo, hi_hi);
        let t0 = _mm256_sub_epi64(_mm256_sub_epi64(lo, hi_hi), _mm256_and_si256(borrowed, eps));
        // t1 = hi_lo·ε = (hi_lo << 32) - hi_lo (fits: hi_lo < 2^32).
        let t1 = _mm256_sub_epi64(_mm256_slli_epi64(hi_lo, 32), hi_lo);
        // r = t0 + t1, compensating a wrap with +ε (cannot re-wrap: the
        // wrapped sum is at most 2^64 - 2^33).
        let sum = _mm256_add_epi64(t0, t1);
        let wrapped = lt_u64(sum, t0);
        _mm256_add_epi64(sum, _mm256_and_si256(wrapped, eps))
    }

    /// Lazy lane product: `a·b` reduced to `[0, 2^64)`.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mul_lazy(a: __m256i, b: __m256i) -> __m256i {
        let (hi, lo) = mul_64_64(a, b);
        reduce128_lazy_v(hi, lo)
    }

    /// Lazy fused multiply-add `a·b + c` (128-bit accumulate, one lazy
    /// reduction): the vector twin of `p_mul_add` minus canonicalization.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn mul_add_lazy(a: __m256i, b: __m256i, c: __m256i) -> __m256i {
        let (hi, lo) = mul_64_64(a, b);
        let lo2 = _mm256_add_epi64(lo, c);
        // Carry into the high half: the mask is all-ones (-1) on wrapped
        // lanes, so subtracting it adds one. `hi ≤ 2^64 - 2` so no wrap.
        let carried = lt_u64(lo2, lo);
        let hi2 = _mm256_sub_epi64(hi, carried);
        reduce128_lazy_v(hi2, lo2)
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn load(p: &[u64], i: usize) -> __m256i {
        unsafe { _mm256_loadu_si256(p.as_ptr().add(i) as *const __m256i) }
    }

    #[inline]
    #[target_feature(enable = "avx2")]
    unsafe fn store(p: &mut [u64], i: usize, v: __m256i) {
        unsafe { _mm256_storeu_si256(p.as_mut_ptr().add(i) as *mut __m256i, v) }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul2(x0: &[u64], x1: &[u64], m: &[u64], o0: &mut [u64], o1: &mut [u64]) {
        let n = o0.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe {
                let mv = load(m, i);
                store(o0, i, canonical(mul_lazy(load(x0, i), mv)));
                store(o1, i, canonical(mul_lazy(load(x1, i), mv)));
            }
            i += 4;
        }
        while i < n {
            o0[i] = p_mul(x0[i], m[i]);
            o1[i] = p_mul(x1[i], m[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn mul_scalar2(
        x0: &[u64],
        x1: &[u64],
        m: &[u64],
        k: u64,
        o0: &mut [u64],
        o1: &mut [u64],
    ) {
        let n = o0.len();
        let kv = _mm256_set1_epi64x(k as i64);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe {
                let scaled = mul_lazy(load(m, i), kv);
                store(o0, i, canonical(mul_lazy(load(x0, i), scaled)));
                store(o1, i, canonical(mul_lazy(load(x1, i), scaled)));
            }
            i += 4;
        }
        while i < n {
            let scaled = p_mul_lazy(m[i], k);
            o0[i] = p_canonical(p_mul_lazy(x0[i], scaled));
            o1[i] = p_canonical(p_mul_lazy(x1[i], scaled));
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn mul_add2(
        a0: &[u64],
        a1: &[u64],
        b0: &[u64],
        b1: &[u64],
        s0: &[u64],
        s1: &[u64],
        o0: &mut [u64],
        o1: &mut [u64],
    ) {
        let n = o0.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe {
                let (a0v, a1v) = (load(a0, i), load(a1, i));
                let (b0v, b1v) = (load(b0, i), load(b1, i));
                let c2 = mul_lazy(a1v, b1v);
                let t0 = mul_add_lazy(c2, load(s0, i), mul_lazy(a0v, b0v));
                let inner = mul_add_lazy(a1v, b0v, mul_lazy(a0v, b1v));
                let t1 = mul_add_lazy(c2, load(s1, i), inner);
                store(o0, i, canonical(t0));
                store(o1, i, canonical(t1));
            }
            i += 4;
        }
        while i < n {
            let c2 = p_mul_lazy(a1[i], b1[i]);
            let t0 = mul_add_lazy_scalar(c2, s0[i], p_mul_lazy(a0[i], b0[i]));
            let inner = mul_add_lazy_scalar(a1[i], b0[i], p_mul_lazy(a0[i], b1[i]));
            o0[i] = p_canonical(t0);
            o1[i] = p_canonical(mul_add_lazy_scalar(c2, s1[i], inner));
            i += 1;
        }
    }

    /// Scalar twin of [`mul_add_lazy`] for kernel tails.
    #[inline]
    fn mul_add_lazy_scalar(a: u64, b: u64, c: u64) -> u64 {
        super::reduce128_lazy(u128::from(a) * u128::from(b) + u128::from(c))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn galois2(
        src0: &[u64],
        src1: &[u64],
        perm: &[u32],
        key: &[u64],
        o0: &mut [u64],
        o1: &mut [u64],
    ) {
        let n = o0.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds the window accesses; every
            // permutation index is < degree = src0.len() = src1.len() by
            // construction of `galois_eval_permutation`.
            unsafe {
                let idx = _mm_loadu_si128(perm.as_ptr().add(i) as *const __m128i);
                let g0 = _mm256_i32gather_epi64::<8>(src0.as_ptr() as *const i64, idx);
                let g1 = _mm256_i32gather_epi64::<8>(src1.as_ptr() as *const i64, idx);
                let kv = load(key, i);
                store(o0, i, canonical(mul_lazy(g0, kv)));
                store(o1, i, canonical(mul_lazy(g1, kv)));
            }
            i += 4;
        }
        while i < n {
            let src = perm[i] as usize;
            o0[i] = p_mul(src0[src], key[i]);
            o1[i] = p_mul(src1[src], key[i]);
            i += 1;
        }
    }

    /// Four-lane Barrett product for a generic RNS limb prime
    /// `2^60 < q < 2^61`: the exact integer algorithm of
    /// [`crate::rns::barrett_mul`] (quotient estimate from
    /// `⌊(⌊x/2^60⌋·mu)/2^64⌋`, remainder in `[0, 3q)`, two conditional
    /// subtracts), so lanes are bit-identical to the scalar oracle.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn barrett_mul_v(a: __m256i, b: __m256i, qv: __m256i, muv: __m256i) -> __m256i {
        let (hi, lo) = mul_64_64(a, b);
        // x >> 60 = (hi << 4) | (lo >> 60); hi < 2^58 so no bits are lost.
        let shifted = _mm256_or_si256(_mm256_slli_epi64(hi, 4), _mm256_srli_epi64(lo, 60));
        let (q_hat, _) = mul_64_64(shifted, muv);
        let (_, prod_lo) = mul_64_64(q_hat, qv);
        // True value of x - q_hat·q is in [0, 3q) ⊂ [0, 2^64): the wrapped
        // low-word subtraction is exact.
        let mut r = _mm256_sub_epi64(lo, prod_lo);
        r = _mm256_sub_epi64(r, _mm256_andnot_si256(lt_u64(r, qv), qv));
        _mm256_sub_epi64(r, _mm256_andnot_si256(lt_u64(r, qv), qv))
    }

    #[target_feature(enable = "avx2")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn mul2_q(
        x0: &[u64],
        x1: &[u64],
        m: &[u64],
        o0: &mut [u64],
        o1: &mut [u64],
        q: u64,
        mu: u64,
    ) {
        let n = o0.len();
        let qv = _mm256_set1_epi64x(q as i64);
        let muv = _mm256_set1_epi64x(mu as i64);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe {
                let mv = load(m, i);
                store(o0, i, barrett_mul_v(load(x0, i), mv, qv, muv));
                store(o1, i, barrett_mul_v(load(x1, i), mv, qv, muv));
            }
            i += 4;
        }
        while i < n {
            o0[i] = crate::rns::barrett_mul(x0[i], m[i], q, mu);
            o1[i] = crate::rns::barrett_mul(x1[i], m[i], q, mu);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn gather(src: &[u64], perm: &[u32], out: &mut [u64]) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds the window accesses; every
            // permutation index is < src.len() by construction of
            // `galois_eval_permutation`.
            unsafe {
                let idx = _mm_loadu_si128(perm.as_ptr().add(i) as *const __m128i);
                let g = _mm256_i32gather_epi64::<8>(src.as_ptr() as *const i64, idx);
                store(out, i, g);
            }
            i += 4;
        }
        while i < n {
            out[i] = src[perm[i] as usize];
            i += 1;
        }
    }

    /// Canonical add of canonical lanes: a 64-bit wrap means the true sum is
    /// in `[2^64, 2p)`, whose canonical form is `wrapped + ε`; otherwise one
    /// conditional subtract finishes.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn add_canonical(a: __m256i, b: __m256i) -> __m256i {
        let eps = _mm256_set1_epi64x(EPSILON as i64);
        let sum = _mm256_add_epi64(a, b);
        let wrapped = lt_u64(sum, a);
        canonical(_mm256_add_epi64(sum, _mm256_and_si256(wrapped, eps)))
    }

    /// Canonical subtract of canonical lanes: on borrow the true value is
    /// `a - b + p = wrapped - ε + 1`... computed as `wrapped + p` with
    /// wrapping, i.e. `wrapped - (2^64 - p) = wrapped - ε + ... `; simplest
    /// exact form: `a - b + p` when `a < b`, done branchlessly.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn sub_canonical(a: __m256i, b: __m256i) -> __m256i {
        let p = _mm256_set1_epi64x(MODULUS as i64);
        let diff = _mm256_sub_epi64(a, b);
        let borrowed = lt_u64(a, b);
        // a, b canonical: a - b + p < p ≤ 2^64, and the wrapping add of p
        // to the wrapped difference yields exactly it.
        _mm256_add_epi64(diff, _mm256_and_si256(borrowed, p))
    }

    /// Canonical negate of canonical lanes: `0 - x` is `p - x` for `x ≠ 0`
    /// and `0` for `x = 0`, branchless via a zero mask.
    #[inline]
    #[target_feature(enable = "avx2")]
    fn neg_canonical(x: __m256i) -> __m256i {
        let p = _mm256_set1_epi64x(MODULUS as i64);
        let zero = _mm256_setzero_si256();
        let is_zero = _mm256_cmpeq_epi64(x, zero);
        _mm256_andnot_si256(is_zero, _mm256_sub_epi64(p, x))
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add(x: &[u64], y: &[u64], out: &mut [u64]) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe { store(out, i, add_canonical(load(x, i), load(y, i))) };
            i += 4;
        }
        while i < n {
            out[i] = p_add(x[i], y[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub(x: &[u64], y: &[u64], out: &mut [u64]) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe { store(out, i, sub_canonical(load(x, i), load(y, i))) };
            i += 4;
        }
        while i < n {
            out[i] = p_sub(x[i], y[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn neg(x: &[u64], out: &mut [u64]) {
        let n = out.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe { store(out, i, neg_canonical(load(x, i))) };
            i += 4;
        }
        while i < n {
            out[i] = p_neg(x[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn add_assign(x: &mut [u64], y: &[u64]) {
        let n = x.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe { store(x, i, add_canonical(load(x, i), load(y, i))) };
            i += 4;
        }
        while i < n {
            x[i] = p_add(x[i], y[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn sub_assign(x: &mut [u64], y: &[u64]) {
        let n = x.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe { store(x, i, sub_canonical(load(x, i), load(y, i))) };
            i += 4;
        }
        while i < n {
            x[i] = p_sub(x[i], y[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn neg_assign(x: &mut [u64]) {
        let n = x.len();
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe { store(x, i, neg_canonical(load(x, i))) };
            i += 4;
        }
        while i < n {
            x[i] = p_neg(x[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn forward_butterfly(
        lo: &mut [u64],
        hi: &mut [u64],
        s: u64,
        canonicalize: bool,
    ) {
        let n = lo.len();
        let sv = _mm256_set1_epi64x(s as i64);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe {
                let u = load(lo, i);
                let v = mul_lazy(load(hi, i), sv);
                let (mut a, mut b) = (add_lazy(u, v), sub_lazy(u, v));
                if canonicalize {
                    a = canonical(a);
                    b = canonical(b);
                }
                store(lo, i, a);
                store(hi, i, b);
            }
            i += 4;
        }
        while i < n {
            let x = lo[i];
            let y = p_mul_lazy(hi[i], s);
            let (a, b) = (p_add_lazy(x, y), p_sub_lazy(x, y));
            if canonicalize {
                lo[i] = p_canonical(a);
                hi[i] = p_canonical(b);
            } else {
                lo[i] = a;
                hi[i] = b;
            }
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn inverse_butterfly(lo: &mut [u64], hi: &mut [u64], s: u64) {
        let n = lo.len();
        let sv = _mm256_set1_epi64x(s as i64);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe {
                let u = load(lo, i);
                let v = load(hi, i);
                store(lo, i, add_lazy(u, v));
                store(hi, i, mul_lazy(sub_lazy(u, v), sv));
            }
            i += 4;
        }
        while i < n {
            let (x, y) = (lo[i], hi[i]);
            lo[i] = p_add_lazy(x, y);
            hi[i] = p_mul_lazy(p_sub_lazy(x, y), s);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn forward_stage(
        a: &mut [u64],
        twiddles: &[u64],
        t: usize,
        canonicalize: bool,
    ) {
        if t >= LANES {
            for (i, &s) in twiddles.iter().enumerate() {
                let (lo, hi) = a[2 * i * t..2 * (i + 1) * t].split_at_mut(t);
                // SAFETY: AVX2 is available in this target_feature context.
                unsafe { forward_butterfly(lo, hi, s, canonicalize) };
            }
        } else if t == 2 {
            // SAFETY: as above.
            unsafe { forward_stage_t2(a, twiddles, canonicalize) };
        } else {
            debug_assert_eq!(t, 1);
            // SAFETY: as above.
            unsafe { forward_stage_t1(a, twiddles, canonicalize) };
        }
    }

    /// Penultimate-stage butterflies (`t == 2`): groups of four elements
    /// `[lo0 lo1 hi0 hi1]`, one twiddle per group. Two groups per
    /// iteration: `permute2x128` splits the 128-bit group halves into
    /// cross-group `lo`/`hi` vectors and re-interleaves the results.
    #[target_feature(enable = "avx2")]
    unsafe fn forward_stage_t2(a: &mut [u64], twiddles: &[u64], canonicalize: bool) {
        let m = twiddles.len();
        let mut i = 0;
        while i + 2 <= m {
            // SAFETY: groups i and i+1 span elements 4i..4i+8 of `a`, in
            // bounds because i + 2 <= m and a.len() == 4m.
            unsafe {
                let v0 = load(a, 4 * i);
                let v1 = load(a, 4 * i + 4);
                let lo = _mm256_permute2x128_si256::<0x20>(v0, v1);
                let hi = _mm256_permute2x128_si256::<0x31>(v0, v1);
                let (s0, s1) = (twiddles[i] as i64, twiddles[i + 1] as i64);
                let tw = _mm256_set_epi64x(s1, s1, s0, s0);
                let y = mul_lazy(hi, tw);
                let (mut p, mut q) = (add_lazy(lo, y), sub_lazy(lo, y));
                if canonicalize {
                    p = canonical(p);
                    q = canonical(q);
                }
                store(a, 4 * i, _mm256_permute2x128_si256::<0x20>(p, q));
                store(a, 4 * i + 4, _mm256_permute2x128_si256::<0x31>(p, q));
            }
            i += 2;
        }
        while i < m {
            let s = twiddles[i];
            for j in 4 * i..4 * i + 2 {
                let u = a[j];
                let v = p_mul_lazy(a[j + 2], s);
                let (x, y) = (p_add_lazy(u, v), p_sub_lazy(u, v));
                if canonicalize {
                    a[j] = p_canonical(x);
                    a[j + 2] = p_canonical(y);
                } else {
                    a[j] = x;
                    a[j + 2] = y;
                }
            }
            i += 1;
        }
    }

    /// Final-stage butterflies (`t == 1`): adjacent pairs
    /// `(a[2i], a[2i+1])`, each with its own twiddle. Four pairs per
    /// iteration: `unpacklo/hi_epi64` de-interleave the pairs into
    /// `lo`/`hi` vectors in lane order `(0, 2, 1, 3)`, the twiddle vector
    /// is permuted to match, and the same unpacks re-interleave the
    /// results.
    #[target_feature(enable = "avx2")]
    unsafe fn forward_stage_t1(a: &mut [u64], twiddles: &[u64], canonicalize: bool) {
        let m = twiddles.len();
        let mut i = 0;
        while i + 4 <= m {
            // SAFETY: pairs i..i+4 span elements 2i..2i+8 of `a`, in bounds
            // because i + 4 <= m and a.len() == 2m; twiddles i..i+4 likewise.
            unsafe {
                let v0 = load(a, 2 * i);
                let v1 = load(a, 2 * i + 4);
                let lo = _mm256_unpacklo_epi64(v0, v1);
                let hi = _mm256_unpackhi_epi64(v0, v1);
                let tw = _mm256_permute4x64_epi64::<0xD8>(load(twiddles, i));
                let y = mul_lazy(hi, tw);
                let (mut p, mut q) = (add_lazy(lo, y), sub_lazy(lo, y));
                if canonicalize {
                    p = canonical(p);
                    q = canonical(q);
                }
                store(a, 2 * i, _mm256_unpacklo_epi64(p, q));
                store(a, 2 * i + 4, _mm256_unpackhi_epi64(p, q));
            }
            i += 4;
        }
        while i < m {
            let u = a[2 * i];
            let v = p_mul_lazy(a[2 * i + 1], twiddles[i]);
            let (x, y) = (p_add_lazy(u, v), p_sub_lazy(u, v));
            if canonicalize {
                a[2 * i] = p_canonical(x);
                a[2 * i + 1] = p_canonical(y);
            } else {
                a[2 * i] = x;
                a[2 * i + 1] = y;
            }
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn inverse_stage(a: &mut [u64], twiddles: &[u64], t: usize) {
        if t >= LANES {
            for (i, &s) in twiddles.iter().enumerate() {
                let (lo, hi) = a[2 * i * t..2 * (i + 1) * t].split_at_mut(t);
                // SAFETY: AVX2 is available in this target_feature context.
                unsafe { inverse_butterfly(lo, hi, s) };
            }
        } else if t == 2 {
            // SAFETY: as above.
            unsafe { inverse_stage_t2(a, twiddles) };
        } else {
            debug_assert_eq!(t, 1);
            // SAFETY: as above.
            unsafe { inverse_stage_t1(a, twiddles) };
        }
    }

    /// Gentleman–Sande mirror of [`forward_stage_t2`] (same lane
    /// choreography, inverse butterfly compute).
    #[target_feature(enable = "avx2")]
    unsafe fn inverse_stage_t2(a: &mut [u64], twiddles: &[u64]) {
        let m = twiddles.len();
        let mut i = 0;
        while i + 2 <= m {
            // SAFETY: groups i and i+1 span elements 4i..4i+8 of `a`, in
            // bounds because i + 2 <= m and a.len() == 4m.
            unsafe {
                let v0 = load(a, 4 * i);
                let v1 = load(a, 4 * i + 4);
                let lo = _mm256_permute2x128_si256::<0x20>(v0, v1);
                let hi = _mm256_permute2x128_si256::<0x31>(v0, v1);
                let (s0, s1) = (twiddles[i] as i64, twiddles[i + 1] as i64);
                let tw = _mm256_set_epi64x(s1, s1, s0, s0);
                let p = add_lazy(lo, hi);
                let q = mul_lazy(sub_lazy(lo, hi), tw);
                store(a, 4 * i, _mm256_permute2x128_si256::<0x20>(p, q));
                store(a, 4 * i + 4, _mm256_permute2x128_si256::<0x31>(p, q));
            }
            i += 2;
        }
        while i < m {
            let s = twiddles[i];
            for j in 4 * i..4 * i + 2 {
                let (x, y) = (a[j], a[j + 2]);
                a[j] = p_add_lazy(x, y);
                a[j + 2] = p_mul_lazy(p_sub_lazy(x, y), s);
            }
            i += 1;
        }
    }

    /// Gentleman–Sande mirror of [`forward_stage_t1`] (same lane
    /// choreography, inverse butterfly compute).
    #[target_feature(enable = "avx2")]
    unsafe fn inverse_stage_t1(a: &mut [u64], twiddles: &[u64]) {
        let m = twiddles.len();
        let mut i = 0;
        while i + 4 <= m {
            // SAFETY: pairs i..i+4 span elements 2i..2i+8 of `a`, in bounds
            // because i + 4 <= m and a.len() == 2m; twiddles i..i+4 likewise.
            unsafe {
                let v0 = load(a, 2 * i);
                let v1 = load(a, 2 * i + 4);
                let lo = _mm256_unpacklo_epi64(v0, v1);
                let hi = _mm256_unpackhi_epi64(v0, v1);
                let tw = _mm256_permute4x64_epi64::<0xD8>(load(twiddles, i));
                let p = add_lazy(lo, hi);
                let q = mul_lazy(sub_lazy(lo, hi), tw);
                store(a, 2 * i, _mm256_unpacklo_epi64(p, q));
                store(a, 2 * i + 4, _mm256_unpackhi_epi64(p, q));
            }
            i += 4;
        }
        while i < m {
            let (x, y) = (a[2 * i], a[2 * i + 1]);
            a[2 * i] = p_add_lazy(x, y);
            a[2 * i + 1] = p_mul_lazy(p_sub_lazy(x, y), twiddles[i]);
            i += 1;
        }
    }

    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn scale(a: &mut [u64], k: u64) {
        let n = a.len();
        let kv = _mm256_set1_epi64x(k as i64);
        let mut i = 0;
        while i + 4 <= n {
            // SAFETY: `i + 4 <= n` bounds every 4-lane access below.
            unsafe { store(a, i, canonical(mul_lazy(load(a, i), kv))) };
            i += 4;
        }
        while i < n {
            a[i] = p_mul(a[i], k);
            i += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{p_add, p_mul, p_mul_add, p_neg, p_sub};

    /// Deterministic pseudo-random u64s (full range — lazy inputs need not
    /// be canonical).
    fn random_raw(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D)
            })
            .collect()
    }

    fn random_canonical(n: usize, seed: u64) -> Vec<u64> {
        random_raw(n, seed)
            .into_iter()
            .map(|v| v % MODULUS)
            .collect()
    }

    /// Boundary-heavy operand set for the lazy primitives.
    fn boundary_values() -> Vec<u64> {
        vec![
            0,
            1,
            2,
            EPSILON - 1,
            EPSILON,
            EPSILON + 1,
            1 << 32,
            MODULUS - 2,
            MODULUS - 1,
            MODULUS,
            MODULUS + 1,
            u64::MAX - 1,
            u64::MAX,
        ]
    }

    #[test]
    fn lazy_primitives_preserve_residue_classes() {
        let class = |x: u64| x % MODULUS;
        let mut values = boundary_values();
        values.extend(random_raw(256, 0x1A2B));
        for &a in &values {
            for &b in &values {
                assert_eq!(
                    class(p_add_lazy(a, b)),
                    class(((u128::from(a) + u128::from(b)) % u128::from(MODULUS)) as u64),
                    "add a={a:#x} b={b:#x}"
                );
                let expected_sub = (u128::from(a) + 2 * u128::from(MODULUS) - u128::from(class(b)))
                    % u128::from(MODULUS);
                assert_eq!(
                    u128::from(class(p_sub_lazy(a, b))),
                    expected_sub % u128::from(MODULUS),
                    "sub a={a:#x} b={b:#x}"
                );
                assert_eq!(
                    class(p_mul_lazy(a, b)),
                    ((u128::from(a) * u128::from(b)) % u128::from(MODULUS)) as u64,
                    "mul a={a:#x} b={b:#x}"
                );
            }
        }
    }

    #[test]
    fn canonicalization_of_lazy_values_matches_full_reduction() {
        let mut values = boundary_values();
        values.extend(random_raw(512, 0x77));
        for &v in &values {
            assert_eq!(p_canonical(reduce128_lazy(u128::from(v))), v % MODULUS);
        }
        // p_canonical itself on arbitrary u64 (every u64 is < 2p).
        for &v in &values {
            assert_eq!(
                p_canonical(v),
                v.wrapping_sub(if v >= MODULUS { MODULUS } else { 0 })
            );
        }
    }

    #[test]
    fn policy_resolution_and_names() {
        let detected = SimdPolicy::detected();
        assert!(matches!(detected, SimdPolicy::Scalar | SimdPolicy::Avx2));
        assert_eq!(SimdPolicy::Scalar.name(), "scalar");
        assert_eq!(SimdPolicy::Avx2.name(), "avx2");
        assert!(!SimdPolicy::Scalar.is_vectorized());
        // set_global(Avx2) grants at most what the CPU has.
        SimdPolicy::set_global(SimdPolicy::Avx2);
        assert_eq!(SimdPolicy::global(), detected);
        SimdPolicy::set_global(SimdPolicy::Scalar);
        assert_eq!(SimdPolicy::global(), SimdPolicy::Scalar);
        SimdPolicy::set_global(detected);
    }

    /// Every dispatch kernel, SIMD vs scalar, on ragged lengths (forcing
    /// both the vector body and the scalar tail) and boundary-heavy data.
    #[test]
    fn simd_kernels_are_bit_identical_to_scalar() {
        let policies = [SimdPolicy::Scalar, SimdPolicy::detected()];
        for &n in &[1usize, 3, 4, 5, 8, 31, 64, 257] {
            let mut x0 = random_canonical(n, 0xA0);
            let x1 = random_canonical(n, 0xA1);
            let m = random_canonical(n, 0xA2);
            let k = 0xDEAD_BEEF_u64 % MODULUS;
            // Seed boundary values into the first lanes.
            for (slot, v) in x0.iter_mut().zip([0, MODULUS - 1, 1, MODULUS - 2]) {
                *slot = v;
            }

            let run = |policy: SimdPolicy| {
                let mut o: Vec<Vec<u64>> = Vec::new();
                let pair = |f: &dyn Fn(&mut [u64], &mut [u64])| {
                    let (mut a, mut b) = (vec![0u64; n], vec![0u64; n]);
                    f(&mut a, &mut b);
                    (a, b)
                };
                let (a, b) = pair(&|o0, o1| mul2_chunk(&x0, &x1, &m, o0, o1, policy));
                o.extend([a, b]);
                let (a, b) = pair(&|o0, o1| mul_scalar2_chunk(&x0, &x1, &m, k, o0, o1, policy));
                o.extend([a, b]);
                let (a, b) =
                    pair(&|o0, o1| mul_add2_chunk(&x0, &x1, &m, &x1, &m, &x0, o0, o1, policy));
                o.extend([a, b]);
                let perm: Vec<u32> = (0..n as u32).map(|i| (i * 7 + 3) % n as u32).collect();
                let (a, b) = pair(&|o0, o1| galois2_chunk(&x0, &x1, &perm, &m, o0, o1, policy));
                o.extend([a, b]);
                let (a, b) = pair(&|o0, o1| {
                    add_stripe(&x0, &x1, o0, policy);
                    sub_stripe(&x0, &x1, o1, policy);
                });
                o.extend([a, b]);
                let mut neg = vec![0u64; n];
                neg_stripe(&x0, &mut neg, policy);
                o.push(neg);
                let mut acc = x0.clone();
                add_stripe_assign(&mut acc, &x1, policy);
                let mut acc2 = x0.clone();
                sub_stripe_assign(&mut acc2, &x1, policy);
                let mut acc3 = x0.clone();
                neg_stripe_assign(&mut acc3, policy);
                o.extend([acc, acc2, acc3]);
                o
            };
            assert_eq!(run(policies[0]), run(policies[1]), "n={n}");
        }
    }

    #[test]
    fn lazy_butterflies_canonicalize_to_eager_results() {
        for &n in &[1usize, 4, 7, 64] {
            let lo0 = random_canonical(n, 0xB0);
            let hi0 = random_canonical(n, 0xB1);
            let s = 0x1234_5678_9ABC_DEF1 % MODULUS;
            for policy in [SimdPolicy::Scalar, SimdPolicy::detected()] {
                // Forward, canonical output fused into the stage.
                let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                forward_butterfly_block(&mut lo, &mut hi, s, true, policy);
                for i in 0..n {
                    let v = p_mul(hi0[i], s);
                    assert_eq!(lo[i], p_add(lo0[i], v), "{policy:?} fwd lo {i}");
                    assert_eq!(hi[i], p_sub(lo0[i], v), "{policy:?} fwd hi {i}");
                }
                // Inverse stays lazy; canonicalizing must match eager.
                let (mut lo, mut hi) = (lo0.clone(), hi0.clone());
                inverse_butterfly_block(&mut lo, &mut hi, s, policy);
                for i in 0..n {
                    assert_eq!(
                        p_canonical(lo[i]),
                        p_add(lo0[i], hi0[i]),
                        "{policy:?} inv lo {i}"
                    );
                    assert_eq!(
                        p_canonical(hi[i]),
                        p_mul(p_sub(lo0[i], hi0[i]), s),
                        "{policy:?} inv hi {i}"
                    );
                }
                // Scaling canonicalizes lazy inputs exactly.
                let mut vals = random_raw(n, 0xB2);
                let reference: Vec<u64> = vals.iter().map(|&v| p_mul(v % MODULUS, s)).collect();
                // Make inputs lazy residues of the same classes.
                for v in vals.iter_mut() {
                    *v %= MODULUS;
                }
                scale_canonical(&mut vals, s, policy);
                assert_eq!(vals, reference, "{policy:?} scale");
            }
        }
    }

    #[test]
    fn fused_mul_add_matches_eager_composition() {
        let n = 37;
        let a0 = random_canonical(n, 1);
        let a1 = random_canonical(n, 2);
        let b0 = random_canonical(n, 3);
        let b1 = random_canonical(n, 4);
        let s0 = random_canonical(n, 5);
        let s1 = random_canonical(n, 6);
        for policy in [SimdPolicy::Scalar, SimdPolicy::detected()] {
            let (mut o0, mut o1) = (vec![0u64; n], vec![0u64; n]);
            mul_add2_chunk(&a0, &a1, &b0, &b1, &s0, &s1, &mut o0, &mut o1, policy);
            for i in 0..n {
                let c2 = p_mul(a1[i], b1[i]);
                assert_eq!(o0[i], p_mul_add(c2, s0[i], p_mul(a0[i], b0[i])));
                assert_eq!(
                    o1[i],
                    p_mul_add(c2, s1[i], p_mul_add(a1[i], b0[i], p_mul(a0[i], b1[i])))
                );
            }
        }
    }

    #[test]
    fn barrett_mul2_chunk_is_bit_identical_across_policies() {
        let chain = crate::rns::ModulusChain::new(2, 64, false);
        let (q, mu) = (chain.limb(1).modulus(), chain.limb(1).mu());
        for &n in &[1usize, 3, 4, 5, 8, 31, 64, 257] {
            let reduce = |v: Vec<u64>| -> Vec<u64> { v.into_iter().map(|x| x % q).collect() };
            let mut x0 = reduce(random_raw(n, 0xC0));
            let x1 = reduce(random_raw(n, 0xC1));
            let m = reduce(random_raw(n, 0xC2));
            for (slot, v) in x0.iter_mut().zip([0, q - 1, 1, q - 2]) {
                *slot = v;
            }
            let run = |policy: SimdPolicy| {
                let (mut o0, mut o1) = (vec![0u64; n], vec![0u64; n]);
                mul2_chunk_q(&x0, &x1, &m, &mut o0, &mut o1, q, mu, policy);
                (o0, o1)
            };
            let (s0, s1) = run(SimdPolicy::Scalar);
            assert_eq!(
                (s0.clone(), s1.clone()),
                run(SimdPolicy::detected()),
                "n={n}"
            );
            for i in 0..n {
                let expect = ((u128::from(x0[i]) * u128::from(m[i])) % u128::from(q)) as u64;
                assert_eq!(s0[i], expect, "n={n} i={i}");
            }
        }
    }

    #[test]
    fn gather_chunk_is_bit_identical_across_policies() {
        for &n in &[1usize, 4, 7, 64, 255] {
            let src = random_raw(n, 0xD0);
            let perm: Vec<u32> = (0..n as u32).map(|i| (i * 11 + 5) % n as u32).collect();
            let run = |policy: SimdPolicy| {
                let mut out = vec![0u64; n];
                gather_chunk(&src, &perm, &mut out, policy);
                out
            };
            let scalar = run(SimdPolicy::Scalar);
            assert_eq!(scalar, run(SimdPolicy::detected()), "n={n}");
            for i in 0..n {
                assert_eq!(scalar[i], src[perm[i] as usize]);
            }
        }
    }

    #[test]
    fn neg_of_zero_stays_zero_under_simd() {
        let x = vec![0u64, MODULUS - 1, 0, 5, 0, 0, 1, 0];
        for policy in [SimdPolicy::Scalar, SimdPolicy::detected()] {
            let mut out = vec![9u64; x.len()];
            neg_stripe(&x, &mut out, policy);
            let expected: Vec<u64> = x.iter().map(|&v| p_neg(v)).collect();
            assert_eq!(out, expected, "{policy:?}");
        }
    }
}
