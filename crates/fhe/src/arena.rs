//! Buffer pooling for the zero-allocation hot path.
//!
//! Every per-operation buffer the execution engine touches is a `Vec<u64>`
//! whose length is fixed by the session parameters: slot vectors are
//! `slot_count` long, ciphertext payload stripes are `2 * payload_degree`
//! long. A [`PolyArena`] keeps free lists of those buffers keyed by length,
//! so a request stream running against one warm session performs **zero
//! fresh buffer allocations** in steady state — every `take` is served from
//! a buffer some earlier operation returned with `put`.
//!
//! Arenas are deliberately not thread-safe: each worker (and each
//! [`Evaluator`](crate::Evaluator) / [`Encryptor`](crate::Encryptor)) owns
//! one privately and pays no synchronization on the hot path. An
//! [`ArenaPool`] is the shared, mutex-guarded parking lot a session keeps
//! them in between requests: workers check an arena out at request start and
//! restore it (with every recycled buffer) when they finish, so warm buffers
//! survive across requests and across workers.
//!
//! Counters record every miss and hit at two scopes. The process-global
//! statics ([`PolyArena::fresh_allocations`] / [`PolyArena::reuses`]) back
//! the allocation-regression test, which warms a session, resets the
//! counters, replays the request stream and asserts the miss count stays
//! zero. The per-pool counters ([`ArenaPool::alloc_stats`]) feed the
//! session's telemetry registry: they are scoped to one pool, so concurrent
//! sessions never alias each other's allocation stats.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Process-global count of [`PolyArena::take`] calls that had to allocate a
/// fresh buffer (pool miss).
static ARENA_FRESH: AtomicU64 = AtomicU64::new(0);

/// Process-global count of [`PolyArena::take`] calls served from the free
/// list (pool hit).
static ARENA_REUSED: AtomicU64 = AtomicU64::new(0);

/// Per-[`ArenaPool`] hit/miss counters, shared by every arena checked out of
/// one pool (an `Arc` clone travels with the arena). They exist alongside
/// the process-global statics so concurrent sessions can read their own
/// allocation behavior without aliasing each other's.
#[derive(Debug, Default)]
struct PoolCounters {
    fresh: AtomicU64,
    reused: AtomicU64,
}

/// A session-scoped snapshot of one [`ArenaPool`]'s allocation counters
/// ([`ArenaPool::alloc_stats`]): pool misses and hits across every arena
/// that was ever checked out of the pool, since the pool was created.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ArenaPoolStats {
    /// `take` calls that had to allocate a fresh buffer (pool miss).
    pub fresh_allocations: u64,
    /// `take` calls served from a free list (pool hit).
    pub reuses: u64,
}

/// A length-keyed free-list allocator for the `u64` buffers of the hot path
/// (slot vectors and ciphertext payload stripes).
///
/// [`PolyArena::take`] returns a buffer of exactly the requested length with
/// **unspecified contents** — callers fully overwrite it. [`PolyArena::put`]
/// returns a buffer to the free list of its length class. Buffers of
/// different length classes (slots vs. payload stripes, or stripes of
/// different payload degrees) never mix.
#[derive(Debug, Default)]
pub struct PolyArena {
    pools: HashMap<usize, Vec<Vec<u64>>>,
    /// Counters of the [`ArenaPool`] this arena was checked out of, if any:
    /// standalone arenas count only into the process-global statics.
    counters: Option<Arc<PoolCounters>>,
}

impl PolyArena {
    /// Creates an empty arena.
    pub fn new() -> Self {
        PolyArena::default()
    }

    /// Takes a buffer of exactly `len` entries, reusing a pooled one when
    /// available and allocating (and counting) a fresh one otherwise.
    ///
    /// The returned buffer's contents are unspecified; the caller must
    /// overwrite every entry it reads back.
    pub fn take(&mut self, len: usize) -> Vec<u64> {
        if let Some(buf) = self.pools.get_mut(&len).and_then(Vec::pop) {
            ARENA_REUSED.fetch_add(1, Ordering::Relaxed);
            if let Some(counters) = &self.counters {
                counters.reused.fetch_add(1, Ordering::Relaxed);
            }
            buf
        } else {
            ARENA_FRESH.fetch_add(1, Ordering::Relaxed);
            if let Some(counters) = &self.counters {
                counters.fresh.fetch_add(1, Ordering::Relaxed);
            }
            vec![0u64; len]
        }
    }

    /// Returns a buffer to the free list of its length class. Zero-length
    /// buffers are dropped (there is nothing to reuse).
    pub fn put(&mut self, buf: Vec<u64>) {
        if !buf.is_empty() {
            self.pools.entry(buf.len()).or_default().push(buf);
        }
    }

    /// Number of buffers currently parked in the arena, across all length
    /// classes.
    pub fn retained(&self) -> usize {
        self.pools.values().map(Vec::len).sum()
    }

    /// Drops every pooled buffer.
    pub fn clear(&mut self) {
        self.pools.clear();
    }

    /// Process-global count of [`PolyArena::take`] calls that allocated a
    /// fresh buffer since process start (or the last
    /// [`PolyArena::reset_counters`]). Shared by every arena of the process,
    /// so assertions on it belong in single-test processes.
    pub fn fresh_allocations() -> u64 {
        ARENA_FRESH.load(Ordering::Relaxed)
    }

    /// Process-global count of [`PolyArena::take`] calls served from a free
    /// list since process start (or the last counter reset).
    pub fn reuses() -> u64 {
        ARENA_REUSED.load(Ordering::Relaxed)
    }

    /// Resets both process-global counters to zero.
    pub fn reset_counters() {
        ARENA_FRESH.store(0, Ordering::Relaxed);
        ARENA_REUSED.store(0, Ordering::Relaxed);
    }
}

/// A shared parking lot of [`PolyArena`]s: sessions own one pool, workers
/// check arenas out for the duration of a request and restore them
/// afterwards, so warm buffers survive across requests and migrate freely
/// between workers.
///
/// The mutex is touched twice per (worker, request) — checkout and restore —
/// never inside an operation.
#[derive(Debug, Clone, Default)]
pub struct ArenaPool {
    inner: Arc<Mutex<Vec<PolyArena>>>,
    /// Hit/miss counters shared by every arena checked out of this pool
    /// (clones of the pool share them too, consistent with the shared
    /// `inner`), snapshotted by [`ArenaPool::alloc_stats`].
    counters: Arc<PoolCounters>,
}

impl ArenaPool {
    /// Creates an empty pool.
    pub fn new() -> Self {
        ArenaPool::default()
    }

    /// Checks an arena out of the pool (an empty one if the pool has none to
    /// spare — e.g. on the first request, or when more workers run
    /// concurrently than ever before).
    pub fn checkout(&self) -> PolyArena {
        let mut arena = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .pop()
            .unwrap_or_default();
        // Attach (or refresh) this pool's counters so the arena's hits and
        // misses are attributed to the session that checked it out.
        arena.counters = Some(Arc::clone(&self.counters));
        arena
    }

    /// Returns an arena (and every buffer it holds) to the pool.
    pub fn restore(&self, arena: PolyArena) {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .push(arena);
    }

    /// Recycles one ciphertext's buffers straight into the pool (used for
    /// the request's output ciphertext after decryption, when no worker
    /// arena is checked out any more).
    pub fn recycle(&self, ciphertext: crate::Ciphertext) {
        let mut guard = self
            .inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if guard.is_empty() {
            guard.push(PolyArena::new());
        }
        let arena = guard.last_mut().expect("pool is non-empty");
        ciphertext.recycle_into(arena);
    }

    /// A snapshot of this pool's allocation counters: pool misses and hits
    /// of every arena ever checked out of it. Unlike the process-global
    /// [`PolyArena::fresh_allocations`] / [`PolyArena::reuses`], the figures
    /// are scoped to this pool (and its clones), so concurrent sessions can
    /// each read their own allocation behavior.
    pub fn alloc_stats(&self) -> ArenaPoolStats {
        ArenaPoolStats {
            fresh_allocations: self.counters.fresh.load(Ordering::Relaxed),
            reuses: self.counters.reused.load(Ordering::Relaxed),
        }
    }

    /// Total buffers parked across every arena currently in the pool
    /// (checked-out arenas are not visible).
    pub fn retained(&self) -> usize {
        self.inner
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .iter()
            .map(PolyArena::retained)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_reuses_put_buffers_of_the_same_length() {
        let mut arena = PolyArena::new();
        let mut a = arena.take(16);
        assert_eq!(a.len(), 16);
        a[0] = 7;
        arena.put(a);
        assert_eq!(arena.retained(), 1);
        let b = arena.take(16);
        assert_eq!(b.len(), 16, "reused buffer keeps its length");
        assert_eq!(arena.retained(), 0);
        // A different length class misses the pool.
        let c = arena.take(32);
        assert_eq!(c.len(), 32);
    }

    #[test]
    fn length_classes_never_mix() {
        let mut arena = PolyArena::new();
        arena.put(vec![0; 8]);
        arena.put(vec![0; 16]);
        assert_eq!(arena.take(8).len(), 8);
        assert_eq!(arena.take(16).len(), 16);
        arena.put(vec![0; 8]);
        arena.clear();
        assert_eq!(arena.retained(), 0);
    }

    #[test]
    fn empty_buffers_are_not_pooled() {
        let mut arena = PolyArena::new();
        arena.put(Vec::new());
        assert_eq!(arena.retained(), 0);
    }

    #[test]
    fn pool_scoped_counters_do_not_alias_across_pools() {
        let a = ArenaPool::new();
        let b = ArenaPool::new();
        let mut arena = a.checkout();
        let buf = arena.take(8); // miss
        arena.put(buf);
        let _hit = arena.take(8); // hit
        a.restore(arena);
        assert_eq!(
            a.alloc_stats(),
            ArenaPoolStats {
                fresh_allocations: 1,
                reuses: 1
            }
        );
        // The sibling pool saw none of that traffic...
        assert_eq!(b.alloc_stats(), ArenaPoolStats::default());
        // ...while a clone of the first pool shares its counters.
        assert_eq!(a.clone().alloc_stats(), a.alloc_stats());
    }

    #[test]
    fn pool_round_trips_arenas() {
        let pool = ArenaPool::new();
        let mut arena = pool.checkout();
        arena.put(vec![0; 4]);
        pool.restore(arena);
        assert_eq!(pool.retained(), 1);
        let arena = pool.checkout();
        assert_eq!(arena.retained(), 1);
        pool.restore(arena);
        // A second concurrent checkout gets a fresh arena.
        let a = pool.checkout();
        let b = pool.checkout();
        assert_eq!(a.retained() + b.retained(), 1);
        pool.restore(a);
        pool.restore(b);
    }
}
