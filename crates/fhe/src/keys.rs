//! Key material: secret/public keys, relinearization keys and Galois
//! (rotation) keys.
//!
//! Keys carry no real cryptographic secrets in this simulation backend, but
//! they reproduce the *operational* constraints that matter to the compiler:
//! a rotation by step `s` is only possible if a Galois key for `s` was
//! generated, and every generated key has a realistic size, which is what the
//! rotation-key-selection pass (Appendix B) trades off against execution
//! cost.
//!
//! Key generation is also *cost*-faithful: when
//! [`BfvParameters::simulate_compute`] is on, every key-switch key (the
//! relinearization key and each Galois key) samples and NTT-transforms
//! `2 * ceil(coeff_bits / 60)` payload polynomials — the same work shape as
//! real BFV keygen, and the reason production deployments generate keys once
//! per session instead of per request (the serving layer's whole premise).
//! The transformed key-switch payloads are *retained* in NTT (Eval) form on
//! the key objects, so evaluation-time key switching is a pointwise product
//! against material that was transformed exactly once, at keygen.

use crate::arena::PolyArena;
use crate::params::BfvParameters;
use crate::payload::CtPayload;
use crate::poly::{Domain, NttTables, Poly, MODULUS};
use crate::rns::ModulusChain;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-global count of [`KeyGenerator`] constructions (see
/// [`KeyGenerator::instances_created`]).
static KEYGEN_INSTANCES: AtomicU64 = AtomicU64::new(0);

/// The secret key (simulation placeholder identified by its seed).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SecretKey {
    id: u64,
}

/// The public encryption key derived from a secret key.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PublicKey {
    id: u64,
}

/// Relinearization keys, required after ciphertext–ciphertext multiplications.
///
/// Under compute simulation the keys carry a pair of key-switch payload
/// polynomials kept permanently in NTT ([`Domain::Eval`]) form — generated
/// (and transformed) exactly once at key generation, and stored in the same
/// striped `[s0 | s1]` layout ciphertext payloads use, so the fused ct-ct
/// multiplication kernel reads key material with the access pattern it
/// reads operands.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelinKeys {
    id: u64,
    size_bytes: usize,
    switch: Option<CtPayload>,
}

impl RelinKeys {
    /// Approximate serialized size of the keys in bytes.
    pub fn size_bytes(&self) -> usize {
        self.size_bytes
    }

    /// The Eval-form key-switch payload pair as one `[s0 | s1]` stripe
    /// (present under compute simulation).
    pub(crate) fn switch_stripe(&self) -> Option<&CtPayload> {
        self.switch.as_ref()
    }
}

/// Galois keys enabling slot rotations for an explicit set of steps.
///
/// Like [`RelinKeys`], each generated step carries an Eval-form key-switch
/// payload polynomial under compute simulation, pre-transformed once at key
/// generation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GaloisKeys {
    id: u64,
    steps: BTreeSet<i64>,
    key_size_bytes: usize,
    switch: BTreeMap<i64, Poly>,
}

impl GaloisKeys {
    /// The Eval-form key-switch payload for `step`, if one was generated
    /// under compute simulation.
    pub(crate) fn switch_poly(&self, step: i64) -> Option<&Poly> {
        self.switch.get(&step)
    }
    /// Returns `true` if a key for rotating by `step` is available.
    pub fn supports_step(&self, step: i64) -> bool {
        step == 0 || self.steps.contains(&step)
    }

    /// The rotation steps covered by this key set.
    pub fn steps(&self) -> impl Iterator<Item = i64> + '_ {
        self.steps.iter().copied()
    }

    /// Number of individual rotation keys generated.
    pub fn key_count(&self) -> usize {
        self.steps.len()
    }

    /// Total approximate size of the key set in bytes. This is the quantity
    /// the rotation-key-selection pass bounds: each key is several megabytes
    /// under the paper's parameters.
    pub fn total_size_bytes(&self) -> usize {
        self.key_count() * self.key_size_bytes
    }
}

/// Generates all key material for a parameter set.
#[derive(Debug)]
pub struct KeyGenerator {
    params: BfvParameters,
    rng: ChaCha8Rng,
    id: u64,
    /// NTT tables for the cost-faithful key-switch-key sampling; present
    /// only when the parameters simulate compute.
    tables: Option<NttTables>,
    /// The RNS modulus chain under multi-limb parameters: key material
    /// carries one stripe per limb, sampled and transformed per limb the
    /// same way ciphertext payloads are. Present only when the parameters
    /// simulate compute.
    chain: Option<ModulusChain>,
    /// Pool for the sampling scratch buffers: one key generator issues many
    /// key-switch keys (relinearization plus one Galois key per rotation
    /// step), and every one of them draws its scratch and kept-payload
    /// buffers from here instead of the allocator.
    arena: PolyArena,
}

impl KeyGenerator {
    /// Creates a key generator with an explicit seed (keys are deterministic
    /// per seed, which the tests rely on).
    pub fn new(params: &BfvParameters, seed: u64) -> Self {
        KEYGEN_INSTANCES.fetch_add(1, Ordering::Relaxed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let id = rng.gen();
        let tables = params
            .simulate_compute
            .then(|| NttTables::new(params.payload_degree));
        let chain = params
            .simulate_compute
            .then(|| ModulusChain::new(params.limb_count, params.payload_degree, true));
        let mut keygen = KeyGenerator {
            params: params.clone(),
            rng,
            id,
            tables,
            chain,
            arena: PolyArena::new(),
        };
        // Secret-key sampling plus the public key's (a, b) pair: three
        // payload polynomials moved into the NTT domain, the construction
        // cost real BFV pays before any key-switch key exists. One scratch
        // buffer serves all three — the polynomials are discarded, only
        // their arithmetic volume matters.
        if let Some(tables) = &keygen.tables {
            let chain = keygen.chain.as_ref().expect("chain built with tables");
            let mut scratch = keygen.arena.take(chain.limb_count() * chain.degree());
            for _ in 0..3 {
                sample_limb_poly(&mut keygen.rng, tables, chain, &mut scratch);
            }
            keygen.arena.put(scratch);
        }
        keygen
    }

    /// Performs the arithmetic volume of generating one key-switch key
    /// (relinearization key or one Galois key): sampling
    /// `2 * ceil(coeff_bits / 60)` uniform payload polynomials and moving
    /// each into the NTT domain, mirroring real BFV keygen. The first two
    /// transformed polynomials are kept as the key's Eval-form key-switch
    /// payload pair — pre-transformed here, once, so evaluation never
    /// transforms key material again. Returns `None` when compute
    /// simulation is off.
    fn simulate_keyswitch_keygen(&mut self) -> Option<(Poly, Poly)> {
        let tables = self.tables.as_ref()?;
        let chain = self.chain.as_ref().expect("chain built with tables");
        let digits = (self.params.coeff_modulus_bits as usize).div_ceil(60);
        let total = chain.limb_count() * chain.degree();
        let mut kept: Vec<Poly> = Vec::with_capacity(2);
        // Discarded samples (everything past the first two) share one
        // scratch buffer: only the kept pair needs owned storage, and both
        // the scratch and the kept copies come from the generator's arena —
        // a session generating dozens of Galois keys round-trips the same
        // few buffers throughout.
        let mut scratch = self.arena.take(total);
        for _ in 0..(2 * digits).max(2) {
            sample_limb_poly(&mut self.rng, tables, chain, &mut scratch);
            if kept.len() < 2 {
                let mut owned = self.arena.take(total);
                owned.copy_from_slice(&scratch);
                kept.push(Poly::from_reduced(owned, Domain::Eval));
            }
        }
        self.arena.put(scratch);
        let second = kept.pop().expect("two polys kept");
        let first = kept.pop().expect("two polys kept");
        Some((first, second))
    }

    /// [`KeyGenerator::simulate_keyswitch_keygen`], packed into the striped
    /// `[s0 | s1]` layout the fused multiplication kernel consumes.
    fn simulate_keyswitch_keygen_striped(&mut self) -> Option<CtPayload> {
        let limbs = self.params.limb_count;
        let (first, second) = self.simulate_keyswitch_keygen()?;
        let payload =
            CtPayload::from_limb_components(first.coeffs(), second.coeffs(), limbs, Domain::Eval);
        // The component polys were copied into the stripe; their buffers go
        // back to the pool for the next key's sampling pass.
        self.arena.put(first.into_coeffs());
        self.arena.put(second.into_coeffs());
        Some(payload)
    }

    /// Process-global count of `KeyGenerator` constructions so far.
    ///
    /// Real key generation is the expensive, once-per-session step of an FHE
    /// deployment; serving paths are expected to reuse key material instead
    /// of regenerating it per request. Tests assert that by sampling this
    /// counter around a stream of requests (note it is shared by every
    /// thread of the process, so such assertions belong in single-test
    /// processes).
    pub fn instances_created() -> u64 {
        KEYGEN_INSTANCES.load(Ordering::Relaxed)
    }

    /// The secret key.
    pub fn secret_key(&self) -> SecretKey {
        SecretKey { id: self.id }
    }

    /// The public key matching the secret key.
    pub fn public_key(&self) -> PublicKey {
        PublicKey { id: self.id }
    }

    /// Creates relinearization keys (one key-switch key's worth of sampling
    /// and NTT work under compute simulation).
    pub fn relin_keys(&mut self) -> RelinKeys {
        let _ = self.rng.gen::<u64>();
        let switch = self.simulate_keyswitch_keygen_striped();
        RelinKeys {
            id: self.id,
            size_bytes: self.params.galois_key_size_bytes(),
            switch,
        }
    }

    /// Creates Galois keys for an explicit set of rotation steps (one
    /// key-switch key's worth of sampling and NTT work *per distinct
    /// nonzero step* under compute simulation — generating many rotation
    /// keys is expensive in time as well as bytes).
    pub fn galois_keys(&mut self, steps: &[i64]) -> GaloisKeys {
        let _ = self.rng.gen::<u64>();
        let steps: BTreeSet<i64> = steps.iter().copied().filter(|&s| s != 0).collect();
        let mut switch = BTreeMap::new();
        for &step in &steps {
            if let Some((key_poly, _)) = self.simulate_keyswitch_keygen() {
                switch.insert(step, key_poly);
            }
        }
        GaloisKeys {
            id: self.id,
            steps,
            key_size_bytes: self.params.galois_key_size_bytes(),
            switch,
        }
    }

    /// Creates the library-default Galois keys: power-of-two steps in both
    /// directions, `2·log2(n)` keys in total, which is what SEAL generates
    /// when the application does not select keys itself.
    pub fn default_galois_keys(&mut self) -> GaloisKeys {
        let n = self.params.poly_modulus_degree as i64;
        let mut steps = Vec::new();
        let mut s = 1i64;
        while s < n {
            steps.push(s);
            steps.push(-s);
            s *= 2;
        }
        self.galois_keys(&steps)
    }

    /// Internal key-pair identity (used by encryptor/decryptor pairing checks).
    pub(crate) fn key_id(key: &SecretKey) -> u64 {
        key.id
    }

    /// Internal key-pair identity for public keys.
    pub(crate) fn public_key_id(key: &PublicKey) -> u64 {
        key.id
    }
}

/// Samples one uniform payload polynomial across every limb of `chain` into
/// `buf` (`limb_count · degree` values) and moves each limb stripe into the
/// NTT domain. Limb 0 draws `degree` values from the RNG in the exact order
/// the single-modulus engine draws them — `k = 1` keygen is bit-identical —
/// and generic limbs are that base sample lifted into their own residue
/// fields (no extra draws), each transformed under its own limb NTT.
fn sample_limb_poly(
    rng: &mut ChaCha8Rng,
    tables: &NttTables,
    chain: &ModulusChain,
    buf: &mut [u64],
) {
    let degree = chain.degree();
    debug_assert_eq!(buf.len(), chain.limb_count() * degree);
    for slot in buf[..degree].iter_mut() {
        *slot = rng.gen::<u64>() % MODULUS;
    }
    for li in 1..chain.limb_count() {
        let (head, rest) = buf.split_at_mut(li * degree);
        for (out, &b) in rest[..degree].iter_mut().zip(&head[..degree]) {
            *out = chain.lift_base(li, b);
        }
    }
    tables.forward(&mut buf[..degree]);
    for li in 1..chain.limb_count() {
        chain
            .limb(li)
            .ntt()
            .expect("generic limbs carry NTT tables")
            .forward(&mut buf[li * degree..(li + 1) * degree]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keys_from_the_same_generator_share_an_identity() {
        let params = BfvParameters::insecure_test();
        let keygen = KeyGenerator::new(&params, 7);
        assert_eq!(
            KeyGenerator::key_id(&keygen.secret_key()),
            KeyGenerator::public_key_id(&keygen.public_key())
        );
    }

    #[test]
    fn different_seeds_give_different_key_pairs() {
        let params = BfvParameters::insecure_test();
        let a = KeyGenerator::new(&params, 1).secret_key();
        let b = KeyGenerator::new(&params, 2).secret_key();
        assert_ne!(a, b);
    }

    #[test]
    fn galois_keys_cover_exactly_the_requested_steps() {
        let params = BfvParameters::insecure_test();
        let mut keygen = KeyGenerator::new(&params, 3);
        let keys = keygen.galois_keys(&[1, -1, 4, 0]);
        assert!(keys.supports_step(1));
        assert!(keys.supports_step(-1));
        assert!(keys.supports_step(4));
        assert!(keys.supports_step(0), "step 0 never needs a key");
        assert!(!keys.supports_step(2));
        assert_eq!(keys.key_count(), 3, "step 0 does not generate a key");
    }

    #[test]
    fn default_galois_keys_have_two_log_n_entries() {
        let params = BfvParameters::insecure_test();
        let mut keygen = KeyGenerator::new(&params, 3);
        let keys = keygen.default_galois_keys();
        let log_n = params.poly_modulus_degree.trailing_zeros() as usize;
        assert_eq!(keys.key_count(), 2 * log_n);
    }

    #[test]
    fn key_sizes_scale_with_parameters() {
        let small = BfvParameters::insecure_test();
        let big = BfvParameters::default_128();
        let small_keys = KeyGenerator::new(&small, 1).galois_keys(&[1]);
        let big_keys = KeyGenerator::new(&big, 1).galois_keys(&[1]);
        assert!(big_keys.total_size_bytes() > small_keys.total_size_bytes());
    }
}
