//! Context, plaintext/ciphertext values, encryption and decryption.
//!
//! The backend is *functionally exact* and *cost faithful*:
//!
//! * every ciphertext tracks the exact batched slot values modulo the
//!   plaintext modulus, so `decrypt(eval(encrypt(x))) == eval_plain(x)` holds
//!   bit-for-bit and compiler correctness can be tested end to end;
//! * every ciphertext also carries payload polynomials on which the
//!   [`Evaluator`](crate::Evaluator) performs real NTT-based ring arithmetic,
//!   so the *measured wall-clock* of homomorphic operations keeps BFV's
//!   relative ordering (ct-ct multiplication ≫ rotation ≫ addition);
//! * an analytic noise model tracks the invariant-noise budget each
//!   ciphertext has consumed, and decryption fails once the budget is
//!   exhausted, exactly like SEAL's `Decryptor`.

use crate::arena::PolyArena;
use crate::keys::{KeyGenerator, PublicKey, SecretKey};
use crate::noise::NoiseModel;
use crate::params::{BfvParameters, ParameterError};
use crate::payload::CtPayload;
use crate::poly::{galois_eval_permutation, Domain, NttTables, Poly, MODULUS};
use crate::rns::ModulusChain;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::borrow::Cow;
use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex, OnceLock};

/// Errors returned by the FHE backend.
#[derive(Debug, Clone, PartialEq)]
pub enum FheError {
    /// Invalid encryption parameters.
    Parameters(ParameterError),
    /// Tried to batch more values than there are slots.
    TooManyValues {
        /// Number of values supplied.
        provided: usize,
        /// Number of available slots.
        slots: usize,
    },
    /// A rotation was requested for a step with no generated Galois key.
    MissingGaloisKey {
        /// The rotation step lacking a key.
        step: i64,
    },
    /// The ciphertext's invariant-noise budget is exhausted; decryption would
    /// be incorrect.
    NoiseBudgetExhausted {
        /// Bits of budget consumed.
        consumed_bits: f64,
        /// Bits of budget available at encryption.
        available_bits: f64,
    },
    /// Ciphertext was produced under a different key pair than the decryptor's.
    KeyMismatch,
    /// The request was cancelled before it finished executing.
    Cancelled,
    /// The request's deadline expired before it finished executing.
    DeadlineExceeded,
    /// A worker panicked while executing the request; the panic was isolated
    /// via `catch_unwind` and converted into this error.
    WorkerPanic {
        /// The panic payload rendered as text (best effort).
        message: String,
    },
}

impl fmt::Display for FheError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FheError::Parameters(e) => write!(f, "invalid parameters: {e}"),
            FheError::TooManyValues { provided, slots } => {
                write!(f, "cannot batch {provided} values into {slots} slots")
            }
            FheError::MissingGaloisKey { step } => {
                write!(f, "no Galois key was generated for rotation step {step}")
            }
            FheError::NoiseBudgetExhausted {
                consumed_bits,
                available_bits,
            } => write!(
                f,
                "noise budget exhausted: consumed {consumed_bits:.1} of {available_bits:.1} bits"
            ),
            FheError::KeyMismatch => write!(f, "ciphertext key does not match the decryptor's key"),
            FheError::Cancelled => write!(f, "request was cancelled"),
            FheError::DeadlineExceeded => write!(f, "request deadline exceeded"),
            FheError::WorkerPanic { message } => {
                write!(f, "worker panicked while executing the request: {message}")
            }
        }
    }
}

impl std::error::Error for FheError {}

impl From<ParameterError> for FheError {
    fn from(e: ParameterError) -> Self {
        FheError::Parameters(e)
    }
}

/// Shared context: validated parameters plus precomputed NTT tables.
#[derive(Debug, Clone)]
pub struct FheContext {
    inner: Arc<ContextInner>,
}

#[derive(Debug)]
struct ContextInner {
    params: BfvParameters,
    noise: NoiseModel,
    tables: Option<NttTables>,
    /// The RNS modulus chain: limb 0 is the Goldilocks prime served by
    /// `tables`, limbs `1..k` are generic NTT-friendly primes with their own
    /// Barrett constants and (when compute simulation is on) Shoup NTT
    /// tables. A bare one-limb marker when `limb_count == 1`.
    chain: ModulusChain,
    /// NTT of the all-ones payload polynomial, precomputed once at context
    /// build: scalar-splat multiplications scale this instead of
    /// transforming a fresh splat per operation.
    ones_eval: Option<Poly>,
    /// Eval-domain Galois permutations by Galois element, computed once per
    /// `(payload_degree, element)` for the context's lifetime and shared by
    /// every evaluator (evaluators keep a lock-free local `Arc` cache on
    /// top, so this mutex is touched once per element per evaluator).
    galois_perms: Mutex<HashMap<usize, Arc<Vec<u32>>>>,
}

impl FheContext {
    /// Validates `params` and builds the context.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Parameters`] if the parameters are invalid.
    pub fn new(params: BfvParameters) -> Result<Self, FheError> {
        Self::with_noise_model(params, NoiseModel::default())
    }

    /// Builds a context with a custom noise model.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::Parameters`] if the parameters are invalid.
    pub fn with_noise_model(params: BfvParameters, noise: NoiseModel) -> Result<Self, FheError> {
        params.validate()?;
        let tables = params
            .simulate_compute
            .then(|| NttTables::new(params.payload_degree));
        let chain = ModulusChain::new(
            params.limb_count,
            params.payload_degree,
            params.simulate_compute,
        );
        let ones_eval = tables.as_ref().map(|t| {
            let degree = params.payload_degree;
            let mut ones = vec![1u64; params.limb_count * degree];
            // Limb 0 transforms under the shared Goldilocks tables (the
            // k = 1 path verbatim); generic limbs under their own NTTs.
            t.forward(&mut ones[..degree]);
            for li in 1..params.limb_count {
                let stripe = &mut ones[li * degree..(li + 1) * degree];
                chain
                    .limb(li)
                    .ntt()
                    .expect("generic limbs carry NTT tables under compute simulation")
                    .forward(stripe);
            }
            Poly::from_reduced(ones, Domain::Eval)
        });
        Ok(FheContext {
            inner: Arc::new(ContextInner {
                params,
                noise,
                tables,
                chain,
                ones_eval,
                galois_perms: Mutex::new(HashMap::new()),
            }),
        })
    }

    /// The encryption parameters.
    pub fn params(&self) -> &BfvParameters {
        &self.inner.params
    }

    /// The noise model in use.
    pub fn noise_model(&self) -> &NoiseModel {
        &self.inner.noise
    }

    pub(crate) fn tables(&self) -> Option<&NttTables> {
        self.inner.tables.as_ref()
    }

    /// The context's RNS modulus chain (a one-limb Goldilocks marker under
    /// single-modulus parameters).
    pub fn chain(&self) -> &ModulusChain {
        &self.inner.chain
    }

    pub(crate) fn ones_eval(&self) -> Option<&Poly> {
        self.inner.ones_eval.as_ref()
    }

    /// The Eval-domain Galois permutation of `galois_elt` at the context's
    /// payload degree, computed on first use and shared (via `Arc`) for the
    /// context's lifetime — long-lived sessions allocate each rotation
    /// step's table exactly once, no matter how many per-request evaluators
    /// come and go.
    pub(crate) fn galois_perm(&self, galois_elt: usize) -> Arc<Vec<u32>> {
        let mut cache = self
            .inner
            .galois_perms
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        Arc::clone(cache.entry(galois_elt).or_insert_with(|| {
            Arc::new(galois_eval_permutation(
                self.inner.params.payload_degree,
                galois_elt,
            ))
        }))
    }

    /// `(forward, inverse)` NTT transform counts performed through this
    /// context's tables since construction (or the last
    /// [`FheContext::reset_transform_counts`]); `(0, 0)` when compute
    /// simulation is off. Positional shorthand for
    /// [`FheContext::transform_stats`].
    pub fn transform_counts(&self) -> (u64, u64) {
        let stats = self.transform_stats();
        (stats.forward, stats.inverse)
    }

    /// Cumulative NTT transform counts performed through this context's
    /// tables since construction (or the last
    /// [`FheContext::reset_transform_counts`]); all-zero when compute
    /// simulation is off. Telemetry for the NTT hot path — sessions expose
    /// it through their metrics registry — and the handle tests use to hold
    /// the lazy NTT-domain representation to its promise that chains of
    /// homomorphic operations transform each operand at most once.
    pub fn transform_stats(&self) -> crate::poly::TransformStats {
        self.inner
            .tables
            .as_ref()
            .map_or_else(Default::default, NttTables::transform_stats)
    }

    /// Resets the context's transform counters to zero.
    pub fn reset_transform_counts(&self) {
        if let Some(tables) = &self.inner.tables {
            tables.reset_transform_counts();
        }
    }

    /// Number of batching slots.
    pub fn slot_count(&self) -> usize {
        self.inner.params.slot_count()
    }

    /// The plaintext modulus.
    pub fn plain_modulus(&self) -> u64 {
        self.inner.params.plain_modulus
    }

    /// Encodes a vector of signed integers into a batched plaintext
    /// (values are reduced modulo the plaintext modulus; remaining slots are
    /// zero).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::TooManyValues`] if more values than slots are given.
    pub fn encode(&self, values: &[i64]) -> Result<Plaintext, FheError> {
        let slots = self.slot_count();
        if values.len() > slots {
            return Err(FheError::TooManyValues {
                provided: values.len(),
                slots,
            });
        }
        let mut data = vec![0u64; slots];
        encode_into(&mut data, values, self.plain_modulus());
        Ok(Plaintext::new(data, values.len().max(1)))
    }

    /// [`FheContext::encode`] with the slot vector drawn from `arena`
    /// instead of the allocator.
    ///
    /// Serving paths pair this with [`Plaintext::recycle_into`] so a warm
    /// request stream encodes without fresh allocations — the same
    /// round-trip discipline ciphertext buffers already follow.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::TooManyValues`] if more values than slots are given.
    pub fn encode_in(&self, values: &[i64], arena: &mut PolyArena) -> Result<Plaintext, FheError> {
        let slots = self.slot_count();
        if values.len() > slots {
            return Err(FheError::TooManyValues {
                provided: values.len(),
                slots,
            });
        }
        let mut data = arena.take(slots);
        encode_into(&mut data, values, self.plain_modulus());
        Ok(Plaintext::new(data, values.len().max(1)))
    }

    /// Encodes a single scalar into slot 0.
    ///
    /// # Errors
    ///
    /// Never fails for a single value under valid parameters, but keeps the
    /// same signature as [`FheContext::encode`].
    pub fn encode_scalar(&self, value: i64) -> Result<Plaintext, FheError> {
        self.encode(&[value])
    }

    /// Decodes the first `count` slots of a plaintext.
    pub fn decode(&self, plaintext: &Plaintext, count: usize) -> Vec<u64> {
        plaintext.slots.iter().copied().take(count).collect()
    }
}

/// Zero-fills `slots` and writes `values` reduced into `[0, t)` — the one
/// definition of slot encoding, shared by [`FheContext::encode`] and
/// [`Encryptor::encrypt_values`] so the two can never desynchronize.
fn encode_into(slots: &mut [u64], values: &[i64], t: u64) {
    slots.fill(0);
    let t = t as i128;
    for (slot, &v) in slots.iter_mut().zip(values) {
        *slot = (((v as i128) % t + t) % t) as u64;
    }
}

/// A batched plaintext: a vector of residues modulo the plaintext modulus.
///
/// Carries a lazily computed cache of its payload "splat" polynomial in NTT
/// (Eval) form: ciphertext–plaintext multiplications share one forward
/// transform per plaintext instead of paying one per payload component per
/// operation. The cache never participates in equality.
#[derive(Debug, Clone)]
pub struct Plaintext {
    pub(crate) slots: Vec<u64>,
    pub(crate) live: usize,
    /// Eval-form payload splat, filled on first ct-pt multiplication.
    splat: OnceLock<Poly>,
}

impl PartialEq for Plaintext {
    fn eq(&self, other: &Self) -> bool {
        self.slots == other.slots && self.live == other.live
    }
}

impl Eq for Plaintext {}

impl Plaintext {
    /// Builds a plaintext from slot values (crate-internal; public
    /// construction goes through [`FheContext::encode`]).
    pub(crate) fn new(slots: Vec<u64>, live: usize) -> Self {
        Plaintext {
            slots,
            live,
            splat: OnceLock::new(),
        }
    }

    /// The payload splat polynomial of this plaintext in Eval form — all
    /// `limb_count · degree` limb stripes — transformed on first use
    /// (`threads` bounds the intra-op NTT worker count) and cached for
    /// every later use.
    ///
    /// The cache is keyed to the first context the plaintext multiplies
    /// under; if the same plaintext is then used under a context with a
    /// different payload shape, a fresh (owned, uncached) splat is built
    /// at that shape instead — never a wrong-shape cache hit.
    pub(crate) fn splat_eval(
        &self,
        chain: &ModulusChain,
        tables: &NttTables,
        threads: usize,
        arena: &mut PolyArena,
    ) -> Cow<'_, Poly> {
        let total = chain.limb_count() * chain.degree();
        if let Some(splat) = self.splat.get() {
            if splat.degree() == total {
                return Cow::Borrowed(splat);
            }
            return Cow::Owned(self.build_splat(chain, tables, threads, arena));
        }
        let built = self.build_splat(chain, tables, threads, arena);
        match self.splat.set(built) {
            Ok(()) => Cow::Borrowed(self.splat.get().expect("just set")),
            // A concurrent first use won the race; its value is identical
            // unless it ran under a different context, so re-check.
            Err(built) => {
                let cached = self.splat.get().expect("set raced with an init");
                if cached.degree() == total {
                    Cow::Borrowed(cached)
                } else {
                    Cow::Owned(built)
                }
            }
        }
    }

    /// Builds the Eval-form payload splat of this plaintext across every
    /// limb of `chain` (limb 0 under the shared Goldilocks `tables` — the
    /// single-modulus path verbatim — generic limbs under their own NTTs),
    /// with the coefficient buffer drawn from `arena`.
    fn build_splat(
        &self,
        chain: &ModulusChain,
        tables: &NttTables,
        threads: usize,
        arena: &mut PolyArena,
    ) -> Poly {
        let degree = chain.degree();
        let mut values = arena.take(chain.limb_count() * degree);
        for (out, &s) in values[..degree].iter_mut().zip(self.slots.iter().cycle()) {
            *out = s.wrapping_mul(0x9E37_79B9) % MODULUS;
        }
        if threads > 1 {
            tables.forward_threaded(&mut values[..degree], threads);
        } else {
            tables.forward(&mut values[..degree]);
        }
        for li in 1..chain.limb_count() {
            let q = chain.limb(li).modulus();
            let stripe = &mut values[li * degree..(li + 1) * degree];
            for (out, &s) in stripe.iter_mut().zip(self.slots.iter().cycle()) {
                *out = s.wrapping_mul(0x9E37_79B9) % q;
            }
            chain
                .limb(li)
                .ntt()
                .expect("generic limbs carry NTT tables under compute simulation")
                .forward(stripe);
        }
        Poly::from_reduced(values, Domain::Eval)
    }

    /// Returns a dead plaintext's buffers to `arena`: its slot vector and,
    /// when the first ct–pt multiplication filled it, the cached payload
    /// splat polynomial. The pair of [`FheContext::encode_in`] — together
    /// they let a warm request stream encode, multiply, and retire
    /// plaintexts without touching the allocator.
    pub fn recycle_into(self, arena: &mut PolyArena) {
        arena.put(self.slots);
        if let Some(splat) = self.splat.into_inner() {
            arena.put(splat.into_coeffs());
        }
    }
    /// All slot values.
    pub fn slots(&self) -> &[u64] {
        &self.slots
    }

    /// The number of live (explicitly encoded) slots.
    pub fn live_slots(&self) -> usize {
        self.live
    }

    /// Value of slot 0 (the scalar convention).
    pub fn scalar(&self) -> u64 {
        self.slots.first().copied().unwrap_or(0)
    }
}

/// An encrypted, batched vector of values.
///
/// The payload lives in the striped `[c0 | c1]` layout ([`CtPayload`]) behind
/// an `Arc`: operations that do not touch the payload (ct–pt addition and
/// subtraction) share it instead of copying `2 * degree` values, and the
/// arena recycler reclaims a stripe the moment its last referent dies.
#[derive(Debug, Clone)]
pub struct Ciphertext {
    pub(crate) slots: Vec<u64>,
    pub(crate) payload: Arc<CtPayload>,
    pub(crate) noise_consumed_bits: f64,
    pub(crate) key_id: u64,
    /// Number of ciphertext–ciphertext multiplications on the worst path that
    /// produced this ciphertext (its multiplicative level).
    pub(crate) level: usize,
}

impl Ciphertext {
    /// Bits of invariant-noise budget consumed so far.
    pub fn noise_consumed_bits(&self) -> f64 {
        self.noise_consumed_bits
    }

    /// The ciphertext's multiplicative level (number of ct-ct multiplications
    /// on its worst-case history path).
    pub fn level(&self) -> usize {
        self.level
    }

    /// Number of payload polynomial components (2 for every BFV ciphertext
    /// this backend produces — the degree-2 tensor component is folded away
    /// by fused relinearization).
    pub fn payload_size(&self) -> usize {
        2
    }

    /// The striped payload (empty when compute simulation is off). Exposed
    /// for instrumentation: equivalence tests compare payloads bit for bit
    /// across execution strategies.
    pub fn payload(&self) -> &CtPayload {
        &self.payload
    }

    /// Returns this ciphertext's buffers to `arena` for reuse: the slot
    /// vector always, the payload stripe when this was its last referent
    /// (payloads shared with a still-live ciphertext are left alone).
    pub fn recycle_into(self, arena: &mut PolyArena) {
        arena.put(self.slots);
        if let Ok(payload) = Arc::try_unwrap(self.payload) {
            arena.put(payload.into_stripe());
        }
    }
}

/// Encrypts plaintexts under a public key.
///
/// The encryptor owns a [`PolyArena`]: slot vectors and payload stripes of
/// fresh ciphertexts come out of it, so a serving path that swaps the
/// session's warm arena in ([`Encryptor::set_arena`]) encrypts a whole
/// request stream without fresh buffer allocations.
#[derive(Debug)]
pub struct Encryptor {
    ctx: FheContext,
    key_id: u64,
    rng: ChaCha8Rng,
    arena: PolyArena,
}

impl Encryptor {
    /// Creates an encryptor bound to a context and public key (with an
    /// empty, private buffer arena).
    pub fn new(ctx: &FheContext, public_key: &PublicKey) -> Self {
        let key_id = KeyGenerator::public_key_id(public_key);
        Encryptor {
            ctx: ctx.clone(),
            key_id,
            rng: ChaCha8Rng::seed_from_u64(key_id ^ 0x5eed),
            arena: PolyArena::new(),
        }
    }

    /// Replaces the encryptor's buffer arena (typically with a warm one
    /// checked out of a session's [`crate::ArenaPool`]).
    pub fn set_arena(&mut self, arena: PolyArena) {
        self.arena = arena;
    }

    /// Takes the encryptor's buffer arena (to restore it to a shared pool),
    /// leaving an empty one behind.
    pub fn take_arena(&mut self) -> PolyArena {
        std::mem::take(&mut self.arena)
    }

    /// Samples one fresh Eval-form payload stripe from the arena (or an
    /// empty payload when compute simulation is off).
    ///
    /// Limb 0 of each component draws `degree` uniform Goldilocks values in
    /// the exact order the single-modulus engine draws its stripe — which is
    /// what keeps `k = 1` encryption bit-identical. Generic limbs are that
    /// base sample lifted into their own residue fields (the CRT image of
    /// one shared base polynomial), costing zero extra RNG draws.
    fn sample_payload(&mut self) -> Arc<CtPayload> {
        if !self.ctx.params().simulate_compute {
            return CtPayload::shared_empty();
        }
        let degree = self.ctx.params().payload_degree;
        let k = self.ctx.params().limb_count;
        let half = k * degree;
        let mut stripe = self.arena.take(2 * half);
        for component in 0..2 {
            let base = component * half;
            for j in 0..degree {
                stripe[base + j] = self.rng.gen::<u64>() % MODULUS;
            }
            for li in 1..k {
                let chain = self.ctx.chain();
                for j in 0..degree {
                    stripe[base + li * degree + j] = chain.lift_base(li, stripe[base + j]);
                }
            }
        }
        Arc::new(CtPayload::from_limb_stripe(stripe, k, Domain::Eval))
    }

    /// Encrypts a plaintext into a fresh ciphertext.
    ///
    /// Payload polynomials are born in NTT ([`Domain::Eval`]) form: the
    /// sampled values are uniform either way, and starting in Eval form is
    /// what lets whole chains of homomorphic operations run pointwise
    /// without a single transform.
    pub fn encrypt(&mut self, plaintext: &Plaintext) -> Ciphertext {
        let payload = self.sample_payload();
        let mut slots = self.arena.take(plaintext.slots.len());
        slots.copy_from_slice(&plaintext.slots);
        Ciphertext {
            slots,
            payload,
            noise_consumed_bits: self.ctx.noise_model().fresh_bits,
            key_id: self.key_id,
            level: 0,
        }
    }

    /// Encodes and encrypts a vector of integers in one step, without
    /// materializing an intermediate [`Plaintext`] (the slot buffer comes
    /// straight from the arena).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::TooManyValues`] if more values than slots are given.
    pub fn encrypt_values(&mut self, values: &[i64]) -> Result<Ciphertext, FheError> {
        let slot_count = self.ctx.slot_count();
        if values.len() > slot_count {
            return Err(FheError::TooManyValues {
                provided: values.len(),
                slots: slot_count,
            });
        }
        let payload = self.sample_payload();
        let mut slots = self.arena.take(slot_count);
        encode_into(&mut slots, values, self.ctx.plain_modulus());
        Ok(Ciphertext {
            slots,
            payload,
            noise_consumed_bits: self.ctx.noise_model().fresh_bits,
            key_id: self.key_id,
            level: 0,
        })
    }
}

/// Decrypts ciphertexts under the secret key and reports noise budgets.
#[derive(Debug)]
pub struct Decryptor {
    ctx: FheContext,
    key_id: u64,
}

impl Decryptor {
    /// Creates a decryptor bound to a context and secret key.
    pub fn new(ctx: &FheContext, secret_key: &SecretKey) -> Self {
        Decryptor {
            ctx: ctx.clone(),
            key_id: KeyGenerator::key_id(secret_key),
        }
    }

    /// Remaining invariant-noise budget of a ciphertext, in bits (clamped at
    /// zero), mirroring SEAL's `Decryptor::invariant_noise_budget`.
    pub fn invariant_noise_budget(&self, ct: &Ciphertext) -> f64 {
        (self.ctx.params().fresh_noise_budget_bits() - ct.noise_consumed_bits).max(0.0)
    }

    /// Decrypts a ciphertext.
    ///
    /// # Errors
    ///
    /// Returns [`FheError::KeyMismatch`] if the ciphertext was produced under
    /// a different key pair, or [`FheError::NoiseBudgetExhausted`] if the
    /// noise budget has run out (the result would be garbage).
    pub fn decrypt(&self, ct: &Ciphertext) -> Result<Plaintext, FheError> {
        let slots = self.decrypt_slots(ct)?;
        Ok(Plaintext::new(slots.to_vec(), slots.len()))
    }

    /// Borrowed variant of [`Decryptor::decrypt`]: performs the same key and
    /// noise-budget checks but returns a view of the decrypted slot values
    /// instead of allocating a [`Plaintext`] — the serving hot path reads
    /// its few live output slots from this and recycles the ciphertext.
    ///
    /// # Errors
    ///
    /// Same contract as [`Decryptor::decrypt`].
    pub fn decrypt_slots<'a>(&self, ct: &'a Ciphertext) -> Result<&'a [u64], FheError> {
        if ct.key_id != self.key_id {
            return Err(FheError::KeyMismatch);
        }
        let available = self.ctx.params().fresh_noise_budget_bits();
        if ct.noise_consumed_bits >= available {
            return Err(FheError::NoiseBudgetExhausted {
                consumed_bits: ct.noise_consumed_bits,
                available_bits: available,
            });
        }
        // Multi-limb decryption pays the CRT reconstruction a production RNS
        // engine performs: a Garner mixed-radix pass over every coefficient
        // of the recovered component, kept live through the checksum.
        if ct.payload.limbs() > 1 && !ct.payload.is_empty() {
            std::hint::black_box(self.ctx.chain().crt_checksum(ct.payload.c0()));
        }
        Ok(&ct.slots)
    }

    /// Lane-range variant of [`Decryptor::decrypt_slots`]: performs the key
    /// and noise-budget checks once and returns only the requested slot
    /// window. The cross-request batching scatter reads each user's
    /// `[lane base, lane base + output slots)` window through this instead
    /// of decoding all `degree` slots per request.
    ///
    /// # Errors
    ///
    /// The same [`FheError::KeyMismatch`] / [`FheError::NoiseBudgetExhausted`]
    /// conditions as [`Decryptor::decrypt_slots`], plus
    /// [`FheError::TooManyValues`] when the range reaches past the
    /// ciphertext's slot count.
    pub fn decrypt_slots_in<'a>(
        &self,
        ct: &'a Ciphertext,
        range: std::ops::Range<usize>,
    ) -> Result<&'a [u64], FheError> {
        let slots = self.decrypt_slots(ct)?;
        if range.end > slots.len() {
            return Err(FheError::TooManyValues {
                provided: range.end,
                slots: slots.len(),
            });
        }
        Ok(&slots[range])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;

    fn setup() -> (FheContext, Encryptor, Decryptor) {
        let params = BfvParameters::insecure_test();
        let ctx = FheContext::new(params).unwrap();
        let keygen = KeyGenerator::new(ctx.params(), 42);
        let enc = Encryptor::new(&ctx, &keygen.public_key());
        let dec = Decryptor::new(&ctx, &keygen.secret_key());
        (ctx, enc, dec)
    }

    #[test]
    fn encode_decode_round_trips() {
        let (ctx, _, _) = setup();
        let pt = ctx.encode(&[1, 2, 3, -1]).unwrap();
        let t = ctx.plain_modulus();
        assert_eq!(ctx.decode(&pt, 4), vec![1, 2, 3, t - 1]);
        assert_eq!(pt.live_slots(), 4);
        assert_eq!(pt.scalar(), 1);
    }

    #[test]
    fn encode_rejects_too_many_values() {
        let (ctx, _, _) = setup();
        let too_many = vec![1i64; ctx.slot_count() + 1];
        assert!(matches!(
            ctx.encode(&too_many),
            Err(FheError::TooManyValues { .. })
        ));
    }

    #[test]
    fn encrypt_decrypt_round_trips() {
        let (ctx, mut enc, dec) = setup();
        let ct = enc.encrypt_values(&[5, 10, 15]).unwrap();
        let pt = dec.decrypt(&ct).unwrap();
        assert_eq!(ctx.decode(&pt, 3), vec![5, 10, 15]);
        assert!(dec.invariant_noise_budget(&ct) > 0.0);
    }

    #[test]
    fn decrypt_slots_in_returns_exactly_the_lane_window() {
        let (ctx, mut enc, dec) = setup();
        // Two users at a lane stride of 4: user 0 at slots [0, 4), user 1
        // at [4, 8).
        let ct = enc.encrypt_values(&[10, 11, 0, 0, 20, 21, 0, 0]).unwrap();
        assert_eq!(dec.decrypt_slots_in(&ct, 0..4).unwrap(), &[10, 11, 0, 0]);
        assert_eq!(dec.decrypt_slots_in(&ct, 4..8).unwrap(), &[20, 21, 0, 0]);
        // A window past the slot count is rejected, not clamped.
        let n = ctx.slot_count();
        assert!(matches!(
            dec.decrypt_slots_in(&ct, n - 1..n + 1),
            Err(FheError::TooManyValues { .. })
        ));
        // The same key and noise checks guard the ranged path.
        let mut exhausted = enc.encrypt_values(&[1]).unwrap();
        exhausted.noise_consumed_bits = 1e9;
        assert!(matches!(
            dec.decrypt_slots_in(&exhausted, 0..1),
            Err(FheError::NoiseBudgetExhausted { .. })
        ));
    }

    #[test]
    fn fresh_ciphertext_budget_is_close_to_the_parameter_budget() {
        let (ctx, mut enc, dec) = setup();
        let ct = enc.encrypt_values(&[1]).unwrap();
        let budget = dec.invariant_noise_budget(&ct);
        let max = ctx.params().fresh_noise_budget_bits();
        assert!(budget > max - 10.0 && budget <= max);
    }

    #[test]
    fn decrypting_with_the_wrong_key_fails() {
        let params = BfvParameters::insecure_test();
        let ctx = FheContext::new(params).unwrap();
        let keygen_a = KeyGenerator::new(ctx.params(), 1);
        let keygen_b = KeyGenerator::new(ctx.params(), 2);
        let mut enc = Encryptor::new(&ctx, &keygen_a.public_key());
        let dec = Decryptor::new(&ctx, &keygen_b.secret_key());
        let ct = enc.encrypt_values(&[1]).unwrap();
        assert_eq!(dec.decrypt(&ct), Err(FheError::KeyMismatch));
    }

    #[test]
    fn exhausted_budget_fails_decryption() {
        let (_, mut enc, dec) = setup();
        let mut ct = enc.encrypt_values(&[1]).unwrap();
        ct.noise_consumed_bits = 1e9;
        assert!(matches!(
            dec.decrypt(&ct),
            Err(FheError::NoiseBudgetExhausted { .. })
        ));
        assert_eq!(dec.invariant_noise_budget(&ct), 0.0);
    }

    #[test]
    fn errors_display_useful_messages() {
        let e = FheError::MissingGaloisKey { step: 3 };
        assert!(e.to_string().contains("step 3"));
        let e = FheError::TooManyValues {
            provided: 10,
            slots: 4,
        };
        assert!(e.to_string().contains("10"));
    }
}
