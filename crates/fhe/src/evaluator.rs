//! Homomorphic evaluation: the SEAL-style `Evaluator` API.
//!
//! Every operation updates three facets of a ciphertext:
//!
//! 1. the exact batched slot values (functional correctness),
//! 2. the payload polynomials, using the amount of ring arithmetic the real
//!    BFV operation performs (cost-faithful wall-clock), and
//! 3. the analytic invariant-noise estimate.
//!
//! ## Representation invariants (the lazy-NTT hot path)
//!
//! Ciphertext payloads are **always in NTT
//! ([`Domain::Eval`](crate::poly::Domain)) form** and live in the striped
//! `[c0 | c1]` layout ([`CtPayload`]): they are born there at encryption,
//! key-switch key payloads are pre-transformed (and pre-striped) at key
//! generation, and plaintext splats are transformed once per plaintext and
//! cached. Every operation below is therefore a **single fused pass** over
//! the stripe — both ciphertext components update together, `O(n)` work,
//! zero forward/inverse transforms. Nothing downstream observes payload
//! coefficient form: decryption and noise estimation read slots and the
//! analytic noise estimate only.
//!
//! ## Zero-allocation steady state
//!
//! The evaluator owns a [`PolyArena`]: every output buffer (payload stripes
//! *and* slot vectors) is taken from it, and dead ciphertexts are returned
//! with [`Evaluator::recycle`] (or the in-place `*_into` / `*_assign`
//! variants, which recycle their overwritten output for the caller). A
//! request stream running against a warm arena performs **zero fresh buffer
//! allocations**: the process-global [`PolyArena`] counters let tests and
//! benches assert exactly that. Cheap ct–pt additions do not copy payloads
//! at all — the payload rides behind an `Arc` and is shared.
//!
//! ## Intra-op parallelism
//!
//! [`Evaluator::set_intra_op_threads`] grants the evaluator a worker budget
//! for splitting heavy stripe passes into chunks on scoped threads. The
//! parallel runtime raises the budget when a schedule level is narrower
//! than its worker pool, so otherwise-idle cores help inside single heavy
//! operations. Results are bit-identical at every budget;
//! [`Evaluator::intra_op_splits`] counts the operations that actually
//! split.

use crate::arena::PolyArena;
use crate::crypto::{Ciphertext, FheContext, FheError, Plaintext};
use crate::keys::{GaloisKeys, RelinKeys};
use crate::payload::{CtPayload, INTRA_OP_MIN};
use crate::poly::{Domain, Poly};
use crate::simd::SimdPolicy;
use std::collections::HashMap;
use std::sync::Arc;

/// Element-wise slot operations on the plaintext ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotOp {
    Add,
    Sub,
    Mul,
}

impl SlotOp {
    /// Applies the operation to one slot pair modulo `t`.
    #[inline]
    fn apply(self, x: u64, y: u64, t: u128) -> u64 {
        let (x, y) = (x as u128, y as u128);
        let r = match self {
            SlotOp::Add => (x + y) % t,
            SlotOp::Sub => (x + t - (y % t)) % t,
            SlotOp::Mul => (x * y) % t,
        };
        r as u64
    }
}

/// Statistics of the homomorphic operations an [`Evaluator`] has executed.
///
/// The counters let harnesses report operation mixes without instrumenting
/// call sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvaluatorStats {
    /// Ciphertext–ciphertext additions and subtractions.
    pub additions: usize,
    /// Ciphertext negations.
    pub negations: usize,
    /// Ciphertext–ciphertext multiplications.
    pub ct_ct_multiplications: usize,
    /// Ciphertext–plaintext multiplications.
    pub ct_pt_multiplications: usize,
    /// Slot rotations.
    pub rotations: usize,
}

impl EvaluatorStats {
    /// Total number of homomorphic operations.
    pub fn total(&self) -> usize {
        self.additions
            + self.negations
            + self.ct_ct_multiplications
            + self.ct_pt_multiplications
            + self.rotations
    }

    /// Accumulates another evaluator's counters into this one (used by the
    /// parallel runtime to combine per-worker statistics).
    pub fn merge(&mut self, other: &EvaluatorStats) {
        self.additions += other.additions;
        self.negations += other.negations;
        self.ct_ct_multiplications += other.ct_ct_multiplications;
        self.ct_pt_multiplications += other.ct_pt_multiplications;
        self.rotations += other.rotations;
    }
}

/// Executes homomorphic operations over ciphertexts.
#[derive(Debug)]
pub struct Evaluator {
    ctx: FheContext,
    stats: EvaluatorStats,
    /// Worker budget for intra-op coefficient chunking (1 = sequential).
    intra_op_threads: usize,
    /// Operations that actually split across intra-op workers.
    intra_op_splits: u64,
    /// Buffer pool every output slot vector and payload stripe is drawn
    /// from (and dead ciphertexts recycled into).
    arena: PolyArena,
    /// Lock-free local view of the context's shared Eval-domain Galois
    /// permutation cache, keyed by Galois element.
    galois_perms: HashMap<usize, Arc<Vec<u32>>>,
    /// The SIMD back end every fused stripe kernel runs on, snapshotted
    /// from [`SimdPolicy::global`] at construction (overridable with
    /// [`Evaluator::set_simd_policy`]). Composes with intra-op chunking:
    /// each chunk runs the vector kernel with a scalar tail, and outputs
    /// are bit-identical under every (policy, threads) combination.
    simd: SimdPolicy,
}

impl Evaluator {
    /// Minimum payload degree at which intra-op chunking engages: payloads
    /// below this stay sequential regardless of the configured budget (the
    /// scoped-thread spawn would cost more than the loop it splits).
    /// Schedulers that hand out *dynamic* per-op thread grants (the
    /// runtime's dataflow executor) consult this to skip grant bookkeeping
    /// entirely for sessions whose payloads can never split.
    pub const INTRA_OP_MIN_DEGREE: usize = INTRA_OP_MIN;

    /// Creates an evaluator for a context, with an empty private buffer
    /// arena. Long-lived callers that want a warm arena use
    /// [`Evaluator::with_arena`].
    pub fn new(ctx: &FheContext) -> Self {
        Self::with_arena(ctx, PolyArena::new())
    }

    /// Creates an evaluator that draws its buffers from `arena` (typically
    /// one checked out of a session's [`crate::ArenaPool`], carrying the
    /// warm buffers of earlier requests).
    pub fn with_arena(ctx: &FheContext, arena: PolyArena) -> Self {
        Evaluator {
            ctx: ctx.clone(),
            stats: EvaluatorStats::default(),
            intra_op_threads: 1,
            intra_op_splits: 0,
            arena,
            galois_perms: HashMap::new(),
            simd: SimdPolicy::global(),
        }
    }

    /// The SIMD back end this evaluator's kernels run on.
    pub fn simd_policy(&self) -> SimdPolicy {
        self.simd
    }

    /// Overrides the SIMD back end (tests and benches use this to compare
    /// both paths in one process; outputs are bit-identical either way).
    pub fn set_simd_policy(&mut self, policy: SimdPolicy) {
        self.simd = policy;
    }

    /// Takes the evaluator's buffer arena (to restore it to a shared pool),
    /// leaving an empty one behind.
    pub fn take_arena(&mut self) -> PolyArena {
        std::mem::take(&mut self.arena)
    }

    /// Replaces the evaluator's buffer arena (typically with a warm one
    /// checked out of a session's [`crate::ArenaPool`]).
    pub fn set_arena(&mut self, arena: PolyArena) {
        self.arena = arena;
    }

    /// Returns a dead ciphertext's buffers to the evaluator's arena: its
    /// slot vector always, its payload stripe when this ciphertext was the
    /// stripe's last referent. The next operation of matching size reuses
    /// them instead of allocating.
    pub fn recycle(&mut self, ciphertext: Ciphertext) {
        ciphertext.recycle_into(&mut self.arena);
    }

    /// Returns a dead plaintext's buffers (slot vector plus any cached
    /// payload splat) to the evaluator's arena — the plaintext counterpart
    /// of [`Evaluator::recycle`], pairing with [`FheContext::encode_in`].
    pub fn recycle_plain(&mut self, plaintext: Plaintext) {
        plaintext.recycle_into(&mut self.arena);
    }

    /// Mutable access to the evaluator's buffer arena, so callers can draw
    /// sibling allocations (e.g. [`FheContext::encode_in`] slot vectors)
    /// from the same pool the evaluator recycles into.
    pub fn arena_mut(&mut self) -> &mut PolyArena {
        &mut self.arena
    }

    /// Counters of the operations executed so far.
    pub fn stats(&self) -> EvaluatorStats {
        self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = EvaluatorStats::default();
    }

    /// Sets the intra-op worker budget: heavy stripe passes split into
    /// chunks across up to this many scoped threads (clamped to at least 1).
    /// Results are bit-identical at every budget.
    pub fn set_intra_op_threads(&mut self, threads: usize) {
        self.intra_op_threads = threads.max(1);
    }

    /// The current intra-op worker budget.
    pub fn intra_op_threads(&self) -> usize {
        self.intra_op_threads
    }

    /// Number of operations so far whose payload work actually split across
    /// more than one intra-op worker.
    pub fn intra_op_splits(&self) -> u64 {
        self.intra_op_splits
    }

    /// The intra-op budget that will apply to a payload of `degree`
    /// coefficients, and whether that counts as a split.
    fn intra_op_budget(&mut self, degree: usize) -> usize {
        if self.intra_op_threads > 1 && degree >= INTRA_OP_MIN {
            self.intra_op_splits += 1;
            self.intra_op_threads
        } else {
            1
        }
    }

    /// Element-wise slot combination into an arena buffer.
    fn slot_binary(&mut self, a: &[u64], b: &[u64], op: SlotOp) -> Vec<u64> {
        let t = self.ctx.plain_modulus() as u128;
        let mut out = self.arena.take(a.len().min(b.len()));
        for ((slot, &x), &y) in out.iter_mut().zip(a).zip(b) {
            *slot = op.apply(x, y, t);
        }
        out
    }

    /// Element-wise slot combination in place (`a = a op b`).
    fn slot_binary_assign(&self, a: &mut [u64], b: &[u64], op: SlotOp) {
        let t = self.ctx.plain_modulus() as u128;
        for (x, &y) in a.iter_mut().zip(b) {
            *x = op.apply(*x, y, t);
        }
    }

    /// An arena-backed copy of a ciphertext: the slot vector is copied into
    /// a pooled buffer, the payload stripe is shared (`Arc`), so the copy
    /// costs one slot-vector fill and no payload traffic.
    pub fn clone_ciphertext(&mut self, a: &Ciphertext) -> Ciphertext {
        let mut slots = self.arena.take(a.slots.len());
        slots.copy_from_slice(&a.slots);
        Ciphertext {
            slots,
            payload: Arc::clone(&a.payload),
            noise_consumed_bits: a.noise_consumed_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Ciphertext–ciphertext addition.
    pub fn add(&mut self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.stats.additions += 1;
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Add),
            payload: self.payload_pointwise(a, b, false),
            noise_consumed_bits: self.ctx.noise_model().combine(
                a.noise_consumed_bits,
                b.noise_consumed_bits,
                self.ctx.noise_model().add_bits,
            ),
            key_id: a.key_id,
            level: a.level.max(b.level),
        }
    }

    /// Ciphertext–ciphertext subtraction.
    pub fn sub(&mut self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.stats.additions += 1;
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Sub),
            payload: self.payload_pointwise(a, b, true),
            noise_consumed_bits: self.ctx.noise_model().combine(
                a.noise_consumed_bits,
                b.noise_consumed_bits,
                self.ctx.noise_model().add_bits,
            ),
            key_id: a.key_id,
            level: a.level.max(b.level),
        }
    }

    /// In-place ciphertext–ciphertext addition (`a += b`): no slot buffer is
    /// allocated, and the payload stripe is updated in place when `a` is its
    /// only referent (a shared stripe is replaced by an arena copy — never
    /// mutated under an aliasing ciphertext).
    pub fn add_assign(&mut self, a: &mut Ciphertext, b: &Ciphertext) {
        self.stats.additions += 1;
        self.slot_binary_assign(&mut a.slots, &b.slots, SlotOp::Add);
        a.noise_consumed_bits = self.ctx.noise_model().combine(
            a.noise_consumed_bits,
            b.noise_consumed_bits,
            self.ctx.noise_model().add_bits,
        );
        a.level = a.level.max(b.level);
        self.payload_pointwise_assign(a, b, false);
    }

    /// In-place ciphertext–ciphertext subtraction (`a -= b`); see
    /// [`Evaluator::add_assign`] for the aliasing contract.
    pub fn sub_assign(&mut self, a: &mut Ciphertext, b: &Ciphertext) {
        self.stats.additions += 1;
        self.slot_binary_assign(&mut a.slots, &b.slots, SlotOp::Sub);
        a.noise_consumed_bits = self.ctx.noise_model().combine(
            a.noise_consumed_bits,
            b.noise_consumed_bits,
            self.ctx.noise_model().add_bits,
        );
        a.level = a.level.max(b.level);
        self.payload_pointwise_assign(a, b, true);
    }

    /// Ciphertext negation.
    pub fn negate(&mut self, a: &Ciphertext) -> Ciphertext {
        self.stats.negations += 1;
        let t = self.ctx.plain_modulus();
        let mut slots = self.arena.take(a.slots.len());
        for (slot, &x) in slots.iter_mut().zip(&a.slots) {
            *slot = (t - x % t) % t;
        }
        let payload = if a.payload.is_empty() {
            Arc::clone(&a.payload)
        } else {
            let mut out = self.arena.take(a.payload.stripe().len());
            a.payload.neg2(&mut out, self.simd, self.ctx.chain());
            Arc::new(CtPayload::from_limb_stripe(
                out,
                a.payload.limbs(),
                a.payload.domain(),
            ))
        };
        Ciphertext {
            slots,
            payload,
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().negate_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// In-place ciphertext negation (`a = -a`); see
    /// [`Evaluator::add_assign`] for the aliasing contract.
    pub fn neg_assign(&mut self, a: &mut Ciphertext) {
        self.stats.negations += 1;
        let t = self.ctx.plain_modulus();
        for x in a.slots.iter_mut() {
            *x = (t - *x % t) % t;
        }
        a.noise_consumed_bits += self.ctx.noise_model().negate_bits;
        if !a.payload.is_empty() {
            if let Some(p) = Arc::get_mut(&mut a.payload) {
                p.neg_assign2(self.simd, self.ctx.chain());
            } else {
                let mut out = self.arena.take(a.payload.stripe().len());
                a.payload.neg2(&mut out, self.simd, self.ctx.chain());
                a.payload = Arc::new(CtPayload::from_limb_stripe(
                    out,
                    a.payload.limbs(),
                    a.payload.domain(),
                ));
            }
        }
    }

    /// Ciphertext–plaintext addition.
    ///
    /// The payload is untouched by plain addition, so the output **shares**
    /// the input's stripe (`Arc` clone) — no `2 * degree` copy.
    pub fn add_plain(&mut self, a: &Ciphertext, b: &Plaintext) -> Ciphertext {
        self.stats.additions += 1;
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Add),
            payload: Arc::clone(&a.payload),
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().add_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Ciphertext–plaintext subtraction (`a - b`); shares the payload like
    /// [`Evaluator::add_plain`].
    pub fn sub_plain(&mut self, a: &Ciphertext, b: &Plaintext) -> Ciphertext {
        self.stats.additions += 1;
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Sub),
            payload: Arc::clone(&a.payload),
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().add_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Ciphertext–ciphertext multiplication followed by relinearization.
    ///
    /// The payload work mimics BFV: a tensor product of the two 2-component
    /// ciphertexts (four ring multiplications) followed by a key-switching
    /// step against the relinearization key's Eval-form stripe (two more
    /// ring multiplications). All six products run **fused in one pass over
    /// the stripe** ([`CtPayload::mul_add_eval2`]): per coefficient the
    /// degree-2 component `c2 = a1·b1` is a local scalar, so the operation
    /// needs no temporary and touches each operand cache line exactly once.
    pub fn multiply(&mut self, a: &Ciphertext, b: &Ciphertext, relin: &RelinKeys) -> Ciphertext {
        self.stats.ct_ct_multiplications += 1;
        let payload = self.payload_tensor_product(a, b, relin);
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Mul),
            payload,
            noise_consumed_bits: self.ctx.noise_model().combine(
                a.noise_consumed_bits,
                b.noise_consumed_bits,
                self.ctx.noise_model().ct_ct_mul_bits,
            ),
            key_id: a.key_id,
            level: a.level.max(b.level) + 1,
        }
    }

    /// [`Evaluator::multiply`] that overwrites `out`, recycling `out`'s old
    /// buffers into the arena — the steady-state form for accumulation
    /// loops.
    pub fn multiply_into(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        relin: &RelinKeys,
        out: &mut Ciphertext,
    ) {
        let fresh = self.multiply(a, b, relin);
        let old = std::mem::replace(out, fresh);
        self.recycle(old);
    }

    /// Ciphertext squaring (a slightly cheaper ct-ct multiplication; no
    /// operand clone).
    pub fn square(&mut self, a: &Ciphertext, relin: &RelinKeys) -> Ciphertext {
        self.multiply(a, a, relin)
    }

    /// Ciphertext–plaintext multiplication.
    ///
    /// The plaintext's payload splat is transformed into Eval form once per
    /// plaintext (cached on the [`Plaintext`]); both ciphertext components
    /// then multiply it in a single fused pass over the stripe
    /// ([`CtPayload::mul_eval2`]).
    pub fn multiply_plain(&mut self, a: &Ciphertext, b: &Plaintext) -> Ciphertext {
        self.stats.ct_pt_multiplications += 1;
        let ctx = self.ctx.clone();
        let payload = match ctx.tables() {
            Some(tables) if !a.payload.is_empty() => {
                let threads = self.intra_op_budget(a.payload.stripe().len() / 2);
                let pt_poly = b.splat_eval(ctx.chain(), tables, threads, &mut self.arena);
                let mut out = self.arena.take(a.payload.stripe().len());
                a.payload
                    .mul_eval2(pt_poly.coeffs(), &mut out, threads, self.simd, ctx.chain());
                Arc::new(CtPayload::from_limb_stripe(
                    out,
                    a.payload.limbs(),
                    Domain::Eval,
                ))
            }
            _ => Arc::clone(&a.payload),
        };
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Mul),
            payload,
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().ct_pt_mul_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Rotates the batched slots cyclically by `step` positions (positive
    /// steps rotate towards slot 0, i.e. the paper's `<<`).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::MissingGaloisKey`] if `galois_keys` has no key for
    /// `step`.
    pub fn rotate(
        &mut self,
        a: &Ciphertext,
        step: i64,
        galois_keys: &GaloisKeys,
    ) -> Result<Ciphertext, FheError> {
        if step == 0 {
            return Ok(self.clone_ciphertext(a));
        }
        if !galois_keys.supports_step(step) {
            return Err(FheError::MissingGaloisKey { step });
        }
        self.stats.rotations += 1;
        let n = a.slots.len();
        let shift = step.rem_euclid(n as i64) as usize;
        let mut slots = self.arena.take(n);
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = a.slots[(i + shift) % n];
        }
        // Payload: Galois automorphism on both components plus key switching
        // (two ring multiplications), roughly half the work of a ct-ct
        // multiplication, matching the relative cost the paper assumes. In
        // Eval form the automorphism is a pure index permutation and the
        // key-switch product is pointwise against the Galois key's
        // pre-transformed payload, so the whole rotation is one fused
        // gather-and-multiply pass over the stripe
        // ([`CtPayload::galois_eval2`]).
        let payload = if self.ctx.tables().is_some() && !a.payload.is_empty() {
            let degree = self.ctx.params().payload_degree;
            let threads = self.intra_op_budget(a.payload.stripe().len() / 2);
            // The slot rotation corresponds to the Galois automorphism
            // x -> x^(2*shift + 1) (always odd, as the ring requires). Its
            // Eval-domain permutation depends only on the element, so the
            // context computes each step's table once and every evaluator
            // shares it.
            let galois_elt = (2 * (shift % degree) + 1) % (2 * degree);
            let perm = match self.galois_perms.get(&galois_elt) {
                Some(perm) => Arc::clone(perm),
                None => {
                    let perm = self.ctx.galois_perm(galois_elt);
                    self.galois_perms.insert(galois_elt, Arc::clone(&perm));
                    perm
                }
            };
            let key = galois_keys
                .switch_poly(step)
                .map(Poly::coeffs)
                .unwrap_or_else(|| a.payload.c0());
            let mut out = self.arena.take(a.payload.stripe().len());
            a.payload
                .galois_eval2(&perm, key, &mut out, threads, self.simd, self.ctx.chain());
            Arc::new(CtPayload::from_limb_stripe(
                out,
                a.payload.limbs(),
                Domain::Eval,
            ))
        } else {
            Arc::clone(&a.payload)
        };
        Ok(Ciphertext {
            slots,
            payload,
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().rotation_bits,
            key_id: a.key_id,
            level: a.level,
        })
    }

    /// [`Evaluator::rotate`] that overwrites `out`, recycling `out`'s old
    /// buffers into the arena — the steady-state form for multi-step
    /// rotation chains.
    ///
    /// # Errors
    ///
    /// Same contract as [`Evaluator::rotate`]; on error `out` is untouched.
    pub fn rotate_into(
        &mut self,
        a: &Ciphertext,
        step: i64,
        galois_keys: &GaloisKeys,
        out: &mut Ciphertext,
    ) -> Result<(), FheError> {
        let fresh = self.rotate(a, step, galois_keys)?;
        let old = std::mem::replace(out, fresh);
        self.recycle(old);
        Ok(())
    }

    /// Point-wise payload combination used by additions/subtractions: one
    /// fused pass over both components' stripe.
    fn payload_pointwise(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        negate_b: bool,
    ) -> Arc<CtPayload> {
        if self.ctx.tables().is_none() || a.payload.is_empty() || b.payload.is_empty() {
            return Arc::clone(&a.payload);
        }
        let mut out = self.arena.take(a.payload.stripe().len());
        if negate_b {
            a.payload
                .sub2(&b.payload, &mut out, self.simd, self.ctx.chain());
        } else {
            a.payload
                .add2(&b.payload, &mut out, self.simd, self.ctx.chain());
        }
        Arc::new(CtPayload::from_limb_stripe(
            out,
            a.payload.limbs(),
            a.payload.domain(),
        ))
    }

    /// In-place variant of [`Evaluator::payload_pointwise`]: mutates `a`'s
    /// stripe when uniquely owned, replaces it with an arena copy otherwise.
    fn payload_pointwise_assign(&mut self, a: &mut Ciphertext, b: &Ciphertext, negate_b: bool) {
        if self.ctx.tables().is_none() || a.payload.is_empty() || b.payload.is_empty() {
            return;
        }
        if let Some(p) = Arc::get_mut(&mut a.payload) {
            if negate_b {
                p.sub_assign2(&b.payload, self.simd, self.ctx.chain());
            } else {
                p.add_assign2(&b.payload, self.simd, self.ctx.chain());
            }
        } else {
            let mut out = self.arena.take(a.payload.stripe().len());
            if negate_b {
                a.payload
                    .sub2(&b.payload, &mut out, self.simd, self.ctx.chain());
            } else {
                a.payload
                    .add2(&b.payload, &mut out, self.simd, self.ctx.chain());
            }
            a.payload = Arc::new(CtPayload::from_limb_stripe(
                out,
                a.payload.limbs(),
                a.payload.domain(),
            ));
        }
    }

    /// Tensor-product payload work used by ct-ct multiplication (see
    /// [`Evaluator::multiply`]).
    fn payload_tensor_product(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        relin: &RelinKeys,
    ) -> Arc<CtPayload> {
        if self.ctx.tables().is_none() || a.payload.is_empty() || b.payload.is_empty() {
            return Arc::clone(&a.payload);
        }
        let half = a.payload.stripe().len() / 2;
        let threads = self.intra_op_budget(half);
        let mut out = self.arena.take(2 * half);
        // Key-switch multipliers: the relin key's pre-transformed stripe
        // (fall back to operand components if key material was built
        // without compute simulation).
        match relin.switch_stripe() {
            Some(switch) => a.payload.mul_add_eval2(
                &b.payload,
                switch.c0(),
                switch.c1(),
                &mut out,
                threads,
                self.simd,
                self.ctx.chain(),
            ),
            None => a.payload.mul_add_eval2(
                &b.payload,
                a.payload.c0(),
                b.payload.c0(),
                &mut out,
                threads,
                self.simd,
                self.ctx.chain(),
            ),
        }
        Arc::new(CtPayload::from_limb_stripe(
            out,
            a.payload.limbs(),
            Domain::Eval,
        ))
    }

    /// Multiplies a ciphertext by a scalar constant (implemented as a
    /// plaintext multiplication with a splatted constant).
    ///
    /// The splat of a constant is the constant times the all-ones
    /// polynomial, whose NTT the context precomputes once at build — so the
    /// payload work is one fused stripe pass
    /// ([`CtPayload::mul_scalar_eval2`]) with no transform and no temporary.
    pub fn multiply_scalar(&mut self, a: &Ciphertext, scalar: i64) -> Ciphertext {
        let t = self.ctx.plain_modulus() as i128;
        let reduced = (((scalar as i128) % t + t) % t) as u64;
        self.stats.ct_pt_multiplications += 1;
        let ctx = self.ctx.clone();
        let payload = match ctx.ones_eval() {
            Some(ones) if !a.payload.is_empty() => {
                let threads = self.intra_op_budget(a.payload.stripe().len() / 2);
                let k = reduced.max(1);
                let mut out = self.arena.take(a.payload.stripe().len());
                a.payload.mul_scalar_eval2(
                    ones.coeffs(),
                    k,
                    &mut out,
                    threads,
                    self.simd,
                    ctx.chain(),
                );
                Arc::new(CtPayload::from_limb_stripe(
                    out,
                    a.payload.limbs(),
                    Domain::Eval,
                ))
            }
            _ => Arc::clone(&a.payload),
        };
        let mut slots = self.arena.take(a.slots.len());
        for (slot, &x) in slots.iter_mut().zip(&a.slots) {
            *slot = p_mod_mul(x, reduced, t as u64);
        }
        Ciphertext {
            slots,
            payload,
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().ct_pt_mul_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }
}

fn p_mod_mul(a: u64, b: u64, t: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(t)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crypto::Encryptor;
    use crate::keys::KeyGenerator;
    use crate::params::BfvParameters;

    struct Fixture {
        ctx: FheContext,
        enc: crate::crypto::Encryptor,
        dec: crate::crypto::Decryptor,
        eval: Evaluator,
        relin: RelinKeys,
        galois: GaloisKeys,
    }

    fn setup() -> Fixture {
        let params = BfvParameters::insecure_test();
        let ctx = FheContext::new(params).unwrap();
        let mut keygen = KeyGenerator::new(ctx.params(), 11);
        let enc = crate::crypto::Encryptor::new(&ctx, &keygen.public_key());
        let dec = crate::crypto::Decryptor::new(&ctx, &keygen.secret_key());
        let eval = Evaluator::new(&ctx);
        let relin = keygen.relin_keys();
        let galois = keygen.default_galois_keys();
        Fixture {
            ctx,
            enc,
            dec,
            eval,
            relin,
            galois,
        }
    }

    fn simulated_fixture() -> Fixture {
        let params = BfvParameters {
            payload_degree: 64,
            simulate_compute: true,
            ..BfvParameters::insecure_test()
        };
        let ctx = FheContext::new(params).unwrap();
        let mut keygen = KeyGenerator::new(ctx.params(), 11);
        let enc = Encryptor::new(&ctx, &keygen.public_key());
        let dec = crate::crypto::Decryptor::new(&ctx, &keygen.secret_key());
        let eval = Evaluator::new(&ctx);
        let relin = keygen.relin_keys();
        let galois = keygen.default_galois_keys();
        Fixture {
            ctx,
            enc,
            dec,
            eval,
            relin,
            galois,
        }
    }

    #[test]
    fn homomorphic_addition_matches_plain_addition() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1, 2, 3]).unwrap();
        let b = f.enc.encrypt_values(&[10, 20, 30]).unwrap();
        let sum = f.eval.add(&a, &b);
        let pt = f.dec.decrypt(&sum).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![11, 22, 33]);
    }

    #[test]
    fn homomorphic_multiplication_matches_plain_multiplication() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[2, 3, 4]).unwrap();
        let b = f.enc.encrypt_values(&[5, 6, 7]).unwrap();
        let prod = f.eval.multiply(&a, &b, &f.relin);
        let pt = f.dec.decrypt(&prod).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![10, 18, 28]);
        assert_eq!(prod.level(), 1);
    }

    #[test]
    fn subtraction_and_negation_wrap_modulo_t() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1]).unwrap();
        let b = f.enc.encrypt_values(&[3]).unwrap();
        let diff = f.eval.sub(&a, &b);
        let t = f.ctx.plain_modulus();
        assert_eq!(f.dec.decrypt(&diff).unwrap().scalar(), t - 2);
        let neg = f.eval.negate(&a);
        assert_eq!(f.dec.decrypt(&neg).unwrap().scalar(), t - 1);
    }

    #[test]
    fn plaintext_operations_match() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[4, 5]).unwrap();
        let p = f.ctx.encode(&[3, 3]).unwrap();
        assert_eq!(
            f.ctx
                .decode(&f.dec.decrypt(&f.eval.multiply_plain(&a, &p)).unwrap(), 2),
            vec![12, 15]
        );
        assert_eq!(
            f.ctx
                .decode(&f.dec.decrypt(&f.eval.add_plain(&a, &p)).unwrap(), 2),
            vec![7, 8]
        );
        assert_eq!(
            f.ctx
                .decode(&f.dec.decrypt(&f.eval.sub_plain(&a, &p)).unwrap(), 2),
            vec![1, 2]
        );
    }

    #[test]
    fn plain_addition_shares_the_payload_stripe() {
        let mut f = simulated_fixture();
        let a = f.enc.encrypt_values(&[4, 5]).unwrap();
        let p = f.ctx.encode(&[3, 3]).unwrap();
        let sum = f.eval.add_plain(&a, &p);
        assert!(
            std::sync::Arc::ptr_eq(&a.payload, &sum.payload),
            "ct-pt addition must share the payload, not copy it"
        );
        // The shared stripe protects aliased ciphertexts from in-place ops.
        let b = f.enc.encrypt_values(&[1, 1]).unwrap();
        let before = a.payload().clone();
        let mut sum = sum;
        f.eval.add_assign(&mut sum, &b);
        assert_eq!(
            a.payload(),
            &before,
            "in-place update of a shared stripe must copy-on-write"
        );
        assert_ne!(sum.payload(), &before);
    }

    #[test]
    fn in_place_ops_match_their_allocating_counterparts() {
        let mut f = simulated_fixture();
        let a = f.enc.encrypt_values(&[7, 8, 9]).unwrap();
        let b = f.enc.encrypt_values(&[1, 2, 3]).unwrap();

        let reference = f.eval.add(&a, &b);
        let mut acc = f.eval.clone_ciphertext(&a);
        f.eval.add_assign(&mut acc, &b);
        assert_eq!(acc.slots, reference.slots);
        assert_eq!(acc.payload(), reference.payload());
        assert_eq!(acc.noise_consumed_bits(), reference.noise_consumed_bits());

        let reference = f.eval.sub(&a, &b);
        let mut acc = f.eval.clone_ciphertext(&a);
        f.eval.sub_assign(&mut acc, &b);
        assert_eq!(acc.slots, reference.slots);
        assert_eq!(acc.payload(), reference.payload());

        let reference = f.eval.negate(&a);
        let mut acc = f.eval.clone_ciphertext(&a);
        f.eval.neg_assign(&mut acc);
        assert_eq!(acc.slots, reference.slots);
        assert_eq!(acc.payload(), reference.payload());

        let reference = f.eval.multiply(&a, &b, &f.relin);
        let mut out = f.eval.clone_ciphertext(&b);
        f.eval.multiply_into(&a, &b, &f.relin, &mut out);
        assert_eq!(out.slots, reference.slots);
        assert_eq!(out.payload(), reference.payload());

        let reference = f.eval.rotate(&a, 1, &f.galois).unwrap();
        let mut out = f.eval.clone_ciphertext(&b);
        f.eval.rotate_into(&a, 1, &f.galois, &mut out).unwrap();
        assert_eq!(out.slots, reference.slots);
        assert_eq!(out.payload(), reference.payload());
    }

    #[test]
    fn recycled_buffers_are_reused_by_later_operations() {
        let mut f = simulated_fixture();
        let a = f.enc.encrypt_values(&[2, 3]).unwrap();
        let b = f.enc.encrypt_values(&[4, 5]).unwrap();
        // Warm the arena with one multiply's buffers (slot vector + stripe)...
        let first = f.eval.multiply(&a, &b, &f.relin);
        let expected_slots = first.slots.clone();
        f.eval.recycle(first);
        let warm = f.eval.take_arena();
        let retained = warm.retained();
        assert_eq!(retained, 2, "recycle returns the slot vector and stripe");
        f.eval.set_arena(warm);
        // ...and the next multiply of identical shape is served entirely
        // from the pool (both buffers leave the arena, none is allocated).
        let second = f.eval.multiply(&a, &b, &f.relin);
        assert_eq!(f.eval.take_arena().retained(), retained - 2);
        assert_eq!(second.slots, expected_slots);
    }

    #[test]
    fn rotation_moves_slots_towards_slot_zero() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1, 2, 3, 4]).unwrap();
        let rotated = f.eval.rotate(&a, 1, &f.galois).unwrap();
        let pt = f.dec.decrypt(&rotated).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![2, 3, 4]);
        // Rotating by zero is the identity and needs no key.
        let same = f.eval.rotate(&a, 0, &f.galois).unwrap();
        assert_eq!(
            f.ctx.decode(&f.dec.decrypt(&same).unwrap(), 4),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn rotation_by_unsupported_step_fails() {
        let mut f = setup();
        let keygen = &mut KeyGenerator::new(f.ctx.params(), 99);
        let only_one = keygen.galois_keys(&[1]);
        let a = f.enc.encrypt_values(&[1, 2, 3, 4]).unwrap();
        // The ciphertext key differs from `only_one`'s generator, but rotation
        // only consults the step set, which is the compiler-facing constraint.
        assert!(matches!(
            f.eval.rotate(&a, 3, &only_one),
            Err(FheError::MissingGaloisKey { step: 3 })
        ));
    }

    #[test]
    fn rotation_behaves_like_zero_fill_shift_on_live_slots() {
        // With zero padding beyond the live slots, a cyclic rotation equals a
        // zero-fill shift on the live region: the invariant the IR semantics
        // relies on.
        let mut f = setup();
        let a = f.enc.encrypt_values(&[7, 8, 9]).unwrap();
        let rotated = f.eval.rotate(&a, 2, &f.galois).unwrap();
        let pt = f.dec.decrypt(&rotated).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![9, 0, 0]);
    }

    #[test]
    fn noise_budget_decreases_fastest_for_ct_ct_multiplication() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[2]).unwrap();
        let b = f.enc.encrypt_values(&[3]).unwrap();
        let before = f.dec.invariant_noise_budget(&a);
        let after_add = f.dec.invariant_noise_budget(&f.eval.add(&a, &b));
        let after_rot = f
            .dec
            .invariant_noise_budget(&f.eval.rotate(&a, 1, &f.galois).unwrap());
        let after_mul = f
            .dec
            .invariant_noise_budget(&f.eval.multiply(&a, &b, &f.relin));
        assert!(after_add < before);
        assert!(after_mul < after_rot);
        assert!(after_rot < after_add || (after_rot - after_add).abs() < 5.0);
        assert!(
            before - after_mul > 20.0,
            "ct-ct multiplication consumes tens of bits"
        );
    }

    #[test]
    fn deep_multiplication_chains_exhaust_the_budget() {
        let params = BfvParameters::insecure_test();
        let ctx = FheContext::new(params).unwrap();
        let mut keygen = KeyGenerator::new(ctx.params(), 5);
        let mut enc = crate::crypto::Encryptor::new(&ctx, &keygen.public_key());
        let dec = crate::crypto::Decryptor::new(&ctx, &keygen.secret_key());
        let mut eval = Evaluator::new(&ctx);
        let relin = keygen.relin_keys();
        let mut acc = enc.encrypt_values(&[1]).unwrap();
        let x = enc.encrypt_values(&[1]).unwrap();
        // The 120-bit test modulus gives a ~100-bit budget: three levels fit,
        // but a dozen multiplications must exhaust it.
        for _ in 0..12 {
            acc = eval.multiply(&acc, &x, &relin);
        }
        assert!(matches!(
            dec.decrypt(&acc),
            Err(FheError::NoiseBudgetExhausted { .. })
        ));
    }

    #[test]
    fn evaluator_counts_operations() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1, 2]).unwrap();
        let b = f.enc.encrypt_values(&[3, 4]).unwrap();
        let _ = f.eval.add(&a, &b);
        let _ = f.eval.multiply(&a, &b, &f.relin);
        let _ = f.eval.rotate(&a, 1, &f.galois).unwrap();
        let p = f.ctx.encode(&[5, 5]).unwrap();
        let _ = f.eval.multiply_plain(&a, &p);
        let stats = f.eval.stats();
        assert_eq!(stats.additions, 1);
        assert_eq!(stats.ct_ct_multiplications, 1);
        assert_eq!(stats.rotations, 1);
        assert_eq!(stats.ct_pt_multiplications, 1);
        assert_eq!(stats.total(), 4);
        f.eval.reset_stats();
        assert_eq!(f.eval.stats().total(), 0);
    }

    #[test]
    fn square_matches_multiply_by_self() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[9]).unwrap();
        let squared = f.eval.square(&a, &f.relin);
        assert_eq!(f.dec.decrypt(&squared).unwrap().scalar(), 81);
    }
}
