//! Homomorphic evaluation: the SEAL-style `Evaluator` API.
//!
//! Every operation updates three facets of a ciphertext:
//!
//! 1. the exact batched slot values (functional correctness),
//! 2. the payload polynomials, using the amount of ring arithmetic the real
//!    BFV operation performs (cost-faithful wall-clock), and
//! 3. the analytic invariant-noise estimate.
//!
//! ## Representation invariants (the lazy-NTT hot path)
//!
//! Ciphertext payload polynomials are **always in NTT
//! ([`Domain::Eval`](crate::poly::Domain)) form**: they are born there at
//! encryption, key-switch key payloads are pre-transformed at key
//! generation, and plaintext splats are transformed once per plaintext and
//! cached. Every operation below is therefore pointwise (`O(n)`) with zero
//! forward/inverse transforms and zero temporary polynomial allocations —
//! the only per-op allocations are the output polynomials themselves.
//! Nothing downstream observes payload coefficient form: decryption and
//! noise estimation read slots and the analytic noise estimate only.
//!
//! ## Intra-op parallelism
//!
//! [`Evaluator::set_intra_op_threads`] grants the evaluator a worker budget
//! for splitting heavy payload loops (and any residual transforms) into
//! coefficient chunks on scoped threads. The parallel runtime raises the
//! budget when a schedule level is narrower than its worker pool, so
//! otherwise-idle cores help inside single heavy operations. Results are
//! bit-identical at every budget; [`Evaluator::intra_op_splits`] counts the
//! operations that actually split.

use crate::crypto::{Ciphertext, FheContext, FheError, Plaintext};
use crate::keys::{GaloisKeys, RelinKeys};
use crate::poly::{galois_eval_permutation, p_mul, p_mul_add, Domain, Poly};
use std::collections::HashMap;

/// Payloads shorter than this never split across intra-op worker threads:
/// below it, thread-spawn latency exceeds the chunk work a helper takes
/// over.
const INTRA_OP_MIN: usize = 2048;

/// Runs `body(offset, chunk)` over disjoint chunks of `out`, using up to
/// `threads` scoped worker threads (the calling thread takes the first
/// chunk). Sequential when the budget is 1 or the slice is small.
fn par_chunks(
    out: &mut [u64],
    threads: usize,
    body: impl Fn(usize, &mut [u64]) + Send + Sync + Copy,
) {
    let n = out.len();
    if threads <= 1 || n < INTRA_OP_MIN {
        body(0, out);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut chunks = out.chunks_mut(chunk).enumerate();
        let first = chunks.next();
        for (i, c) in chunks {
            scope.spawn(move || body(i * chunk, c));
        }
        if let Some((_, c)) = first {
            body(0, c);
        }
    });
}

/// Two-output variant of [`par_chunks`]: both slices are chunked in
/// lockstep, so `body` sees matching index ranges of each.
fn par_chunks2(
    out0: &mut [u64],
    out1: &mut [u64],
    threads: usize,
    body: impl Fn(usize, &mut [u64], &mut [u64]) + Send + Sync + Copy,
) {
    let n = out0.len();
    debug_assert_eq!(n, out1.len());
    if threads <= 1 || n < INTRA_OP_MIN {
        body(0, out0, out1);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut chunks = out0
            .chunks_mut(chunk)
            .zip(out1.chunks_mut(chunk))
            .enumerate();
        let first = chunks.next();
        for (i, (c0, c1)) in chunks {
            scope.spawn(move || body(i * chunk, c0, c1));
        }
        if let Some((_, (c0, c1))) = first {
            body(0, c0, c1);
        }
    });
}

/// Element-wise slot operations on the plaintext ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotOp {
    Add,
    Sub,
    Mul,
}

/// Statistics of the homomorphic operations an [`Evaluator`] has executed.
///
/// The counters let harnesses report operation mixes without instrumenting
/// call sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvaluatorStats {
    /// Ciphertext–ciphertext additions and subtractions.
    pub additions: usize,
    /// Ciphertext negations.
    pub negations: usize,
    /// Ciphertext–ciphertext multiplications.
    pub ct_ct_multiplications: usize,
    /// Ciphertext–plaintext multiplications.
    pub ct_pt_multiplications: usize,
    /// Slot rotations.
    pub rotations: usize,
}

impl EvaluatorStats {
    /// Total number of homomorphic operations.
    pub fn total(&self) -> usize {
        self.additions
            + self.negations
            + self.ct_ct_multiplications
            + self.ct_pt_multiplications
            + self.rotations
    }

    /// Accumulates another evaluator's counters into this one (used by the
    /// parallel runtime to combine per-worker statistics).
    pub fn merge(&mut self, other: &EvaluatorStats) {
        self.additions += other.additions;
        self.negations += other.negations;
        self.ct_ct_multiplications += other.ct_ct_multiplications;
        self.ct_pt_multiplications += other.ct_pt_multiplications;
        self.rotations += other.rotations;
    }
}

/// Executes homomorphic operations over ciphertexts.
#[derive(Debug)]
pub struct Evaluator {
    ctx: FheContext,
    stats: EvaluatorStats,
    /// Worker budget for intra-op coefficient chunking (1 = sequential).
    intra_op_threads: usize,
    /// Operations that actually split across intra-op workers.
    intra_op_splits: u64,
    /// Eval-domain Galois permutations by Galois element: the permutation
    /// depends only on `(payload_degree, galois_elt)`, so a long-lived
    /// evaluator computes each rotation step's table once and gathers ever
    /// after.
    galois_perms: HashMap<usize, Vec<u32>>,
}

impl Evaluator {
    /// Minimum payload degree at which intra-op chunking engages: payloads
    /// below this stay sequential regardless of the configured budget (the
    /// scoped-thread spawn would cost more than the loop it splits).
    /// Schedulers that hand out *dynamic* per-op thread grants (the
    /// runtime's dataflow executor) consult this to skip grant bookkeeping
    /// entirely for sessions whose payloads can never split.
    pub const INTRA_OP_MIN_DEGREE: usize = INTRA_OP_MIN;

    /// Creates an evaluator for a context.
    pub fn new(ctx: &FheContext) -> Self {
        Evaluator {
            ctx: ctx.clone(),
            stats: EvaluatorStats::default(),
            intra_op_threads: 1,
            intra_op_splits: 0,
            galois_perms: HashMap::new(),
        }
    }

    /// Counters of the operations executed so far.
    pub fn stats(&self) -> EvaluatorStats {
        self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = EvaluatorStats::default();
    }

    /// Sets the intra-op worker budget: heavy payload loops split into
    /// coefficient chunks across up to this many scoped threads (clamped to
    /// at least 1). Results are bit-identical at every budget.
    pub fn set_intra_op_threads(&mut self, threads: usize) {
        self.intra_op_threads = threads.max(1);
    }

    /// The current intra-op worker budget.
    pub fn intra_op_threads(&self) -> usize {
        self.intra_op_threads
    }

    /// Number of operations so far whose payload work actually split across
    /// more than one intra-op worker.
    pub fn intra_op_splits(&self) -> u64 {
        self.intra_op_splits
    }

    /// The intra-op budget that will apply to a payload of `degree`
    /// coefficients, and whether that counts as a split.
    fn intra_op_budget(&mut self, degree: usize) -> usize {
        if self.intra_op_threads > 1 && degree >= INTRA_OP_MIN {
            self.intra_op_splits += 1;
            self.intra_op_threads
        } else {
            1
        }
    }

    fn slot_binary(&self, a: &[u64], b: &[u64], op: SlotOp) -> Vec<u64> {
        let t = self.ctx.plain_modulus() as u128;
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let (x, y) = (x as u128, y as u128);
                let r = match op {
                    SlotOp::Add => (x + y) % t,
                    SlotOp::Sub => (x + t - (y % t)) % t,
                    SlotOp::Mul => (x * y) % t,
                };
                r as u64
            })
            .collect()
    }

    /// Ciphertext–ciphertext addition.
    pub fn add(&mut self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.stats.additions += 1;
        let payload = self.payload_pointwise(a, b, false);
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Add),
            payload,
            noise_consumed_bits: self.ctx.noise_model().combine(
                a.noise_consumed_bits,
                b.noise_consumed_bits,
                self.ctx.noise_model().add_bits,
            ),
            key_id: a.key_id,
            level: a.level.max(b.level),
        }
    }

    /// Ciphertext–ciphertext subtraction.
    pub fn sub(&mut self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.stats.additions += 1;
        let payload = self.payload_pointwise(a, b, false);
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Sub),
            payload,
            noise_consumed_bits: self.ctx.noise_model().combine(
                a.noise_consumed_bits,
                b.noise_consumed_bits,
                self.ctx.noise_model().add_bits,
            ),
            key_id: a.key_id,
            level: a.level.max(b.level),
        }
    }

    /// Ciphertext negation.
    pub fn negate(&mut self, a: &Ciphertext) -> Ciphertext {
        self.stats.negations += 1;
        let t = self.ctx.plain_modulus();
        Ciphertext {
            slots: a.slots.iter().map(|&x| (t - x % t) % t).collect(),
            payload: a.payload.iter().map(Poly::negate).collect(),
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().negate_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Ciphertext–plaintext addition.
    pub fn add_plain(&mut self, a: &Ciphertext, b: &Plaintext) -> Ciphertext {
        self.stats.additions += 1;
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Add),
            payload: a.payload.clone(),
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().add_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Ciphertext–plaintext subtraction (`a - b`).
    pub fn sub_plain(&mut self, a: &Ciphertext, b: &Plaintext) -> Ciphertext {
        self.stats.additions += 1;
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Sub),
            payload: a.payload.clone(),
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().add_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Ciphertext–ciphertext multiplication followed by relinearization.
    ///
    /// The payload work mimics BFV: a tensor product of the two 2-polynomial
    /// ciphertexts (four ring multiplications) followed by a key-switching
    /// step against the relinearization key's Eval-form payload pair (two
    /// more ring multiplications), which is what makes this the dominant
    /// cost. Every product is pointwise — operands, outputs and key material
    /// all live in NTT form, so no transform runs here.
    pub fn multiply(&mut self, a: &Ciphertext, b: &Ciphertext, relin: &RelinKeys) -> Ciphertext {
        self.stats.ct_ct_multiplications += 1;
        let payload = self.payload_tensor_product(a, b, relin);
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Mul),
            payload,
            noise_consumed_bits: self.ctx.noise_model().combine(
                a.noise_consumed_bits,
                b.noise_consumed_bits,
                self.ctx.noise_model().ct_ct_mul_bits,
            ),
            key_id: a.key_id,
            level: a.level.max(b.level) + 1,
        }
    }

    /// Ciphertext squaring (a slightly cheaper ct-ct multiplication; no
    /// operand clone).
    pub fn square(&mut self, a: &Ciphertext, relin: &RelinKeys) -> Ciphertext {
        self.multiply(a, a, relin)
    }

    /// Ciphertext–plaintext multiplication.
    ///
    /// The plaintext's payload splat is transformed into Eval form once per
    /// plaintext (cached on the [`Plaintext`]); both ciphertext components
    /// then multiply it pointwise.
    pub fn multiply_plain(&mut self, a: &Ciphertext, b: &Plaintext) -> Ciphertext {
        self.stats.ct_pt_multiplications += 1;
        let degree = self.ctx.params().payload_degree;
        let threads = if self.ctx.tables().is_some() {
            self.intra_op_budget(degree)
        } else {
            1
        };
        let payload = if let Some(tables) = self.ctx.tables() {
            let pt_poly = b.splat_eval(degree, tables, threads);
            let pt = pt_poly.coeffs();
            a.payload
                .iter()
                .map(|p| {
                    let src = p.coeffs();
                    let mut out = vec![0u64; src.len()];
                    par_chunks(&mut out, threads, |offset, chunk| {
                        for (k, slot) in chunk.iter_mut().enumerate() {
                            let i = offset + k;
                            *slot = p_mul(src[i], pt[i]);
                        }
                    });
                    Poly::from_reduced(out, Domain::Eval)
                })
                .collect()
        } else {
            a.payload.clone()
        };
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Mul),
            payload,
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().ct_pt_mul_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Rotates the batched slots cyclically by `step` positions (positive
    /// steps rotate towards slot 0, i.e. the paper's `<<`).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::MissingGaloisKey`] if `galois_keys` has no key for
    /// `step`.
    pub fn rotate(
        &mut self,
        a: &Ciphertext,
        step: i64,
        galois_keys: &GaloisKeys,
    ) -> Result<Ciphertext, FheError> {
        if step == 0 {
            return Ok(a.clone());
        }
        if !galois_keys.supports_step(step) {
            return Err(FheError::MissingGaloisKey { step });
        }
        self.stats.rotations += 1;
        let n = a.slots.len();
        let shift = step.rem_euclid(n as i64) as usize;
        let mut slots = vec![0u64; n];
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = a.slots[(i + shift) % n];
        }
        // Payload: Galois automorphism on both components plus key switching
        // (two ring multiplications), roughly half the work of a ct-ct
        // multiplication, matching the relative cost the paper assumes. In
        // Eval form the automorphism is a pure index permutation and the
        // key-switch product is pointwise against the Galois key's
        // pre-transformed payload, so the whole rotation is transform-free.
        let payload = if self.ctx.tables().is_some() && !a.payload.is_empty() {
            let degree = self.ctx.params().payload_degree;
            let threads = self.intra_op_budget(degree);
            // The slot rotation corresponds to the Galois automorphism
            // x -> x^(2*shift + 1) (always odd, as the ring requires). Its
            // Eval-domain permutation depends only on the element, so it is
            // computed once per step and reused for the evaluator's
            // lifetime; each component is then a single fused
            // gather-and-multiply pass.
            let galois_elt = (2 * (shift % degree) + 1) % (2 * degree);
            let perm: &[u32] = self
                .galois_perms
                .entry(galois_elt)
                .or_insert_with(|| galois_eval_permutation(degree, galois_elt));
            let key = galois_keys
                .switch_poly(step)
                .unwrap_or(&a.payload[0])
                .coeffs();
            a.payload
                .iter()
                .map(|p| {
                    debug_assert_eq!(p.domain(), Domain::Eval);
                    let src = p.coeffs();
                    let mut out = vec![0u64; degree];
                    par_chunks(&mut out, threads, |offset, chunk| {
                        for (k, slot) in chunk.iter_mut().enumerate() {
                            let i = offset + k;
                            *slot = p_mul(src[perm[i] as usize], key[i]);
                        }
                    });
                    Poly::from_reduced(out, Domain::Eval)
                })
                .collect()
        } else {
            a.payload.clone()
        };
        Ok(Ciphertext {
            slots,
            payload,
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().rotation_bits,
            key_id: a.key_id,
            level: a.level,
        })
    }

    /// Point-wise payload combination used by additions/subtractions.
    fn payload_pointwise(&self, a: &Ciphertext, b: &Ciphertext, negate_b: bool) -> Vec<Poly> {
        if self.ctx.tables().is_none() || a.payload.is_empty() || b.payload.is_empty() {
            return a.payload.clone();
        }
        a.payload
            .iter()
            .zip(&b.payload)
            .map(|(x, y)| if negate_b { x.sub(y) } else { x.add(y) })
            .collect()
    }

    /// Tensor-product payload work used by ct-ct multiplication.
    ///
    /// All six ring multiplications of the BFV shape (four tensor products,
    /// two key-switch products) run fused and pointwise over Eval-form
    /// operands: per coefficient the degree-2 component `c2 = a1·b1` is a
    /// local scalar, so the whole operation needs no temporary polynomial —
    /// only the two output buffers are allocated.
    fn payload_tensor_product(
        &mut self,
        a: &Ciphertext,
        b: &Ciphertext,
        relin: &RelinKeys,
    ) -> Vec<Poly> {
        if self.ctx.tables().is_none() || a.payload.len() < 2 || b.payload.len() < 2 {
            return a.payload.clone();
        }
        let n = a.payload[0].degree();
        let threads = self.intra_op_budget(n);
        let (a0, a1) = (a.payload[0].coeffs(), a.payload[1].coeffs());
        let (b0, b1) = (b.payload[0].coeffs(), b.payload[1].coeffs());
        // Key-switch multipliers: the relin key's pre-transformed payload
        // pair (fall back to operand components if key material was built
        // without compute simulation).
        let (s0, s1) = match relin.switch_polys() {
            Some((s0, s1)) => (s0.coeffs(), s1.coeffs()),
            None => (a0, b0),
        };
        let mut out0 = vec![0u64; n];
        let mut out1 = vec![0u64; n];
        par_chunks2(&mut out0, &mut out1, threads, |offset, c0, c1| {
            for (k, (o0, o1)) in c0.iter_mut().zip(c1.iter_mut()).enumerate() {
                let i = offset + k;
                let c2 = p_mul(a1[i], b1[i]);
                *o0 = p_mul_add(c2, s0[i], p_mul(a0[i], b0[i]));
                *o1 = p_mul_add(c2, s1[i], p_mul_add(a1[i], b0[i], p_mul(a0[i], b1[i])));
            }
        });
        vec![
            Poly::from_reduced(out0, Domain::Eval),
            Poly::from_reduced(out1, Domain::Eval),
        ]
    }

    /// Multiplies a ciphertext by a scalar constant (implemented as a
    /// plaintext multiplication with a splatted constant).
    ///
    /// The splat of a constant is the constant times the all-ones
    /// polynomial, whose NTT the context precomputes once at build — so the
    /// payload work is two pointwise products with no transform and no
    /// temporary.
    pub fn multiply_scalar(&mut self, a: &Ciphertext, scalar: i64) -> Ciphertext {
        let t = self.ctx.plain_modulus() as i128;
        let reduced = (((scalar as i128) % t + t) % t) as u64;
        self.stats.ct_pt_multiplications += 1;
        let degree = self.ctx.params().payload_degree;
        let threads = if self.ctx.ones_eval().is_some() {
            self.intra_op_budget(degree)
        } else {
            1
        };
        let payload = if let Some(ones) = self.ctx.ones_eval() {
            let k = reduced.max(1);
            let ones = ones.coeffs();
            a.payload
                .iter()
                .map(|p| {
                    let src = p.coeffs();
                    let mut out = vec![0u64; src.len()];
                    par_chunks(&mut out, threads, |offset, chunk| {
                        for (j, slot) in chunk.iter_mut().enumerate() {
                            let i = offset + j;
                            *slot = p_mul(src[i], p_mul(ones[i], k));
                        }
                    });
                    Poly::from_reduced(out, Domain::Eval)
                })
                .collect()
        } else {
            a.payload.clone()
        };
        Ciphertext {
            slots: a
                .slots
                .iter()
                .map(|&x| p_mod_mul(x, reduced, t as u64))
                .collect(),
            payload,
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().ct_pt_mul_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }
}

fn p_mod_mul(a: u64, b: u64, t: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(t)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::BfvParameters;

    struct Fixture {
        ctx: FheContext,
        enc: crate::crypto::Encryptor,
        dec: crate::crypto::Decryptor,
        eval: Evaluator,
        relin: RelinKeys,
        galois: GaloisKeys,
    }

    fn setup() -> Fixture {
        let params = BfvParameters::insecure_test();
        let ctx = FheContext::new(params).unwrap();
        let mut keygen = KeyGenerator::new(ctx.params(), 11);
        let enc = crate::crypto::Encryptor::new(&ctx, &keygen.public_key());
        let dec = crate::crypto::Decryptor::new(&ctx, &keygen.secret_key());
        let eval = Evaluator::new(&ctx);
        let relin = keygen.relin_keys();
        let galois = keygen.default_galois_keys();
        Fixture {
            ctx,
            enc,
            dec,
            eval,
            relin,
            galois,
        }
    }

    #[test]
    fn homomorphic_addition_matches_plain_addition() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1, 2, 3]).unwrap();
        let b = f.enc.encrypt_values(&[10, 20, 30]).unwrap();
        let sum = f.eval.add(&a, &b);
        let pt = f.dec.decrypt(&sum).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![11, 22, 33]);
    }

    #[test]
    fn homomorphic_multiplication_matches_plain_multiplication() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[2, 3, 4]).unwrap();
        let b = f.enc.encrypt_values(&[5, 6, 7]).unwrap();
        let prod = f.eval.multiply(&a, &b, &f.relin);
        let pt = f.dec.decrypt(&prod).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![10, 18, 28]);
        assert_eq!(prod.level(), 1);
    }

    #[test]
    fn subtraction_and_negation_wrap_modulo_t() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1]).unwrap();
        let b = f.enc.encrypt_values(&[3]).unwrap();
        let diff = f.eval.sub(&a, &b);
        let t = f.ctx.plain_modulus();
        assert_eq!(f.dec.decrypt(&diff).unwrap().scalar(), t - 2);
        let neg = f.eval.negate(&a);
        assert_eq!(f.dec.decrypt(&neg).unwrap().scalar(), t - 1);
    }

    #[test]
    fn plaintext_operations_match() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[4, 5]).unwrap();
        let p = f.ctx.encode(&[3, 3]).unwrap();
        assert_eq!(
            f.ctx
                .decode(&f.dec.decrypt(&f.eval.multiply_plain(&a, &p)).unwrap(), 2),
            vec![12, 15]
        );
        assert_eq!(
            f.ctx
                .decode(&f.dec.decrypt(&f.eval.add_plain(&a, &p)).unwrap(), 2),
            vec![7, 8]
        );
        assert_eq!(
            f.ctx
                .decode(&f.dec.decrypt(&f.eval.sub_plain(&a, &p)).unwrap(), 2),
            vec![1, 2]
        );
    }

    #[test]
    fn rotation_moves_slots_towards_slot_zero() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1, 2, 3, 4]).unwrap();
        let rotated = f.eval.rotate(&a, 1, &f.galois).unwrap();
        let pt = f.dec.decrypt(&rotated).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![2, 3, 4]);
        // Rotating by zero is the identity and needs no key.
        let same = f.eval.rotate(&a, 0, &f.galois).unwrap();
        assert_eq!(
            f.ctx.decode(&f.dec.decrypt(&same).unwrap(), 4),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn rotation_by_unsupported_step_fails() {
        let mut f = setup();
        let keygen = &mut KeyGenerator::new(f.ctx.params(), 99);
        let only_one = keygen.galois_keys(&[1]);
        let a = f.enc.encrypt_values(&[1, 2, 3, 4]).unwrap();
        // The ciphertext key differs from `only_one`'s generator, but rotation
        // only consults the step set, which is the compiler-facing constraint.
        assert!(matches!(
            f.eval.rotate(&a, 3, &only_one),
            Err(FheError::MissingGaloisKey { step: 3 })
        ));
    }

    #[test]
    fn rotation_behaves_like_zero_fill_shift_on_live_slots() {
        // With zero padding beyond the live slots, a cyclic rotation equals a
        // zero-fill shift on the live region: the invariant the IR semantics
        // relies on.
        let mut f = setup();
        let a = f.enc.encrypt_values(&[7, 8, 9]).unwrap();
        let rotated = f.eval.rotate(&a, 2, &f.galois).unwrap();
        let pt = f.dec.decrypt(&rotated).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![9, 0, 0]);
    }

    #[test]
    fn noise_budget_decreases_fastest_for_ct_ct_multiplication() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[2]).unwrap();
        let b = f.enc.encrypt_values(&[3]).unwrap();
        let before = f.dec.invariant_noise_budget(&a);
        let after_add = f.dec.invariant_noise_budget(&f.eval.add(&a, &b));
        let after_rot = f
            .dec
            .invariant_noise_budget(&f.eval.rotate(&a, 1, &f.galois).unwrap());
        let after_mul = f
            .dec
            .invariant_noise_budget(&f.eval.multiply(&a, &b, &f.relin));
        assert!(after_add < before);
        assert!(after_mul < after_rot);
        assert!(after_rot < after_add || (after_rot - after_add).abs() < 5.0);
        assert!(
            before - after_mul > 20.0,
            "ct-ct multiplication consumes tens of bits"
        );
    }

    #[test]
    fn deep_multiplication_chains_exhaust_the_budget() {
        let params = BfvParameters::insecure_test();
        let ctx = FheContext::new(params).unwrap();
        let mut keygen = KeyGenerator::new(ctx.params(), 5);
        let mut enc = crate::crypto::Encryptor::new(&ctx, &keygen.public_key());
        let dec = crate::crypto::Decryptor::new(&ctx, &keygen.secret_key());
        let mut eval = Evaluator::new(&ctx);
        let relin = keygen.relin_keys();
        let mut acc = enc.encrypt_values(&[1]).unwrap();
        let x = enc.encrypt_values(&[1]).unwrap();
        // The 120-bit test modulus gives a ~100-bit budget: three levels fit,
        // but a dozen multiplications must exhaust it.
        for _ in 0..12 {
            acc = eval.multiply(&acc, &x, &relin);
        }
        assert!(matches!(
            dec.decrypt(&acc),
            Err(FheError::NoiseBudgetExhausted { .. })
        ));
    }

    #[test]
    fn evaluator_counts_operations() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1, 2]).unwrap();
        let b = f.enc.encrypt_values(&[3, 4]).unwrap();
        let _ = f.eval.add(&a, &b);
        let _ = f.eval.multiply(&a, &b, &f.relin);
        let _ = f.eval.rotate(&a, 1, &f.galois).unwrap();
        let p = f.ctx.encode(&[5, 5]).unwrap();
        let _ = f.eval.multiply_plain(&a, &p);
        let stats = f.eval.stats();
        assert_eq!(stats.additions, 1);
        assert_eq!(stats.ct_ct_multiplications, 1);
        assert_eq!(stats.rotations, 1);
        assert_eq!(stats.ct_pt_multiplications, 1);
        assert_eq!(stats.total(), 4);
        f.eval.reset_stats();
        assert_eq!(f.eval.stats().total(), 0);
    }

    #[test]
    fn square_matches_multiply_by_self() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[9]).unwrap();
        let squared = f.eval.square(&a, &f.relin);
        assert_eq!(f.dec.decrypt(&squared).unwrap().scalar(), 81);
    }
}
