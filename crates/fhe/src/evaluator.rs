//! Homomorphic evaluation: the SEAL-style `Evaluator` API.
//!
//! Every operation updates three facets of a ciphertext:
//!
//! 1. the exact batched slot values (functional correctness),
//! 2. the payload polynomials, using the amount of ring arithmetic the real
//!    BFV operation performs (cost-faithful wall-clock), and
//! 3. the analytic invariant-noise estimate.

use crate::crypto::{Ciphertext, FheContext, FheError, Plaintext};
use crate::keys::{GaloisKeys, RelinKeys};
use crate::poly::Poly;

/// Element-wise slot operations on the plaintext ring.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SlotOp {
    Add,
    Sub,
    Mul,
}

/// Statistics of the homomorphic operations an [`Evaluator`] has executed.
///
/// The counters let harnesses report operation mixes without instrumenting
/// call sites.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvaluatorStats {
    /// Ciphertext–ciphertext additions and subtractions.
    pub additions: usize,
    /// Ciphertext negations.
    pub negations: usize,
    /// Ciphertext–ciphertext multiplications.
    pub ct_ct_multiplications: usize,
    /// Ciphertext–plaintext multiplications.
    pub ct_pt_multiplications: usize,
    /// Slot rotations.
    pub rotations: usize,
}

impl EvaluatorStats {
    /// Total number of homomorphic operations.
    pub fn total(&self) -> usize {
        self.additions
            + self.negations
            + self.ct_ct_multiplications
            + self.ct_pt_multiplications
            + self.rotations
    }

    /// Accumulates another evaluator's counters into this one (used by the
    /// parallel runtime to combine per-worker statistics).
    pub fn merge(&mut self, other: &EvaluatorStats) {
        self.additions += other.additions;
        self.negations += other.negations;
        self.ct_ct_multiplications += other.ct_ct_multiplications;
        self.ct_pt_multiplications += other.ct_pt_multiplications;
        self.rotations += other.rotations;
    }
}

/// Executes homomorphic operations over ciphertexts.
#[derive(Debug)]
pub struct Evaluator {
    ctx: FheContext,
    stats: EvaluatorStats,
}

impl Evaluator {
    /// Creates an evaluator for a context.
    pub fn new(ctx: &FheContext) -> Self {
        Evaluator {
            ctx: ctx.clone(),
            stats: EvaluatorStats::default(),
        }
    }

    /// Counters of the operations executed so far.
    pub fn stats(&self) -> EvaluatorStats {
        self.stats
    }

    /// Resets the operation counters.
    pub fn reset_stats(&mut self) {
        self.stats = EvaluatorStats::default();
    }

    fn slot_binary(&self, a: &[u64], b: &[u64], op: SlotOp) -> Vec<u64> {
        let t = self.ctx.plain_modulus() as u128;
        a.iter()
            .zip(b)
            .map(|(&x, &y)| {
                let (x, y) = (x as u128, y as u128);
                let r = match op {
                    SlotOp::Add => (x + y) % t,
                    SlotOp::Sub => (x + t - (y % t)) % t,
                    SlotOp::Mul => (x * y) % t,
                };
                r as u64
            })
            .collect()
    }

    /// Ciphertext–ciphertext addition.
    pub fn add(&mut self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.stats.additions += 1;
        let payload = self.payload_pointwise(a, b, false);
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Add),
            payload,
            noise_consumed_bits: self.ctx.noise_model().combine(
                a.noise_consumed_bits,
                b.noise_consumed_bits,
                self.ctx.noise_model().add_bits,
            ),
            key_id: a.key_id,
            level: a.level.max(b.level),
        }
    }

    /// Ciphertext–ciphertext subtraction.
    pub fn sub(&mut self, a: &Ciphertext, b: &Ciphertext) -> Ciphertext {
        self.stats.additions += 1;
        let payload = self.payload_pointwise(a, b, false);
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Sub),
            payload,
            noise_consumed_bits: self.ctx.noise_model().combine(
                a.noise_consumed_bits,
                b.noise_consumed_bits,
                self.ctx.noise_model().add_bits,
            ),
            key_id: a.key_id,
            level: a.level.max(b.level),
        }
    }

    /// Ciphertext negation.
    pub fn negate(&mut self, a: &Ciphertext) -> Ciphertext {
        self.stats.negations += 1;
        let t = self.ctx.plain_modulus();
        Ciphertext {
            slots: a.slots.iter().map(|&x| (t - x % t) % t).collect(),
            payload: a.payload.iter().map(Poly::negate).collect(),
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().negate_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Ciphertext–plaintext addition.
    pub fn add_plain(&mut self, a: &Ciphertext, b: &Plaintext) -> Ciphertext {
        self.stats.additions += 1;
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Add),
            payload: a.payload.clone(),
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().add_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Ciphertext–plaintext subtraction (`a - b`).
    pub fn sub_plain(&mut self, a: &Ciphertext, b: &Plaintext) -> Ciphertext {
        self.stats.additions += 1;
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Sub),
            payload: a.payload.clone(),
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().add_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Ciphertext–ciphertext multiplication followed by relinearization.
    ///
    /// The payload work mimics BFV: a tensor product of the two 2-polynomial
    /// ciphertexts (four ring multiplications) followed by a key-switching
    /// step (two more ring multiplications per decomposition digit, collapsed
    /// to two here), which is what makes this the dominant cost.
    pub fn multiply(&mut self, a: &Ciphertext, b: &Ciphertext, _relin: &RelinKeys) -> Ciphertext {
        self.stats.ct_ct_multiplications += 1;
        let payload = self.payload_tensor_product(a, b);
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Mul),
            payload,
            noise_consumed_bits: self.ctx.noise_model().combine(
                a.noise_consumed_bits,
                b.noise_consumed_bits,
                self.ctx.noise_model().ct_ct_mul_bits,
            ),
            key_id: a.key_id,
            level: a.level.max(b.level) + 1,
        }
    }

    /// Ciphertext squaring (a slightly cheaper ct-ct multiplication).
    pub fn square(&mut self, a: &Ciphertext, relin: &RelinKeys) -> Ciphertext {
        self.multiply(a, &a.clone(), relin)
    }

    /// Ciphertext–plaintext multiplication.
    pub fn multiply_plain(&mut self, a: &Ciphertext, b: &Plaintext) -> Ciphertext {
        self.stats.ct_pt_multiplications += 1;
        let payload = if let Some(tables) = self.ctx.tables() {
            // The plaintext polynomial is multiplied into both ciphertext
            // components: two ring multiplications.
            let degree = self.ctx.params().payload_degree;
            let pt_poly = Poly::from_coeffs(
                b.slots
                    .iter()
                    .cycle()
                    .take(degree)
                    .map(|&s| s.wrapping_mul(0x9E37_79B9))
                    .collect(),
            );
            a.payload
                .iter()
                .map(|p| p.mul_ntt(&pt_poly, tables))
                .collect()
        } else {
            a.payload.clone()
        };
        Ciphertext {
            slots: self.slot_binary(&a.slots, &b.slots, SlotOp::Mul),
            payload,
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().ct_pt_mul_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }

    /// Rotates the batched slots cyclically by `step` positions (positive
    /// steps rotate towards slot 0, i.e. the paper's `<<`).
    ///
    /// # Errors
    ///
    /// Returns [`FheError::MissingGaloisKey`] if `galois_keys` has no key for
    /// `step`.
    pub fn rotate(
        &mut self,
        a: &Ciphertext,
        step: i64,
        galois_keys: &GaloisKeys,
    ) -> Result<Ciphertext, FheError> {
        if step == 0 {
            return Ok(a.clone());
        }
        if !galois_keys.supports_step(step) {
            return Err(FheError::MissingGaloisKey { step });
        }
        self.stats.rotations += 1;
        let n = a.slots.len();
        let shift = step.rem_euclid(n as i64) as usize;
        let mut slots = vec![0u64; n];
        for (i, slot) in slots.iter_mut().enumerate() {
            *slot = a.slots[(i + shift) % n];
        }
        // Payload: Galois automorphism on both components plus key switching
        // (two ring multiplications), roughly half the work of a ct-ct
        // multiplication, matching the relative cost the paper assumes.
        let payload = if let Some(tables) = self.ctx.tables() {
            let degree = self.ctx.params().payload_degree;
            // The slot rotation corresponds to the Galois automorphism
            // x -> x^(2*shift + 1) (always odd, as the ring requires).
            let galois_elt = (2 * (shift % degree) + 1) % (2 * degree);
            a.payload
                .iter()
                .map(|p| p.apply_galois(galois_elt).mul_ntt(&a.payload[0], tables))
                .collect()
        } else {
            a.payload.clone()
        };
        Ok(Ciphertext {
            slots,
            payload,
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().rotation_bits,
            key_id: a.key_id,
            level: a.level,
        })
    }

    /// Point-wise payload combination used by additions/subtractions.
    fn payload_pointwise(&self, a: &Ciphertext, b: &Ciphertext, negate_b: bool) -> Vec<Poly> {
        if self.ctx.tables().is_none() || a.payload.is_empty() || b.payload.is_empty() {
            return a.payload.clone();
        }
        a.payload
            .iter()
            .zip(&b.payload)
            .map(|(x, y)| if negate_b { x.sub(y) } else { x.add(y) })
            .collect()
    }

    /// Tensor-product payload work used by ct-ct multiplication.
    fn payload_tensor_product(&self, a: &Ciphertext, b: &Ciphertext) -> Vec<Poly> {
        let Some(tables) = self.ctx.tables() else {
            return a.payload.clone();
        };
        if a.payload.len() < 2 || b.payload.len() < 2 {
            return a.payload.clone();
        }
        // Tensor product: (a0, a1) x (b0, b1) -> four ring multiplications.
        let c0 = a.payload[0].mul_ntt(&b.payload[0], tables);
        let c1a = a.payload[0].mul_ntt(&b.payload[1], tables);
        let c1b = a.payload[1].mul_ntt(&b.payload[0], tables);
        let c2 = a.payload[1].mul_ntt(&b.payload[1], tables);
        let c1 = c1a.add(&c1b);
        // Relinearization / key switching: two more ring multiplications fold
        // the degree-2 component back into a 2-polynomial ciphertext.
        let k0 = c2.mul_ntt(&a.payload[0], tables);
        let k1 = c2.mul_ntt(&b.payload[0], tables);
        vec![c0.add(&k0), c1.add(&k1)]
    }

    /// Multiplies a ciphertext by a scalar constant (implemented as a
    /// plaintext multiplication with a splatted constant).
    pub fn multiply_scalar(&mut self, a: &Ciphertext, scalar: i64) -> Ciphertext {
        let t = self.ctx.plain_modulus() as i128;
        let reduced = (((scalar as i128) % t + t) % t) as u64;
        self.stats.ct_pt_multiplications += 1;
        let payload = if let Some(tables) = self.ctx.tables() {
            let degree = self.ctx.params().payload_degree;
            let splat = Poly::from_coeffs(vec![reduced.max(1); degree]);
            a.payload
                .iter()
                .map(|p| p.mul_ntt(&splat, tables))
                .collect()
        } else {
            a.payload.clone()
        };
        Ciphertext {
            slots: a
                .slots
                .iter()
                .map(|&x| p_mod_mul(x, reduced, t as u64))
                .collect(),
            payload,
            noise_consumed_bits: a.noise_consumed_bits + self.ctx.noise_model().ct_pt_mul_bits,
            key_id: a.key_id,
            level: a.level,
        }
    }
}

fn p_mod_mul(a: u64, b: u64, t: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(t)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::keys::KeyGenerator;
    use crate::params::BfvParameters;

    struct Fixture {
        ctx: FheContext,
        enc: crate::crypto::Encryptor,
        dec: crate::crypto::Decryptor,
        eval: Evaluator,
        relin: RelinKeys,
        galois: GaloisKeys,
    }

    fn setup() -> Fixture {
        let params = BfvParameters::insecure_test();
        let ctx = FheContext::new(params).unwrap();
        let mut keygen = KeyGenerator::new(ctx.params(), 11);
        let enc = crate::crypto::Encryptor::new(&ctx, &keygen.public_key());
        let dec = crate::crypto::Decryptor::new(&ctx, &keygen.secret_key());
        let eval = Evaluator::new(&ctx);
        let relin = keygen.relin_keys();
        let galois = keygen.default_galois_keys();
        Fixture {
            ctx,
            enc,
            dec,
            eval,
            relin,
            galois,
        }
    }

    #[test]
    fn homomorphic_addition_matches_plain_addition() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1, 2, 3]).unwrap();
        let b = f.enc.encrypt_values(&[10, 20, 30]).unwrap();
        let sum = f.eval.add(&a, &b);
        let pt = f.dec.decrypt(&sum).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![11, 22, 33]);
    }

    #[test]
    fn homomorphic_multiplication_matches_plain_multiplication() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[2, 3, 4]).unwrap();
        let b = f.enc.encrypt_values(&[5, 6, 7]).unwrap();
        let prod = f.eval.multiply(&a, &b, &f.relin);
        let pt = f.dec.decrypt(&prod).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![10, 18, 28]);
        assert_eq!(prod.level(), 1);
    }

    #[test]
    fn subtraction_and_negation_wrap_modulo_t() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1]).unwrap();
        let b = f.enc.encrypt_values(&[3]).unwrap();
        let diff = f.eval.sub(&a, &b);
        let t = f.ctx.plain_modulus();
        assert_eq!(f.dec.decrypt(&diff).unwrap().scalar(), t - 2);
        let neg = f.eval.negate(&a);
        assert_eq!(f.dec.decrypt(&neg).unwrap().scalar(), t - 1);
    }

    #[test]
    fn plaintext_operations_match() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[4, 5]).unwrap();
        let p = f.ctx.encode(&[3, 3]).unwrap();
        assert_eq!(
            f.ctx
                .decode(&f.dec.decrypt(&f.eval.multiply_plain(&a, &p)).unwrap(), 2),
            vec![12, 15]
        );
        assert_eq!(
            f.ctx
                .decode(&f.dec.decrypt(&f.eval.add_plain(&a, &p)).unwrap(), 2),
            vec![7, 8]
        );
        assert_eq!(
            f.ctx
                .decode(&f.dec.decrypt(&f.eval.sub_plain(&a, &p)).unwrap(), 2),
            vec![1, 2]
        );
    }

    #[test]
    fn rotation_moves_slots_towards_slot_zero() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1, 2, 3, 4]).unwrap();
        let rotated = f.eval.rotate(&a, 1, &f.galois).unwrap();
        let pt = f.dec.decrypt(&rotated).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![2, 3, 4]);
        // Rotating by zero is the identity and needs no key.
        let same = f.eval.rotate(&a, 0, &f.galois).unwrap();
        assert_eq!(
            f.ctx.decode(&f.dec.decrypt(&same).unwrap(), 4),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn rotation_by_unsupported_step_fails() {
        let mut f = setup();
        let keygen = &mut KeyGenerator::new(f.ctx.params(), 99);
        let only_one = keygen.galois_keys(&[1]);
        let a = f.enc.encrypt_values(&[1, 2, 3, 4]).unwrap();
        // The ciphertext key differs from `only_one`'s generator, but rotation
        // only consults the step set, which is the compiler-facing constraint.
        assert!(matches!(
            f.eval.rotate(&a, 3, &only_one),
            Err(FheError::MissingGaloisKey { step: 3 })
        ));
    }

    #[test]
    fn rotation_behaves_like_zero_fill_shift_on_live_slots() {
        // With zero padding beyond the live slots, a cyclic rotation equals a
        // zero-fill shift on the live region: the invariant the IR semantics
        // relies on.
        let mut f = setup();
        let a = f.enc.encrypt_values(&[7, 8, 9]).unwrap();
        let rotated = f.eval.rotate(&a, 2, &f.galois).unwrap();
        let pt = f.dec.decrypt(&rotated).unwrap();
        assert_eq!(f.ctx.decode(&pt, 3), vec![9, 0, 0]);
    }

    #[test]
    fn noise_budget_decreases_fastest_for_ct_ct_multiplication() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[2]).unwrap();
        let b = f.enc.encrypt_values(&[3]).unwrap();
        let before = f.dec.invariant_noise_budget(&a);
        let after_add = f.dec.invariant_noise_budget(&f.eval.add(&a, &b));
        let after_rot = f
            .dec
            .invariant_noise_budget(&f.eval.rotate(&a, 1, &f.galois).unwrap());
        let after_mul = f
            .dec
            .invariant_noise_budget(&f.eval.multiply(&a, &b, &f.relin));
        assert!(after_add < before);
        assert!(after_mul < after_rot);
        assert!(after_rot < after_add || (after_rot - after_add).abs() < 5.0);
        assert!(
            before - after_mul > 20.0,
            "ct-ct multiplication consumes tens of bits"
        );
    }

    #[test]
    fn deep_multiplication_chains_exhaust_the_budget() {
        let params = BfvParameters::insecure_test();
        let ctx = FheContext::new(params).unwrap();
        let mut keygen = KeyGenerator::new(ctx.params(), 5);
        let mut enc = crate::crypto::Encryptor::new(&ctx, &keygen.public_key());
        let dec = crate::crypto::Decryptor::new(&ctx, &keygen.secret_key());
        let mut eval = Evaluator::new(&ctx);
        let relin = keygen.relin_keys();
        let mut acc = enc.encrypt_values(&[1]).unwrap();
        let x = enc.encrypt_values(&[1]).unwrap();
        // The 120-bit test modulus gives a ~100-bit budget: three levels fit,
        // but a dozen multiplications must exhaust it.
        for _ in 0..12 {
            acc = eval.multiply(&acc, &x, &relin);
        }
        assert!(matches!(
            dec.decrypt(&acc),
            Err(FheError::NoiseBudgetExhausted { .. })
        ));
    }

    #[test]
    fn evaluator_counts_operations() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[1, 2]).unwrap();
        let b = f.enc.encrypt_values(&[3, 4]).unwrap();
        let _ = f.eval.add(&a, &b);
        let _ = f.eval.multiply(&a, &b, &f.relin);
        let _ = f.eval.rotate(&a, 1, &f.galois).unwrap();
        let p = f.ctx.encode(&[5, 5]).unwrap();
        let _ = f.eval.multiply_plain(&a, &p);
        let stats = f.eval.stats();
        assert_eq!(stats.additions, 1);
        assert_eq!(stats.ct_ct_multiplications, 1);
        assert_eq!(stats.rotations, 1);
        assert_eq!(stats.ct_pt_multiplications, 1);
        assert_eq!(stats.total(), 4);
        f.eval.reset_stats();
        assert_eq!(f.eval.stats().total(), 0);
    }

    #[test]
    fn square_matches_multiply_by_self() {
        let mut f = setup();
        let a = f.enc.encrypt_values(&[9]).unwrap();
        let squared = f.eval.square(&a, &f.relin);
        assert_eq!(f.dec.decrypt(&squared).unwrap().scalar(), 81);
    }
}
