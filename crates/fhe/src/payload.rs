//! The striped ciphertext payload layout and its fused dual-component
//! kernels.
//!
//! A BFV ciphertext carries two payload polynomials `(c0, c1)`. Storing them
//! as two separate heap vectors (the pre-stripe layout) makes every
//! pointwise operation walk the same auxiliary data (plaintext splats,
//! key-switch polynomials, Galois permutations) twice — once per component —
//! and costs two output allocations per operation. A [`CtPayload`] instead
//! stores both components in **one contiguous stripe**, tagged with the
//! [`Domain`] the values are in, and the fused kernels below update both
//! components in a single pass:
//!
//! - [`CtPayload::mul_eval2`] — both components times one shared pointwise
//!   multiplier (ciphertext–plaintext products),
//! - [`CtPayload::mul_scalar_eval2`] — the scalar-splat variant,
//! - [`CtPayload::mul_add_eval2`] — the full BFV ct-ct tensor product plus
//!   relinearization (six ring products per coefficient, fused),
//! - [`CtPayload::galois_eval2`] — Galois gather plus key-switch product,
//! - [`CtPayload::add2`] / [`CtPayload::sub2`] / [`CtPayload::neg2`] and
//!   their `_assign` variants — component-wise ring addition as one stripe
//!   pass.
//!
//! # RNS limb stripes
//!
//! Under a `k`-limb [`ModulusChain`] the stripe
//! generalizes to `[c0_q0 | c0_q1 | … | c0_q(k-1) | c1_q0 | … | c1_q(k-1)]`
//! — each component half carries `k` consecutive *limb stripes* of `degree`
//! values, one per chain prime, `2·k·degree` values in all. Every kernel
//! walks the limbs in lockstep by splitting each intra-op chunk at limb
//! boundaries: segments of limb 0 run the existing Goldilocks ε-identity
//! SIMD kernels **verbatim** (which is what makes `k = 1` bit-identical to
//! the single-modulus engine — the walk degenerates to exactly one segment
//! per chunk), and segments of limbs `1..k` run the Barrett kernels of
//! [`crate::rns`] under the same [`SimdPolicy`] dispatch.
//!
//! Because `par_chunks2` chunks the `k·degree` component halves, the
//! intra-op split is limb-first by construction: with `k` limbs and up to
//! `k` worker threads each chunk is one whole limb stripe, and only finer
//! grants split within a limb's coefficient range.
//!
//! All kernels write into caller-provided stripe buffers (typically from a
//! [`PolyArena`](crate::PolyArena)) and walk the two component halves in
//! lockstep, so the shared per-coefficient operands (multiplier, key,
//! permutation entry, the `c2` tensor scalar) are loaded once instead of
//! once per component. Every kernel is elementwise, so intra-op chunking is
//! bit-identical at every thread count.

use crate::poly::Domain;
use crate::rns::{self, ModulusChain};
use crate::simd::{self, SimdPolicy};
use std::ops::Range;

/// Stripes shorter than this never split across intra-op worker threads:
/// below it, thread-spawn latency exceeds the chunk work a helper would take
/// over. (Shared with the evaluator's intra-op budget logic.)
pub(crate) const INTRA_OP_MIN: usize = 2048;

/// Runs `body(offset, chunk0, chunk1)` over disjoint lockstep chunks of the
/// two output slices (the fused kernels pass the two component halves of a
/// stripe), using up to `threads` scoped worker threads — the calling
/// thread takes the first chunk. Sequential when the budget is 1 or the
/// slices are small.
pub(crate) fn par_chunks2(
    out0: &mut [u64],
    out1: &mut [u64],
    threads: usize,
    body: impl Fn(usize, &mut [u64], &mut [u64]) + Send + Sync + Copy,
) {
    let n = out0.len();
    debug_assert_eq!(n, out1.len());
    if threads <= 1 || n < INTRA_OP_MIN {
        body(0, out0, out1);
        return;
    }
    let chunk = n.div_ceil(threads);
    std::thread::scope(|scope| {
        let mut chunks = out0
            .chunks_mut(chunk)
            .zip(out1.chunks_mut(chunk))
            .enumerate();
        let first = chunks.next();
        for (i, (c0, c1)) in chunks {
            scope.spawn(move || body(i * chunk, c0, c1));
        }
        if let Some((_, (c0, c1))) = first {
            body(0, c0, c1);
        }
    });
}

/// Calls `f(limb_index, segment)` for every maximal sub-range of
/// `start..end` (absolute positions within a `k·degree` component half)
/// that stays inside one limb stripe of `degree` values. With one limb the
/// walk degenerates to a single call covering the whole range.
fn for_limb_segments(
    start: usize,
    end: usize,
    degree: usize,
    mut f: impl FnMut(usize, Range<usize>),
) {
    let mut pos = start;
    while pos < end {
        let limb = pos / degree;
        let seg_end = end.min((limb + 1) * degree);
        f(limb, pos..seg_end);
        pos = seg_end;
    }
}

/// Both payload components of one ciphertext in a single contiguous stripe
/// `[c0 | c1]` — under `k` RNS limbs, `[c0_q0 | … | c0_q(k-1) | c1_q0 | …
/// | c1_q(k-1)]` — tagged with the [`Domain`] the stored values are in.
///
/// The stripe is either empty (compute simulation off) or exactly
/// `2 · limbs · degree` values long, `degree` a power of two. Construction
/// from an arbitrary buffer goes through [`CtPayload::from_stripe`]
/// (single-limb) or [`CtPayload::from_limb_stripe`]; the fused kernels are
/// documented on the type's methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtPayload {
    data: Vec<u64>,
    domain: Domain,
    limbs: usize,
}

impl CtPayload {
    /// The empty payload (compute simulation off).
    pub fn empty() -> Self {
        CtPayload {
            data: Vec::new(),
            domain: Domain::Eval,
            limbs: 1,
        }
    }

    /// A process-shared empty payload, so ciphertexts built with compute
    /// simulation off share one allocation instead of boxing a fresh empty
    /// payload each.
    pub fn shared_empty() -> std::sync::Arc<CtPayload> {
        static EMPTY: std::sync::OnceLock<std::sync::Arc<CtPayload>> = std::sync::OnceLock::new();
        std::sync::Arc::clone(EMPTY.get_or_init(|| std::sync::Arc::new(CtPayload::empty())))
    }

    /// Wraps a single-limb `[c0 | c1]` stripe buffer. `data.len()` must be
    /// `2 * degree` for a power-of-two `degree` (or zero for the empty
    /// payload); the values must already be canonical representatives
    /// modulo `p`.
    ///
    /// # Panics
    ///
    /// Panics if the length is not zero or twice a power of two.
    pub fn from_stripe(data: Vec<u64>, domain: Domain) -> Self {
        assert!(
            data.is_empty() || (data.len().is_multiple_of(2) && (data.len() / 2).is_power_of_two()),
            "stripe length must be twice a power-of-two degree"
        );
        CtPayload {
            data,
            domain,
            limbs: 1,
        }
    }

    /// Wraps a `k`-limb stripe buffer of `2 · limbs · degree` values laid
    /// out `[c0_q0 | … | c0_q(k-1) | c1_q0 | … | c1_q(k-1)]`. Each limb
    /// stripe's values must be canonical residues of that limb's prime.
    ///
    /// # Panics
    ///
    /// Panics if `limbs` is zero or the length is not zero or
    /// `2 · limbs` times a power of two.
    pub fn from_limb_stripe(data: Vec<u64>, limbs: usize, domain: Domain) -> Self {
        assert!(limbs >= 1, "a payload carries at least one limb");
        assert!(
            data.is_empty()
                || (data.len().is_multiple_of(2 * limbs)
                    && (data.len() / (2 * limbs)).is_power_of_two()),
            "stripe length must be 2*limbs times a power-of-two degree"
        );
        CtPayload {
            data,
            domain,
            limbs,
        }
    }

    /// Builds a single-limb stripe from two equal-length component slices
    /// (convenience for tests and for converting split-layout material).
    pub fn from_components(c0: &[u64], c1: &[u64], domain: Domain) -> Self {
        CtPayload::from_limb_components(c0, c1, 1, domain)
    }

    /// Builds a `k`-limb stripe from two equal-length component halves of
    /// `limbs · degree` values each.
    pub fn from_limb_components(c0: &[u64], c1: &[u64], limbs: usize, domain: Domain) -> Self {
        assert_eq!(c0.len(), c1.len(), "components must have equal degree");
        let mut data = Vec::with_capacity(2 * c0.len());
        data.extend_from_slice(c0);
        data.extend_from_slice(c1);
        CtPayload::from_limb_stripe(data, limbs, domain)
    }

    /// `true` for the empty payload (compute simulation off).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The payload polynomial degree per limb (`0` for the empty payload).
    pub fn degree(&self) -> usize {
        self.data.len() / (2 * self.limbs)
    }

    /// Number of RNS limb stripes each component carries.
    pub fn limbs(&self) -> usize {
        self.limbs
    }

    /// The domain the stored values are in.
    pub fn domain(&self) -> Domain {
        self.domain
    }

    /// The whole stripe (both components, all limbs).
    pub fn stripe(&self) -> &[u64] {
        &self.data
    }

    /// The first payload component (`limbs · degree` values).
    pub fn c0(&self) -> &[u64] {
        &self.data[..self.data.len() / 2]
    }

    /// The second payload component (`limbs · degree` values).
    pub fn c1(&self) -> &[u64] {
        &self.data[self.data.len() / 2..]
    }

    /// Mutable views of both components (disjoint halves of the stripe).
    pub fn split_mut(&mut self) -> (&mut [u64], &mut [u64]) {
        let half = self.data.len() / 2;
        self.data.split_at_mut(half)
    }

    /// Unwraps the stripe buffer (for recycling into a
    /// [`PolyArena`](crate::PolyArena)).
    pub fn into_stripe(self) -> Vec<u64> {
        self.data
    }

    /// Fused ciphertext–plaintext product: both components multiply the
    /// shared `mult` vector (a full `limbs · degree` multiplier) in one
    /// lockstep pass (`out.c0[j] = c0[j] * mult[j]`, `out.c1[j] = c1[j] *
    /// mult[j]`, each limb segment reduced by its own prime), so `mult` is
    /// read once per coefficient instead of once per component. `out` must
    /// be a stripe buffer of `self`'s length; `threads` bounds the intra-op
    /// chunking (bit-identical at every value).
    pub fn mul_eval2(
        &self,
        mult: &[u64],
        out: &mut [u64],
        threads: usize,
        policy: SimdPolicy,
        chain: &ModulusChain,
    ) {
        let half = self.data.len() / 2;
        debug_assert!(mult.len() >= half);
        debug_assert_eq!(out.len(), self.data.len());
        let degree = self.degree();
        let (a0, a1) = (self.c0(), self.c1());
        let (out0, out1) = out.split_at_mut(half);
        par_chunks2(out0, out1, threads, |offset, c0, c1| {
            for_limb_segments(offset, offset + c0.len(), degree, |li, r| {
                let w = (r.start - offset)..(r.end - offset);
                let limb = chain.limb(li);
                if limb.is_goldilocks() {
                    simd::mul2_chunk(
                        &a0[r.clone()],
                        &a1[r.clone()],
                        &mult[r],
                        &mut c0[w.clone()],
                        &mut c1[w],
                        policy,
                    );
                } else {
                    simd::mul2_chunk_q(
                        &a0[r.clone()],
                        &a1[r.clone()],
                        &mult[r],
                        &mut c0[w.clone()],
                        &mut c1[w],
                        limb.modulus(),
                        limb.mu(),
                        policy,
                    );
                }
            });
        });
    }

    /// Fused scalar-splat product: like [`CtPayload::mul_eval2`] with the
    /// shared multiplier scaled by `k` on the fly (`mult[j] * k` computed
    /// once per coefficient, shared by both components), so no scaled-splat
    /// temporary is ever materialized. On generic limbs `k` is first
    /// reduced into the limb's residue field.
    pub fn mul_scalar_eval2(
        &self,
        mult: &[u64],
        k: u64,
        out: &mut [u64],
        threads: usize,
        policy: SimdPolicy,
        chain: &ModulusChain,
    ) {
        let half = self.data.len() / 2;
        debug_assert!(mult.len() >= half);
        debug_assert_eq!(out.len(), self.data.len());
        let degree = self.degree();
        let (a0, a1) = (self.c0(), self.c1());
        let (out0, out1) = out.split_at_mut(half);
        par_chunks2(out0, out1, threads, |offset, c0, c1| {
            for_limb_segments(offset, offset + c0.len(), degree, |li, r| {
                let w = (r.start - offset)..(r.end - offset);
                let limb = chain.limb(li);
                if limb.is_goldilocks() {
                    simd::mul_scalar2_chunk(
                        &a0[r.clone()],
                        &a1[r.clone()],
                        &mult[r],
                        k,
                        &mut c0[w.clone()],
                        &mut c1[w],
                        policy,
                    );
                } else {
                    rns::mul_scalar2_chunk_q(
                        &a0[r.clone()],
                        &a1[r.clone()],
                        &mult[r],
                        k % limb.modulus(),
                        &mut c0[w.clone()],
                        &mut c1[w],
                        limb.modulus(),
                        limb.mu(),
                    );
                }
            });
        });
    }

    /// The fused BFV ct-ct multiplication payload: tensor product of `(a0,
    /// a1)` and `(b0, b1)` plus key switching against the Eval-form pair
    /// `(s0, s1)`, all six ring products per coefficient in one pass:
    ///
    /// ```text
    /// c2      = a1·b1                      (per-coefficient scalar)
    /// out.c0  = a0·b0 + c2·s0
    /// out.c1  = a0·b1 + a1·b0 + c2·s1
    /// ```
    ///
    /// Both output components are written in lockstep (the two halves of the
    /// `out` stripe), each limb segment under its own prime, so chunking
    /// across `threads` workers never reorders a reduction.
    #[allow(clippy::too_many_arguments)]
    pub fn mul_add_eval2(
        &self,
        other: &CtPayload,
        s0: &[u64],
        s1: &[u64],
        out: &mut [u64],
        threads: usize,
        policy: SimdPolicy,
        chain: &ModulusChain,
    ) {
        let half = self.data.len() / 2;
        debug_assert_eq!(other.data.len(), self.data.len());
        debug_assert_eq!(s0.len(), half);
        debug_assert_eq!(s1.len(), half);
        debug_assert_eq!(out.len(), self.data.len());
        let degree = self.degree();
        let (a0, a1) = (self.c0(), self.c1());
        let (b0, b1) = (other.c0(), other.c1());
        let (out0, out1) = out.split_at_mut(half);
        par_chunks2(out0, out1, threads, |offset, c0, c1| {
            for_limb_segments(offset, offset + c0.len(), degree, |li, r| {
                let w = (r.start - offset)..(r.end - offset);
                let limb = chain.limb(li);
                if limb.is_goldilocks() {
                    simd::mul_add2_chunk(
                        &a0[r.clone()],
                        &a1[r.clone()],
                        &b0[r.clone()],
                        &b1[r.clone()],
                        &s0[r.clone()],
                        &s1[r],
                        &mut c0[w.clone()],
                        &mut c1[w],
                        policy,
                    );
                } else {
                    rns::mul_add2_chunk_q(
                        &a0[r.clone()],
                        &a1[r.clone()],
                        &b0[r.clone()],
                        &b1[r.clone()],
                        &s0[r.clone()],
                        &s1[r],
                        &mut c0[w.clone()],
                        &mut c1[w],
                        limb.modulus(),
                        limb.mu(),
                    );
                }
            });
        });
    }

    /// Fused rotation payload: Galois gather (`perm`, an Eval-domain index
    /// permutation over one limb's `degree` positions, applied within each
    /// limb stripe) and key-switch product (`key`, a full `limbs · degree`
    /// multiplier) applied to both components in one pass.
    ///
    /// # Panics
    ///
    /// Debug builds panic unless the payload is in [`Domain::Eval`] (the
    /// permutation form of the automorphism only exists there).
    pub fn galois_eval2(
        &self,
        perm: &[u32],
        key: &[u64],
        out: &mut [u64],
        threads: usize,
        policy: SimdPolicy,
        chain: &ModulusChain,
    ) {
        debug_assert_eq!(self.domain, Domain::Eval, "galois_eval2 needs Eval form");
        let half = self.data.len() / 2;
        let degree = self.degree();
        debug_assert_eq!(perm.len(), degree);
        debug_assert_eq!(key.len(), half);
        debug_assert_eq!(out.len(), self.data.len());
        let (a0, a1) = (self.c0(), self.c1());
        let (out0, out1) = out.split_at_mut(half);
        par_chunks2(out0, out1, threads, |offset, c0, c1| {
            for_limb_segments(offset, offset + c0.len(), degree, |li, r| {
                let base = li * degree;
                let w = (r.start - offset)..(r.end - offset);
                let p = &perm[(r.start - base)..(r.end - base)];
                let k = &key[r.clone()];
                let (s0, s1) = (&a0[base..base + degree], &a1[base..base + degree]);
                let limb = chain.limb(li);
                if limb.is_goldilocks() {
                    simd::galois2_chunk(s0, s1, p, k, &mut c0[w.clone()], &mut c1[w], policy);
                } else {
                    rns::galois2_chunk_q(
                        s0,
                        s1,
                        p,
                        k,
                        &mut c0[w.clone()],
                        &mut c1[w],
                        limb.modulus(),
                        limb.mu(),
                    );
                }
            });
        });
    }

    /// Component-wise payload addition as one stripe pass:
    /// `out[j] = self[j] + other[j]`, each limb under its own prime.
    pub fn add2(
        &self,
        other: &CtPayload,
        out: &mut [u64],
        policy: SimdPolicy,
        chain: &ModulusChain,
    ) {
        debug_assert_eq!(self.data.len(), other.data.len());
        debug_assert_eq!(self.domain, other.domain, "domain mismatch in add2");
        debug_assert_eq!(out.len(), self.data.len());
        if self.limbs == 1 {
            simd::add_stripe(&self.data, &other.data, out, policy);
            return;
        }
        let degree = self.degree();
        for_limb_segments(0, self.data.len(), degree, |si, r| {
            let limb = chain.limb(si % self.limbs);
            if limb.is_goldilocks() {
                simd::add_stripe(
                    &self.data[r.clone()],
                    &other.data[r.clone()],
                    &mut out[r],
                    policy,
                );
            } else {
                rns::add_chunk_q(
                    &self.data[r.clone()],
                    &other.data[r.clone()],
                    &mut out[r],
                    limb.modulus(),
                );
            }
        });
    }

    /// Component-wise payload subtraction as one stripe pass:
    /// `out[j] = self[j] - other[j]`, each limb under its own prime.
    pub fn sub2(
        &self,
        other: &CtPayload,
        out: &mut [u64],
        policy: SimdPolicy,
        chain: &ModulusChain,
    ) {
        debug_assert_eq!(self.data.len(), other.data.len());
        debug_assert_eq!(self.domain, other.domain, "domain mismatch in sub2");
        debug_assert_eq!(out.len(), self.data.len());
        if self.limbs == 1 {
            simd::sub_stripe(&self.data, &other.data, out, policy);
            return;
        }
        let degree = self.degree();
        for_limb_segments(0, self.data.len(), degree, |si, r| {
            let limb = chain.limb(si % self.limbs);
            if limb.is_goldilocks() {
                simd::sub_stripe(
                    &self.data[r.clone()],
                    &other.data[r.clone()],
                    &mut out[r],
                    policy,
                );
            } else {
                rns::sub_chunk_q(
                    &self.data[r.clone()],
                    &other.data[r.clone()],
                    &mut out[r],
                    limb.modulus(),
                );
            }
        });
    }

    /// Component-wise payload negation as one stripe pass:
    /// `out[j] = -self[j]`, each limb under its own prime.
    pub fn neg2(&self, out: &mut [u64], policy: SimdPolicy, chain: &ModulusChain) {
        debug_assert_eq!(out.len(), self.data.len());
        if self.limbs == 1 {
            simd::neg_stripe(&self.data, out, policy);
            return;
        }
        let degree = self.degree();
        for_limb_segments(0, self.data.len(), degree, |si, r| {
            let limb = chain.limb(si % self.limbs);
            if limb.is_goldilocks() {
                simd::neg_stripe(&self.data[r.clone()], &mut out[r], policy);
            } else {
                rns::neg_chunk_q(&self.data[r.clone()], &mut out[r], limb.modulus());
            }
        });
    }

    /// In-place variant of [`CtPayload::add2`].
    pub fn add_assign2(&mut self, other: &CtPayload, policy: SimdPolicy, chain: &ModulusChain) {
        debug_assert_eq!(self.data.len(), other.data.len());
        debug_assert_eq!(self.domain, other.domain, "domain mismatch in add_assign2");
        if self.limbs == 1 {
            simd::add_stripe_assign(&mut self.data, &other.data, policy);
            return;
        }
        let degree = self.degree();
        let limbs = self.limbs;
        for_limb_segments(0, self.data.len(), degree, |si, r| {
            let limb = chain.limb(si % limbs);
            if limb.is_goldilocks() {
                simd::add_stripe_assign(&mut self.data[r.clone()], &other.data[r], policy);
            } else {
                rns::add_chunk_q_assign(&mut self.data[r.clone()], &other.data[r], limb.modulus());
            }
        });
    }

    /// In-place variant of [`CtPayload::sub2`].
    pub fn sub_assign2(&mut self, other: &CtPayload, policy: SimdPolicy, chain: &ModulusChain) {
        debug_assert_eq!(self.data.len(), other.data.len());
        debug_assert_eq!(self.domain, other.domain, "domain mismatch in sub_assign2");
        if self.limbs == 1 {
            simd::sub_stripe_assign(&mut self.data, &other.data, policy);
            return;
        }
        let degree = self.degree();
        let limbs = self.limbs;
        for_limb_segments(0, self.data.len(), degree, |si, r| {
            let limb = chain.limb(si % limbs);
            if limb.is_goldilocks() {
                simd::sub_stripe_assign(&mut self.data[r.clone()], &other.data[r], policy);
            } else {
                rns::sub_chunk_q_assign(&mut self.data[r.clone()], &other.data[r], limb.modulus());
            }
        });
    }

    /// In-place variant of [`CtPayload::neg2`].
    pub fn neg_assign2(&mut self, policy: SimdPolicy, chain: &ModulusChain) {
        if self.limbs == 1 {
            simd::neg_stripe_assign(&mut self.data, policy);
            return;
        }
        let degree = self.degree();
        let limbs = self.limbs;
        for_limb_segments(0, self.data.len(), degree, |si, r| {
            let limb = chain.limb(si % limbs);
            if limb.is_goldilocks() {
                simd::neg_stripe_assign(&mut self.data[r], policy);
            } else {
                rns::neg_chunk_q_assign(&mut self.data[r], limb.modulus());
            }
        });
    }
}

/// Serializes as `{"domain": "Coeff"|"Eval", "limbs": k, "stripe": [...]}`
/// (the flat multi-limb buffer).
impl serde::Serialize for CtPayload {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let domain = match self.domain {
            Domain::Coeff => "Coeff",
            Domain::Eval => "Eval",
        };
        serializer.serialize_value(serde::Value::Object(vec![
            ("domain".to_string(), serde::Value::Str(domain.to_string())),
            ("limbs".to_string(), serde::Value::UInt(self.limbs as u64)),
            (
                "stripe".to_string(),
                serde::Value::Array(self.data.iter().map(|&c| serde::Value::UInt(c)).collect()),
            ),
        ]))
    }
}

impl<'de> serde::Deserialize<'de> for CtPayload {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let domain = match value.field("domain")? {
            serde::Value::Str(s) if s == "Coeff" => Domain::Coeff,
            serde::Value::Str(s) if s == "Eval" => Domain::Eval,
            other => {
                return Err(serde::Error::msg(format!("unknown CtPayload domain {other:?}")).into())
            }
        };
        // Pre-RNS payloads carry no "limbs" field; default to one limb.
        let limbs = match value.field("limbs") {
            Ok(serde::Value::UInt(k)) => *k as usize,
            Ok(serde::Value::Int(k)) if *k >= 1 => *k as usize,
            Ok(other) => {
                return Err(serde::Error::msg(format!("bad CtPayload limbs {other:?}")).into())
            }
            Err(_) => 1,
        };
        let data = value
            .field("stripe")?
            .as_array("CtPayload::stripe")?
            .iter()
            .map(|v| match v {
                serde::Value::UInt(c) => Ok(*c),
                serde::Value::Int(c) if *c >= 0 => Ok(*c as u64),
                other => Err(serde::Error::msg(format!("bad CtPayload value {other:?}"))),
            })
            .collect::<Result<Vec<u64>, serde::Error>>()?;
        Ok(CtPayload::from_limb_stripe(data, limbs, domain))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poly::{p_mul, p_mul_add, Poly, MODULUS};

    fn policies() -> Vec<SimdPolicy> {
        vec![SimdPolicy::Scalar, SimdPolicy::detected()]
    }

    fn chain1(degree: usize) -> ModulusChain {
        ModulusChain::new(1, degree, false)
    }

    /// Deterministic pseudo-random canonical field elements.
    fn random_values(n: usize, seed: u64) -> Vec<u64> {
        let mut state = seed | 1;
        (0..n)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state.wrapping_mul(0x2545_F491_4F6C_DD1D) % MODULUS
            })
            .collect()
    }

    fn random_payload(n: usize, seed: u64, domain: Domain) -> CtPayload {
        CtPayload::from_stripe(random_values(2 * n, seed), domain)
    }

    /// A k-limb payload whose limb stripes are canonical under their own
    /// primes.
    fn random_limb_payload(
        chain: &ModulusChain,
        degree: usize,
        seed: u64,
        domain: Domain,
    ) -> CtPayload {
        let k = chain.limb_count();
        let mut data = Vec::with_capacity(2 * k * degree);
        for component in 0..2u64 {
            for (li, limb) in chain.limbs().iter().enumerate() {
                data.extend(
                    random_values(degree, seed ^ (component << 8) ^ li as u64)
                        .iter()
                        .map(|&v| v % limb.modulus()),
                );
            }
        }
        CtPayload::from_limb_stripe(data, k, domain)
    }

    /// Split-layout reference of [`CtPayload::mul_eval2`]: one pass per
    /// component, as the pre-stripe engine performed it.
    fn split_mul_reference(payload: &CtPayload, mult: &[u64]) -> Vec<u64> {
        let mut out = Vec::new();
        for component in [payload.c0(), payload.c1()] {
            out.extend(component.iter().zip(mult).map(|(&a, &m)| p_mul(a, m)));
        }
        out
    }

    #[test]
    fn striped_shared_multiplier_matches_split_reference_in_both_domains() {
        for domain in [Domain::Eval, Domain::Coeff] {
            for (degree, seed) in [(16usize, 0xA), (64, 0xB), (256, 0xC)] {
                let chain = chain1(degree);
                let payload = random_payload(degree, seed, domain);
                let mult = random_values(degree, seed ^ 0xFF);
                let mut out = vec![0u64; 2 * degree];
                for threads in [1usize, 2, 4] {
                    for policy in policies() {
                        payload.mul_eval2(&mult, &mut out, threads, policy, &chain);
                        assert_eq!(
                            out,
                            split_mul_reference(&payload, &mult),
                            "degree {degree} domain {domain:?} threads {threads} {policy:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn striped_tensor_product_matches_per_component_reference() {
        for (degree, seed) in [(16usize, 0x1), (64, 0x2)] {
            let chain = chain1(degree);
            let a = random_payload(degree, seed, Domain::Eval);
            let b = random_payload(degree, seed ^ 0x77, Domain::Eval);
            let s0 = random_values(degree, seed ^ 0x101);
            let s1 = random_values(degree, seed ^ 0x202);
            // Per-component reference with the same reduction order.
            let mut expected = vec![0u64; 2 * degree];
            for i in 0..degree {
                let c2 = p_mul(a.c1()[i], b.c1()[i]);
                expected[i] = p_mul_add(c2, s0[i], p_mul(a.c0()[i], b.c0()[i]));
                expected[degree + i] = p_mul_add(
                    c2,
                    s1[i],
                    p_mul_add(a.c1()[i], b.c0()[i], p_mul(a.c0()[i], b.c1()[i])),
                );
            }
            for threads in [1usize, 3, 8] {
                for policy in policies() {
                    let mut out = vec![0u64; 2 * degree];
                    a.mul_add_eval2(&b, &s0, &s1, &mut out, threads, policy, &chain);
                    assert_eq!(
                        out, expected,
                        "degree {degree} threads {threads} {policy:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn striped_galois_matches_per_component_poly_reference() {
        use crate::poly::{galois_eval_permutation, NttTables};
        let degree = 32usize;
        let chain = chain1(degree);
        let tables = NttTables::new(degree);
        let c0 = Poly::from_coeffs(random_values(degree, 3)).to_eval(&tables);
        let c1 = Poly::from_coeffs(random_values(degree, 5)).to_eval(&tables);
        let payload = CtPayload::from_components(c0.coeffs(), c1.coeffs(), Domain::Eval);
        let key = random_values(degree, 9);
        for galois_elt in [3usize, 5, 9, 63] {
            let perm = galois_eval_permutation(degree, galois_elt);
            // Per-component reference: gather then key-switch multiply.
            let reference = |p: &Poly| -> Vec<u64> {
                p.apply_galois_eval(galois_elt)
                    .coeffs()
                    .iter()
                    .zip(&key)
                    .map(|(&g, &k)| p_mul(g, k))
                    .collect()
            };
            for policy in policies() {
                let mut out = vec![0u64; 2 * degree];
                payload.galois_eval2(&perm, &key, &mut out, 1, policy, &chain);
                assert_eq!(
                    &out[..degree],
                    reference(&c0),
                    "element {galois_elt} {policy:?}"
                );
                assert_eq!(
                    &out[degree..],
                    reference(&c1),
                    "element {galois_elt} {policy:?}"
                );
            }
        }
    }

    #[test]
    fn stripe_add_sub_neg_match_per_component_poly_ops_in_both_domains() {
        for domain in [Domain::Eval, Domain::Coeff] {
            let degree = 64usize;
            let chain = chain1(degree);
            let a = random_payload(degree, 0xAD ^ domain as u64, domain);
            let b = random_payload(degree, 0xBE ^ domain as u64, domain);
            let as_polys = |p: &CtPayload| {
                (
                    Poly::from_reduced(p.c0().to_vec(), domain),
                    Poly::from_reduced(p.c1().to_vec(), domain),
                )
            };
            let (a0, a1) = as_polys(&a);
            let (b0, b1) = as_polys(&b);

            for policy in policies() {
                let mut sum = vec![0u64; 2 * degree];
                a.add2(&b, &mut sum, policy, &chain);
                assert_eq!(&sum[..degree], a0.add(&b0).coeffs());
                assert_eq!(&sum[degree..], a1.add(&b1).coeffs());

                let mut diff = vec![0u64; 2 * degree];
                a.sub2(&b, &mut diff, policy, &chain);
                assert_eq!(&diff[..degree], a0.sub(&b0).coeffs());
                assert_eq!(&diff[degree..], a1.sub(&b1).coeffs());

                let mut neg = vec![0u64; 2 * degree];
                a.neg2(&mut neg, policy, &chain);
                assert_eq!(&neg[..degree], a0.negate().coeffs());
                assert_eq!(&neg[degree..], a1.negate().coeffs());

                // The in-place variants agree with the out-of-place ones.
                let mut acc = a.clone();
                acc.add_assign2(&b, policy, &chain);
                assert_eq!(acc.stripe(), &sum[..]);
                let mut acc = a.clone();
                acc.sub_assign2(&b, policy, &chain);
                assert_eq!(acc.stripe(), &diff[..]);
                let mut acc = a.clone();
                acc.neg_assign2(policy, &chain);
                assert_eq!(acc.stripe(), &neg[..]);
            }
        }
    }

    #[test]
    fn scalar_variant_scales_the_shared_multiplier() {
        let degree = 16usize;
        let chain = chain1(degree);
        let payload = random_payload(degree, 0x5C, Domain::Eval);
        let mult = random_values(degree, 0x5D);
        let k = 12345u64;
        let scaled: Vec<u64> = mult.iter().map(|&m| p_mul(m, k)).collect();
        for policy in policies() {
            let mut expected = vec![0u64; 2 * degree];
            payload.mul_eval2(&scaled, &mut expected, 1, policy, &chain);
            let mut out = vec![0u64; 2 * degree];
            payload.mul_scalar_eval2(&mult, k, &mut out, 1, policy, &chain);
            assert_eq!(out, expected, "{policy:?}");
        }
    }

    #[test]
    fn multi_limb_kernels_reduce_each_limb_by_its_own_prime() {
        let degree = 32usize;
        let chain = ModulusChain::new(3, degree, false);
        let k = chain.limb_count();
        let a = random_limb_payload(&chain, degree, 0x31, Domain::Eval);
        let b = random_limb_payload(&chain, degree, 0x32, Domain::Eval);
        let mult: Vec<u64> = b.c0().to_vec();
        let naive_mul = |x: u64, y: u64, q: u64| -> u64 {
            ((u128::from(x) * u128::from(y)) % u128::from(q)) as u64
        };

        for threads in [1usize, 3] {
            for policy in policies() {
                let mut out = vec![0u64; 2 * k * degree];
                a.mul_eval2(&mult, &mut out, threads, policy, &chain);
                for li in 0..k {
                    let q = chain.limb(li).modulus();
                    for j in 0..degree {
                        let pos = li * degree + j;
                        assert_eq!(
                            out[pos],
                            naive_mul(a.c0()[pos], mult[pos], q),
                            "limb {li} c0 pos {j} threads {threads} {policy:?}"
                        );
                        assert_eq!(
                            out[k * degree + pos],
                            naive_mul(a.c1()[pos], mult[pos], q),
                            "limb {li} c1 pos {j}"
                        );
                    }
                }
            }
        }

        // Add/sub/neg walk every limb segment under its own modulus.
        for policy in policies() {
            let mut sum = vec![0u64; 2 * k * degree];
            a.add2(&b, &mut sum, policy, &chain);
            for li in 0..k {
                let q = chain.limb(li).modulus();
                for j in 0..degree {
                    let pos = li * degree + j;
                    let expect = ((u128::from(a.c0()[pos]) + u128::from(b.c0()[pos]))
                        % u128::from(q)) as u64;
                    assert_eq!(sum[pos], expect, "limb {li}");
                }
            }
            let mut acc = a.clone();
            acc.add_assign2(&b, policy, &chain);
            assert_eq!(acc.stripe(), &sum[..]);
        }
    }

    #[test]
    fn multi_limb_galois_permutes_within_each_limb_stripe() {
        use crate::poly::galois_eval_permutation;
        let degree = 16usize;
        let chain = ModulusChain::new(2, degree, false);
        let k = chain.limb_count();
        let payload = random_limb_payload(&chain, degree, 0x41, Domain::Eval);
        let key: Vec<u64> = payload.c1().to_vec();
        let perm = galois_eval_permutation(degree, 3);
        for policy in policies() {
            let mut out = vec![0u64; 2 * k * degree];
            payload.galois_eval2(&perm, &key, &mut out, 1, policy, &chain);
            for li in 0..k {
                let q = chain.limb(li).modulus();
                for (j, &p) in perm.iter().enumerate() {
                    let pos = li * degree + j;
                    let src = li * degree + p as usize;
                    let expect = ((u128::from(payload.c0()[src]) * u128::from(key[pos]))
                        % u128::from(q)) as u64;
                    assert_eq!(out[pos], expect, "limb {li} pos {j} {policy:?}");
                }
            }
        }
    }

    #[test]
    fn serialization_round_trips() {
        let payload = random_payload(8, 0x11, Domain::Eval);
        let value = serde::to_value(&payload);
        let back: CtPayload = serde::from_value(&value).unwrap();
        assert_eq!(back, payload);

        let chain = ModulusChain::new(2, 8, false);
        let multi = random_limb_payload(&chain, 8, 0x12, Domain::Eval);
        let value = serde::to_value(&multi);
        let back: CtPayload = serde::from_value(&value).unwrap();
        assert_eq!(back, multi);
        assert_eq!(back.limbs(), 2);
    }

    #[test]
    #[should_panic(expected = "twice a power-of-two")]
    fn odd_stripe_lengths_are_rejected() {
        let _ = CtPayload::from_stripe(vec![0; 6], Domain::Eval);
    }

    #[test]
    #[should_panic(expected = "power-of-two degree")]
    fn limb_stripe_lengths_must_split_into_limbs() {
        let _ = CtPayload::from_limb_stripe(vec![0; 12], 2, Domain::Eval);
    }

    #[test]
    fn component_views_split_the_stripe() {
        let payload = CtPayload::from_components(&[1, 2], &[3, 4], Domain::Eval);
        assert_eq!(payload.degree(), 2);
        assert_eq!(payload.limbs(), 1);
        assert_eq!(payload.c0(), &[1, 2]);
        assert_eq!(payload.c1(), &[3, 4]);
        assert_eq!(payload.stripe(), &[1, 2, 3, 4]);
        assert!(!payload.is_empty());
        assert!(CtPayload::empty().is_empty());
        assert_eq!(payload.clone().into_stripe(), vec![1, 2, 3, 4]);

        let multi = CtPayload::from_limb_components(&[1, 2, 3, 4], &[5, 6, 7, 8], 2, Domain::Eval);
        assert_eq!(multi.degree(), 2);
        assert_eq!(multi.limbs(), 2);
        assert_eq!(multi.c0(), &[1, 2, 3, 4]);
        assert_eq!(multi.c1(), &[5, 6, 7, 8]);
    }
}
