//! # chehab-fhe
//!
//! A BFV-shaped homomorphic-encryption execution substrate, standing in for
//! Microsoft SEAL in the reproduction of *CHEHAB RL: Learning to Optimize
//! Fully Homomorphic Encryption Computations*.
//!
//! The backend is a *simulation* with three faithful facets (see DESIGN.md
//! for the substitution argument):
//!
//! * **functional**: batched slot values are tracked exactly modulo the
//!   plaintext modulus, so compiled circuits can be checked against plaintext
//!   references end to end;
//! * **cost**: ciphertext payload polynomials undergo real ring arithmetic
//!   sized per operation the way BFV's is, so measured wall-clock keeps the
//!   ct-ct-mul > rotation > addition ordering the paper's cost model
//!   assumes. Payloads are kept lazily in NTT (Eval) form across whole
//!   operation chains (see [`poly`]), so the steady-state work is pointwise
//!   and transform-free — the timer-augmented cost calibration, not a
//!   static table, carries the measured magnitudes;
//! * **noise**: an analytic invariant-noise model reproduces the consumed
//!   noise budgets of Table 6 (369-bit fresh budget under the paper's
//!   parameters, ct-ct multiplications costing tens of bits).
//!
//! The API mirrors SEAL: [`BfvParameters`] → [`FheContext`] →
//! [`KeyGenerator`] → [`Encryptor`] / [`Evaluator`] / [`Decryptor`].
//!
//! ## Example
//!
//! ```
//! use chehab_fhe::{BfvParameters, FheContext, KeyGenerator, Encryptor, Decryptor, Evaluator};
//!
//! let ctx = FheContext::new(BfvParameters::insecure_test())?;
//! let mut keygen = KeyGenerator::new(ctx.params(), 1);
//! let mut encryptor = Encryptor::new(&ctx, &keygen.public_key());
//! let decryptor = Decryptor::new(&ctx, &keygen.secret_key());
//! let mut evaluator = Evaluator::new(&ctx);
//! let relin = keygen.relin_keys();
//!
//! let a = encryptor.encrypt_values(&[2, 3])?;
//! let b = encryptor.encrypt_values(&[5, 7])?;
//! let product = evaluator.multiply(&a, &b, &relin);
//! assert_eq!(ctx.decode(&decryptor.decrypt(&product)?, 2), vec![10, 21]);
//! # Ok::<(), chehab_fhe::FheError>(())
//! ```

// `deny` rather than `forbid`: the `simd` module alone opts back in for the
// stable `std::arch` intrinsics behind runtime feature detection; everything
// else in the crate stays unsafe-free.
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod crypto;
mod evaluator;
mod keys;
mod noise;
mod params;
pub mod payload;
pub mod poly;
pub mod rns;
pub mod simd;

pub use arena::{ArenaPool, ArenaPoolStats, PolyArena};
pub use crypto::{Ciphertext, Decryptor, Encryptor, FheContext, FheError, Plaintext};
pub use evaluator::{Evaluator, EvaluatorStats};
pub use keys::{GaloisKeys, KeyGenerator, PublicKey, RelinKeys, SecretKey};
pub use noise::NoiseModel;
pub use params::{BfvParameters, ParameterError, SecurityLevel};
pub use payload::CtPayload;
pub use poly::TransformStats;
pub use rns::ModulusChain;
pub use simd::SimdPolicy;
