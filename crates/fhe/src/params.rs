//! BFV encryption parameters.
//!
//! Parameters mirror Microsoft SEAL's: a power-of-two polynomial modulus
//! degree `n`, a plaintext modulus `t` compatible with batching
//! (`t ≡ 1 mod 2n`), and a coefficient modulus `q` described by its total
//! bit size. The evaluation setup of the paper (Section 7.4) uses
//! `n = 16384`, a 20-bit `t`, and SEAL's default 389-bit coefficient modulus
//! for 128-bit security, giving a fresh invariant-noise budget of 369 bits.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Errors raised when validating encryption parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParameterError {
    /// The polynomial modulus degree is not a power of two or is too small.
    InvalidPolyModulusDegree(usize),
    /// The plaintext modulus does not satisfy `t ≡ 1 (mod 2n)`, which batching requires.
    PlainModulusIncompatibleWithBatching {
        /// The offending plaintext modulus.
        plain_modulus: u64,
        /// The polynomial modulus degree it was checked against.
        poly_modulus_degree: usize,
    },
    /// The coefficient modulus is not strictly larger than the plaintext modulus.
    CoeffModulusTooSmall,
    /// The payload degree used for cost simulation is not a power of two.
    InvalidPayloadDegree(usize),
    /// The RNS limb count is outside the supported `1..=8` range.
    InvalidLimbCount(usize),
}

impl fmt::Display for ParameterError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParameterError::InvalidPolyModulusDegree(n) => {
                write!(f, "polynomial modulus degree {n} must be a power of two of at least 8")
            }
            ParameterError::PlainModulusIncompatibleWithBatching { plain_modulus, poly_modulus_degree } => write!(
                f,
                "plaintext modulus {plain_modulus} is not congruent to 1 modulo 2*{poly_modulus_degree}; batching is unavailable"
            ),
            ParameterError::CoeffModulusTooSmall => {
                write!(f, "coefficient modulus must be larger than the plaintext modulus")
            }
            ParameterError::InvalidPayloadDegree(n) => {
                write!(f, "payload degree {n} must be a power of two of at least 8")
            }
            ParameterError::InvalidLimbCount(k) => {
                write!(f, "RNS limb count {k} must be between 1 and 8")
            }
        }
    }
}

impl std::error::Error for ParameterError {}

/// Security levels from the Homomorphic Encryption Standard.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SecurityLevel {
    /// 128-bit classical security.
    Tc128,
    /// 192-bit classical security.
    Tc192,
    /// 256-bit classical security.
    Tc256,
}

impl SecurityLevel {
    /// The maximum total coefficient-modulus size (in bits) the Homomorphic
    /// Encryption Standard allows for a given polynomial modulus degree.
    pub fn max_coeff_modulus_bits(self, poly_modulus_degree: usize) -> u32 {
        // Table 1 of the HE standard (classical security).
        let table: &[(usize, u32, u32, u32)] = &[
            (1024, 27, 19, 14),
            (2048, 54, 37, 29),
            (4096, 109, 75, 58),
            (8192, 218, 152, 118),
            (16384, 438, 300, 237),
            (32768, 881, 611, 476),
        ];
        let row = table
            .iter()
            .find(|(n, _, _, _)| *n >= poly_modulus_degree)
            .unwrap_or(table.last().expect("table is non-empty"));
        match self {
            SecurityLevel::Tc128 => row.1,
            SecurityLevel::Tc192 => row.2,
            SecurityLevel::Tc256 => row.3,
        }
    }
}

/// BFV encryption parameters plus simulation fidelity knobs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BfvParameters {
    /// Polynomial modulus degree `n` (number of ciphertext slots).
    pub poly_modulus_degree: usize,
    /// Plaintext modulus `t`.
    pub plain_modulus: u64,
    /// Total size of the coefficient modulus `q` in bits.
    pub coeff_modulus_bits: u32,
    /// Targeted security level.
    pub security_level: SecurityLevel,
    /// Degree of the payload polynomials the execution engine actually
    /// multiplies to obtain BFV-shaped operation latencies. Smaller values
    /// speed the harness up without changing relative costs; `n` reproduces
    /// full-size arithmetic volume.
    pub payload_degree: usize,
    /// Whether the execution engine performs the payload polynomial
    /// arithmetic at all (disable for pure functional tests).
    pub simulate_compute: bool,
    /// Number of RNS limbs `k` the payload polynomials carry. Limb 0 is
    /// always the Goldilocks prime (the exact, bit-identical single-modulus
    /// engine); limbs `1..k` are NTT-friendly primes below `2^61` that
    /// multiply the simulated coefficient precision — and the arithmetic
    /// volume per operation — by `k`.
    pub limb_count: usize,
}

impl BfvParameters {
    /// The evaluation setup of the paper: `n = 16384`, 20-bit plaintext
    /// modulus, SEAL's default 389-bit coefficient modulus, 128-bit
    /// security. The payload degree defaults to 4096 to keep the harness
    /// fast; set it to `n` for full-volume arithmetic.
    pub fn default_128() -> Self {
        BfvParameters {
            poly_modulus_degree: 16384,
            plain_modulus: 786_433, // 20-bit prime, 786433 = 1 + 2^18 * 3, and 786433 ≡ 1 (mod 32768)
            coeff_modulus_bits: 389,
            security_level: SecurityLevel::Tc128,
            payload_degree: 4096,
            simulate_compute: true,
            limb_count: 1,
        }
    }

    /// Small parameters for unit tests: `n = 1024`, tiny payload polynomials.
    pub fn insecure_test() -> Self {
        BfvParameters {
            poly_modulus_degree: 1024,
            plain_modulus: 786_433,
            coeff_modulus_bits: 120,
            security_level: SecurityLevel::Tc128,
            payload_degree: 64,
            simulate_compute: false,
            limb_count: 1,
        }
    }

    /// Returns a copy of the parameters with the RNS limb count set to `k`.
    pub fn with_limb_count(mut self, k: usize) -> Self {
        self.limb_count = k;
        self
    }

    /// Validates the parameter set.
    ///
    /// # Errors
    ///
    /// Returns a [`ParameterError`] describing the first violated constraint.
    pub fn validate(&self) -> Result<(), ParameterError> {
        if !self.poly_modulus_degree.is_power_of_two() || self.poly_modulus_degree < 8 {
            return Err(ParameterError::InvalidPolyModulusDegree(
                self.poly_modulus_degree,
            ));
        }
        if !self.payload_degree.is_power_of_two() || self.payload_degree < 8 {
            return Err(ParameterError::InvalidPayloadDegree(self.payload_degree));
        }
        if self.plain_modulus % (2 * self.poly_modulus_degree as u64) != 1 {
            return Err(ParameterError::PlainModulusIncompatibleWithBatching {
                plain_modulus: self.plain_modulus,
                poly_modulus_degree: self.poly_modulus_degree,
            });
        }
        if u64::from(self.coeff_modulus_bits) <= 64 - self.plain_modulus.leading_zeros() as u64 {
            return Err(ParameterError::CoeffModulusTooSmall);
        }
        if self.limb_count == 0 || self.limb_count > 8 {
            return Err(ParameterError::InvalidLimbCount(self.limb_count));
        }
        Ok(())
    }

    /// Number of batching slots (equal to the polynomial modulus degree).
    pub fn slot_count(&self) -> usize {
        self.poly_modulus_degree
    }

    /// Bit size of the plaintext modulus.
    pub fn plain_modulus_bits(&self) -> u32 {
        64 - self.plain_modulus.leading_zeros()
    }

    /// The fresh invariant-noise budget in bits
    /// (`coeff_modulus_bits - plain_modulus_bits`), matching the 369 bits the
    /// paper observes for its setup.
    pub fn fresh_noise_budget_bits(&self) -> f64 {
        f64::from(self.coeff_modulus_bits) - f64::from(self.plain_modulus_bits())
    }

    /// Returns `true` if the total coefficient modulus respects the security
    /// table for the chosen level.
    pub fn is_standard_secure(&self) -> bool {
        self.coeff_modulus_bits
            <= self
                .security_level
                .max_coeff_modulus_bits(self.poly_modulus_degree)
    }

    /// Approximate size of one ciphertext in bytes (two polynomials of `n`
    /// coefficients of `coeff_modulus_bits` bits each).
    pub fn ciphertext_size_bytes(&self) -> usize {
        2 * self.poly_modulus_degree * (self.coeff_modulus_bits as usize).div_ceil(8)
    }

    /// Approximate size of one Galois (rotation) key in bytes. Each key holds
    /// roughly `2 * ceil(coeff_bits / 60)` polynomials per decomposition
    /// digit, which is what makes shipping many rotation keys expensive
    /// (Appendix B).
    pub fn galois_key_size_bytes(&self) -> usize {
        let digits = (self.coeff_modulus_bits as usize).div_ceil(60);
        2 * digits * self.poly_modulus_degree * (self.coeff_modulus_bits as usize).div_ceil(8)
    }
}

impl Default for BfvParameters {
    fn default() -> Self {
        Self::default_128()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_validate_and_match_the_reported_budget() {
        let p = BfvParameters::default_128();
        p.validate().unwrap();
        assert_eq!(p.slot_count(), 16384);
        assert_eq!(p.plain_modulus_bits(), 20);
        assert_eq!(p.fresh_noise_budget_bits(), 369.0);
        assert!(p.is_standard_secure());
    }

    #[test]
    fn test_parameters_validate() {
        BfvParameters::insecure_test().validate().unwrap();
    }

    #[test]
    fn non_power_of_two_degree_is_rejected() {
        let p = BfvParameters {
            poly_modulus_degree: 10_000,
            ..BfvParameters::default_128()
        };
        assert!(matches!(
            p.validate(),
            Err(ParameterError::InvalidPolyModulusDegree(_))
        ));
    }

    #[test]
    fn batching_incompatible_plain_modulus_is_rejected() {
        let p = BfvParameters {
            plain_modulus: 65_537,
            ..BfvParameters::default_128()
        };
        // 65537 ≡ 1 mod 32768? 65537 - 1 = 65536 = 2 * 32768, so it is compatible; use 12289 instead.
        let incompatible = BfvParameters {
            plain_modulus: 12_289,
            ..p
        };
        assert!(matches!(
            incompatible.validate(),
            Err(ParameterError::PlainModulusIncompatibleWithBatching { .. })
        ));
    }

    #[test]
    fn security_table_is_monotone_in_level() {
        for n in [4096usize, 8192, 16384] {
            let l128 = SecurityLevel::Tc128.max_coeff_modulus_bits(n);
            let l192 = SecurityLevel::Tc192.max_coeff_modulus_bits(n);
            let l256 = SecurityLevel::Tc256.max_coeff_modulus_bits(n);
            assert!(l128 > l192 && l192 > l256);
        }
    }

    #[test]
    fn key_and_ciphertext_sizes_are_multi_megabyte_for_paper_parameters() {
        let p = BfvParameters::default_128();
        assert!(p.ciphertext_size_bytes() > 1_000_000);
        assert!(p.galois_key_size_bytes() > p.ciphertext_size_bytes());
    }

    #[test]
    fn limb_count_is_bounded() {
        let p = BfvParameters::insecure_test().with_limb_count(0);
        assert_eq!(p.validate(), Err(ParameterError::InvalidLimbCount(0)));
        let p = BfvParameters::insecure_test().with_limb_count(9);
        assert_eq!(p.validate(), Err(ParameterError::InvalidLimbCount(9)));
        for k in 1..=8 {
            BfvParameters::insecure_test()
                .with_limb_count(k)
                .validate()
                .unwrap();
        }
    }

    #[test]
    fn coeff_modulus_must_exceed_plain_modulus() {
        let p = BfvParameters {
            coeff_modulus_bits: 16,
            ..BfvParameters::default_128()
        };
        assert_eq!(p.validate(), Err(ParameterError::CoeffModulusTooSmall));
    }
}
