//! # chehab-core
//!
//! The CHEHAB FHE compiler (Section 4 of *CHEHAB RL: Learning to Optimize
//! Fully Homomorphic Encryption Computations*): an embedded DSL for writing
//! FHE programs, lowering to the CHEHAB IR, an optimization pipeline whose
//! term-rewriting stage is driven either by the original greedy strategy or
//! by a trained CHEHAB RL agent, NAF-based rotation-key selection
//! (Appendix B), and code generation onto the BFV execution backend of
//! [`chehab_fhe`].
//!
//! ## Example
//!
//! ```
//! use chehab_core::{Compiler, DslProgram};
//! use chehab_fhe::BfvParameters;
//! use std::collections::HashMap;
//!
//! // Write the kernel in the DSL...
//! let mut p = DslProgram::new("squared_difference");
//! let a = p.ciphertext_input("a");
//! let b = p.ciphertext_input("b");
//! let diff = &a - &b;
//! let out = &diff * &diff;
//! p.set_output(&out);
//!
//! // ...compile it with the greedy optimizer and run it homomorphically.
//! let compiled = Compiler::greedy().compile(p.name(), &p.lower());
//! let inputs: HashMap<String, i64> = [("a".to_string(), 9), ("b".to_string(), 4)].into();
//! let report = compiled.execute(&inputs, &BfvParameters::insecure_test())?;
//! assert_eq!(report.outputs[0], 25);
//! # Ok::<(), chehab_fhe::FheError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod compiler;
mod dsl;
mod executor;
mod rotation_keys;
pub mod training;

pub use compiler::{Compiler, CompilerOptions, OptimizerKind};
pub use dsl::{DslProgram, DslValue};
pub use executor::{
    external_compile_stats, output_slots_of, BatchOptions, CompileStats, CompiledProgram,
    ExecOptions, ExecutionReport, FheServingEngine, FheSession, SessionStats,
};
pub use rotation_keys::{naf_decomposition, select_rotation_keys, RotationKeyPlan};
// The scheduling knob of `ExecOptions`, re-exported so session users don't
// need a direct `chehab_runtime` dependency to pick a discipline.
pub use chehab_runtime::SchedulerKind;
// The cross-request SIMD batching surface of the session API
// ([`FheSession::run_batched`], [`FheSession::serve_batched`]), re-exported
// for the same reason.
pub use chehab_runtime::{BatchPolicy, CoalescerStats, LaneGeometry, RequestCoalescer};
// The telemetry surface of the session API ([`FheSession::trace_request`],
// [`FheSession::serve_traced`], [`FheSession::metrics`]), re-exported for
// the same reason.
pub use chehab_runtime::{Histogram, MetricsRegistry, Trace, TraceSink};
// The resilience surface of the session API ([`FheSession::serve_resilient`],
// [`FheSession::run_resilient`], [`ExecOptions::with_deadline`]),
// re-exported for the same reason: deadline/cancellation tokens,
// deterministic fault plans, per-engine resilience counters, and the
// handle-side error type for abandoned or panicked requests.
pub use chehab_runtime::{
    CancellationToken, FaultPlan, RequestError, ResilienceSnapshot, ServingError, TrySubmitError,
};
