//! The CHEHAB embedded DSL (Section 4.1).
//!
//! Programs are written against [`DslProgram`]: inputs are declared as
//! ciphertext or plaintext scalars, computations use ordinary Rust operators
//! on the returned [`DslValue`] handles (mirroring the C++ operator
//! overloading of the original CHEHAB), and outputs are registered with
//! [`DslProgram::set_output`]. Lowering produces the scalar CHEHAB IR that
//! the optimizer then vectorizes.

use chehab_ir::Expr;
use std::ops::{Add, Mul, Neg, Shl, Shr, Sub};

/// A value handle inside a DSL program (a ciphertext, plaintext, or derived
/// expression).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DslValue {
    expr: Expr,
}

impl DslValue {
    /// The IR expression this handle denotes.
    pub fn expr(&self) -> &Expr {
        &self.expr
    }

    fn wrap(expr: Expr) -> Self {
        DslValue { expr }
    }
}

macro_rules! impl_binop {
    ($trait:ident, $method:ident, $ctor:ident) => {
        impl $trait for &DslValue {
            type Output = DslValue;
            fn $method(self, rhs: &DslValue) -> DslValue {
                DslValue::wrap(Expr::$ctor(self.expr.clone(), rhs.expr.clone()))
            }
        }
        impl $trait for DslValue {
            type Output = DslValue;
            fn $method(self, rhs: DslValue) -> DslValue {
                DslValue::wrap(Expr::$ctor(self.expr, rhs.expr))
            }
        }
        impl $trait<i64> for &DslValue {
            type Output = DslValue;
            fn $method(self, rhs: i64) -> DslValue {
                DslValue::wrap(Expr::$ctor(self.expr.clone(), Expr::constant(rhs)))
            }
        }
    };
}

impl_binop!(Add, add, add);
impl_binop!(Sub, sub, sub);
impl_binop!(Mul, mul, mul);

impl Neg for &DslValue {
    type Output = DslValue;
    fn neg(self) -> DslValue {
        DslValue::wrap(Expr::neg(self.expr.clone()))
    }
}

impl Shl<i64> for &DslValue {
    type Output = DslValue;
    fn shl(self, steps: i64) -> DslValue {
        DslValue::wrap(Expr::rot(self.expr.clone(), steps))
    }
}

impl Shr<i64> for &DslValue {
    type Output = DslValue;
    fn shr(self, steps: i64) -> DslValue {
        DslValue::wrap(Expr::rot(self.expr.clone(), -steps))
    }
}

/// A CHEHAB DSL program under construction.
#[derive(Debug, Default, Clone)]
pub struct DslProgram {
    name: String,
    inputs: Vec<(String, bool)>,
    outputs: Vec<Expr>,
}

impl DslProgram {
    /// Starts a new program.
    pub fn new(name: impl Into<String>) -> Self {
        DslProgram {
            name: name.into(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declares an encrypted scalar input.
    pub fn ciphertext_input(&mut self, name: impl Into<String>) -> DslValue {
        let name = name.into();
        self.inputs.push((name.clone(), true));
        DslValue::wrap(Expr::ct(name))
    }

    /// Declares a plaintext (clear) scalar input.
    pub fn plaintext_input(&mut self, name: impl Into<String>) -> DslValue {
        let name = name.into();
        self.inputs.push((name.clone(), false));
        DslValue::wrap(Expr::pt(name))
    }

    /// Declares a whole vector of encrypted scalar inputs named
    /// `prefix_0 .. prefix_{len-1}`.
    pub fn ciphertext_inputs(&mut self, prefix: &str, len: usize) -> Vec<DslValue> {
        (0..len)
            .map(|i| self.ciphertext_input(format!("{prefix}_{i}")))
            .collect()
    }

    /// A plaintext integer literal.
    pub fn constant(&self, value: i64) -> DslValue {
        DslValue::wrap(Expr::constant(value))
    }

    /// Marks a value as a program output.
    pub fn set_output(&mut self, value: &DslValue) {
        self.outputs.push(value.expr().clone());
    }

    /// Sum of several values (the DSL's `add_many` helper).
    pub fn add_many(&self, values: &[DslValue]) -> DslValue {
        let mut iter = values.iter();
        let first = iter
            .next()
            .expect("add_many needs at least one value")
            .clone();
        iter.fold(first, |acc, v| &acc + v)
    }

    /// Product of several values (the DSL's `mul_many` helper).
    pub fn mul_many(&self, values: &[DslValue]) -> DslValue {
        let mut iter = values.iter();
        let first = iter
            .next()
            .expect("mul_many needs at least one value")
            .clone();
        iter.fold(first, |acc, v| &acc * v)
    }

    /// Squares a value.
    pub fn square(&self, value: &DslValue) -> DslValue {
        value * value
    }

    /// Declared inputs in declaration order, with their encryption status.
    pub fn inputs(&self) -> &[(String, bool)] {
        &self.inputs
    }

    /// Number of outputs registered so far.
    pub fn output_count(&self) -> usize {
        self.outputs.len()
    }

    /// Lowers the program to CHEHAB IR: a single scalar expression for
    /// single-output programs, a `Vec` of outputs otherwise.
    ///
    /// # Panics
    ///
    /// Panics if no output was registered.
    pub fn lower(&self) -> Expr {
        assert!(
            !self.outputs.is_empty(),
            "program `{}` has no outputs",
            self.name
        );
        if self.outputs.len() == 1 {
            self.outputs[0].clone()
        } else {
            Expr::Vec(self.outputs.clone())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::parse;

    #[test]
    fn motivating_example_lowers_to_the_paper_ir() {
        // Section 4.1's DSL listing.
        let mut p = DslProgram::new("motivating_example");
        let v: Vec<DslValue> = (1..=10)
            .map(|i| p.ciphertext_input(format!("v{i}")))
            .collect();
        let x = &(&(&(&v[0] * &v[1]) * &(&v[2] * &v[3])) + &(&(&v[2] * &v[3]) * &(&v[4] * &v[5])))
            * &(&(&v[6] * &v[7]) * &(&v[8] * &v[9]));
        p.set_output(&x);
        let lowered = p.lower();
        let expected = parse(
            "(* (+ (* (* v1 v2) (* v3 v4)) (* (* v3 v4) (* v5 v6))) (* (* v7 v8) (* v9 v10)))",
        )
        .unwrap();
        assert_eq!(lowered, expected);
        assert_eq!(p.inputs().len(), 10);
        assert!(p.inputs().iter().all(|(_, encrypted)| *encrypted));
    }

    #[test]
    fn multiple_outputs_lower_to_a_vec() {
        let mut p = DslProgram::new("pair");
        let a = p.ciphertext_input("a");
        let b = p.ciphertext_input("b");
        let sum = &a + &b;
        let product = &a * &b;
        p.set_output(&sum);
        p.set_output(&product);
        assert_eq!(p.output_count(), 2);
        assert_eq!(p.lower(), parse("(Vec (+ a b) (* a b))").unwrap());
    }

    #[test]
    fn plaintext_inputs_and_constants_are_supported() {
        let mut p = DslProgram::new("weighted");
        let x = p.ciphertext_input("x");
        let w = p.plaintext_input("w");
        let y = &(&x * &w) + 3;
        p.set_output(&y);
        assert_eq!(p.lower(), parse("(+ (* x (pt w)) 3)").unwrap());
    }

    #[test]
    fn rotations_map_to_shift_operators() {
        let mut p = DslProgram::new("rots");
        let xs = p.ciphertext_inputs("x", 4);
        let packed = DslValue::wrap(Expr::Vec(xs.iter().map(|v| v.expr().clone()).collect()));
        let rotated = &(&packed << 2) + &(&packed >> 1);
        p.set_output(&rotated);
        assert_eq!(
            p.lower(),
            parse("(+ (<< (Vec x_0 x_1 x_2 x_3) 2) (>> (Vec x_0 x_1 x_2 x_3) 1))").unwrap()
        );
    }

    #[test]
    fn helper_reductions_build_chains() {
        let mut p = DslProgram::new("helpers");
        let xs = p.ciphertext_inputs("x", 3);
        let sum = p.add_many(&xs);
        let prod = p.mul_many(&xs);
        let sq = p.square(&xs[0]);
        p.set_output(&sum);
        p.set_output(&prod);
        p.set_output(&sq);
        assert_eq!(
            p.lower(),
            parse("(Vec (+ (+ x_0 x_1) x_2) (* (* x_0 x_1) x_2) (* x_0 x_0))").unwrap()
        );
    }

    #[test]
    #[should_panic(expected = "no outputs")]
    fn lowering_without_outputs_panics() {
        let _ = DslProgram::new("empty").lower();
    }
}
