//! End-to-end agent training: dataset synthesis, PPO training and packaging
//! of the resulting policy into a compile-time [`Agent`].
//!
//! This module is the single entry point the examples and the experiment
//! harness use to obtain CHEHAB RL agents under different ablation settings
//! (training-data source, reward shaping, tokenization, action space,
//! encoder architecture, cost-model weights).

use chehab_datagen::{generate_llm_like_dataset, generate_random_dataset, DataSource};
use chehab_ir::{BpeTokenizer, CostModel, CostWeights, Expr};
use chehab_rl::{
    Agent, AgentConfig, EnvConfig, ObservationTokenizer, Policy, PolicyConfig, RewardConfig,
    Trainer, TrainerConfig, TrainingReport,
};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Which tokenizer the agent observes programs through.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenizationKind {
    /// Identifier-and-Constant-Invariant tokenization (default).
    Ici,
    /// Byte-pair encoding trained on random IR text (Figure 10 ablation).
    Bpe,
}

/// Options controlling dataset synthesis and training.
#[derive(Debug, Clone)]
pub struct AgentTrainingOptions {
    /// Number of unique training expressions to synthesize.
    pub dataset_size: usize,
    /// Which generator produces the training data (Figure 8 ablation).
    pub data_source: DataSource,
    /// Total PPO environment steps.
    pub timesteps: usize,
    /// Reward shaping (Figure 9 ablation).
    pub reward: RewardConfig,
    /// Cost-model weights (Table 1 ablation).
    pub cost_weights: CostWeights,
    /// Tokenization (Figure 10 ablation).
    pub tokenization: TokenizationKind,
    /// Use the flat action space instead of the hierarchical one
    /// (Figure 13 ablation).
    pub flat_action_space: bool,
    /// Use a GRU encoder instead of the Transformer (Appendix I.1).
    pub gru_encoder: bool,
    /// Maximum rewrite steps per training episode.
    pub max_episode_steps: usize,
    /// Number of stochastic compile-time rollouts the packaged agent draws.
    pub compile_time_rollouts: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AgentTrainingOptions {
    fn default() -> Self {
        AgentTrainingOptions {
            dataset_size: 600,
            data_source: DataSource::LlmLike,
            timesteps: 4000,
            reward: RewardConfig::default(),
            cost_weights: CostWeights::default(),
            tokenization: TokenizationKind::Ici,
            flat_action_space: false,
            gru_encoder: false,
            max_episode_steps: 16,
            compile_time_rollouts: 6,
            seed: 0,
        }
    }
}

impl AgentTrainingOptions {
    /// A very small budget used by unit and integration tests.
    pub fn tiny() -> Self {
        AgentTrainingOptions {
            dataset_size: 60,
            timesteps: 256,
            max_episode_steps: 8,
            compile_time_rollouts: 3,
            ..Self::default()
        }
    }
}

/// A trained agent plus the artifacts of its training run.
#[derive(Debug)]
pub struct TrainedAgent {
    /// The packaged compile-time agent.
    pub agent: Arc<Agent>,
    /// The PPO learning curve and summary statistics.
    pub report: TrainingReport,
    /// Number of expressions in the synthesized training dataset.
    pub dataset_size: usize,
}

/// Synthesizes a dataset, trains a policy with PPO, and packages it into a
/// compile-time agent.
pub fn train_agent(options: &AgentTrainingOptions) -> TrainedAgent {
    let dataset = match options.data_source {
        DataSource::LlmLike => generate_llm_like_dataset(options.dataset_size, options.seed),
        DataSource::Random => generate_random_dataset(options.dataset_size, options.seed),
    };
    // Keep training programs small enough for the scaled-down budget.
    let programs: Vec<Expr> = dataset
        .exprs()
        .iter()
        .filter(|e| e.node_count() <= 80)
        .cloned()
        .collect();
    let programs = if programs.is_empty() {
        dataset.exprs().to_vec()
    } else {
        programs
    };

    let cost_model = CostModel::with_weights(options.cost_weights);
    let env = EnvConfig {
        cost_model,
        reward: options.reward,
        max_steps: options.max_episode_steps,
        max_locations: 8,
        observation_len: 96,
    };
    let trainer_config = TrainerConfig {
        total_timesteps: options.timesteps,
        ppo: chehab_rl::PpoConfig::small(),
        env: env.clone(),
        num_envs: 4,
        seed: options.seed,
    };
    let tokenizer = match options.tokenization {
        TokenizationKind::Ici => ObservationTokenizer::ici(),
        TokenizationKind::Bpe => {
            let corpus: Vec<String> = programs.iter().take(256).map(|e| e.to_string()).collect();
            ObservationTokenizer::bpe(BpeTokenizer::train(&corpus, 192))
        }
    };
    let trainer = Trainer::with_tokenizer(trainer_config, tokenizer);

    let mut policy_config = PolicyConfig::small(
        trainer.tokenizer().vocab_size(),
        trainer.engine().rule_count(),
        env.max_locations,
    );
    if options.flat_action_space {
        policy_config = policy_config.flat();
    }
    if options.gru_encoder {
        policy_config = policy_config.with_gru(2);
    }
    let mut rng = StdRng::seed_from_u64(options.seed ^ 0x90_11C7);
    let policy = Policy::new(policy_config, &mut rng);
    let report = trainer.train(&policy, &programs);

    let agent = Agent::new(
        policy,
        Arc::clone(trainer.engine()),
        Arc::clone(trainer.tokenizer()),
        AgentConfig {
            env: EnvConfig {
                max_steps: 40,
                ..env
            },
            sampled_rollouts: options.compile_time_rollouts,
            seed: options.seed,
        },
    );
    // The Arc shares the (single-threaded) agent between compiler handles,
    // not across threads: `Policy` tensors are define-by-run graphs without
    // Sync, and compile-time inference happens on the calling thread.
    #[allow(clippy::arc_with_non_send_sync)]
    TrainedAgent {
        agent: Arc::new(agent),
        report,
        dataset_size: dataset.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Compiler;
    use chehab_fhe::BfvParameters;
    use std::collections::HashMap;

    #[test]
    fn tiny_training_run_produces_a_usable_agent() {
        let trained = train_agent(&AgentTrainingOptions::tiny());
        assert!(trained.dataset_size >= 50);
        assert!(trained.report.episodes > 0);

        // The packaged agent must drive the compiler end to end.
        let program = chehab_ir::parse("(Vec (+ a b) (+ c d))").unwrap();
        let compiler = Compiler::with_rl_agent(Arc::clone(&trained.agent));
        let compiled = compiler.compile("rl", &program);
        assert!(compiled.stats().cost_after <= compiled.stats().cost_before);
        let inputs: HashMap<String, i64> = [("a", 1i64), ("b", 2), ("c", 3), ("d", 4)]
            .iter()
            .map(|(k, v)| (k.to_string(), *v))
            .collect();
        let report = compiled
            .execute(&inputs, &BfvParameters::insecure_test())
            .unwrap();
        assert_eq!(report.outputs, vec![3, 7]);
    }

    #[test]
    fn ablation_options_construct_distinct_setups() {
        let defaults = AgentTrainingOptions::default();
        assert_eq!(defaults.data_source, DataSource::LlmLike);
        assert_eq!(defaults.tokenization, TokenizationKind::Ici);
        assert!(!defaults.flat_action_space);
        let step_only = AgentTrainingOptions {
            reward: chehab_rl::RewardConfig::step_only(),
            ..AgentTrainingOptions::tiny()
        };
        assert!(!step_only.reward.use_terminal_reward);
    }
}
