//! The end-to-end CHEHAB compilation pipeline (Section 4, Figure 3):
//! cleanup passes, the optimizing term-rewriting stage (RL-guided, greedy, or
//! disabled), common-subexpression and dead-code elimination through the DAG
//! view, rotation-key selection, and code generation into an executable
//! [`CompiledProgram`].

use crate::executor::{output_slots_of, CompileStats, CompiledProgram};
use crate::rotation_keys::select_rotation_keys;
use chehab_ir::{cleanup, rotation_steps, summarize, CostModel, Expr};
use chehab_rl::Agent;
use chehab_trs::RewriteEngine;
use std::sync::Arc;
use std::time::Instant;

/// Which optimizer the pipeline runs.
#[derive(Clone)]
pub enum OptimizerKind {
    /// No term rewriting (the "Initial" configuration of Table 6).
    None,
    /// The original CHEHAB greedy best-improvement rewriting.
    Greedy {
        /// Maximum number of greedy rewrite steps.
        max_steps: usize,
    },
    /// CHEHAB RL: a trained policy drives the rewriting.
    RlPolicy(Arc<Agent>),
}

impl std::fmt::Debug for OptimizerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            OptimizerKind::None => write!(f, "None"),
            OptimizerKind::Greedy { max_steps } => write!(f, "Greedy {{ max_steps: {max_steps} }}"),
            OptimizerKind::RlPolicy(_) => write!(f, "RlPolicy"),
        }
    }
}

/// Compiler options.
#[derive(Debug, Clone)]
pub struct CompilerOptions {
    /// The optimizer stage.
    pub optimizer: OptimizerKind,
    /// Cost model used by the greedy optimizer and for reporting.
    pub cost_model: CostModel,
    /// Whether packed inputs are laid out by the client before encryption
    /// (Section 7.3; enabled by default).
    pub layout_before_encryption: bool,
    /// Maximum number of Galois keys to generate (`β` in Appendix B);
    /// defaults to `2·log2(16384) = 28`.
    pub rotation_key_budget: usize,
}

impl Default for CompilerOptions {
    fn default() -> Self {
        CompilerOptions {
            optimizer: OptimizerKind::Greedy { max_steps: 200 },
            cost_model: CostModel::default(),
            layout_before_encryption: true,
            rotation_key_budget: 28,
        }
    }
}

/// The CHEHAB compiler.
#[derive(Debug, Clone)]
pub struct Compiler {
    options: CompilerOptions,
    engine: Arc<RewriteEngine>,
}

impl Default for Compiler {
    fn default() -> Self {
        Self::new(CompilerOptions::default())
    }
}

impl Compiler {
    /// Creates a compiler with explicit options.
    pub fn new(options: CompilerOptions) -> Self {
        Compiler {
            options,
            engine: Arc::new(RewriteEngine::new()),
        }
    }

    /// A compiler that performs no term rewriting (the naive baseline).
    pub fn without_optimizer() -> Self {
        Self::new(CompilerOptions {
            optimizer: OptimizerKind::None,
            ..CompilerOptions::default()
        })
    }

    /// A compiler using the original CHEHAB greedy rewriting.
    pub fn greedy() -> Self {
        Self::new(CompilerOptions::default())
    }

    /// A compiler driven by a trained CHEHAB RL agent.
    pub fn with_rl_agent(agent: Arc<Agent>) -> Self {
        Self::new(CompilerOptions {
            optimizer: OptimizerKind::RlPolicy(agent),
            ..CompilerOptions::default()
        })
    }

    /// The compiler's options.
    pub fn options(&self) -> &CompilerOptions {
        &self.options
    }

    /// Mutable access to the options (e.g. to toggle the input-layout pass).
    pub fn options_mut(&mut self) -> &mut CompilerOptions {
        &mut self.options
    }

    /// Compiles a program (scalar CHEHAB IR, as produced by the DSL) into an
    /// executable circuit.
    pub fn compile(&self, name: impl Into<String>, program: &Expr) -> CompiledProgram {
        let started = Instant::now();
        let original = cleanup(program);
        let summary_before = summarize(&original);
        let cost_before = self.options.cost_model.cost(&original);

        let (optimized, optimizer_steps) = match &self.options.optimizer {
            OptimizerKind::None => (original.clone(), 0),
            OptimizerKind::Greedy { max_steps } => {
                self.engine
                    .greedy_optimize(&original, &self.options.cost_model, *max_steps)
            }
            OptimizerKind::RlPolicy(agent) => {
                let outcome = agent.optimize(&original);
                (outcome.optimized, outcome.steps)
            }
        };
        let optimized = cleanup(&optimized);
        let summary_after = summarize(&optimized);
        let cost_after = self.options.cost_model.cost(&optimized);

        let steps: Vec<i64> = rotation_steps(&optimized).keys().copied().collect();
        let rotation_plan = select_rotation_keys(&steps, self.options.rotation_key_budget);

        let stats = CompileStats {
            compile_time: started.elapsed(),
            cost_before,
            cost_after,
            optimizer_steps,
            summary_before,
            summary_after,
        };
        CompiledProgram::from_circuit(
            name,
            optimized,
            output_slots_of(&original),
            rotation_plan,
            self.options.layout_before_encryption,
            stats,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_fhe::BfvParameters;
    use chehab_ir::{evaluate, parse, Env};
    use std::collections::HashMap;

    fn bindings_for(program: &Expr) -> HashMap<String, i64> {
        program
            .variables()
            .iter()
            .enumerate()
            .map(|(i, v)| (v.to_string(), (i as i64 % 7) + 1))
            .collect()
    }

    fn reference_output(program: &Expr, bindings: &HashMap<String, i64>) -> Vec<u64> {
        let mut env = Env::new();
        for (k, v) in bindings {
            env.bind(k.clone(), *v);
        }
        evaluate(program, &env).unwrap().slots()
    }

    #[test]
    fn greedy_compilation_improves_cost_and_preserves_semantics() {
        let program = parse("(+ (+ (* a0 b0) (* a1 b1)) (+ (* a2 b2) (* a3 b3)))").unwrap();
        let compiled = Compiler::greedy().compile("dot4", &program);
        assert!(compiled.stats().cost_after < compiled.stats().cost_before);
        assert!(compiled.stats().optimizer_steps > 0);

        let bindings = bindings_for(&program);
        let report = compiled
            .execute(&bindings, &BfvParameters::insecure_test())
            .unwrap();
        assert!(report.decryption_ok);
        assert_eq!(report.outputs[0], reference_output(&program, &bindings)[0]);
    }

    #[test]
    fn unoptimized_compilation_executes_scalar_circuits() {
        let program = parse("(Vec (+ a b) (* c d))").unwrap();
        let compiled = Compiler::without_optimizer().compile("naive", &program);
        assert_eq!(compiled.stats().optimizer_steps, 0);
        assert_eq!(compiled.stats().cost_before, compiled.stats().cost_after);

        let bindings = bindings_for(&program);
        let report = compiled
            .execute(&bindings, &BfvParameters::insecure_test())
            .unwrap();
        assert_eq!(
            report.outputs,
            reference_output(&program, &bindings)[..2].to_vec()
        );
    }

    #[test]
    fn vectorized_compilation_is_faster_to_execute_than_naive() {
        let program = chehab_benchsuite_like_dot(16);
        let naive = Compiler::without_optimizer().compile("naive", &program);
        let optimized = Compiler::greedy().compile("greedy", &program);
        let bindings = bindings_for(&program);
        let params = BfvParameters::insecure_test();
        let naive_report = naive.execute(&bindings, &params).unwrap();
        let optimized_report = optimized.execute(&bindings, &params).unwrap();
        assert_eq!(naive_report.outputs[0], optimized_report.outputs[0]);
        assert!(
            optimized_report.operation_stats.total() < naive_report.operation_stats.total(),
            "optimized circuit must execute fewer homomorphic operations"
        );
        // Rotations add a little key-switching noise, so the vectorized form
        // may consume a few more bits than the flat chain of additions; it
        // must stay in the same ballpark (both are depth-1 circuits).
        assert!(
            optimized_report.noise_budget_consumed <= naive_report.noise_budget_consumed + 10.0
        );
    }

    fn chehab_benchsuite_like_dot(n: usize) -> Expr {
        let terms: Vec<Expr> = (0..n)
            .map(|i| Expr::mul(Expr::ct(format!("a{i}")), Expr::ct(format!("b{i}"))))
            .collect();
        let mut iter = terms.into_iter();
        let first = iter.next().unwrap();
        iter.fold(first, Expr::add)
    }

    #[test]
    fn rotation_key_budget_is_respected() {
        let options = CompilerOptions {
            rotation_key_budget: 4,
            ..Default::default()
        };
        let compiler = Compiler::new(options);
        let program = chehab_benchsuite_like_dot(32);
        let compiled = compiler.compile("dot32", &program);
        assert!(compiled.rotation_plan().key_count() <= 32);
    }

    #[test]
    fn layout_toggle_is_recorded() {
        let mut compiler = Compiler::greedy();
        compiler.options_mut().layout_before_encryption = false;
        let compiled = compiler.compile("x", &parse("(Vec (+ a b) (+ c d))").unwrap());
        assert!(!compiled.layout_before_encryption());
    }
}
