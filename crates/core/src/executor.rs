//! Code generation and execution: lowering an optimized circuit onto the BFV
//! backend and running it.
//!
//! Code generation in CHEHAB maps every IR operator to its backend call
//! (Appendix D); here the compiled artifact keeps the hash-consed circuit DAG
//! plus the rotation-key plan and the input-layout decision, and execution
//! walks the DAG once, issuing one `Evaluator` call per operation node.
//! Plaintext-only subcircuits are computed on the client side (they never
//! touch ciphertexts), and packed vector inputs are either packed by the
//! client before encryption (Section 7.3, the default) or assembled at run
//! time from individually encrypted scalars with rotations and additions.

use crate::rotation_keys::RotationKeyPlan;
use chehab_fhe::{
    BfvParameters, Ciphertext, Decryptor, Encryptor, Evaluator, EvaluatorStats, FheContext,
    FheError, KeyGenerator,
};
use chehab_ir::{BinOp, CircuitDag, CircuitSummary, DagNode, DataKind, Expr, Ty};
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// Compile-time statistics of a compiled program.
#[derive(Debug, Clone)]
pub struct CompileStats {
    /// Wall-clock compilation time (optimization plus code generation).
    pub compile_time: Duration,
    /// Cost-model value of the program before optimization.
    pub cost_before: f64,
    /// Cost-model value after optimization.
    pub cost_after: f64,
    /// Number of rewrite steps the optimizer applied (0 for the identity
    /// optimizer and for externally produced circuits).
    pub optimizer_steps: usize,
    /// Circuit summary before optimization.
    pub summary_before: CircuitSummary,
    /// Circuit summary after optimization.
    pub summary_after: CircuitSummary,
}

/// A compiled FHE program, ready to execute on the BFV backend.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    name: String,
    circuit: Expr,
    dag: CircuitDag,
    output_slots: usize,
    rotation_plan: RotationKeyPlan,
    layout_before_encryption: bool,
    stats: CompileStats,
}

impl CompiledProgram {
    /// Wraps an already-optimized circuit (used both by the CHEHAB pipeline
    /// and to execute circuits produced by the Coyote baseline on the same
    /// backend).
    pub fn from_circuit(
        name: impl Into<String>,
        circuit: Expr,
        output_slots: usize,
        rotation_plan: RotationKeyPlan,
        layout_before_encryption: bool,
        stats: CompileStats,
    ) -> Self {
        let dag = CircuitDag::from_expr(&circuit).eliminate_dead_code();
        CompiledProgram {
            name: name.into(),
            circuit,
            dag,
            output_slots,
            rotation_plan,
            layout_before_encryption,
            stats,
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The optimized circuit in IR form.
    pub fn circuit(&self) -> &Expr {
        &self.circuit
    }

    /// Number of live output slots.
    pub fn output_slots(&self) -> usize {
        self.output_slots
    }

    /// The rotation-key plan selected for the circuit.
    pub fn rotation_plan(&self) -> &RotationKeyPlan {
        &self.rotation_plan
    }

    /// Compile-time statistics.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// Whether packed inputs are laid out by the client before encryption.
    pub fn layout_before_encryption(&self) -> bool {
        self.layout_before_encryption
    }

    /// Executes the program on the BFV backend.
    ///
    /// `inputs` binds every scalar input variable to its clear value.
    ///
    /// # Errors
    ///
    /// Returns an [`FheError`] for missing Galois keys or other backend
    /// failures; an exhausted noise budget is *not* an error and is reported
    /// through [`ExecutionReport::decryption_ok`].
    pub fn execute(
        &self,
        inputs: &HashMap<String, i64>,
        params: &BfvParameters,
    ) -> Result<ExecutionReport, FheError> {
        let ctx = FheContext::new(params.clone())?;
        let mut keygen = KeyGenerator::new(ctx.params(), 0xC4E4AB);
        let mut encryptor = Encryptor::new(&ctx, &keygen.public_key());
        let decryptor = Decryptor::new(&ctx, &keygen.secret_key());
        let mut evaluator = Evaluator::new(&ctx);
        let relin_keys = keygen.relin_keys();

        // Galois keys: the planned rotation keys plus the unit steps needed
        // for run-time packing. Packing at run time happens for every
        // ciphertext `Vec` node when the layout is applied after encryption,
        // and for `Vec` nodes with non-leaf elements even under the default
        // client-side layout.
        let mut steps: Vec<i64> = self.rotation_plan.keys.clone();
        let runtime_packed_arity = self
            .dag
            .nodes()
            .iter()
            .filter_map(|n| match n {
                DagNode::Vec(elems) => {
                    let all_leaves = elems.iter().all(|&e| self.dag.nodes()[e].is_leaf());
                    let packed_at_runtime = !self.layout_before_encryption || !all_leaves;
                    packed_at_runtime.then_some(elems.len())
                }
                _ => None,
            })
            .max()
            .unwrap_or(1);
        for i in 1..runtime_packed_arity as i64 {
            steps.push(-i);
        }
        let galois_keys = keygen.galois_keys(&steps);

        let t = ctx.plain_modulus() as i64;
        let lookup = |name: &str| -> i64 {
            inputs.get(name).copied().unwrap_or(0).rem_euclid(t)
        };

        // --- client side: plaintext evaluation and input encryption (untimed).
        let kinds: Vec<DataKind> = data_kinds(&self.dag);
        let mut registers: Vec<Option<Register>> = vec![None; self.dag.len()];
        for (id, node) in self.dag.nodes().iter().enumerate() {
            if kinds[id] == DataKind::Plaintext {
                registers[id] = Some(Register::Plain(plain_eval(node, &registers, &lookup, t)));
            } else if let DagNode::CtVar(name) = node {
                let ct = encryptor.encrypt_values(&[lookup(name.as_str())])?;
                registers[id] = Some(Register::Cipher(ct));
            } else if self.layout_before_encryption {
                if let DagNode::Vec(elems) = node {
                    // Pack leaf-only vectors on the client before encryption.
                    if elems.iter().all(|&e| self.dag.nodes()[e].is_leaf()) {
                        let values: Vec<i64> = elems
                            .iter()
                            .map(|&e| match &self.dag.nodes()[e] {
                                DagNode::CtVar(name) => lookup(name.as_str()),
                                DagNode::PtVar(name) => lookup(name.as_str()),
                                DagNode::Const(v) => *v,
                                _ => unreachable!("leaf-only vector"),
                            })
                            .collect();
                        let ct = encryptor.encrypt_values(&values)?;
                        registers[id] = Some(Register::Cipher(ct));
                    }
                }
            }
        }

        // --- server side: execute the remaining operation nodes (timed).
        let started = Instant::now();
        for (id, node) in self.dag.nodes().iter().enumerate() {
            if registers[id].is_some() {
                continue;
            }
            let register = self.execute_node(
                id,
                node,
                &registers,
                &ctx,
                &mut evaluator,
                &mut encryptor,
                &relin_keys,
                &galois_keys,
            )?;
            registers[id] = Some(register);
        }
        let server_time = started.elapsed();

        let output = registers[self.dag.output()].clone().expect("output register computed");
        let (outputs, noise_consumed, decryption_ok) = match output {
            Register::Cipher(ct) => {
                let consumed = ct.noise_consumed_bits();
                match decryptor.decrypt(&ct) {
                    Ok(pt) => (ctx.decode(&pt, self.output_slots), consumed, true),
                    Err(FheError::NoiseBudgetExhausted { .. }) => (Vec::new(), consumed, false),
                    Err(other) => return Err(other),
                }
            }
            Register::Plain(values) => (
                values.iter().map(|&v| v.rem_euclid(t) as u64).take(self.output_slots).collect(),
                0.0,
                true,
            ),
        };

        Ok(ExecutionReport {
            outputs,
            server_time,
            noise_budget_consumed: noise_consumed,
            noise_budget_remaining: (params.fresh_noise_budget_bits() - noise_consumed).max(0.0),
            operation_stats: evaluator.stats(),
            galois_key_count: galois_keys.key_count(),
            decryption_ok,
        })
    }

    #[allow(clippy::too_many_arguments)]
    fn execute_node(
        &self,
        _id: usize,
        node: &DagNode,
        registers: &[Option<Register>],
        ctx: &FheContext,
        evaluator: &mut Evaluator,
        encryptor: &mut Encryptor,
        relin_keys: &chehab_fhe::RelinKeys,
        galois_keys: &chehab_fhe::GaloisKeys,
    ) -> Result<Register, FheError> {
        let reg = |i: usize| registers[i].clone().expect("operands are computed in topological order");
        let result = match node {
            DagNode::CtVar(_) | DagNode::PtVar(_) | DagNode::Const(_) => {
                unreachable!("leaves are materialized before execution")
            }
            DagNode::Vec(elems) => {
                // Run-time packing: element i is moved to slot i with a
                // right-rotation and accumulated with additions.
                let mut acc: Option<Ciphertext> = None;
                let mut plain_slots = vec![0i64; elems.len()];
                for (slot, &elem) in elems.iter().enumerate() {
                    match reg(elem) {
                        Register::Plain(values) => {
                            plain_slots[slot] = values.first().copied().unwrap_or(0);
                        }
                        Register::Cipher(ct) => {
                            let placed = if slot == 0 {
                                ct
                            } else {
                                evaluator.rotate(&ct, -(slot as i64), galois_keys)?
                            };
                            acc = Some(match acc {
                                None => placed,
                                Some(prev) => evaluator.add(&prev, &placed),
                            });
                        }
                    }
                }
                let mut packed = acc.unwrap_or_else(|| {
                    // A ciphertext-kind vector always has at least one
                    // ciphertext element, but keep a safe fallback.
                    encryptor.encrypt_values(&[0]).expect("single zero fits")
                });
                if plain_slots.iter().any(|&v| v != 0) {
                    let plain = ctx.encode(&plain_slots)?;
                    packed = evaluator.add_plain(&packed, &plain);
                }
                Register::Cipher(packed)
            }
            DagNode::Bin(op, a, b) | DagNode::VecBin(op, a, b) => {
                match (reg(*a), reg(*b)) {
                    (Register::Cipher(x), Register::Cipher(y)) => Register::Cipher(match op {
                        BinOp::Add => evaluator.add(&x, &y),
                        BinOp::Sub => evaluator.sub(&x, &y),
                        BinOp::Mul => evaluator.multiply(&x, &y, relin_keys),
                    }),
                    (Register::Cipher(x), Register::Plain(p)) => {
                        let plain = ctx.encode(&p)?;
                        Register::Cipher(match op {
                            BinOp::Add => evaluator.add_plain(&x, &plain),
                            BinOp::Sub => evaluator.sub_plain(&x, &plain),
                            BinOp::Mul => evaluator.multiply_plain(&x, &plain),
                        })
                    }
                    (Register::Plain(p), Register::Cipher(y)) => {
                        let plain = ctx.encode(&p)?;
                        Register::Cipher(match op {
                            BinOp::Add => evaluator.add_plain(&y, &plain),
                            BinOp::Sub => {
                                // p - y = -(y - p)
                                let diff = evaluator.sub_plain(&y, &plain);
                                evaluator.negate(&diff)
                            }
                            BinOp::Mul => evaluator.multiply_plain(&y, &plain),
                        })
                    }
                    (Register::Plain(_), Register::Plain(_)) => {
                        unreachable!("plaintext-only nodes are evaluated on the client")
                    }
                }
            }
            DagNode::Neg(a) | DagNode::VecNeg(a) => match reg(*a) {
                Register::Cipher(x) => Register::Cipher(evaluator.negate(&x)),
                Register::Plain(_) => unreachable!("plaintext-only nodes are evaluated on the client"),
            },
            DagNode::Rot(a, step) => match reg(*a) {
                Register::Cipher(x) => {
                    let mut current = x;
                    for part in self.rotation_plan.realize(*step) {
                        current = evaluator.rotate(&current, part, galois_keys)?;
                    }
                    Register::Cipher(current)
                }
                Register::Plain(_) => unreachable!("plaintext-only nodes are evaluated on the client"),
            },
        };
        Ok(result)
    }
}

/// The result of executing a compiled program.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Decrypted output slots (empty if decryption failed).
    pub outputs: Vec<u64>,
    /// Wall-clock time of the server-side homomorphic evaluation.
    pub server_time: Duration,
    /// Invariant-noise budget consumed by the output ciphertext, in bits.
    pub noise_budget_consumed: f64,
    /// Remaining noise budget, in bits.
    pub noise_budget_remaining: f64,
    /// Homomorphic operations executed, by category.
    pub operation_stats: EvaluatorStats,
    /// Number of Galois keys generated for the run.
    pub galois_key_count: usize,
    /// `false` when the noise budget was exhausted and decryption failed.
    pub decryption_ok: bool,
}

#[derive(Debug, Clone)]
enum Register {
    Cipher(Ciphertext),
    Plain(Vec<i64>),
}

fn data_kinds(dag: &CircuitDag) -> Vec<DataKind> {
    let mut kinds = vec![DataKind::Plaintext; dag.len()];
    for (id, node) in dag.nodes().iter().enumerate() {
        kinds[id] = match node {
            DagNode::CtVar(_) => DataKind::Ciphertext,
            DagNode::PtVar(_) | DagNode::Const(_) => DataKind::Plaintext,
            _ => {
                if node.operands().into_iter().any(|o| kinds[o] == DataKind::Ciphertext) {
                    DataKind::Ciphertext
                } else {
                    DataKind::Plaintext
                }
            }
        };
    }
    kinds
}

/// Client-side evaluation of a plaintext-only node.
fn plain_eval(
    node: &DagNode,
    registers: &[Option<Register>],
    lookup: &impl Fn(&str) -> i64,
    modulus: i64,
) -> Vec<i64> {
    let operand = |i: usize| -> Vec<i64> {
        match registers[i].as_ref().expect("plaintext operands precede their uses") {
            Register::Plain(v) => v.clone(),
            Register::Cipher(_) => unreachable!("plaintext node with ciphertext operand"),
        }
    };
    let reduce = |v: i64| v.rem_euclid(modulus);
    match node {
        DagNode::CtVar(name) | DagNode::PtVar(name) => vec![reduce(lookup(name.as_str()))],
        DagNode::Const(v) => vec![reduce(*v)],
        DagNode::Bin(op, a, b) | DagNode::VecBin(op, a, b) => {
            let (x, y) = (operand(*a), operand(*b));
            let len = x.len().max(y.len());
            (0..len)
                .map(|i| {
                    let xi = x.get(i).copied().unwrap_or(0);
                    let yi = y.get(i).copied().unwrap_or(0);
                    reduce(match op {
                        BinOp::Add => xi + yi,
                        BinOp::Sub => xi - yi,
                        BinOp::Mul => ((xi as i128 * yi as i128) % modulus as i128) as i64,
                    })
                })
                .collect()
        }
        DagNode::Neg(a) | DagNode::VecNeg(a) => operand(*a).iter().map(|&v| reduce(-v)).collect(),
        DagNode::Vec(elems) => elems
            .iter()
            .map(|&e| operand(e).first().copied().unwrap_or(0))
            .collect(),
        DagNode::Rot(a, step) => {
            let v: Vec<u64> = operand(*a).iter().map(|&x| x.rem_euclid(modulus) as u64).collect();
            chehab_ir::shift_zero_fill(&v, *step).into_iter().map(|x| x as i64).collect()
        }
    }
}

/// Builds an empty [`CompileStats`] for circuits produced outside the CHEHAB
/// pipeline (e.g. the Coyote baseline), with both summaries taken from the
/// same circuit.
pub fn external_compile_stats(circuit: &Expr, compile_time: Duration) -> CompileStats {
    let summary = chehab_ir::summarize(circuit);
    let cost = chehab_ir::CostModel::default().cost(circuit);
    CompileStats {
        compile_time,
        cost_before: cost,
        cost_after: cost,
        optimizer_steps: 0,
        summary_before: summary,
        summary_after: summary,
    }
}

/// Convenience: the number of live output slots of a program.
pub fn output_slots_of(program: &Expr) -> usize {
    program.ty().map(Ty::slots).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation_keys::select_rotation_keys;
    use chehab_ir::parse;

    fn compile_raw(circuit: &str, layout_before: bool) -> CompiledProgram {
        let circuit = parse(circuit).unwrap();
        let steps: Vec<i64> = chehab_ir::rotation_steps(&circuit).keys().copied().collect();
        let plan = select_rotation_keys(&steps, 28);
        let slots = output_slots_of(&circuit);
        CompiledProgram::from_circuit(
            "test",
            circuit.clone(),
            slots,
            plan,
            layout_before,
            external_compile_stats(&circuit, Duration::from_millis(1)),
        )
    }

    fn run(program: &CompiledProgram, bindings: &[(&str, i64)]) -> ExecutionReport {
        let inputs: HashMap<String, i64> =
            bindings.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        program.execute(&inputs, &BfvParameters::insecure_test()).unwrap()
    }

    #[test]
    fn executes_a_vectorized_circuit_correctly() {
        let program = compile_raw("(VecMul (Vec a c) (Vec b d))", true);
        let report = run(&program, &[("a", 2), ("b", 3), ("c", 4), ("d", 5)]);
        assert!(report.decryption_ok);
        assert_eq!(report.outputs, vec![6, 20]);
        assert_eq!(report.operation_stats.ct_ct_multiplications, 1);
        assert!(report.noise_budget_remaining > 0.0);
    }

    #[test]
    fn executes_rotations_and_reductions() {
        // Dot product of length 4 via rotate-and-add.
        let circuit = "(VecAdd (VecAdd (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) (<< (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) 2)) (<< (VecAdd (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) (<< (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) 2)) 1))";
        let program = compile_raw(circuit, true);
        let report = run(
            &program,
            &[("a0", 1), ("a1", 2), ("a2", 3), ("a3", 4), ("b0", 5), ("b1", 6), ("b2", 7), ("b3", 8)],
        );
        // 1*5 + 2*6 + 3*7 + 4*8 = 70 in slot 0.
        assert_eq!(report.outputs[0], 70);
        assert!(report.operation_stats.rotations >= 2);
    }

    #[test]
    fn ct_pt_operations_use_plain_variants() {
        let program = compile_raw("(VecMul (Vec a b) (Vec 3 4))", true);
        let report = run(&program, &[("a", 5), ("b", 6)]);
        assert_eq!(report.outputs, vec![15, 24]);
        assert_eq!(report.operation_stats.ct_ct_multiplications, 0);
        assert_eq!(report.operation_stats.ct_pt_multiplications, 1);
    }

    #[test]
    fn scalar_programs_report_slot_zero() {
        let program = compile_raw("(* (+ a b) c)", true);
        let report = run(&program, &[("a", 2), ("b", 3), ("c", 4)]);
        assert_eq!(report.outputs, vec![20]);
    }

    #[test]
    fn layout_after_encryption_costs_extra_rotations() {
        let circuit = "(VecAdd (Vec a b c d) (Vec e f g h))";
        let before = compile_raw(circuit, true);
        let after = compile_raw(circuit, false);
        let bindings: Vec<(&str, i64)> = vec![
            ("a", 1), ("b", 2), ("c", 3), ("d", 4), ("e", 5), ("f", 6), ("g", 7), ("h", 8),
        ];
        let report_before = run(&before, &bindings);
        let report_after = run(&after, &bindings);
        assert_eq!(report_before.outputs, vec![6, 8, 10, 12]);
        assert_eq!(report_after.outputs, vec![6, 8, 10, 12]);
        assert!(report_after.operation_stats.rotations > report_before.operation_stats.rotations);
        assert!(report_after.operation_stats.total() > report_before.operation_stats.total());
    }

    #[test]
    fn subtracting_ciphertext_from_plaintext_negates_correctly() {
        let program = compile_raw("(VecSub (Vec 10 10) (Vec a b))", true);
        let report = run(&program, &[("a", 3), ("b", 4)]);
        assert_eq!(report.outputs, vec![7, 6]);
    }

    #[test]
    fn plaintext_only_programs_execute_without_ciphertext_work() {
        let program = compile_raw("(+ (pt w) 3)", true);
        let report = run(&program, &[("w", 10)]);
        assert_eq!(report.outputs, vec![13]);
        assert_eq!(report.operation_stats.total(), 0);
    }

    #[test]
    fn missing_inputs_default_to_zero() {
        let program = compile_raw("(+ a b)", true);
        let report = run(&program, &[("a", 7)]);
        assert_eq!(report.outputs, vec![7]);
    }
}
