//! Code generation and execution: lowering an optimized circuit onto the BFV
//! backend and running it through the parallel runtime.
//!
//! Code generation in CHEHAB maps every IR operator to its backend call
//! (Appendix D); here the compiled artifact keeps the hash-consed circuit DAG
//! plus the rotation-key plan and the input-layout decision. Execution is
//! organized around long-lived serving state: [`CompiledProgram::session`]
//! builds an [`FheSession`] **once** — FHE context, public/relin/Galois
//! keys, and the leveled instruction [`Schedule`] — and every request after
//! that only pays for encryption, wavefront evaluation and decryption
//! ([`FheSession::run`] / [`FheSession::run_parallel`] /
//! [`FheSession::run_batch`]). An `Arc`'d session feeds
//! [`FheSession::serve`], the persistent request-queue front end backed by
//! [`chehab_runtime::ServingEngine`]. The historical one-shot entry points
//! ([`CompiledProgram::execute`], [`CompiledProgram::execute_parallel`],
//! [`CompiledProgram::execute_batch`]) survive as thin convenience shims that
//! build a throwaway session per call.
//!
//! Plaintext-only subcircuits are computed on the client side (they never
//! touch ciphertexts), and packed vector inputs are either packed by the
//! client before encryption (Section 7.3, the default) or assembled at run
//! time from individually encrypted scalars with rotations and additions.

use crate::rotation_keys::RotationKeyPlan;
use chehab_fhe::{
    ArenaPool, BfvParameters, Ciphertext, Decryptor, Encryptor, EvaluatorStats, FheContext,
    FheError, GaloisKeys, KeyGenerator, RelinKeys,
};
use chehab_ir::{BinOp, CircuitDag, CircuitSummary, CostModel, DagNode, DataKind, Expr, Ty};
use chehab_runtime::{
    data_kinds, default_workers, lane_geometry, BatchExecutor, BatchPolicy, CalibratedCostModel,
    CancellationToken, CoalescerConfig, Counter, DataflowExecutor, ExecResources, FaultPlan, Gauge,
    LaneGeometry, MetricsRegistry, Register, RequestCoalescer, ResilienceSnapshot, ResilienceStats,
    Schedule, SchedulerKind, SchedulerMetrics, ServingConfig, ServingEngine, SpanEvent,
    TimingBreakdown, Trace, TraceSink, WavefrontExecutor, WavefrontOutcome, DEFAULT_QUEUE_CAPACITY,
};
use coyote_baseline::LaneAssignment;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Deterministic key-generation seed of the execution backend.
const KEYGEN_SEED: u64 = 0xC4E4AB;

/// Compile-time statistics of a compiled program.
#[derive(Debug, Clone)]
pub struct CompileStats {
    /// Wall-clock compilation time (optimization plus code generation).
    pub compile_time: Duration,
    /// Cost-model value of the program before optimization.
    pub cost_before: f64,
    /// Cost-model value after optimization.
    pub cost_after: f64,
    /// Number of rewrite steps the optimizer applied (0 for the identity
    /// optimizer and for externally produced circuits).
    pub optimizer_steps: usize,
    /// Circuit summary before optimization.
    pub summary_before: CircuitSummary,
    /// Circuit summary after optimization.
    pub summary_after: CircuitSummary,
}

/// Per-request parallelism options of [`CompiledProgram::execute_batch`].
///
/// Kept for source compatibility with the pre-session API; new code should
/// use [`ExecOptions`], which carries the same two knobs plus the serving
/// queue bound (`BatchOptions` converts losslessly via `From`).
#[derive(Debug, Clone, Copy)]
pub struct BatchOptions {
    /// Worker threads at the request level (how many input sets execute
    /// concurrently).
    pub request_threads: usize,
    /// Worker threads inside each request's wavefront execution.
    ///
    /// The useful total is `request_threads * threads_per_request <=`
    /// available cores; deep, narrow circuits profit from request-level
    /// workers, wide circuits from wavefront workers.
    pub threads_per_request: usize,
}

impl Default for BatchOptions {
    /// Request workers default to the host's
    /// [`std::thread::available_parallelism`], clamped to `[1, 8]` (see
    /// [`chehab_runtime::default_workers`]) — a 1-CPU host gets one worker
    /// instead of four oversubscribed ones.
    fn default() -> Self {
        BatchOptions {
            request_threads: default_workers(),
            threads_per_request: 1,
        }
    }
}

/// Unified execution options of the session API: the two worker-count knobs
/// that used to be scattered across `threads` parameters and
/// [`BatchOptions`], plus the serving queue bound, behind one builder.
///
/// ```
/// use chehab_core::ExecOptions;
///
/// let options = ExecOptions::new()
///     .with_request_threads(2)
///     .with_threads_per_request(4)
///     .with_queue_capacity(128);
/// assert_eq!(options.request_threads, 2);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct ExecOptions {
    /// Worker threads at the request level: the [`BatchExecutor`] pool of
    /// [`FheSession::run_batch`] and the persistent worker threads of
    /// [`FheSession::serve`]. Defaults to the host's
    /// [`std::thread::available_parallelism`], clamped to `[1, 8]`.
    pub request_threads: usize,
    /// Worker threads inside each request's scheduled execution (1 = run
    /// each request sequentially; more helps schedules with instruction-level
    /// parallelism).
    pub threads_per_request: usize,
    /// Bound of the serving queue of [`FheSession::serve`]: `submit` blocks
    /// while this many requests are already queued.
    pub queue_capacity: usize,
    /// The intra-request scheduling discipline: barrier-free
    /// [`SchedulerKind::Dataflow`] (the default — instructions run the
    /// instant their operands are written, ordered by calibrated
    /// critical-path priority) or the level-synchronized
    /// [`SchedulerKind::Leveled`] wavefront. Outputs are bit-identical
    /// either way; only the wall-clock and the timing breakdown shape
    /// differ.
    pub scheduler: SchedulerKind,
    /// Cross-request SIMD batching policy of [`FheSession::run_batched`] and
    /// [`FheSession::serve_batched`]: when set, compatible requests are
    /// coalesced into the slot lanes of shared ciphertexts and the program
    /// executes once per batch. `None` (the default) keeps every request in
    /// its own ciphertext.
    pub batching: Option<BatchPolicy>,
    /// Per-request deadline of [`FheSession::serve`]: each submitted request
    /// gets a [`CancellationToken`] armed with this budget, checked at every
    /// instruction dispatch, so an expired request stops scheduling work
    /// mid-flight and resolves with
    /// [`FheError::DeadlineExceeded`](chehab_fhe::FheError::DeadlineExceeded).
    /// `None` (the default) lets every request run to completion.
    pub deadline: Option<Duration>,
    /// Admission control of [`FheSession::serve`]: when `true` (and a
    /// `deadline` is set), submissions whose deadline is provably infeasible
    /// given the queue depth and the calibrated per-request cost are shed at
    /// the door instead of wasting ciphertext work on a guaranteed miss.
    pub shed_infeasible: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            request_threads: default_workers(),
            threads_per_request: 1,
            queue_capacity: DEFAULT_QUEUE_CAPACITY,
            scheduler: SchedulerKind::default(),
            batching: None,
            deadline: None,
            shed_infeasible: false,
        }
    }
}

impl ExecOptions {
    /// Host-derived defaults (same as `Default`).
    pub fn new() -> Self {
        ExecOptions::default()
    }

    /// Fully sequential execution: one request at a time, one scheduled
    /// worker.
    pub fn sequential() -> Self {
        ExecOptions {
            request_threads: 1,
            threads_per_request: 1,
            ..ExecOptions::default()
        }
    }

    /// Sets the request-level worker count (clamped to at least 1).
    pub fn with_request_threads(mut self, threads: usize) -> Self {
        self.request_threads = threads.max(1);
        self
    }

    /// Sets the per-request wavefront worker count (clamped to at least 1).
    pub fn with_threads_per_request(mut self, threads: usize) -> Self {
        self.threads_per_request = threads.max(1);
        self
    }

    /// Sets the serving queue bound (clamped to at least 1).
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Selects the intra-request scheduling discipline.
    pub fn with_scheduler(mut self, scheduler: SchedulerKind) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Enables cross-request SIMD batching under `policy` (see
    /// [`FheSession::run_batched`] / [`FheSession::serve_batched`]).
    pub fn with_batching(mut self, policy: BatchPolicy) -> Self {
        self.batching = Some(policy);
        self
    }

    /// Arms a per-request deadline on the serving path (see
    /// [`ExecOptions::deadline`]).
    pub fn with_deadline(mut self, deadline: Duration) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Enables deadline-infeasibility shedding on the serving path (see
    /// [`ExecOptions::shed_infeasible`]).
    pub fn with_shed_infeasible(mut self, shed: bool) -> Self {
        self.shed_infeasible = shed;
        self
    }
}

impl From<BatchOptions> for ExecOptions {
    fn from(options: BatchOptions) -> Self {
        ExecOptions {
            request_threads: options.request_threads.max(1),
            threads_per_request: options.threads_per_request.max(1),
            ..ExecOptions::default()
        }
    }
}

/// A compiled FHE program, ready to execute on the BFV backend.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    name: String,
    circuit: Expr,
    dag: CircuitDag,
    output_slots: usize,
    rotation_plan: RotationKeyPlan,
    layout_before_encryption: bool,
    stats: CompileStats,
}

impl CompiledProgram {
    /// Wraps an already-optimized circuit (used both by the CHEHAB pipeline
    /// and to execute circuits produced by the Coyote baseline on the same
    /// backend).
    pub fn from_circuit(
        name: impl Into<String>,
        circuit: Expr,
        output_slots: usize,
        rotation_plan: RotationKeyPlan,
        layout_before_encryption: bool,
        stats: CompileStats,
    ) -> Self {
        let dag = CircuitDag::from_expr(&circuit).eliminate_dead_code();
        CompiledProgram {
            name: name.into(),
            circuit,
            dag,
            output_slots,
            rotation_plan,
            layout_before_encryption,
            stats,
        }
    }

    /// The program's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The optimized circuit in IR form.
    pub fn circuit(&self) -> &Expr {
        &self.circuit
    }

    /// Number of live output slots.
    pub fn output_slots(&self) -> usize {
        self.output_slots
    }

    /// The rotation-key plan selected for the circuit.
    pub fn rotation_plan(&self) -> &RotationKeyPlan {
        &self.rotation_plan
    }

    /// Compile-time statistics.
    pub fn stats(&self) -> &CompileStats {
        &self.stats
    }

    /// Whether packed inputs are laid out by the client before encryption.
    pub fn layout_before_encryption(&self) -> bool {
        self.layout_before_encryption
    }

    /// The register slots the client binds before server-side execution:
    /// plaintext subcircuits, encrypted scalar inputs, and (under the default
    /// layout) leaf-only vectors packed before encryption.
    fn prebound_mask(&self, kinds: &[DataKind]) -> Vec<bool> {
        self.dag
            .nodes()
            .iter()
            .enumerate()
            .map(|(id, node)| {
                kinds[id] == DataKind::Plaintext
                    || matches!(node, DagNode::CtVar(_))
                    || (self.layout_before_encryption
                        && matches!(node, DagNode::Vec(elems)
                            if elems.iter().all(|&e| self.dag.nodes()[e].is_leaf())))
            })
            .collect()
    }

    /// Lowers the server-side portion of the circuit into a leveled
    /// instruction schedule (exposed so harnesses can inspect level widths
    /// when picking thread counts).
    pub fn schedule(&self) -> Schedule {
        let kinds = data_kinds(&self.dag);
        let prebound = self.prebound_mask(&kinds);
        chehab_runtime::lower_with_default_costs(&self.dag, &prebound, |step| {
            self.rotation_plan.realize(step)
        })
    }

    /// Builds the long-lived serving state of this program under `params`:
    /// FHE context, public/relinearization/Galois keys, the leveled
    /// instruction schedule, and a cumulative timing calibration. Key
    /// generation and schedule lowering happen exactly once here, no matter
    /// how many requests the session serves afterwards.
    ///
    /// # Errors
    ///
    /// Returns an [`FheError`] if the context rejects the parameters or the
    /// packing-fallback encryption fails.
    pub fn session(&self, params: &BfvParameters) -> Result<FheSession, FheError> {
        FheSession::new(self, params)
    }

    /// Executes the program on the BFV backend, sequentially.
    ///
    /// `inputs` binds every scalar input variable to its clear value.
    ///
    /// Convenience shim: builds a throwaway [`FheSession`] and runs one
    /// request, paying key generation and schedule lowering per call. Loops
    /// and serving paths should hold a session and use [`FheSession::run`].
    ///
    /// # Errors
    ///
    /// Returns an [`FheError`] for missing Galois keys or other backend
    /// failures; an exhausted noise budget is *not* an error and is reported
    /// through [`ExecutionReport::decryption_ok`].
    pub fn execute(
        &self,
        inputs: &HashMap<String, i64>,
        params: &BfvParameters,
    ) -> Result<ExecutionReport, FheError> {
        self.session(params)?.run(inputs)
    }

    /// Executes the program with `threads` workers running the schedule's
    /// independent operations concurrently through the default (dataflow)
    /// scheduler — an operation starts the instant its operands are written.
    ///
    /// The result is bit-identical to [`CompiledProgram::execute`]: every
    /// homomorphic operation is a pure function of its operands, so only the
    /// wall-clock changes.
    ///
    /// Convenience shim over [`FheSession::run_parallel`] (one throwaway
    /// session per call).
    ///
    /// # Errors
    ///
    /// Same contract as [`CompiledProgram::execute`].
    pub fn execute_parallel(
        &self,
        inputs: &HashMap<String, i64>,
        params: &BfvParameters,
        threads: usize,
    ) -> Result<ExecutionReport, FheError> {
        self.session(params)?.run_parallel(
            inputs,
            &ExecOptions::sequential().with_threads_per_request(threads),
        )
    }

    /// Executes the program once per input set, in parallel across requests
    /// (and, optionally, across each request's wavefront): the two-level
    /// serving configuration. Keys, Galois keys and the instruction schedule
    /// are generated once and shared by every request.
    ///
    /// Results are returned in input order.
    ///
    /// Convenience shim over [`FheSession::run_batch`] (one throwaway
    /// session per call; the session outlives only this batch).
    ///
    /// # Errors
    ///
    /// Returns the first [`FheError`] any request hit.
    pub fn execute_batch(
        &self,
        input_sets: &[HashMap<String, i64>],
        params: &BfvParameters,
        options: &BatchOptions,
    ) -> Result<Vec<ExecutionReport>, FheError> {
        self.session(params)?
            .run_batch(input_sets, &ExecOptions::from(*options))
    }
}

/// The serving alias of [`chehab_runtime::ServingEngine`]: requests are
/// input bindings, responses are execution reports (or the error that
/// request hit). Built by [`FheSession::serve`].
pub type FheServingEngine = ServingEngine<HashMap<String, i64>, Result<ExecutionReport, FheError>>;

/// Point-in-time statistics of one [`FheSession`].
#[derive(Debug, Clone)]
pub struct SessionStats {
    /// One-time cost of building the FHE context, generating the key
    /// material (public, relinearization and Galois keys) and, for schedules
    /// with run-time packing, encrypting the packing-fallback zero
    /// ciphertext — paid at [`CompiledProgram::session`] time, never again.
    pub keygen_time: Duration,
    /// One-time cost of lowering the circuit DAG into the leveled
    /// instruction schedule.
    pub lowering_time: Duration,
    /// Requests served through this session so far (across `run`,
    /// `run_parallel`, `run_batch` and the serving engine).
    pub requests_served: u64,
    /// Galois keys held by the session.
    pub galois_key_count: usize,
    /// Wavefront levels of the session's schedule.
    pub schedule_levels: usize,
    /// Widest schedule level (the intra-request parallelism bound).
    pub schedule_width: usize,
    /// Cumulative measured per-operation-kind latencies across every request
    /// served so far (unlike `ExecutionReport::timing.per_op`, which covers
    /// one request).
    pub calibration: CalibratedCostModel,
}

/// The session's named metric handles, registered once at session build on
/// the session-owned [`MetricsRegistry`]. Two update disciplines coexist:
/// *live* handles (`requests`, `steals`) are bumped on the request path,
/// while *mirrored* handles are synced from their external source of truth
/// (arena pool counters, NTT transform counters, key-generator census) each
/// time the registry is read.
#[derive(Debug)]
struct SessionMetrics {
    registry: MetricsRegistry,
    requests: Counter,
    batches: Counter,
    lane_occupancy: Gauge,
    steals: Counter,
    arena_fresh: Counter,
    arena_reused: Counter,
    arena_retained: Gauge,
    ntt_forward: Counter,
    ntt_inverse: Counter,
    keygen_instances: Counter,
    galois_keys: Gauge,
    requests_cancelled: Counter,
    deadline_missed: Counter,
    requests_shed: Counter,
    worker_panics: Counter,
}

impl SessionMetrics {
    fn new() -> Self {
        let registry = MetricsRegistry::new();
        SessionMetrics {
            requests: registry.counter(
                "chehab_requests_served_total",
                "Requests served through this session",
            ),
            batches: registry.counter(
                "chehab_batches_formed_total",
                "Cross-request SIMD batches executed through this session",
            ),
            lane_occupancy: registry.gauge(
                "chehab_batch_lane_occupancy",
                "Lane occupancy of the most recent SIMD batch, percent of capacity",
            ),
            steals: registry.counter(
                "chehab_dataflow_steals_total",
                "Work-stealing pops across every dataflow-scheduled request",
            ),
            arena_fresh: registry.counter(
                "chehab_arena_fresh_allocations_total",
                "Buffer-pool misses of the session arena pool",
            ),
            arena_reused: registry.counter(
                "chehab_arena_reuses_total",
                "Buffer-pool hits of the session arena pool",
            ),
            arena_retained: registry.gauge(
                "chehab_arena_retained_buffers",
                "Warm buffers currently parked in the session arena pool",
            ),
            ntt_forward: registry.counter(
                "chehab_ntt_forward_transforms_total",
                "Forward NTT transforms executed by the session context",
            ),
            ntt_inverse: registry.counter(
                "chehab_ntt_inverse_transforms_total",
                "Inverse NTT transforms executed by the session context",
            ),
            keygen_instances: registry.counter(
                "chehab_keygen_instances_total",
                "KeyGenerator instances created process-wide",
            ),
            galois_keys: registry.gauge("chehab_galois_keys", "Galois keys held by the session"),
            requests_cancelled: registry.counter(
                "chehab_requests_cancelled_total",
                "Requests cancelled before or during execution across this session's engines",
            ),
            deadline_missed: registry.counter(
                "chehab_deadline_missed_total",
                "Requests whose deadline expired across this session's engines",
            ),
            requests_shed: registry.counter(
                "chehab_requests_shed_total",
                "Requests shed by admission control as deadline-infeasible",
            ),
            worker_panics: registry.counter(
                "chehab_worker_panics_total",
                "Serving-worker panics isolated across this session's engines",
            ),
            registry,
        }
    }
}

/// Appends one session-phase span (`bind` / `execute` / `decrypt`) to a
/// request's trace.
fn session_span(
    sink: &TraceSink,
    track: usize,
    name: &'static str,
    started: Instant,
    dur: Duration,
) {
    sink.push(SpanEvent {
        name,
        cat: "session",
        track,
        start_ns: sink.offset_ns(started),
        dur_ns: u64::try_from(dur.as_nanos()).unwrap_or(u64::MAX),
        instr: None,
        queue_wait_ns: None,
        grant: None,
        stolen_from: None,
    });
}

/// Everything one compiled program shares across executions under fixed
/// parameters: FHE context, key material, the leveled schedule, and a
/// cumulative timing calibration.
///
/// A session is built **once** per `(program, parameters)` pair by
/// [`CompiledProgram::session`]; every request served through it afterwards
/// pays only for input encryption, wavefront evaluation and decryption —
/// key generation and schedule lowering never rerun. Sessions are `Sync`:
/// [`FheSession::run_batch`] shares one across a request pool, and
/// [`FheSession::serve`] parks one behind a persistent request queue.
///
/// ```
/// use chehab_core::{Compiler, DslProgram};
/// use chehab_fhe::BfvParameters;
/// use std::collections::HashMap;
///
/// let mut p = DslProgram::new("square");
/// let x = p.ciphertext_input("x");
/// let out = &x * &x;
/// p.set_output(&out);
/// let compiled = Compiler::greedy().compile(p.name(), &p.lower());
///
/// // Keygen + schedule lowering happen here, once...
/// let session = compiled.session(&BfvParameters::insecure_test())?;
/// // ...and every request after that reuses them.
/// for value in 1..=4 {
///     let inputs: HashMap<String, i64> = [("x".to_string(), value)].into();
///     assert_eq!(session.run(&inputs)?.outputs[0], (value * value) as u64);
/// }
/// assert_eq!(session.stats().requests_served, 4);
/// # Ok::<(), chehab_fhe::FheError>(())
/// ```
#[derive(Debug)]
pub struct FheSession {
    /// Owned (not borrowed) so sessions are `'static` and self-contained —
    /// the serving engine's persistent worker threads require it.
    program: CompiledProgram,
    ctx: FheContext,
    public_key: chehab_fhe::PublicKey,
    decryptor: Decryptor,
    relin_keys: RelinKeys,
    galois_keys: GaloisKeys,
    schedule: Schedule,
    kinds: Vec<DataKind>,
    prebound: Vec<bool>,
    /// Capacity lane geometry of this program on this context: `stride` is
    /// the rotation-envelope span of one user's data, `lanes` how many users
    /// one ciphertext can carry ([`FheSession::batch_capacity`]). Computed
    /// once at session build by [`chehab_runtime::lane_geometry`].
    lanes: LaneGeometry,
    /// Packing fallback for degenerate `Vec` nodes; encrypted once per
    /// session, and only when the schedule contains a `Pack` instruction.
    zero: Option<Ciphertext>,
    /// Warm buffer arenas shared by every request served through this
    /// session: encryption, evaluation and decryption draw slot vectors and
    /// payload stripes from here and return them when their ciphertexts
    /// die, so steady-state requests perform zero fresh buffer allocations.
    arena_pool: ArenaPool,
    keygen_time: Duration,
    lowering_time: Duration,
    /// Measured per-op latencies accumulated across every request served.
    calibration: Mutex<CalibratedCostModel>,
    requests_served: AtomicU64,
    /// Resilience counters (cancelled / deadline-missed / shed / worker
    /// panics) shared with every serving engine this session starts, so the
    /// session's Prometheus registry aggregates across engines.
    resilience: Arc<ResilienceStats>,
    /// The session-owned metrics registry and its named handles (see
    /// [`FheSession::metrics`]).
    metrics: SessionMetrics,
}

impl FheSession {
    fn new(program: &CompiledProgram, params: &BfvParameters) -> Result<Self, FheError> {
        let keygen_started = Instant::now();
        let ctx = FheContext::new(params.clone())?;
        let mut keygen = KeyGenerator::new(ctx.params(), KEYGEN_SEED);
        let public_key = keygen.public_key();
        let decryptor = Decryptor::new(&ctx, &keygen.secret_key());
        let relin_keys = keygen.relin_keys();

        // Galois keys: the planned rotation keys plus the unit steps needed
        // for run-time packing. Packing at run time happens for every
        // ciphertext `Vec` node when the layout is applied after encryption,
        // and for `Vec` nodes with non-leaf elements even under the default
        // client-side layout.
        let mut steps: Vec<i64> = program.rotation_plan.keys.clone();
        let runtime_packed_arity = program
            .dag
            .nodes()
            .iter()
            .filter_map(|n| match n {
                DagNode::Vec(elems) => {
                    let all_leaves = elems.iter().all(|&e| program.dag.nodes()[e].is_leaf());
                    let packed_at_runtime = !program.layout_before_encryption || !all_leaves;
                    packed_at_runtime.then_some(elems.len())
                }
                _ => None,
            })
            .max()
            .unwrap_or(1);
        for i in 1..runtime_packed_arity as i64 {
            steps.push(-i);
        }
        let galois_keys = keygen.galois_keys(&steps);
        let mut keygen_time = keygen_started.elapsed();

        let lowering_started = Instant::now();
        let kinds = data_kinds(&program.dag);
        let prebound = program.prebound_mask(&kinds);
        let schedule = chehab_runtime::lower_with_default_costs(&program.dag, &prebound, |step| {
            program.rotation_plan.realize(step)
        });
        // Lane geometry for cross-request SIMD batching: bound every
        // register's slot excursion and size the stride so one user's
        // intermediates never leave its lane window.
        let mut widths = vec![0usize; program.dag.len()];
        let prebound_widths: Vec<usize> = (0..program.dag.len())
            .map(|id| {
                if prebound[id] {
                    structural_width(&program.dag, id, &mut widths)
                } else {
                    0
                }
            })
            .collect();
        let lanes = lane_geometry(
            &schedule,
            &prebound_widths,
            program.output_slots,
            ctx.slot_count(),
        );
        let lowering_time = lowering_started.elapsed();

        // The packing-fallback encryption is one-time session setup too.
        let zero_started = Instant::now();
        let zero = if schedule
            .instrs()
            .iter()
            .any(|si| matches!(si.instr, chehab_runtime::Instr::Pack { .. }))
        {
            Some(Encryptor::new(&ctx, &public_key).encrypt_values(&[0])?)
        } else {
            None
        };
        keygen_time += zero_started.elapsed();

        Ok(FheSession {
            program: program.clone(),
            ctx,
            public_key,
            decryptor,
            relin_keys,
            galois_keys,
            schedule,
            kinds,
            prebound,
            lanes,
            zero,
            arena_pool: ArenaPool::new(),
            keygen_time,
            lowering_time,
            calibration: Mutex::new(CalibratedCostModel::new()),
            requests_served: AtomicU64::new(0),
            resilience: Arc::new(ResilienceStats::default()),
            metrics: SessionMetrics::new(),
        })
    }

    /// Client-side phase: evaluates plaintext subcircuits and encrypts the
    /// inputs, producing the initial register file (untimed). The encryptor
    /// borrows a warm arena from the session pool, so steady-state input
    /// encryption allocates no fresh buffers.
    fn bind_registers(
        &self,
        inputs: &HashMap<String, i64>,
    ) -> Result<Vec<Option<Register>>, FheError> {
        let program = &self.program;
        let mut encryptor = Encryptor::new(&self.ctx, &self.public_key);
        encryptor.set_arena(self.arena_pool.checkout());
        let t = self.ctx.plain_modulus() as i64;
        let lookup = |name: &str| -> i64 { inputs.get(name).copied().unwrap_or(0).rem_euclid(t) };

        let mut registers: Vec<Option<Register>> = vec![None; program.dag.len()];
        let mut failure: Option<FheError> = None;
        for (id, node) in program.dag.nodes().iter().enumerate() {
            if !self.prebound[id] {
                continue;
            }
            if self.kinds[id] == DataKind::Plaintext {
                registers[id] = Some(Register::plain(plain_eval(node, &registers, &lookup, t)));
            } else if let DagNode::CtVar(name) = node {
                match encryptor.encrypt_values(&[lookup(name.as_str())]) {
                    Ok(ct) => registers[id] = Some(Register::cipher(ct)),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            } else if let DagNode::Vec(elems) = node {
                // Pack leaf-only vectors on the client before encryption.
                let values: Vec<i64> = elems
                    .iter()
                    .map(|&e| match &program.dag.nodes()[e] {
                        DagNode::CtVar(name) => lookup(name.as_str()),
                        DagNode::PtVar(name) => lookup(name.as_str()),
                        DagNode::Const(v) => *v,
                        _ => unreachable!("leaf-only vector"),
                    })
                    .collect();
                match encryptor.encrypt_values(&values) {
                    Ok(ct) => registers[id] = Some(Register::cipher(ct)),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            } else {
                unreachable!("pre-bound nodes are plaintext, inputs, or packed vectors")
            }
        }
        self.arena_pool.restore(encryptor.take_arena());
        match failure {
            Some(error) => Err(error),
            None => Ok(registers),
        }
    }

    /// Serves one request sequentially: client-side binding, the timed
    /// (leveled, single-worker) execution, and decryption. This is the
    /// stable measurement baseline; [`FheSession::run_parallel`] is
    /// bit-identical at every worker count and scheduler.
    ///
    /// # Errors
    ///
    /// Same contract as [`CompiledProgram::execute`].
    pub fn run(&self, inputs: &HashMap<String, i64>) -> Result<ExecutionReport, FheError> {
        self.run_with_options(inputs, 1, SchedulerKind::Leveled, None, None, None)
    }

    /// Serves one request with `options.threads_per_request` workers under
    /// `options.scheduler` — by default the barrier-free dataflow executor
    /// with critical-path priorities recomputed from the session's
    /// accumulated calibration. Results are bit-identical to
    /// [`FheSession::run`] at every worker count and scheduler.
    ///
    /// # Errors
    ///
    /// Same contract as [`CompiledProgram::execute`].
    pub fn run_parallel(
        &self,
        inputs: &HashMap<String, i64>,
        options: &ExecOptions,
    ) -> Result<ExecutionReport, FheError> {
        self.run_with_options(
            inputs,
            options.threads_per_request,
            options.scheduler,
            None,
            None,
            None,
        )
    }

    /// Serves one request like [`FheSession::run_parallel`] under an
    /// external [`CancellationToken`] and an optional deterministic
    /// [`FaultPlan`]: the token (and the plan's own faults) are checked at
    /// **every instruction dispatch**, so cancelling the token — or its
    /// deadline expiring — stops the executors from scheduling any further
    /// instruction, releases the request's registers and arena buffers back
    /// to the session pool, and returns
    /// [`FheError::Cancelled`](chehab_fhe::FheError::Cancelled) /
    /// [`FheError::DeadlineExceeded`](chehab_fhe::FheError::DeadlineExceeded).
    ///
    /// A cancelled or faulted request contributes **nothing** to the
    /// session's cumulative calibration (partial timings would skew the
    /// cost feedback loop).
    ///
    /// # Errors
    ///
    /// Same contract as [`CompiledProgram::execute`], plus the
    /// cancellation/deadline/panic variants above.
    pub fn run_resilient(
        &self,
        inputs: &HashMap<String, i64>,
        options: &ExecOptions,
        cancel: Option<&CancellationToken>,
        faults: Option<&FaultPlan>,
    ) -> Result<ExecutionReport, FheError> {
        self.run_with_options(
            inputs,
            options.threads_per_request,
            options.scheduler,
            None,
            cancel,
            faults,
        )
    }

    /// Serves one request exactly like [`FheSession::run_parallel`] while
    /// capturing a full structured trace of it: one session track carrying
    /// the `bind` / `execute` / `decrypt` phase spans plus one track per
    /// executor worker carrying instruction-level spans (operation label,
    /// instruction index, queue wait, intra-op thread grant, steal
    /// provenance).
    ///
    /// Tracing only *observes* timings: the report — outputs, operation
    /// stats, noise figures — is bit-identical to an untraced run. Export
    /// the returned [`Trace`] with [`Trace::to_chrome_json`] and load it in
    /// `chrome://tracing` or <https://ui.perfetto.dev>.
    ///
    /// # Errors
    ///
    /// Same contract as [`CompiledProgram::execute`].
    pub fn trace_request(
        &self,
        inputs: &HashMap<String, i64>,
        options: &ExecOptions,
    ) -> Result<(ExecutionReport, Trace), FheError> {
        let sink = TraceSink::new();
        let report = self.run_with_options(
            inputs,
            options.threads_per_request,
            options.scheduler,
            Some(&sink),
            None,
            None,
        )?;
        Ok((report, sink.into_trace()))
    }

    /// Serves one closed batch of requests through this session:
    /// `options.request_threads` pool workers, each request executing with
    /// `options.threads_per_request` wavefront workers. Results are returned
    /// in input order.
    ///
    /// For open-ended traffic (requests arriving over time), use
    /// [`FheSession::serve`] instead.
    ///
    /// # Errors
    ///
    /// Returns the first [`FheError`] any request hit.
    pub fn run_batch(
        &self,
        input_sets: &[HashMap<String, i64>],
        options: &ExecOptions,
    ) -> Result<Vec<ExecutionReport>, FheError> {
        let pool = BatchExecutor::new(options.request_threads);
        let reports = pool.run(input_sets.to_vec(), |_, inputs| {
            self.run_with_options(
                &inputs,
                options.threads_per_request,
                options.scheduler,
                None,
                None,
                None,
            )
        });
        reports.into_iter().collect()
    }

    /// Starts a persistent serving engine over this session: a bounded
    /// request queue (`options.queue_capacity`) drained by
    /// `options.request_threads` long-lived worker threads, each request
    /// executing with `options.threads_per_request` workers under
    /// `options.scheduler`.
    ///
    /// `submit` returns a [`chehab_runtime::RequestHandle`] immediately;
    /// `wait`/`try_poll` retrieve that request's report, so callers observe
    /// submission order even when completions are out of order. `shutdown`
    /// drains in-flight work and reports queue/throughput stats; the
    /// cumulative per-op timing lives in [`FheSession::stats`] on the shared
    /// session. Each served request's scheduler counters (steals, queue
    /// waits, reclaimed barrier slack) and measured per-operation-kind
    /// latencies are recorded into the engine's [`SchedulerMetrics`] sink
    /// and surface in [`chehab_runtime::ServingStats::scheduler`] and
    /// [`chehab_runtime::ServingStats::latency`].
    pub fn serve(self: &Arc<Self>, options: &ExecOptions) -> FheServingEngine {
        self.serve_traced(options, None)
    }

    /// Like [`FheSession::serve`], with an optional shared [`TraceSink`]:
    /// when set, every serving worker records one request-level span per
    /// served job (with its queue wait attached) on its own trace track, so
    /// a whole serving run exports as a request timeline. Instruction-level
    /// spans are deliberately *not* recorded here — each executor run would
    /// allocate fresh worker tracks, unbounded over an open request stream;
    /// use [`FheSession::trace_request`] for a per-request deep dive.
    ///
    /// The caller keeps a clone of the `Arc` and turns it into a
    /// [`Trace`] (via [`TraceSink::into_trace`], after `shutdown` and
    /// unwrapping the `Arc`) once the engine is done.
    pub fn serve_traced(
        self: &Arc<Self>,
        options: &ExecOptions,
        trace: Option<Arc<TraceSink>>,
    ) -> FheServingEngine {
        self.serve_resilient(options, trace, None)
    }

    /// Like [`FheSession::serve_traced`], with an optional deterministic
    /// [`FaultPlan`]: submission-side faults (forced queue-full rejections,
    /// worker kills) are drawn by the engine, and the same plan is threaded
    /// into every request's executor run so instruction-level faults
    /// (planned panics, latency spikes, mid-flight cancellations) fire
    /// hermetically. Every request's [`CancellationToken`] — stamped with
    /// `options.deadline` at enqueue — is checked at instruction dispatch,
    /// so cancelled or expired requests stop scheduling work mid-flight and
    /// resolve with
    /// [`FheError::Cancelled`](chehab_fhe::FheError::Cancelled) /
    /// [`FheError::DeadlineExceeded`](chehab_fhe::FheError::DeadlineExceeded).
    ///
    /// Requests that fail for any reason (cancel, deadline, injected or
    /// organic panic) never feed the session's cumulative calibration.
    pub fn serve_resilient(
        self: &Arc<Self>,
        options: &ExecOptions,
        trace: Option<Arc<TraceSink>>,
        faults: Option<FaultPlan>,
    ) -> FheServingEngine {
        let session = Arc::clone(self);
        let threads_per_request = options.threads_per_request;
        let scheduler = options.scheduler;
        let metrics = Arc::new(SchedulerMetrics::default());
        let sink = Arc::clone(&metrics);
        let exec_faults = faults.clone();
        let panic_stats = Arc::clone(&self.resilience);
        ServingEngine::with_resilience(
            ServingConfig {
                workers: options.request_threads,
                queue_capacity: options.queue_capacity,
                deadline: options.deadline,
                shed_infeasible: options.shed_infeasible,
                faults,
            },
            metrics,
            trace,
            Arc::clone(&self.resilience),
            move |_, inputs: HashMap<String, i64>, token: &CancellationToken| {
                let result = session.run_with_options(
                    &inputs,
                    threads_per_request,
                    scheduler,
                    None,
                    Some(token),
                    exec_faults.as_ref(),
                );
                // Instruction-level panics are isolated inside the executors
                // and surface as a clean `Err` return, invisible to the
                // engine's own handler-panic accounting — count them here.
                if let Err(FheError::WorkerPanic { .. }) = &result {
                    panic_stats.note_worker_panic();
                }
                if let Ok(report) = &result {
                    sink.record(
                        report.timing.steals,
                        report.timing.reclaimed_slack,
                        &report.timing.queue_waits,
                    );
                    // Per-op-kind latency histograms: label every measured
                    // instruction span with its schedule operation. (The
                    // leveled scheduler reports no per-instruction spans, so
                    // the zip is empty there and only the dataflow path
                    // populates the histograms.)
                    sink.record_op_samples(
                        session
                            .schedule
                            .instrs()
                            .iter()
                            .zip(report.timing.instr_times.iter().copied())
                            .map(|(si, time)| (si.instr.label(), time)),
                    );
                }
                result
            },
        )
    }

    /// The program this session serves.
    pub fn program(&self) -> &CompiledProgram {
        &self.program
    }

    /// The parameters the session's context was built with.
    pub fn params(&self) -> &BfvParameters {
        self.ctx.params()
    }

    /// Number of RNS limbs every payload stripe in this session carries
    /// (1 on the single-modulus Goldilocks path).
    pub fn limb_count(&self) -> usize {
        self.ctx.params().limb_count
    }

    /// The session's leveled instruction schedule (lowered once at session
    /// construction).
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// Point-in-time session statistics: one-time setup costs, requests
    /// served, and the cumulative timing calibration.
    pub fn stats(&self) -> SessionStats {
        SessionStats {
            keygen_time: self.keygen_time,
            lowering_time: self.lowering_time,
            requests_served: self.requests_served.load(Ordering::Relaxed),
            galois_key_count: self.galois_keys.key_count(),
            schedule_levels: self.schedule.level_count(),
            schedule_width: self.schedule.max_width(),
            calibration: self.calibration.lock().unwrap().clone(),
        }
    }

    /// Snapshot of the cumulative measured per-operation latencies across
    /// every request served so far.
    pub fn calibration(&self) -> CalibratedCostModel {
        self.calibration.lock().unwrap().clone()
    }

    /// Projects the cumulative calibration into a full cost model (the
    /// timer-augmented feedback loop: hand this to the greedy/RL optimizer
    /// to rank rewrites by observed hardware cost).
    pub fn calibrated_cost_model(&self, base: &CostModel) -> CostModel {
        self.calibration.lock().unwrap().to_cost_model(base)
    }

    /// Syncs the mirrored metric handles from their sources of truth: the
    /// session arena pool's allocation counters, the context's NTT transform
    /// counters, and the process-wide key-generator census. Live handles
    /// (requests served, dataflow steals) are bumped on the request path and
    /// need no sync.
    fn refresh_metrics(&self) {
        let m = &self.metrics;
        let arena = self.arena_pool.alloc_stats();
        m.arena_fresh.store(arena.fresh_allocations);
        m.arena_reused.store(arena.reuses);
        m.arena_retained.set(self.arena_pool.retained() as f64);
        let transforms = self.ctx.transform_stats();
        m.ntt_forward.store(transforms.forward);
        m.ntt_inverse.store(transforms.inverse);
        m.keygen_instances.store(KeyGenerator::instances_created());
        m.galois_keys.set(self.galois_keys.key_count() as f64);
        let resilience = self.resilience.snapshot();
        m.requests_cancelled.store(resilience.cancelled);
        m.deadline_missed.store(resilience.deadline_missed);
        m.requests_shed.store(resilience.shed);
        m.worker_panics.store(resilience.worker_panics);
    }

    /// Cumulative resilience counters (cancelled / deadline-missed / shed /
    /// worker panics) aggregated across every serving engine this session
    /// has started. The same figures surface as
    /// `chehab_requests_cancelled_total`, `chehab_deadline_missed_total`,
    /// `chehab_requests_shed_total` and `chehab_worker_panics_total` in
    /// [`FheSession::metrics`].
    pub fn resilience(&self) -> ResilienceSnapshot {
        self.resilience.snapshot()
    }

    /// The session's unified metrics registry, freshly synced: request and
    /// dataflow-steal counters recorded live on the request path, arena
    /// fresh/reuse/retained figures from the session pool, NTT transform
    /// counts from the context, the process-wide key-generator census, and
    /// the Galois-key gauge. Render it with
    /// [`MetricsRegistry::render_text`] (or use the
    /// [`FheSession::render_metrics`] shorthand).
    pub fn metrics(&self) -> &MetricsRegistry {
        self.refresh_metrics();
        &self.metrics.registry
    }

    /// The session's metrics in the Prometheus text exposition format
    /// (synced first, like [`FheSession::metrics`]).
    pub fn render_metrics(&self) -> String {
        self.metrics().render_text()
    }

    /// Runs one request: client-side binding, the timed scheduled execution
    /// (leveled wavefront or barrier-free dataflow), and decryption, then
    /// folds the request's measurements into the session's cumulative
    /// calibration. With a [`TraceSink`] installed, the phases are recorded
    /// as `session`-category spans and the executors record
    /// instruction-level spans on per-worker tracks.
    fn run_with_options(
        &self,
        inputs: &HashMap<String, i64>,
        threads: usize,
        scheduler: SchedulerKind,
        trace: Option<&TraceSink>,
        cancel: Option<&CancellationToken>,
        faults: Option<&FaultPlan>,
    ) -> Result<ExecutionReport, FheError> {
        let program = &self.program;
        let session_track = trace.map(|sink| sink.allocate_track("session"));

        // Fail fast on a token that is already dead — before paying for
        // input encryption.
        if let Some(token) = cancel {
            token.check()?;
        }
        let bind_started = Instant::now();
        let registers = self.bind_registers(inputs)?;
        if let (Some(sink), Some(track)) = (trace, session_track) {
            session_span(sink, track, "bind", bind_started, bind_started.elapsed());
        }
        // --- server side: execute the scheduled operations (timed).
        let started = Instant::now();
        let outcome =
            self.execute_schedule(registers, threads, scheduler, trace, None, cancel, faults)?;
        let server_time = started.elapsed();
        if let (Some(sink), Some(track)) = (trace, session_track) {
            session_span(sink, track, "execute", started, server_time);
        }

        let decrypt_started = Instant::now();
        let t = self.ctx.plain_modulus() as i64;
        let (outputs, noise_consumed, decryption_ok) = match outcome.output {
            Register::Cipher(ct) => {
                let consumed = ct.noise_consumed_bits();
                // Lean decryption: read the live output slots straight off
                // the ciphertext (no Plaintext allocation), then recycle the
                // output's buffers into the session pool.
                let decrypted = match self.decryptor.decrypt_slots(&ct) {
                    Ok(slots) => Ok((
                        slots.iter().copied().take(program.output_slots).collect(),
                        consumed,
                        true,
                    )),
                    Err(FheError::NoiseBudgetExhausted { .. }) => Ok((Vec::new(), consumed, false)),
                    Err(other) => Err(other),
                };
                if let Ok(ciphertext) = Arc::try_unwrap(ct) {
                    self.arena_pool.recycle(ciphertext);
                }
                decrypted?
            }
            Register::Plain(values) => (
                values
                    .values()
                    .iter()
                    .map(|&v| v.rem_euclid(t) as u64)
                    .take(program.output_slots)
                    .collect(),
                0.0,
                true,
            ),
        };

        if let (Some(sink), Some(track)) = (trace, session_track) {
            session_span(
                sink,
                track,
                "decrypt",
                decrypt_started,
                decrypt_started.elapsed(),
            );
        }

        self.calibration
            .lock()
            .unwrap()
            .merge(&outcome.timing.per_op);
        self.requests_served.fetch_add(1, Ordering::Relaxed);
        self.metrics.requests.inc();
        self.metrics.steals.add(outcome.timing.steals);

        Ok(ExecutionReport {
            outputs,
            server_time,
            noise_budget_consumed: noise_consumed,
            noise_budget_remaining: (self.ctx.params().fresh_noise_budget_bits() - noise_consumed)
                .max(0.0),
            operation_stats: outcome.stats,
            galois_key_count: self.galois_keys.key_count(),
            decryption_ok,
            timing: outcome.timing,
        })
    }

    /// Runs the session schedule over an already-bound register file:
    /// executor dispatch (leveled wavefront or dataflow with calibrated
    /// critical-path priorities) shared by the unbatched and batched paths.
    #[allow(clippy::too_many_arguments)]
    fn execute_schedule(
        &self,
        registers: Vec<Option<Register>>,
        threads: usize,
        scheduler: SchedulerKind,
        trace: Option<&TraceSink>,
        lanes: Option<LaneGeometry>,
        cancel: Option<&CancellationToken>,
        faults: Option<&FaultPlan>,
    ) -> Result<WavefrontOutcome, FheError> {
        let resources = ExecResources {
            ctx: &self.ctx,
            relin_keys: &self.relin_keys,
            galois_keys: &self.galois_keys,
            zero: self.zero.as_ref(),
            arenas: &self.arena_pool,
            trace,
            lanes,
            cancel,
            faults,
        };
        match scheduler {
            SchedulerKind::Leveled => {
                WavefrontExecutor::new(threads).execute(&self.schedule, registers, &resources)
            }
            SchedulerKind::Dataflow => {
                // Critical-path priorities under the *calibrated* cost table:
                // the ready queue ranks instructions by measured hardware
                // cost, sharpening as the session accumulates samples (and
                // falling back to the static estimates on a cold session).
                let costs = self
                    .calibration
                    .lock()
                    .unwrap()
                    .to_op_costs(&CostModel::default().op_costs);
                let priorities = self.schedule.critical_path_priorities(&costs);
                DataflowExecutor::new(threads).execute_with_priorities(
                    &self.schedule,
                    registers,
                    &resources,
                    &priorities,
                )
            }
        }
    }

    /// The lane stride of this program on this context: the slot distance
    /// between consecutive users' windows in a batched execution (the
    /// rotation-envelope span of one user's data).
    pub fn lane_stride(&self) -> usize {
        self.lanes.stride
    }

    /// How many users one ciphertext can carry under this program's lane
    /// stride (`slot_count / stride`, at least 1). The effective batch bound
    /// of [`FheSession::run_batched`] is the minimum of this and the
    /// policy's `max_batch`.
    pub fn batch_capacity(&self) -> usize {
        self.lanes.lanes
    }

    /// Client-side phase of a batched execution: binds `input_sets.len()`
    /// users into **shared** registers, user `k` based at slot `k * stride`.
    ///
    /// Plaintext subcircuits are evaluated per user on per-user scratch
    /// (plaintext semantics — `Vec` reads first slots, rotations
    /// zero-fill — are not translation-equivariant across a flattened
    /// array), then the per-user results are flattened at the lane stride.
    /// Ciphertext inputs encrypt **once** per register with all users'
    /// values placed at their lane bases, which is where the batched
    /// amortization comes from. With one input set this degenerates to
    /// exactly the [`FheSession::bind_registers`] layout: same values, same
    /// encryption call order, hence bit-identical ciphertexts.
    fn bind_batched(
        &self,
        input_sets: &[&HashMap<String, i64>],
    ) -> Result<Vec<Option<Register>>, FheError> {
        let program = &self.program;
        let stride = self.lanes.stride;
        let users = input_sets.len();
        debug_assert!(users >= 1 && users <= self.lanes.lanes);
        let mut encryptor = Encryptor::new(&self.ctx, &self.public_key);
        encryptor.set_arena(self.arena_pool.checkout());
        let t = self.ctx.plain_modulus() as i64;
        let lookup = |inputs: &HashMap<String, i64>, name: &str| -> i64 {
            inputs.get(name).copied().unwrap_or(0).rem_euclid(t)
        };

        // Per-user scratch register files carry the unflattened plaintext
        // intermediates `plain_eval` recurses through.
        let mut scratch: Vec<Vec<Option<Register>>> = vec![vec![None; program.dag.len()]; users];
        let mut registers: Vec<Option<Register>> = vec![None; program.dag.len()];
        let mut failure: Option<FheError> = None;
        for (id, node) in program.dag.nodes().iter().enumerate() {
            if !self.prebound[id] {
                continue;
            }
            if self.kinds[id] == DataKind::Plaintext {
                // Evaluate per user, then flatten at the lane stride. The
                // result width is structure-determined, so every user's
                // vector has the same length.
                let mut flat: Vec<i64> = Vec::new();
                for (lane, inputs) in input_sets.iter().enumerate() {
                    let values = plain_eval(node, &scratch[lane], &|n| lookup(inputs, n), t);
                    flat.resize(lane * stride + values.len(), 0);
                    flat[lane * stride..].copy_from_slice(&values);
                    scratch[lane][id] = Some(Register::plain(values));
                }
                registers[id] = Some(Register::plain(flat));
            } else if let DagNode::CtVar(name) = node {
                let mut flat = vec![0i64; (users - 1) * stride + 1];
                for (lane, inputs) in input_sets.iter().enumerate() {
                    flat[lane * stride] = lookup(inputs, name.as_str());
                }
                match encryptor.encrypt_values(&flat) {
                    Ok(ct) => registers[id] = Some(Register::cipher(ct)),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            } else if let DagNode::Vec(elems) = node {
                // Leaf-only vectors: every user's elements at its lane base.
                let mut flat = vec![0i64; (users - 1) * stride + elems.len().max(1)];
                for (lane, inputs) in input_sets.iter().enumerate() {
                    for (i, &e) in elems.iter().enumerate() {
                        flat[lane * stride + i] = match &program.dag.nodes()[e] {
                            DagNode::CtVar(name) => lookup(inputs, name.as_str()),
                            DagNode::PtVar(name) => lookup(inputs, name.as_str()),
                            DagNode::Const(v) => *v,
                            _ => unreachable!("leaf-only vector"),
                        };
                    }
                }
                match encryptor.encrypt_values(&flat) {
                    Ok(ct) => registers[id] = Some(Register::cipher(ct)),
                    Err(e) => {
                        failure = Some(e);
                        break;
                    }
                }
            } else {
                unreachable!("pre-bound nodes are plaintext, inputs, or packed vectors")
            }
        }
        self.arena_pool.restore(encryptor.take_arena());
        match failure {
            Some(error) => Err(error),
            None => Ok(registers),
        }
    }

    /// Serves a closed set of requests through **cross-request SIMD
    /// batching**: up to `min(batch_capacity, policy.max_batch)` users are
    /// packed into the slot lanes of shared ciphertexts and the program
    /// executes *once* per chunk, amortizing every homomorphic operation
    /// across the whole chunk. Per-user results are scattered back at
    /// decrypt from each user's lane window, in input order.
    ///
    /// The policy comes from `options.batching` (defaulting to
    /// [`BatchPolicy::default`] when unset). Outputs are bit-identical per
    /// user to [`FheSession::run`]; each user's report carries the chunk's
    /// shared server time and operation stats (the whole point: one
    /// execution, many users).
    ///
    /// # Errors
    ///
    /// Same contract as [`CompiledProgram::execute`]; an error fails the
    /// entire call.
    pub fn run_batched(
        &self,
        input_sets: &[HashMap<String, i64>],
        options: &ExecOptions,
    ) -> Result<Vec<ExecutionReport>, FheError> {
        let policy = options.batching.unwrap_or_default();
        // The Coyote lane-assignment machinery validates the geometry and
        // owns the base/chunk math; the stride always fits by construction.
        let assignment =
            LaneAssignment::new(self.ctx.slot_count(), self.lanes.stride, self.lanes.stride)
                .expect("session lane geometry is valid by construction");
        let capacity = assignment.lane_count().min(policy.max_batch).max(1);
        let t = self.ctx.plain_modulus() as i64;
        let output_slots = self.program.output_slots;

        let mut reports: Vec<ExecutionReport> = Vec::with_capacity(input_sets.len());
        for chunk in input_sets.chunks(capacity) {
            let users: Vec<&HashMap<String, i64>> = chunk.iter().collect();
            let registers = self.bind_batched(&users)?;
            let started = Instant::now();
            let outcome = self.execute_schedule(
                registers,
                options.threads_per_request,
                options.scheduler,
                None,
                Some(LaneGeometry {
                    stride: self.lanes.stride,
                    lanes: users.len(),
                }),
                None,
                None,
            )?;
            let server_time = started.elapsed();

            // Scatter: each user reads its own lane window of the shared
            // output.
            let per_user: Vec<(Vec<u64>, f64, bool)> = match outcome.output {
                Register::Cipher(ct) => {
                    let consumed = ct.noise_consumed_bits();
                    let mut scattered = Vec::with_capacity(users.len());
                    let mut decrypt_error = None;
                    for lane in 0..users.len() {
                        let base = assignment.base(lane);
                        let end = (base + output_slots).min(self.ctx.slot_count());
                        match self.decryptor.decrypt_slots_in(&ct, base..end) {
                            Ok(window) => scattered.push((window.to_vec(), consumed, true)),
                            Err(FheError::NoiseBudgetExhausted { .. }) => {
                                scattered.push((Vec::new(), consumed, false));
                            }
                            Err(other) => {
                                decrypt_error = Some(other);
                                break;
                            }
                        }
                    }
                    if let Ok(ciphertext) = Arc::try_unwrap(ct) {
                        self.arena_pool.recycle(ciphertext);
                    }
                    if let Some(error) = decrypt_error {
                        return Err(error);
                    }
                    scattered
                }
                Register::Plain(values) => (0..users.len())
                    .map(|lane| {
                        let base = assignment.base(lane);
                        let window: Vec<u64> = values
                            .values()
                            .iter()
                            .skip(base)
                            .take(output_slots)
                            .map(|&v| v.rem_euclid(t) as u64)
                            .collect();
                        (window, 0.0, true)
                    })
                    .collect(),
            };

            self.calibration
                .lock()
                .unwrap()
                .merge(&outcome.timing.per_op);
            self.requests_served
                .fetch_add(users.len() as u64, Ordering::Relaxed);
            self.metrics.requests.add(users.len() as u64);
            self.metrics.batches.inc();
            self.metrics
                .lane_occupancy
                .set(100.0 * users.len() as f64 / capacity as f64);

            for (outputs, noise_consumed, decryption_ok) in per_user {
                reports.push(ExecutionReport {
                    outputs,
                    server_time,
                    noise_budget_consumed: noise_consumed,
                    noise_budget_remaining: (self.ctx.params().fresh_noise_budget_bits()
                        - noise_consumed)
                        .max(0.0),
                    operation_stats: outcome.stats,
                    galois_key_count: self.galois_keys.key_count(),
                    decryption_ok,
                    timing: outcome.timing.clone(),
                });
            }
        }
        Ok(reports)
    }

    /// Starts a [`RequestCoalescer`] over this session: submitted requests
    /// gather under `options.batching` (defaulting to
    /// [`BatchPolicy::default`]) — flushing on a full batch, the linger
    /// bound, or a member's deadline — then execute **once** per batch
    /// through [`FheSession::run_batched`] and scatter per-user reports to
    /// their [`chehab_runtime::RequestHandle`]s.
    ///
    /// The coalescer's lane capacity is clamped to
    /// [`FheSession::batch_capacity`]; a batch-level [`FheError`] is
    /// replicated to every member's handle.
    pub fn serve_batched(
        self: &Arc<Self>,
        options: &ExecOptions,
    ) -> RequestCoalescer<HashMap<String, i64>, Result<ExecutionReport, FheError>> {
        let policy = options.batching.unwrap_or_default();
        let capacity = self.batch_capacity().min(policy.max_batch).max(1);
        let session = Arc::clone(self);
        let exec = *options;
        RequestCoalescer::new(
            CoalescerConfig {
                policy,
                // One gather worker keeps batches maximal; intra-batch
                // parallelism comes from `threads_per_request`.
                workers: 1,
                queue_capacity: options.queue_capacity,
                lane_capacity: capacity,
            },
            move |batch: Vec<(u64, HashMap<String, i64>)>| {
                let inputs: Vec<HashMap<String, i64>> =
                    batch.into_iter().map(|(_, inputs)| inputs).collect();
                match session.run_batched(&inputs, &exec) {
                    Ok(reports) => reports.into_iter().map(Ok).collect(),
                    Err(error) => inputs.iter().map(|_| Err(error.clone())).collect(),
                }
            },
        )
    }
}

/// Conservative per-register slot width of a pre-bound DAG node: scalars
/// occupy one slot, packed vectors their element count, everything else the
/// maximum of its operands. Feeds [`chehab_runtime::lane_geometry`].
fn structural_width(dag: &CircuitDag, id: usize, widths: &mut Vec<usize>) -> usize {
    if widths[id] != 0 {
        return widths[id];
    }
    let w = match &dag.nodes()[id] {
        DagNode::CtVar(_) | DagNode::PtVar(_) | DagNode::Const(_) => 1,
        DagNode::Vec(elems) => elems.len().max(1),
        node => node
            .operands()
            .into_iter()
            .map(|op| structural_width(dag, op, widths))
            .max()
            .unwrap_or(1),
    };
    widths[id] = w;
    w
}

/// The result of executing a compiled program.
#[derive(Debug, Clone)]
pub struct ExecutionReport {
    /// Decrypted output slots (empty if decryption failed).
    pub outputs: Vec<u64>,
    /// Wall-clock time of the server-side homomorphic evaluation.
    pub server_time: Duration,
    /// Invariant-noise budget consumed by the output ciphertext, in bits.
    pub noise_budget_consumed: f64,
    /// Remaining noise budget, in bits.
    pub noise_budget_remaining: f64,
    /// Homomorphic operations executed, by category.
    pub operation_stats: EvaluatorStats,
    /// Number of Galois keys generated for the run.
    pub galois_key_count: usize,
    /// `false` when the noise budget was exhausted and decryption failed.
    pub decryption_ok: bool,
    /// Per-operation-kind timing breakdown — per-level walls under the
    /// leveled scheduler, per-instruction queue waits / steals / reclaimed
    /// barrier slack under the dataflow scheduler — including the measured
    /// latencies a [`chehab_runtime::CalibratedCostModel`] feeds back into
    /// the optimizer's cost model.
    pub timing: TimingBreakdown,
}

/// Client-side evaluation of a plaintext-only node.
fn plain_eval(
    node: &DagNode,
    registers: &[Option<Register>],
    lookup: &impl Fn(&str) -> i64,
    modulus: i64,
) -> Vec<i64> {
    let operand = |i: usize| -> Vec<i64> {
        match registers[i]
            .as_ref()
            .expect("plaintext operands precede their uses")
        {
            Register::Plain(v) => v.values().to_vec(),
            Register::Cipher(_) => unreachable!("plaintext node with ciphertext operand"),
        }
    };
    let reduce = |v: i64| v.rem_euclid(modulus);
    match node {
        DagNode::CtVar(name) | DagNode::PtVar(name) => vec![reduce(lookup(name.as_str()))],
        DagNode::Const(v) => vec![reduce(*v)],
        DagNode::Bin(op, a, b) | DagNode::VecBin(op, a, b) => {
            let (x, y) = (operand(*a), operand(*b));
            let len = x.len().max(y.len());
            (0..len)
                .map(|i| {
                    let xi = x.get(i).copied().unwrap_or(0);
                    let yi = y.get(i).copied().unwrap_or(0);
                    reduce(match op {
                        BinOp::Add => xi + yi,
                        BinOp::Sub => xi - yi,
                        BinOp::Mul => ((xi as i128 * yi as i128) % modulus as i128) as i64,
                    })
                })
                .collect()
        }
        DagNode::Neg(a) | DagNode::VecNeg(a) => operand(*a).iter().map(|&v| reduce(-v)).collect(),
        DagNode::Vec(elems) => elems
            .iter()
            .map(|&e| operand(e).first().copied().unwrap_or(0))
            .collect(),
        DagNode::Rot(a, step) => {
            let v: Vec<u64> = operand(*a)
                .iter()
                .map(|&x| x.rem_euclid(modulus) as u64)
                .collect();
            chehab_ir::shift_zero_fill(&v, *step)
                .into_iter()
                .map(|x| x as i64)
                .collect()
        }
    }
}

/// Builds an empty [`CompileStats`] for circuits produced outside the CHEHAB
/// pipeline (e.g. the Coyote baseline), with both summaries taken from the
/// same circuit.
pub fn external_compile_stats(circuit: &Expr, compile_time: Duration) -> CompileStats {
    let summary = chehab_ir::summarize(circuit);
    let cost = chehab_ir::CostModel::default().cost(circuit);
    CompileStats {
        compile_time,
        cost_before: cost,
        cost_after: cost,
        optimizer_steps: 0,
        summary_before: summary,
        summary_after: summary,
    }
}

/// Convenience: the number of live output slots of a program.
pub fn output_slots_of(program: &Expr) -> usize {
    program.ty().map(Ty::slots).unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rotation_keys::select_rotation_keys;
    use chehab_ir::parse;

    fn compile_raw(circuit: &str, layout_before: bool) -> CompiledProgram {
        let circuit = parse(circuit).unwrap();
        let steps: Vec<i64> = chehab_ir::rotation_steps(&circuit)
            .keys()
            .copied()
            .collect();
        let plan = select_rotation_keys(&steps, 28);
        let slots = output_slots_of(&circuit);
        CompiledProgram::from_circuit(
            "test",
            circuit.clone(),
            slots,
            plan,
            layout_before,
            external_compile_stats(&circuit, Duration::from_millis(1)),
        )
    }

    fn run(program: &CompiledProgram, bindings: &[(&str, i64)]) -> ExecutionReport {
        let inputs: HashMap<String, i64> =
            bindings.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        program
            .execute(&inputs, &BfvParameters::insecure_test())
            .unwrap()
    }

    #[test]
    fn executes_a_vectorized_circuit_correctly() {
        let program = compile_raw("(VecMul (Vec a c) (Vec b d))", true);
        let report = run(&program, &[("a", 2), ("b", 3), ("c", 4), ("d", 5)]);
        assert!(report.decryption_ok);
        assert_eq!(report.outputs, vec![6, 20]);
        assert_eq!(report.operation_stats.ct_ct_multiplications, 1);
        assert!(report.noise_budget_remaining > 0.0);
    }

    #[test]
    fn executes_rotations_and_reductions() {
        // Dot product of length 4 via rotate-and-add.
        let circuit = "(VecAdd (VecAdd (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) (<< (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) 2)) (<< (VecAdd (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) (<< (VecMul (Vec a0 a1 a2 a3) (Vec b0 b1 b2 b3)) 2)) 1))";
        let program = compile_raw(circuit, true);
        let report = run(
            &program,
            &[
                ("a0", 1),
                ("a1", 2),
                ("a2", 3),
                ("a3", 4),
                ("b0", 5),
                ("b1", 6),
                ("b2", 7),
                ("b3", 8),
            ],
        );
        // 1*5 + 2*6 + 3*7 + 4*8 = 70 in slot 0.
        assert_eq!(report.outputs[0], 70);
        assert!(report.operation_stats.rotations >= 2);
    }

    #[test]
    fn ct_pt_operations_use_plain_variants() {
        let program = compile_raw("(VecMul (Vec a b) (Vec 3 4))", true);
        let report = run(&program, &[("a", 5), ("b", 6)]);
        assert_eq!(report.outputs, vec![15, 24]);
        assert_eq!(report.operation_stats.ct_ct_multiplications, 0);
        assert_eq!(report.operation_stats.ct_pt_multiplications, 1);
    }

    #[test]
    fn scalar_programs_report_slot_zero() {
        let program = compile_raw("(* (+ a b) c)", true);
        let report = run(&program, &[("a", 2), ("b", 3), ("c", 4)]);
        assert_eq!(report.outputs, vec![20]);
    }

    #[test]
    fn layout_after_encryption_costs_extra_rotations() {
        let circuit = "(VecAdd (Vec a b c d) (Vec e f g h))";
        let before = compile_raw(circuit, true);
        let after = compile_raw(circuit, false);
        let bindings: Vec<(&str, i64)> = vec![
            ("a", 1),
            ("b", 2),
            ("c", 3),
            ("d", 4),
            ("e", 5),
            ("f", 6),
            ("g", 7),
            ("h", 8),
        ];
        let report_before = run(&before, &bindings);
        let report_after = run(&after, &bindings);
        assert_eq!(report_before.outputs, vec![6, 8, 10, 12]);
        assert_eq!(report_after.outputs, vec![6, 8, 10, 12]);
        assert!(report_after.operation_stats.rotations > report_before.operation_stats.rotations);
        assert!(report_after.operation_stats.total() > report_before.operation_stats.total());
    }

    #[test]
    fn subtracting_ciphertext_from_plaintext_negates_correctly() {
        let program = compile_raw("(VecSub (Vec 10 10) (Vec a b))", true);
        let report = run(&program, &[("a", 3), ("b", 4)]);
        assert_eq!(report.outputs, vec![7, 6]);
    }

    #[test]
    fn plaintext_only_programs_execute_without_ciphertext_work() {
        let program = compile_raw("(+ (pt w) 3)", true);
        let report = run(&program, &[("w", 10)]);
        assert_eq!(report.outputs, vec![13]);
        assert_eq!(report.operation_stats.total(), 0);
        assert!(report.timing.levels.is_empty());
    }

    #[test]
    fn missing_inputs_default_to_zero() {
        let program = compile_raw("(+ a b)", true);
        let report = run(&program, &[("a", 7)]);
        assert_eq!(report.outputs, vec![7]);
    }

    #[test]
    fn parallel_execution_matches_sequential_output_and_stats() {
        let circuit = "(VecAdd (VecMul (Vec a b) (Vec c d)) (VecAdd (VecMul (Vec e f) (Vec g h)) (VecMul (Vec a b) (Vec g h))))";
        let program = compile_raw(circuit, true);
        let inputs: HashMap<String, i64> = [
            ("a", 1),
            ("b", 2),
            ("c", 3),
            ("d", 4),
            ("e", 5),
            ("f", 6),
            ("g", 7),
            ("h", 8),
        ]
        .iter()
        .map(|(k, v)| (k.to_string(), *v))
        .collect();
        let params = BfvParameters::insecure_test();
        let sequential = program.execute(&inputs, &params).unwrap();
        for threads in [2, 4] {
            let parallel = program.execute_parallel(&inputs, &params, threads).unwrap();
            assert_eq!(parallel.outputs, sequential.outputs);
            assert_eq!(parallel.operation_stats, sequential.operation_stats);
            assert_eq!(
                parallel.noise_budget_consumed,
                sequential.noise_budget_consumed
            );
            // The default parallel scheduler is dataflow: level-less timing,
            // but one measured span and queue wait per instruction.
            assert_eq!(parallel.timing.scheduler, SchedulerKind::Dataflow);
            assert!(parallel.timing.levels.is_empty());
            assert_eq!(
                parallel.timing.instr_times.len(),
                sequential.timing.instr_times.len()
            );
            assert_eq!(
                parallel.timing.queue_waits.len(),
                parallel.timing.instr_times.len()
            );
        }
    }

    #[test]
    fn batch_execution_matches_individual_runs() {
        let program = compile_raw("(VecAdd (VecMul (Vec a b) (Vec c d)) (Vec 1 1))", true);
        let params = BfvParameters::insecure_test();
        let input_sets: Vec<HashMap<String, i64>> = (0..6)
            .map(|i| {
                [("a", i), ("b", i + 1), ("c", 2 * i), ("d", 3)]
                    .iter()
                    .map(|(k, v)| (k.to_string(), *v))
                    .collect()
            })
            .collect();
        let options = BatchOptions {
            request_threads: 3,
            threads_per_request: 1,
        };
        let batched = program
            .execute_batch(&input_sets, &params, &options)
            .unwrap();
        assert_eq!(batched.len(), input_sets.len());
        for (inputs, report) in input_sets.iter().zip(&batched) {
            let solo = program.execute(inputs, &params).unwrap();
            assert_eq!(report.outputs, solo.outputs);
            assert_eq!(report.operation_stats, solo.operation_stats);
        }
    }

    #[test]
    fn schedule_is_exposed_for_introspection() {
        let program = compile_raw(
            "(VecAdd (VecMul (Vec a b) (Vec c d)) (VecMul (Vec e f) (Vec g h)))",
            true,
        );
        let schedule = program.schedule();
        assert_eq!(schedule.level_count(), 2);
        assert_eq!(schedule.max_width(), 2);
    }
}
