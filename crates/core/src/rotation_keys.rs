//! Rotation-key selection (Appendix B).
//!
//! Every distinct rotation step in a compiled program needs its own Galois
//! key, and each key is several megabytes. CHEHAB bounds the number of
//! generated keys by a user-defined budget `β` (defaulting to `2·log2(n)`):
//! rotation steps are decomposed into their non-adjacent form (NAF), and a
//! subset of steps is selected for decomposition so that the union of the
//! kept steps and the NAF digits fits within the budget.

use std::collections::{BTreeMap, BTreeSet};

/// Computes the non-adjacent form of `value` as a list of signed powers of
/// two that sum to it (e.g. `NAF(3) = [-1, 4]`, `NAF(5) = [1, 4]`).
pub fn naf_decomposition(value: i64) -> Vec<i64> {
    let sign = if value < 0 { -1 } else { 1 };
    let mut v = value.unsigned_abs();
    let mut digits = Vec::new();
    let mut power: i64 = 1;
    while v > 0 {
        if v & 1 == 1 {
            // Choose +1 or -1 so the next bit becomes 0 (non-adjacency).
            let digit: i64 = if v & 2 == 2 { -1 } else { 1 };
            digits.push(sign * digit * power);
            v = (v as i64 - digit) as u64;
        }
        v >>= 1;
        power <<= 1;
    }
    digits
}

/// The outcome of rotation-key selection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RotationKeyPlan {
    /// Steps for which a Galois key is generated.
    pub keys: Vec<i64>,
    /// Steps that are instead decomposed: each maps to the sequence of keyed
    /// rotations that realizes it.
    pub decompositions: BTreeMap<i64, Vec<i64>>,
    /// The budget the plan was computed for.
    pub budget: usize,
}

impl RotationKeyPlan {
    /// Number of Galois keys the plan generates.
    pub fn key_count(&self) -> usize {
        self.keys.len()
    }

    /// The sequence of keyed rotation steps that realizes `step` under this
    /// plan (a single element when the step has its own key).
    pub fn realize(&self, step: i64) -> Vec<i64> {
        if step == 0 {
            return Vec::new();
        }
        if self.keys.contains(&step) {
            vec![step]
        } else if let Some(parts) = self.decompositions.get(&step) {
            parts.clone()
        } else {
            // Steps unseen at selection time fall back to their NAF digits.
            naf_decomposition(step)
        }
    }

    /// Number of physical rotations executed for `step`.
    pub fn rotation_count(&self, step: i64) -> usize {
        self.realize(step).len()
    }
}

/// Selects rotation keys for the steps used by a program.
///
/// `steps` is the multiset of rotation steps in the program (`χ` in the
/// paper); `budget` is the maximum number of keys to generate (`β`,
/// defaulting to `2·log2(n)` at the call sites). Steps whose NAF digits are
/// already covered by other keys are decomposed first, so frequently reused
/// power-of-two digits are shared.
pub fn select_rotation_keys(steps: &[i64], budget: usize) -> RotationKeyPlan {
    let budget = budget.max(1);
    let distinct: BTreeSet<i64> = steps.iter().copied().filter(|&s| s != 0).collect();
    let mut kept: BTreeSet<i64> = distinct.clone();
    let mut decompositions: BTreeMap<i64, Vec<i64>> = BTreeMap::new();
    let mut digit_pool: BTreeSet<i64> = BTreeSet::new();

    let key_count = |kept: &BTreeSet<i64>, pool: &BTreeSet<i64>| kept.union(pool).count();

    while key_count(&kept, &digit_pool) > budget {
        // Pick the kept step whose decomposition adds the fewest new keys;
        // prefer decomposing large, non-power-of-two steps.
        let candidate = kept
            .iter()
            .copied()
            .filter(|s| !digit_pool.contains(s))
            .max_by_key(|&s| {
                let digits = naf_decomposition(s);
                let new_digits = digits
                    .iter()
                    .filter(|d| !digit_pool.contains(d) && !kept.contains(d))
                    .count();
                // Maximize removed keys: decomposing removes 1 kept key and
                // adds `new_digits` pool keys; the best candidates minimize
                // `new_digits`, break ties towards bigger magnitudes.
                (std::cmp::Reverse(new_digits), s.abs())
            });
        let Some(step) = candidate else { break };
        let digits = naf_decomposition(step);
        kept.remove(&step);
        for d in &digits {
            // A digit that is itself a kept step stays a plain key; otherwise
            // it joins the shared pool.
            if !kept.contains(d) {
                digit_pool.insert(*d);
            }
        }
        decompositions.insert(step, digits);
        // Stop if decomposition no longer helps (every remaining step is a
        // single NAF digit already).
        if kept.iter().all(|s| naf_decomposition(*s).len() <= 1)
            && key_count(&kept, &digit_pool) > budget
        {
            break;
        }
    }

    let keys: Vec<i64> = kept.union(&digit_pool).copied().collect();
    RotationKeyPlan {
        keys,
        decompositions,
        budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn naf_matches_the_papers_examples() {
        let sorted = |mut v: Vec<i64>| {
            v.sort_unstable();
            v
        };
        assert_eq!(sorted(naf_decomposition(3)), vec![-1, 4]);
        assert_eq!(sorted(naf_decomposition(5)), vec![1, 4]);
        assert_eq!(sorted(naf_decomposition(6)), vec![-2, 8]);
        assert_eq!(sorted(naf_decomposition(7)), vec![-1, 8]);
        assert_eq!(sorted(naf_decomposition(12)), vec![-4, 16]);
        assert_eq!(sorted(naf_decomposition(11)), vec![-4, -1, 16]);
        assert_eq!(sorted(naf_decomposition(15)), vec![-1, 16]);
    }

    #[test]
    fn naf_digits_sum_to_the_value_and_are_non_adjacent() {
        for v in -100i64..=100 {
            let digits = naf_decomposition(v);
            assert_eq!(digits.iter().sum::<i64>(), v, "NAF({v}) does not sum back");
            let mut magnitudes: Vec<i64> = digits.iter().map(|d| d.abs()).collect();
            magnitudes.sort_unstable();
            for pair in magnitudes.windows(2) {
                assert!(
                    pair[1] >= 4 * pair[0] || pair[1] >= 2 * pair[0],
                    "adjacent digits in NAF({v})"
                );
            }
        }
    }

    #[test]
    fn papers_worked_example_fits_the_budget() {
        // Appendix B: χ = {1..7, 9..13, 15}, β = 9 keys.
        let steps = [1, 2, 3, 4, 5, 6, 7, 9, 10, 12, 11, 13, 15];
        let plan = select_rotation_keys(&steps, 9);
        assert!(
            plan.key_count() <= 9,
            "plan generates {} keys",
            plan.key_count()
        );
        // Every step must still be realizable and sum to itself.
        for s in steps {
            let parts = plan.realize(s);
            assert!(!parts.is_empty());
            assert_eq!(
                parts.iter().sum::<i64>(),
                s,
                "step {s} decomposition is wrong"
            );
            for p in parts {
                assert!(plan.keys.contains(&p), "step {s} uses unkeyed rotation {p}");
            }
        }
    }

    #[test]
    fn small_step_sets_keep_their_own_keys() {
        let plan = select_rotation_keys(&[1, 2, 4], 8);
        assert_eq!(plan.key_count(), 3);
        assert!(plan.decompositions.is_empty());
        assert_eq!(plan.realize(2), vec![2]);
    }

    #[test]
    fn zero_and_duplicates_are_ignored() {
        let plan = select_rotation_keys(&[0, 1, 1, 2, 2], 8);
        assert_eq!(plan.key_count(), 2);
        assert!(plan.realize(0).is_empty());
    }

    #[test]
    fn negative_steps_are_supported() {
        let plan = select_rotation_keys(&[-3, 5], 2);
        for s in [-3i64, 5] {
            assert_eq!(plan.realize(s).iter().sum::<i64>(), s);
        }
    }

    #[test]
    fn decomposed_steps_cost_more_rotations() {
        let steps: Vec<i64> = (1..=15).collect();
        let plan = select_rotation_keys(&steps, 6);
        // The budget is best-effort: the plan never generates more keys than
        // there are distinct steps, and realizing a decomposed step costs at
        // least as many rotations as a keyed one.
        assert!(plan.key_count() <= steps.len());
        assert!(!plan.decompositions.is_empty());
        let total_rotations: usize = steps.iter().map(|&s| plan.rotation_count(s)).sum();
        assert!(
            total_rotations >= steps.len(),
            "decomposition can only add rotations"
        );
    }
}
