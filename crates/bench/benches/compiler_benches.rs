//! Criterion benchmarks of the compilers themselves: compilation time of the
//! greedy CHEHAB pipeline and of the Coyote-style layout search (the Figure 6
//! comparison), and end-to-end execution time of the circuits each produces
//! (the Figure 5 comparison), on representative kernels.

use chehab_bench::{CompilerUnderTest, HarnessConfig};
use chehab_benchsuite::by_id;
use chehab_core::Compiler;
use chehab_fhe::BfvParameters;
use coyote_baseline::CoyoteCompiler;
use criterion::{criterion_group, criterion_main, Criterion};
use std::collections::HashMap;
use std::hint::black_box;
use std::time::Duration;

const KERNELS: [&str; 4] = ["Dot Product 8", "Linear Reg. 4", "Poly. Reg. 8", "Mat. Mul. 3x3"];

fn bench_compile_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("compile_time");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let harness = HarnessConfig::default();
    for id in KERNELS {
        let benchmark = by_id(id).expect("known benchmark");
        group.bench_function(format!("chehab_greedy/{id}"), |b| {
            let compiler = Compiler::greedy();
            b.iter(|| black_box(compiler.compile(id, black_box(benchmark.program()))));
        });
        group.bench_function(format!("coyote/{id}"), |b| {
            let compiler = CoyoteCompiler::with_config(harness.coyote_config());
            b.iter(|| black_box(compiler.compile(black_box(benchmark.program()))));
        });
    }
    group.finish();
}

fn bench_execution_time(c: &mut Criterion) {
    let mut group = c.benchmark_group("exec_time");
    group.sample_size(10).measurement_time(Duration::from_secs(5));
    let harness = HarnessConfig::default();
    let params = BfvParameters { payload_degree: 512, ..BfvParameters::default_128() };
    for id in KERNELS {
        let benchmark = by_id(id).expect("known benchmark");
        let inputs: HashMap<String, i64> = benchmark
            .program()
            .variables()
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v.to_string(), (i as i64 % 7) + 1))
            .collect();
        for (label, compiler) in [
            ("initial", CompilerUnderTest::Initial),
            ("chehab_greedy", CompilerUnderTest::ChehabGreedy),
            ("coyote", CompilerUnderTest::Coyote(harness.coyote_config())),
        ] {
            let compiled = compiler.compile(&benchmark);
            // One session outside the timed loop: keygen (which performs
            // real sampling + NTT work under simulate_compute) and schedule
            // lowering must not be attributed to execution time.
            let session = compiled.session(&params).expect("session construction");
            group.bench_function(format!("{label}/{id}"), |b| {
                b.iter(|| black_box(session.run(black_box(&inputs)).expect("executes")));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_compile_time, bench_execution_time);
criterion_main!(benches);
