//! Benchmarks of the compilers themselves: compilation time of the greedy
//! CHEHAB pipeline and of the Coyote-style layout search (the Figure 6
//! comparison), and end-to-end execution time of the circuits each produces
//! (the Figure 5 comparison), on representative kernels.
//!
//! Runs on the registry-free harness in `chehab_bench::micro` (`criterion`
//! is unavailable in hermetic builds); invoke with `cargo bench -p
//! chehab-bench --bench compiler_benches`.

use chehab_bench::micro::{print_micro, time_micro};
use chehab_bench::{CompilerUnderTest, HarnessConfig};
use chehab_benchsuite::by_id;
use chehab_core::Compiler;
use chehab_fhe::BfvParameters;
use coyote_baseline::CoyoteCompiler;
use std::collections::HashMap;

const KERNELS: [&str; 4] = [
    "Dot Product 8",
    "Linear Reg. 4",
    "Poly. Reg. 8",
    "Mat. Mul. 3x3",
];

fn main() {
    let iters = if std::env::args().any(|a| a == "--quick") {
        3
    } else {
        10
    };
    let harness = HarnessConfig::default();

    println!("== compile_time ({iters} iters/row)");
    for id in KERNELS {
        let benchmark = by_id(id).expect("known benchmark");
        let compiler = Compiler::greedy();
        let mut cost = 0.0;
        print_micro(&time_micro(format!("chehab_greedy/{id}"), 1, iters, || {
            cost += compiler.compile(id, benchmark.program()).stats().cost_after;
        }));
        let coyote = CoyoteCompiler::with_config(harness.coyote_config());
        print_micro(&time_micro(format!("coyote/{id}"), 1, iters, || {
            cost += coyote
                .compile(benchmark.program())
                .compile_time
                .as_secs_f64();
        }));
        assert!(cost >= 0.0);
    }

    println!("\n== exec_time ({iters} iters/row, payload degree 512)");
    let params = BfvParameters {
        payload_degree: 512,
        ..BfvParameters::default_128()
    };
    for id in KERNELS {
        let benchmark = by_id(id).expect("known benchmark");
        let inputs: HashMap<String, i64> = benchmark
            .program()
            .variables()
            .into_iter()
            .enumerate()
            .map(|(i, v)| (v.to_string(), (i as i64 % 7) + 1))
            .collect();
        for (label, compiler) in [
            ("initial", CompilerUnderTest::Initial),
            ("chehab_greedy", CompilerUnderTest::ChehabGreedy),
            ("coyote", CompilerUnderTest::Coyote(harness.coyote_config())),
        ] {
            let compiled = compiler.compile(&benchmark);
            // One session outside the timed loop: keygen (which performs
            // real sampling + NTT work under simulate_compute) and schedule
            // lowering must not be attributed to execution time.
            let session = compiled.session(&params).expect("session construction");
            let mut served = 0u64;
            print_micro(&time_micro(format!("{label}/{id}"), 1, iters, || {
                let report = session.run(&inputs).expect("executes");
                served += u64::from(report.decryption_ok);
            }));
            assert!(served > 0);
        }
    }
}
