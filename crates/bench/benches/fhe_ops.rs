//! Micro-benchmarks of the BFV backend: the relative costs of the
//! homomorphic operations (ct-ct multiplication ≫ rotation ≫ ct-pt
//! multiplication ≫ addition) that the paper's cost model (Section 5.3.1)
//! assumes.
//!
//! Runs on the registry-free harness in `chehab_bench::micro` (`criterion`
//! is unavailable in hermetic builds); invoke with `cargo bench -p
//! chehab-bench --bench fhe_ops`.

use chehab_bench::micro::{print_micro, time_micro};
use chehab_fhe::{BfvParameters, Encryptor, Evaluator, FheContext, KeyGenerator};

fn main() {
    let iters = if std::env::args().any(|a| a == "--quick") {
        5
    } else {
        25
    };
    let params = BfvParameters {
        payload_degree: 1024,
        ..BfvParameters::default_128()
    };
    let ctx = FheContext::new(params).expect("valid parameters");
    let mut keygen = KeyGenerator::new(ctx.params(), 1);
    let mut encryptor = Encryptor::new(&ctx, &keygen.public_key());
    let relin = keygen.relin_keys();
    let galois = keygen.default_galois_keys();
    let mut evaluator = Evaluator::new(&ctx);

    let a = encryptor
        .encrypt_values(&(0..32).collect::<Vec<i64>>())
        .expect("encrypt");
    let b = encryptor
        .encrypt_values(&(32..64).collect::<Vec<i64>>())
        .expect("encrypt");
    let plain = ctx.encode(&(1..33).collect::<Vec<i64>>()).expect("encode");

    println!("== fhe_ops ({} iters/row, payload degree 1024)", iters);
    let mut sink = Vec::new();
    print_micro(&time_micro("fhe_ops/ct_ct_add", 2, iters, || {
        sink.push(evaluator.add(&a, &b).noise_consumed_bits());
        sink.clear();
    }));
    print_micro(&time_micro("fhe_ops/ct_pt_mul", 2, iters, || {
        sink.push(evaluator.multiply_plain(&a, &plain).noise_consumed_bits());
        sink.clear();
    }));
    print_micro(&time_micro("fhe_ops/rotation", 2, iters, || {
        sink.push(
            evaluator
                .rotate(&a, 4, &galois)
                .expect("keyed step")
                .noise_consumed_bits(),
        );
        sink.clear();
    }));
    print_micro(&time_micro("fhe_ops/ct_ct_mul", 2, iters, || {
        sink.push(evaluator.multiply(&a, &b, &relin).noise_consumed_bits());
        sink.clear();
    }));
}
