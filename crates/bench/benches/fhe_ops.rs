//! Criterion micro-benchmarks of the BFV backend: the relative costs of the
//! homomorphic operations (ct-ct multiplication ≫ rotation ≫ ct-pt
//! multiplication ≫ addition) that the paper's cost model (Section 5.3.1)
//! assumes.

use chehab_fhe::{BfvParameters, Encryptor, Evaluator, FheContext, KeyGenerator};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_fhe_operations(c: &mut Criterion) {
    let params = BfvParameters { payload_degree: 1024, ..BfvParameters::default_128() };
    let ctx = FheContext::new(params).expect("valid parameters");
    let mut keygen = KeyGenerator::new(ctx.params(), 1);
    let mut encryptor = Encryptor::new(&ctx, &keygen.public_key());
    let relin = keygen.relin_keys();
    let galois = keygen.default_galois_keys();
    let mut evaluator = Evaluator::new(&ctx);

    let a = encryptor.encrypt_values(&(0..32).collect::<Vec<i64>>()).expect("encrypt");
    let b = encryptor.encrypt_values(&(32..64).collect::<Vec<i64>>()).expect("encrypt");
    let plain = ctx.encode(&(1..33).collect::<Vec<i64>>()).expect("encode");

    let mut group = c.benchmark_group("fhe_ops");
    group.bench_function("ct_ct_add", |bencher| {
        bencher.iter(|| black_box(evaluator.add(black_box(&a), black_box(&b))))
    });
    group.bench_function("ct_pt_mul", |bencher| {
        bencher.iter(|| black_box(evaluator.multiply_plain(black_box(&a), black_box(&plain))))
    });
    group.bench_function("rotation", |bencher| {
        bencher.iter(|| black_box(evaluator.rotate(black_box(&a), 4, &galois).expect("keyed step")))
    });
    group.bench_function("ct_ct_mul", |bencher| {
        bencher.iter(|| black_box(evaluator.multiply(black_box(&a), black_box(&b), &relin)))
    });
    group.finish();
}

criterion_group!(benches, bench_fhe_operations);
criterion_main!(benches);
