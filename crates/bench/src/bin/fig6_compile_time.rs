//! Figure 6: compilation time of CHEHAB RL and the Coyote baseline across
//! the benchmark suite.
//!
//! Usage: `cargo run --release -p chehab-bench --bin fig6_compile_time -- [--full]`

use chehab_bench::{measure, ms, write_csv, CompilerUnderTest, HarnessConfig};
use chehab_core::training::{train_agent, AgentTrainingOptions};
use std::sync::Arc;

fn main() {
    let config = HarnessConfig::from_args();
    let params = config.params();
    println!("== Figure 6: compilation time, CHEHAB RL vs Coyote");
    let trained = train_agent(&AgentTrainingOptions {
        timesteps: config.timesteps,
        ..AgentTrainingOptions::default()
    });
    let rl = CompilerUnderTest::ChehabRl(Arc::clone(&trained.agent));
    let coyote = CompilerUnderTest::Coyote(config.coyote_config());

    println!(
        "{:<22} {:>18} {:>16} {:>10}",
        "benchmark", "CHEHAB RL (ms)", "Coyote (ms)", "ratio"
    );
    let mut measurements = Vec::new();
    let mut rows = Vec::new();
    for benchmark in config.benchmarks() {
        let m_rl = measure(&benchmark, &rl, &params, 1);
        let m_coyote = measure(&benchmark, &coyote, &params, 1);
        let ratio = ms(m_coyote.compile_time) / ms(m_rl.compile_time).max(1e-9);
        println!(
            "{:<22} {:>18.2} {:>16.2} {:>9.2}x",
            benchmark.id(),
            ms(m_rl.compile_time),
            ms(m_coyote.compile_time),
            ratio
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.3}",
            benchmark.id(),
            ms(m_rl.compile_time),
            ms(m_coyote.compile_time),
            ratio
        ));
        measurements.push(m_rl);
        measurements.push(m_coyote);
    }
    let _ = write_csv(
        "fig6_compile_time",
        "benchmark,chehab_rl_ms,coyote_ms,ratio",
        &rows,
    );
    chehab_bench::summarize_vs_baseline(&measurements, "CHEHAB RL", "Coyote");
}
