//! Registry-free micro-benchmarks of the polynomial hot path: forward and
//! inverse NTTs, ct-ct multiplication and key switching (rotation) at
//! payload degrees 1024–16384, each measured **before** (the seed engine:
//! 128-bit `%` reduction, coefficient-domain operands, three transforms and
//! two operand clones per ring product) and **after** (the hot-path engine:
//! branch-light Goldilocks reduction, lazy NTT-domain ciphertexts, fused
//! pointwise key switching).
//!
//! On top of the seed comparison, three sections characterize the lazy/SIMD
//! arithmetic engine:
//!
//! * **engine rows** decompose the hot path per transform/kernel into
//!   eager-scalar (the replaced engine, mirrored in-binary), lazy-scalar and
//!   lazy-SIMD variants, asserting bit-identical outputs across all three;
//! * **reduction counts** walk the stage structure and report per-element
//!   multiply/add/canonicalization counts for the eager and lazy paths,
//!   asserting the lazy path's reduction count strictly drops (the CI
//!   smoke);
//! * **calibration** re-snapshots the timer-augmented per-op cost model
//!   (`CalibratedCostModel`) under the scalar and SIMD policies and records
//!   old-vs-new per-op ratios plus the projected `OpCosts` tables.
//!
//! Usage: `cargo run --release -p chehab-bench --bin ntt_micro --
//! [--quick] [--iters N]`
//!
//! Writes `BENCH_ntt_micro.json` with one row per (operation, degree), a
//! `ct_ct_mul_speedup_at_4096` headline figure (the acceptance bar for the
//! seed comparison is >= 2x there) and `engine_*_speedup_at_4096` headlines
//! for the lazy/SIMD engine (acceptance bar >= 1.2x over eager-scalar).
//!
//! The "before" columns are a faithful in-binary reimplementation of the
//! seed algorithms (bit-identical outputs, same operation count and memory
//! traffic), kept here so the comparison survives the seed code's removal.

use chehab_bench::micro::{print_micro, time_micro};
use chehab_fhe::poly::{p_add, p_inv, p_mul, p_pow, p_sub, Domain, NttTables, Poly, MODULUS};
use chehab_fhe::{
    BfvParameters, CtPayload, Encryptor, Evaluator, FheContext, KeyGenerator, ModulusChain,
    PolyArena, SecurityLevel, SimdPolicy,
};
use chehab_ir::OpCosts;
use chehab_runtime::{CalibratedCostModel, OpKind, OP_KINDS};
use serde::Value;
use std::time::Instant;

/// The seed's modular multiplication: 128-bit product reduced with `%`.
#[inline]
fn slow_mul(a: u64, b: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(MODULUS)) as u64
}

/// A faithful copy of the seed's NTT (same twiddle layout, butterflies
/// reduced through the 128-bit division).
struct BaselineNtt {
    degree: usize,
    psi_rev: Vec<u64>,
    inv_psi_rev: Vec<u64>,
    inv_degree: u64,
}

impl BaselineNtt {
    fn new(degree: usize) -> Self {
        let log2_2n = (2 * degree).trailing_zeros();
        let psi = p_pow(7, (MODULUS - 1) >> log2_2n);
        let inv_psi = p_inv(psi);
        let log_n = degree.trailing_zeros();
        let mut psi_rev = vec![0u64; degree];
        let mut inv_psi_rev = vec![0u64; degree];
        let (mut power, mut inv_power) = (1u64, 1u64);
        for i in 0..degree {
            let rev = ((i as u32).reverse_bits() >> (32 - log_n)) as usize;
            psi_rev[rev] = power;
            inv_psi_rev[rev] = inv_power;
            power = slow_mul(power, psi);
            inv_power = slow_mul(inv_power, inv_psi);
        }
        BaselineNtt {
            degree,
            psi_rev,
            inv_psi_rev,
            inv_degree: p_inv(degree as u64),
        }
    }

    fn forward(&self, a: &mut [u64]) {
        let n = self.degree;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_rev[m + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = slow_mul(a[j + t], s);
                    a[j] = p_add(u, v);
                    a[j + t] = p_sub(u, v);
                }
            }
            m *= 2;
        }
    }

    fn inverse(&self, a: &mut [u64]) {
        let n = self.degree;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0usize;
            for i in 0..h {
                let s = self.inv_psi_rev[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = p_add(u, v);
                    a[j + t] = slow_mul(p_sub(u, v), s);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = slow_mul(*x, self.inv_degree);
        }
    }

    /// The seed's `mul_ntt`: clone both operands, three transforms.
    fn mul_ntt(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut x = a.to_vec();
        let mut y = b.to_vec();
        self.forward(&mut x);
        self.forward(&mut y);
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = slow_mul(*xi, *yi);
        }
        self.inverse(&mut x);
        x
    }

    /// The seed's ct-ct multiplication payload: a coefficient-domain tensor
    /// product plus key switching — six `mul_ntt` ring products.
    fn tensor_product(
        &self,
        a0: &[u64],
        a1: &[u64],
        b0: &[u64],
        b1: &[u64],
    ) -> (Vec<u64>, Vec<u64>) {
        let c0 = self.mul_ntt(a0, b0);
        let c1a = self.mul_ntt(a0, b1);
        let c1b = self.mul_ntt(a1, b0);
        let c2 = self.mul_ntt(a1, b1);
        let c1: Vec<u64> = c1a.iter().zip(&c1b).map(|(&x, &y)| p_add(x, y)).collect();
        let k0 = self.mul_ntt(&c2, a0);
        let k1 = self.mul_ntt(&c2, b0);
        (
            c0.iter().zip(&k0).map(|(&x, &y)| p_add(x, y)).collect(),
            c1.iter().zip(&k1).map(|(&x, &y)| p_add(x, y)).collect(),
        )
    }

    /// The seed's rotation payload: coefficient-domain Galois automorphism
    /// plus one `mul_ntt` key-switch product per component.
    fn rotate_payload(&self, p0: &[u64], p1: &[u64], galois_elt: usize) -> (Vec<u64>, Vec<u64>) {
        let g0 = Poly::from_coeffs(p0.to_vec()).apply_galois(galois_elt);
        let g1 = Poly::from_coeffs(p1.to_vec()).apply_galois(galois_elt);
        (self.mul_ntt(g0.coeffs(), p0), self.mul_ntt(g1.coeffs(), p0))
    }
}

/// The eager-scalar hot-path engine this PR replaced: branch-light
/// Goldilocks reduction (`p_mul`/`p_add`/`p_sub`) with a canonicalizing
/// compare after every butterfly operation. Mirrored in-binary so the
/// lazy-vs-eager comparison survives the eager butterflies' removal from
/// the library.
struct EagerNtt {
    degree: usize,
    psi_rev: Vec<u64>,
    inv_psi_rev: Vec<u64>,
    inv_degree: u64,
}

impl EagerNtt {
    fn new(degree: usize) -> Self {
        let log2_2n = (2 * degree).trailing_zeros();
        let psi = p_pow(7, (MODULUS - 1) >> log2_2n);
        let inv_psi = p_inv(psi);
        let log_n = degree.trailing_zeros();
        let mut psi_rev = vec![0u64; degree];
        let mut inv_psi_rev = vec![0u64; degree];
        let (mut power, mut inv_power) = (1u64, 1u64);
        for i in 0..degree {
            let rev = ((i as u32).reverse_bits() >> (32 - log_n)) as usize;
            psi_rev[rev] = power;
            inv_psi_rev[rev] = inv_power;
            power = p_mul(power, psi);
            inv_power = p_mul(inv_power, inv_psi);
        }
        EagerNtt {
            degree,
            psi_rev,
            inv_psi_rev,
            inv_degree: p_inv(degree as u64),
        }
    }

    fn forward(&self, a: &mut [u64]) {
        let n = self.degree;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_rev[m + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = p_mul(a[j + t], s);
                    a[j] = p_add(u, v);
                    a[j + t] = p_sub(u, v);
                }
            }
            m *= 2;
        }
    }

    fn inverse(&self, a: &mut [u64]) {
        let n = self.degree;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0usize;
            for i in 0..h {
                let s = self.inv_psi_rev[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = p_add(u, v);
                    a[j + t] = p_mul(p_sub(u, v), s);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = p_mul(*x, self.inv_degree);
        }
    }
}

/// Deterministic pseudo-random canonical field elements.
fn random_values(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D) % MODULUS
        })
        .collect()
}

/// Per-operation arithmetic totals for one transform or kernel invocation.
///
/// `reductions` counts *canonicalizing compare-and-correct* steps only —
/// the conditional subtract that maps a residue into `[0, p)`. The ε-folds
/// both engines perform inside every 128-bit product are excluded because
/// they are identical on the eager and lazy paths; the canonical compare is
/// exactly what lazy reduction defers.
#[derive(Clone, Copy)]
struct Counts {
    muls: u64,
    adds: u64,
    reductions: u64,
}

/// Walks the radix-2 stage structure of a degree-`n` negacyclic NTT and
/// totals the butterfly arithmetic, mirroring the loops in `poly.rs` (lazy)
/// and [`EagerNtt`] (eager) rather than using a closed formula.
fn ntt_counts(n: usize, lazy: bool, inverse: bool) -> Counts {
    let mut c = Counts {
        muls: 0,
        adds: 0,
        reductions: 0,
    };
    let mut m = 1usize;
    while m < n {
        // Every stage performs n/2 butterflies: one twiddle multiply and an
        // add/sub pair each. Eager butterflies canonicalize all three
        // results; lazy butterflies canonicalize none.
        let butterflies = (n / 2) as u64;
        c.muls += butterflies;
        c.adds += 2 * butterflies;
        if !lazy {
            c.reductions += 3 * butterflies;
        }
        m *= 2;
    }
    if inverse {
        // Both engines end with the n^{-1} scaling pass; the lazy engine
        // folds its single canonicalization pass into it
        // (`scale_canonical`), the eager engine's `p_mul` canonicalizes
        // anyway.
        c.muls += n as u64;
        c.reductions += n as u64;
    } else if lazy {
        // Forward: the fused final butterfly stage canonicalizes each of
        // the n outputs once; the eager path already counted its last
        // stage like every other.
        c.reductions += n as u64;
    }
    c
}

/// Per-invocation arithmetic of the fused ct-ct tensor+key-switch kernel
/// (`mul_add_eval2`) over a degree-`n` stripe: per stripe index,
/// `c2 = a1·b1`, `out0 = a0·b0 + c2·s0`, `out1 = a0·b1 + a1·b0 + c2·s1`.
fn ct_ct_fused_counts(n: usize, lazy: bool) -> Counts {
    let n = n as u64;
    Counts {
        muls: 6 * n,
        adds: 3 * n,
        // Eager: all six products canonicalize (the adds ride the fused
        // 128-bit accumulators). Lazy SIMD: intermediates stay unreduced in
        // [0, 2^64) — a valid lazy residue since 2^64 < 2p — and only the
        // two stripe outputs canonicalize.
        reductions: if lazy { 2 * n } else { 6 * n },
    }
}

struct Row {
    op: &'static str,
    degree: usize,
    before_ms: f64,
    after_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.before_ms / self.after_ms.max(1e-9)
    }
}

/// One (operation, degree, engine-variant) wall-time sample of the
/// engine-decomposition section.
struct EngineRow {
    op: &'static str,
    degree: usize,
    engine: &'static str,
    ms: f64,
}

/// One lazy-vs-eager reduction-count comparison.
struct CountRow {
    op: &'static str,
    degree: usize,
    eager: Counts,
    lazy: Counts,
}

/// Builds a full evaluator stack at `degree` and times one sample of every
/// [`OpKind`] per iteration under `policy`, returning the accumulated
/// calibration. This is the re-snapshot feeding `CalibratedCostModel`-driven
/// dataflow priorities after the kernel rewrite.
fn calibrate_policy(degree: usize, policy: SimdPolicy, iters: usize) -> CalibratedCostModel {
    let params = BfvParameters {
        poly_modulus_degree: 8,
        plain_modulus: 786_433,
        coeff_modulus_bits: 389,
        security_level: SecurityLevel::Tc128,
        payload_degree: degree,
        simulate_compute: true,
        limb_count: 1,
    };
    let ctx = FheContext::new(params).expect("valid parameters");
    let mut keygen = KeyGenerator::new(ctx.params(), 0xCA11B);
    let mut encryptor = Encryptor::new(&ctx, &keygen.public_key());
    let relin = keygen.relin_keys();
    let galois = keygen.galois_keys(&[1]);
    let mut evaluator = Evaluator::new(&ctx);
    evaluator.set_simd_policy(policy);
    let ct_a = encryptor.encrypt_values(&[1, 2, 3]).expect("encrypt");
    let ct_b = encryptor.encrypt_values(&[4, 5, 6]).expect("encrypt");
    let pt = ctx.encode(&[7, 8, 9]).expect("encode");

    let mut model = CalibratedCostModel::new();
    // One untimed warm-up of each op primes twiddle tables and the arena.
    std::hint::black_box(evaluator.add(&ct_a, &ct_b));
    std::hint::black_box(evaluator.multiply(&ct_a, &ct_b, &relin));
    for _ in 0..iters {
        let t = Instant::now();
        std::hint::black_box(evaluator.add(&ct_a, &ct_b));
        model.record(OpKind::Addition, t.elapsed());

        let t = Instant::now();
        std::hint::black_box(evaluator.negate(&ct_a));
        model.record(OpKind::Negation, t.elapsed());

        let t = Instant::now();
        std::hint::black_box(evaluator.multiply(&ct_a, &ct_b, &relin));
        model.record(OpKind::MulCtCt, t.elapsed());

        let t = Instant::now();
        std::hint::black_box(evaluator.multiply_plain(&ct_a, &pt));
        model.record(OpKind::MulCtPt, t.elapsed());

        let t = Instant::now();
        let rotated = evaluator.rotate(&ct_a, 1, &galois).expect("keyed step");
        model.record(OpKind::Rotation, t.elapsed());

        // A pack step is one realized rotation plus an accumulate.
        let t = Instant::now();
        let mut acc = evaluator.rotate(&ct_b, 1, &galois).expect("keyed step");
        evaluator.add_assign(&mut acc, &rotated);
        model.record(OpKind::Pack, t.elapsed());
        std::hint::black_box(&acc);
    }
    model
}

/// Mean latency of a kind in milliseconds (0.0 when unsampled).
fn mean_ms(model: &CalibratedCostModel, kind: OpKind) -> f64 {
    model.mean(kind).map_or(0.0, |d| d.as_secs_f64() * 1e3)
}

fn op_costs_json(costs: &OpCosts) -> Value {
    Value::Object(vec![
        ("vec_add".into(), Value::Float(costs.vec_add)),
        ("vec_mul_ct_ct".into(), Value::Float(costs.vec_mul_ct_ct)),
        ("vec_mul_ct_pt".into(), Value::Float(costs.vec_mul_ct_pt)),
        ("rotation".into(), Value::Float(costs.rotation)),
        ("scalar_op".into(), Value::Float(costs.scalar_op)),
        ("plaintext_op".into(), Value::Float(costs.plaintext_op)),
    ])
}

fn counts_json(c: &Counts, n: usize) -> Value {
    Value::Object(vec![
        ("muls".into(), Value::Int(c.muls as i64)),
        ("adds".into(), Value::Int(c.adds as i64)),
        ("reductions".into(), Value::Int(c.reductions as i64)),
        (
            "reductions_per_element".into(),
            Value::Float(c.reductions as f64 / n as f64),
        ),
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let iters: usize = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 3 } else { 7 });
    let degrees: &[usize] = if quick {
        &[1024, 4096]
    } else {
        &[1024, 2048, 4096, 8192, 16384]
    };
    // Engine rows compare explicit policies, independent of `CHEHAB_SIMD`;
    // the headline before/after rows use the library default (`global`),
    // which does honour the override.
    let detected = SimdPolicy::detected();
    let global = SimdPolicy::global();

    println!(
        "== ntt_micro: seed engine (128-bit % reduction, coefficient-domain) vs hot-path engine \
         (Goldilocks reduction, lazy NTT domain); {iters} iters/row, medians"
    );
    println!(
        "== simd policy: global={} detected={}",
        global.name(),
        detected.name()
    );
    let mut rows: Vec<Row> = Vec::new();
    let mut engine_rows: Vec<EngineRow> = Vec::new();
    let mut count_rows: Vec<CountRow> = Vec::new();

    for &degree in degrees {
        let baseline = BaselineNtt::new(degree);
        let tables = NttTables::new(degree);
        let chain1 = ModulusChain::new(1, degree, false);
        let a = random_values(degree, 0xA11CE ^ degree as u64);
        let b = random_values(degree, 0xB0B ^ degree as u64);

        // Parameters driving the real evaluator at this payload degree. The
        // slot ring is kept at the minimum width (8) so the measurement
        // isolates payload-polynomial work, which is what changed.
        let params = BfvParameters {
            poly_modulus_degree: 8,
            plain_modulus: 786_433,
            coeff_modulus_bits: 389,
            security_level: SecurityLevel::Tc128,
            payload_degree: degree,
            simulate_compute: true,
            limb_count: 1,
        };
        let ctx = FheContext::new(params).expect("valid parameters");
        let mut keygen = KeyGenerator::new(ctx.params(), 0xC4E4AB);
        let mut encryptor = Encryptor::new(&ctx, &keygen.public_key());
        let relin = keygen.relin_keys();
        let galois = keygen.galois_keys(&[1]);
        let mut evaluator = Evaluator::new(&ctx);
        let ct_a = encryptor.encrypt_values(&[1, 2, 3]).expect("encrypt");
        let ct_b = encryptor.encrypt_values(&[4, 5, 6]).expect("encrypt");

        // --- forward / inverse transforms.
        let mut scratch = a.clone();
        let before = time_micro(format!("forward_ntt/{degree} (before)"), 1, iters, || {
            scratch.copy_from_slice(&a);
            baseline.forward(&mut scratch);
        });
        print_micro(&before);
        let after = time_micro(format!("forward_ntt/{degree} (after)"), 1, iters, || {
            scratch.copy_from_slice(&a);
            tables.forward(&mut scratch);
        });
        print_micro(&after);
        rows.push(Row {
            op: "forward_ntt",
            degree,
            before_ms: before.median_ms(),
            after_ms: after.median_ms(),
        });

        let before = time_micro(format!("inverse_ntt/{degree} (before)"), 1, iters, || {
            scratch.copy_from_slice(&a);
            baseline.inverse(&mut scratch);
        });
        print_micro(&before);
        let after = time_micro(format!("inverse_ntt/{degree} (after)"), 1, iters, || {
            scratch.copy_from_slice(&a);
            tables.inverse(&mut scratch);
        });
        print_micro(&after);
        rows.push(Row {
            op: "inverse_ntt",
            degree,
            before_ms: before.median_ms(),
            after_ms: after.median_ms(),
        });

        // --- ct-ct multiplication: seed tensor product (six ring products,
        // eighteen transforms) vs the real evaluator's fused pointwise path.
        let a1 = random_values(degree, 0xA1 ^ degree as u64);
        let b1 = random_values(degree, 0xB1 ^ degree as u64);
        let mut sink = 0u64;
        let before = time_micro(format!("ct_ct_mul/{degree} (before)"), 1, iters, || {
            let (c0, c1) = baseline.tensor_product(&a, &a1, &b, &b1);
            sink = sink.wrapping_add(c0[0]).wrapping_add(c1[0]);
        });
        print_micro(&before);
        let mut product = None;
        let after = time_micro(format!("ct_ct_mul/{degree} (after)"), 1, iters, || {
            product = Some(evaluator.multiply(&ct_a, &ct_b, &relin));
        });
        print_micro(&after);
        assert!(product.is_some());
        rows.push(Row {
            op: "ct_ct_mul",
            degree,
            before_ms: before.median_ms(),
            after_ms: after.median_ms(),
        });

        // --- key switch (rotation): seed Galois + two ring products vs the
        // evaluator's permutation + pointwise key-switch path.
        let galois_elt = 3usize;
        let before = time_micro(format!("key_switch/{degree} (before)"), 1, iters, || {
            let (k0, k1) = baseline.rotate_payload(&a, &a1, galois_elt);
            sink = sink.wrapping_add(k0[0]).wrapping_add(k1[0]);
        });
        print_micro(&before);
        let mut rotated = None;
        let after = time_micro(format!("key_switch/{degree} (after)"), 1, iters, || {
            rotated = Some(evaluator.rotate(&ct_a, 1, &galois).expect("keyed step"));
        });
        print_micro(&after);
        assert!(rotated.is_some());
        rows.push(Row {
            op: "key_switch",
            degree,
            before_ms: before.median_ms(),
            after_ms: after.median_ms(),
        });

        // --- striped vs split pointwise product: the pre-stripe engine
        // walked c0 and c1 as separate polys (two passes over the shared
        // multiplier, two fresh output allocations); the striped engine
        // updates both components in one pass over the `[c0 | c1]` stripe
        // into an arena-recycled buffer.
        let c1_vals = random_values(degree, 0xC1 ^ degree as u64);
        let mult = random_values(degree, 0x717 ^ degree as u64);
        // Faithful to the replaced evaluator: per component, a zero-filled
        // fresh buffer then an indexed fill pass (the `vec![0; n]` +
        // `par_chunks` shape of the split-layout engine).
        let split_component = |src: &[u64]| -> Vec<u64> {
            let mut out = vec![0u64; degree];
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = p_mul(src[i], mult[i]);
            }
            out
        };
        let before = time_micro(
            format!("ct_pt_pointwise/{degree} (before: split)"),
            1,
            iters,
            || {
                let out0 = split_component(&a);
                let out1 = split_component(&c1_vals);
                sink = sink.wrapping_add(out0[0]).wrapping_add(out1[0]);
            },
        );
        print_micro(&before);
        let payload = CtPayload::from_components(&a, &c1_vals, Domain::Eval);
        let mut arena = PolyArena::new();
        let after = time_micro(
            format!("ct_pt_pointwise/{degree} (after: striped)"),
            1,
            iters,
            || {
                let mut out = arena.take(2 * degree);
                payload.mul_eval2(&mult, &mut out, 1, global, &chain1);
                sink = sink.wrapping_add(out[0]).wrapping_add(out[degree]);
                arena.put(out);
            },
        );
        print_micro(&after);
        rows.push(Row {
            op: "ct_pt_pointwise",
            degree,
            before_ms: before.median_ms(),
            after_ms: after.median_ms(),
        });

        // --- engine decomposition: the replaced eager-scalar engine vs the
        // lazy engine under scalar and SIMD policies, on identical inputs.
        // Outputs must be bit-identical across all three variants — the
        // lazy intermediates are exact residue-class members and the final
        // canonicalization maps each class to its unique representative.
        let eager = EagerNtt::new(degree);
        let lazy_scalar = NttTables::with_policy(degree, SimdPolicy::Scalar);
        let lazy_simd = NttTables::with_policy(degree, detected);

        let mut want_fwd = a.clone();
        eager.forward(&mut want_fwd);
        let mut want_inv = a.clone();
        eager.inverse(&mut want_inv);
        for (name, t) in [("lazy_scalar", &lazy_scalar), ("lazy_simd", &lazy_simd)] {
            let mut got = a.clone();
            t.forward(&mut got);
            assert_eq!(got, want_fwd, "{name} forward must match the eager engine");
            let mut got = a.clone();
            t.inverse(&mut got);
            assert_eq!(got, want_inv, "{name} inverse must match the eager engine");
        }

        for (engine, fwd, inv) in [
            (
                "eager_scalar",
                &(|x: &mut [u64]| eager.forward(x)) as &dyn Fn(&mut [u64]),
                &(|x: &mut [u64]| eager.inverse(x)) as &dyn Fn(&mut [u64]),
            ),
            (
                "lazy_scalar",
                &(|x: &mut [u64]| lazy_scalar.forward(x)) as &dyn Fn(&mut [u64]),
                &(|x: &mut [u64]| lazy_scalar.inverse(x)) as &dyn Fn(&mut [u64]),
            ),
            (
                "lazy_simd",
                &(|x: &mut [u64]| lazy_simd.forward(x)) as &dyn Fn(&mut [u64]),
                &(|x: &mut [u64]| lazy_simd.inverse(x)) as &dyn Fn(&mut [u64]),
            ),
        ] {
            let m = time_micro(
                format!("engine forward_ntt/{degree} ({engine})"),
                1,
                iters,
                || {
                    scratch.copy_from_slice(&a);
                    fwd(&mut scratch);
                },
            );
            print_micro(&m);
            engine_rows.push(EngineRow {
                op: "forward_ntt",
                degree,
                engine,
                ms: m.median_ms(),
            });
            let m = time_micro(
                format!("engine inverse_ntt/{degree} ({engine})"),
                1,
                iters,
                || {
                    scratch.copy_from_slice(&a);
                    inv(&mut scratch);
                },
            );
            print_micro(&m);
            engine_rows.push(EngineRow {
                op: "inverse_ntt",
                degree,
                engine,
                ms: m.median_ms(),
            });
        }

        // --- fused stripe kernels under forced policies. `mul_add_eval2`
        // is the whole ct-ct multiply (tensor + key switch in one pass);
        // `mul_eval2` is the ct-pt pointwise product.
        let pa = CtPayload::from_components(&a, &a1, Domain::Eval);
        let pb = CtPayload::from_components(&b, &b1, Domain::Eval);
        let s0 = random_values(degree, 0x50 ^ degree as u64);
        let s1 = random_values(degree, 0x51 ^ degree as u64);
        let mut out_scalar = vec![0u64; 2 * degree];
        let mut out_simd = vec![0u64; 2 * degree];
        pa.mul_add_eval2(
            &pb,
            &s0,
            &s1,
            &mut out_scalar,
            1,
            SimdPolicy::Scalar,
            &chain1,
        );
        pa.mul_add_eval2(&pb, &s0, &s1, &mut out_simd, 1, detected, &chain1);
        assert_eq!(
            out_scalar, out_simd,
            "SIMD fused tensor kernel must be bit-identical to scalar"
        );
        let mut out = vec![0u64; 2 * degree];
        for (engine, pol) in [("scalar", SimdPolicy::Scalar), ("simd", detected)] {
            let m = time_micro(
                format!("engine ct_ct_fused/{degree} ({engine})"),
                1,
                iters,
                || {
                    pa.mul_add_eval2(&pb, &s0, &s1, &mut out, 1, pol, &chain1);
                    sink = sink.wrapping_add(out[0]);
                },
            );
            print_micro(&m);
            engine_rows.push(EngineRow {
                op: "ct_ct_fused",
                degree,
                engine,
                ms: m.median_ms(),
            });
            let m = time_micro(
                format!("engine ct_pt_fused/{degree} ({engine})"),
                1,
                iters,
                || {
                    pa.mul_eval2(&mult, &mut out, 1, pol, &chain1);
                    sink = sink.wrapping_add(out[0]);
                },
            );
            print_micro(&m);
            engine_rows.push(EngineRow {
                op: "ct_pt_fused",
                degree,
                engine,
                ms: m.median_ms(),
            });
        }

        // --- reduction-count accounting, and the CI smoke: the lazy
        // path's canonicalization count must strictly drop.
        for (op, eager_c, lazy_c) in [
            (
                "forward_ntt",
                ntt_counts(degree, false, false),
                ntt_counts(degree, true, false),
            ),
            (
                "inverse_ntt",
                ntt_counts(degree, false, true),
                ntt_counts(degree, true, true),
            ),
            (
                "ct_ct_fused",
                ct_ct_fused_counts(degree, false),
                ct_ct_fused_counts(degree, true),
            ),
        ] {
            assert_eq!(eager_c.muls, lazy_c.muls, "{op}: muls must not change");
            assert_eq!(eager_c.adds, lazy_c.adds, "{op}: adds must not change");
            assert!(
                lazy_c.reductions < eager_c.reductions,
                "{op}/{degree}: lazy reduction count ({}) must strictly drop below eager ({})",
                lazy_c.reductions,
                eager_c.reductions
            );
            count_rows.push(CountRow {
                op,
                degree,
                eager: eager_c,
                lazy: lazy_c,
            });
        }

        if sink == u64::MAX {
            // Keeps the baseline results observable so the timed loops
            // cannot be optimized away.
            println!("(sink {sink})");
        }
    }

    println!(
        "\n{:<14} {:>7} {:>12} {:>12} {:>9}",
        "op", "degree", "before(ms)", "after(ms)", "speedup"
    );
    for row in &rows {
        println!(
            "{:<14} {:>7} {:>12.4} {:>12.4} {:>8.2}x",
            row.op,
            row.degree,
            row.before_ms,
            row.after_ms,
            row.speedup()
        );
    }

    println!(
        "\n{:<14} {:>7} {:>13} {:>11}",
        "engine op", "degree", "engine", "ms"
    );
    for row in &engine_rows {
        println!(
            "{:<14} {:>7} {:>13} {:>11.4}",
            row.op, row.degree, row.engine, row.ms
        );
    }

    println!(
        "\n{:<14} {:>7} {:>11} {:>11} {:>13} {:>13}",
        "counted op", "degree", "eager red.", "lazy red.", "eager red/el", "lazy red/el"
    );
    for row in &count_rows {
        println!(
            "{:<14} {:>7} {:>11} {:>11} {:>13.2} {:>13.2}",
            row.op,
            row.degree,
            row.eager.reductions,
            row.lazy.reductions,
            row.eager.reductions as f64 / row.degree as f64,
            row.lazy.reductions as f64 / row.degree as f64,
        );
    }

    // Engine headlines: the lazy/SIMD engine against the replaced
    // eager-scalar engine at degree >= 4096 (acceptance bar: 1.2x on the
    // forward NTT and the fused ct-ct kernel).
    let engine_speedup = |op: &str, fast: &str, slow: &str| -> f64 {
        engine_rows
            .iter()
            .filter(|r| r.op == op && r.degree >= 4096 && r.engine == fast)
            .map(|r| {
                let base = engine_rows
                    .iter()
                    .find(|s| s.op == op && s.degree == r.degree && s.engine == slow)
                    .expect("matching baseline row");
                base.ms / r.ms.max(1e-9)
            })
            .fold(f64::INFINITY, f64::min)
    };
    let fwd_engine_speedup = engine_speedup("forward_ntt", "lazy_simd", "eager_scalar");
    let ct_engine_speedup = engine_speedup("ct_ct_fused", "simd", "scalar");

    let speedups: Vec<f64> = rows.iter().map(Row::speedup).collect();
    let ones = vec![1.0; speedups.len()];
    let geomean = chehab_bench::geometric_mean_ratio(&speedups, &ones);
    let mult_at_4096: Vec<&Row> = rows
        .iter()
        .filter(|r| r.op == "ct_ct_mul" && r.degree >= 4096)
        .collect();
    let mult_speedup_at_4096 = mult_at_4096
        .iter()
        .map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    println!("\ngeomean speedup across rows: {geomean:.2}x");
    if mult_speedup_at_4096.is_finite() {
        println!(
            "ct-ct multiply speedup at degree >= 4096 (worst row): {mult_speedup_at_4096:.2}x \
             (acceptance bar: 2x)"
        );
    }
    if fwd_engine_speedup.is_finite() {
        println!(
            "forward NTT lazy-SIMD vs eager-scalar at degree >= 4096 (worst row): \
             {fwd_engine_speedup:.2}x (acceptance bar: 1.2x)"
        );
    }
    if ct_engine_speedup.is_finite() {
        println!(
            "fused ct-ct kernel SIMD vs scalar at degree >= 4096 (worst row): \
             {ct_engine_speedup:.2}x (acceptance bar: 1.2x)"
        );
    }

    // --- calibration re-snapshot at degree 4096 (present in both the
    // quick and full degree lists): the per-op latencies the dataflow
    // scheduler's critical-path priorities are derived from, under the
    // old (scalar) and new (SIMD) arithmetic.
    let calib_degree = 4096;
    println!("\n== calibration re-snapshot at degree {calib_degree} ({iters} samples/op)");
    let old_model = calibrate_policy(calib_degree, SimdPolicy::Scalar, iters);
    let new_model = calibrate_policy(calib_degree, detected, iters);
    let fallback = OpCosts::default();
    let old_costs = old_model.to_op_costs(&fallback);
    let new_costs = new_model.to_op_costs(&fallback);
    println!(
        "{:<22} {:>12} {:>12} {:>8}",
        "op kind", "scalar(ms)", "simd(ms)", "ratio"
    );
    let mut calib_kinds: Vec<Value> = Vec::new();
    for kind in OP_KINDS {
        let old_ms = mean_ms(&old_model, kind);
        let new_ms = mean_ms(&new_model, kind);
        let ratio = old_ms / new_ms.max(1e-9);
        println!(
            "{:<22} {:>12.4} {:>12.4} {:>7.2}x",
            kind.label(),
            old_ms,
            new_ms,
            ratio
        );
        calib_kinds.push(Value::Object(vec![
            ("op".into(), Value::Str(kind.label().into())),
            ("old_ms".into(), Value::Float(old_ms)),
            ("new_ms".into(), Value::Float(new_ms)),
            ("ratio".into(), Value::Float(ratio)),
        ]));
    }

    // --- RNS multi-limb ct-pt fused kernel (PR 9). PR 8 measured the k=1
    // kernel memory-bound: one Goldilocks epsilon-fold per streamed product
    // leaves the AVX2 path at ~1.0x. The fused layout fixes the traffic at
    // 20 bytes per modular multiply (3 input + 2 output words per coefficient
    // pair) independent of the limb count, but generic limbs replace the
    // epsilon-fold with a Barrett reduction (3 widening multiplies + 2
    // conditional subtracts per product), so each streamed byte carries
    // roughly twice the arithmetic and the SIMD path has headroom again.
    let rns_degree = 4096usize;
    let mut sink2 = 0u64;
    println!("\n== RNS ct-pt fused kernel at degree {rns_degree} ({iters} samples/op)");
    println!(
        "{:<6} {:>12} {:>10} {:>12} {:>12} {:>9}",
        "limbs", "bytes/call", "bytes/op", "scalar(ms)", "simd(ms)", "speedup"
    );
    let mut rns_rows: Vec<Value> = Vec::new();
    let mut rns_speedup_k1 = f64::NAN;
    let mut rns_speedup_k2plus = f64::INFINITY;
    for k in 1..=3usize {
        let chain = ModulusChain::new(k, rns_degree, false);
        let half = k * rns_degree;
        let mut stripe = vec![0u64; 2 * half];
        let mut mult = vec![0u64; half];
        for li in 0..k {
            let q = chain.limb(li).modulus();
            let seed = (k * 16 + li) as u64;
            let c0_vals = random_values(rns_degree, 0xA0 ^ seed);
            let c1_vals = random_values(rns_degree, 0xA1 ^ seed);
            let m_vals = random_values(rns_degree, 0xA2 ^ seed);
            for j in 0..rns_degree {
                stripe[li * rns_degree + j] = c0_vals[j] % q;
                stripe[half + li * rns_degree + j] = c1_vals[j] % q;
                mult[li * rns_degree + j] = m_vals[j] % q;
            }
        }
        let payload = CtPayload::from_limb_stripe(stripe, k, Domain::Eval);
        let mut out_scalar = vec![0u64; 2 * half];
        let mut out_simd = vec![0u64; 2 * half];
        payload.mul_eval2(&mult, &mut out_scalar, 1, SimdPolicy::Scalar, &chain);
        payload.mul_eval2(&mult, &mut out_simd, 1, detected, &chain);
        assert_eq!(
            out_scalar, out_simd,
            "k={k}: SIMD fused ct-pt kernel must be bit-identical to scalar"
        );
        let mut ms_by_policy = [0.0f64; 2];
        let mut out = vec![0u64; 2 * half];
        for (slot, pol) in [(0usize, SimdPolicy::Scalar), (1usize, detected)] {
            let m = time_micro(
                format!(
                    "rns ct_pt_fused/{rns_degree} k={k} ({})",
                    if slot == 0 { "scalar" } else { "simd" }
                ),
                1,
                iters,
                || {
                    payload.mul_eval2(&mult, &mut out, 1, pol, &chain);
                    sink2 = sink2.wrapping_add(out[0]).wrapping_add(out[half]);
                },
            );
            ms_by_policy[slot] = m.median_ms();
        }
        // Traffic per call: 3 input words read + 2 output words written per
        // coefficient pair, across both components and all limbs.
        let bytes_per_call = (5 * 2 * half * 8 / 2) as f64;
        let muls_per_call = (2 * half) as f64;
        let bytes_per_op = bytes_per_call / muls_per_call;
        let speedup = ms_by_policy[0] / ms_by_policy[1].max(1e-9);
        if k == 1 {
            rns_speedup_k1 = speedup;
        } else {
            rns_speedup_k2plus = rns_speedup_k2plus.min(speedup);
        }
        println!(
            "{:<6} {:>12} {:>10.1} {:>12.4} {:>12.4} {:>8.2}x",
            k, bytes_per_call as u64, bytes_per_op, ms_by_policy[0], ms_by_policy[1], speedup
        );
        rns_rows.push(Value::Object(vec![
            ("limbs".into(), Value::Int(k as i64)),
            ("degree".into(), Value::Int(rns_degree as i64)),
            ("bytes_per_call".into(), Value::Float(bytes_per_call)),
            ("bytes_per_op".into(), Value::Float(bytes_per_op)),
            ("scalar_ms".into(), Value::Float(ms_by_policy[0])),
            ("simd_ms".into(), Value::Float(ms_by_policy[1])),
            ("speedup".into(), Value::Float(speedup)),
        ]));
    }
    if sink2 == u64::MAX {
        println!("(sink {sink2})");
    }
    println!(
        "RNS ct-pt fused SIMD-vs-scalar: {rns_speedup_k1:.2}x at k=1 (memory-bound), \
         {rns_speedup_k2plus:.2}x worst case at k>=2 (acceptance bar: >1.0x)"
    );

    let json_rows: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("op".into(), Value::Str(r.op.to_string())),
                ("degree".into(), Value::Int(r.degree as i64)),
                ("before_ms".into(), Value::Float(r.before_ms)),
                ("after_ms".into(), Value::Float(r.after_ms)),
                ("speedup".into(), Value::Float(r.speedup())),
            ])
        })
        .collect();
    let json_engine_rows: Vec<Value> = engine_rows
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("op".into(), Value::Str(r.op.to_string())),
                ("degree".into(), Value::Int(r.degree as i64)),
                ("engine".into(), Value::Str(r.engine.to_string())),
                ("ms".into(), Value::Float(r.ms)),
            ])
        })
        .collect();
    let json_count_rows: Vec<Value> = count_rows
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("op".into(), Value::Str(r.op.to_string())),
                ("degree".into(), Value::Int(r.degree as i64)),
                ("eager".into(), counts_json(&r.eager, r.degree)),
                ("lazy".into(), counts_json(&r.lazy, r.degree)),
                (
                    "reduction_delta".into(),
                    Value::Int((r.eager.reductions - r.lazy.reductions) as i64),
                ),
            ])
        })
        .collect();
    let document = Value::Object(vec![
        ("experiment".into(), Value::Str("ntt_micro".into())),
        ("quick".into(), Value::Bool(quick)),
        ("iters".into(), Value::Int(iters as i64)),
        (
            "host_cpus".into(),
            Value::Int(chehab_bench::available_cpus() as i64),
        ),
        (
            "simd_policy".into(),
            Value::Object(vec![
                ("global".into(), Value::Str(global.name().into())),
                ("detected".into(), Value::Str(detected.name().into())),
            ]),
        ),
        (
            "semantics".into(),
            Value::Str(
                "before = seed polynomial engine (128-bit % reduction; coefficient-domain \
                 operands; ct-ct multiply = 6 ring products x 3 transforms each with 2 operand \
                 clones; rotation = coefficient Galois + 2 ring products). after = hot-path \
                 engine (branch-light Goldilocks reduction; ciphertext payloads lazily kept in \
                 NTT form, so ct-ct multiply and key switching are fused pointwise loops with \
                 zero transforms and zero temporaries). ct_pt_pointwise isolates the memory \
                 layout: before = split components, two passes, two fresh output allocations; \
                 after = one fused pass over the [c0|c1] stripe into an arena-recycled buffer. \
                 engine_rows decompose the hot path itself: eager_scalar = the replaced \
                 engine (canonicalizing compare after every butterfly op), lazy_scalar / \
                 lazy_simd (and scalar / simd for the fused stripe kernels) = the deferred- \
                 canonicalization engine under forced SimdPolicy, all bit-identical. \
                 reduction_counts walk the stage structure; 'reductions' counts canonicalizing \
                 compare-and-correct steps only (the epsilon-folds inside every 128-bit product \
                 are shared by both engines and excluded). calibration re-snapshots mean per-op \
                 latencies under the scalar (old) and SIMD (new) policies and projects them \
                 into OpCosts tables (vec_add = 1.0 convention). Medians over `iters` runs"
                    .into(),
            ),
        ),
        ("geomean_speedup".into(), Value::Float(geomean)),
        (
            "ct_ct_mul_speedup_at_4096".into(),
            if mult_speedup_at_4096.is_finite() {
                Value::Float(mult_speedup_at_4096)
            } else {
                Value::Null
            },
        ),
        (
            "engine_forward_ntt_speedup_at_4096".into(),
            if fwd_engine_speedup.is_finite() {
                Value::Float(fwd_engine_speedup)
            } else {
                Value::Null
            },
        ),
        (
            "engine_ct_ct_fused_speedup_at_4096".into(),
            if ct_engine_speedup.is_finite() {
                Value::Float(ct_engine_speedup)
            } else {
                Value::Null
            },
        ),
        (
            "ct_pt_rns".into(),
            Value::Object(vec![
                ("degree".into(), Value::Int(rns_degree as i64)),
                (
                    "speedup_k1".into(),
                    if rns_speedup_k1.is_finite() {
                        Value::Float(rns_speedup_k1)
                    } else {
                        Value::Null
                    },
                ),
                (
                    "min_speedup_k2plus".into(),
                    if rns_speedup_k2plus.is_finite() {
                        Value::Float(rns_speedup_k2plus)
                    } else {
                        Value::Null
                    },
                ),
                ("rows".into(), Value::Array(rns_rows)),
            ]),
        ),
        ("rows".into(), Value::Array(json_rows)),
        ("engine_rows".into(), Value::Array(json_engine_rows)),
        ("reduction_counts".into(), Value::Array(json_count_rows)),
        (
            "calibration".into(),
            Value::Object(vec![
                ("degree".into(), Value::Int(calib_degree as i64)),
                ("samples_per_op".into(), Value::Int(iters as i64)),
                ("kinds".into(), Value::Array(calib_kinds)),
                ("op_costs_old".into(), op_costs_json(&old_costs)),
                ("op_costs_new".into(), op_costs_json(&new_costs)),
            ]),
        ),
    ]);
    match std::fs::write(
        "BENCH_ntt_micro.json",
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible"),
    ) {
        Ok(()) => println!("wrote BENCH_ntt_micro.json"),
        Err(e) => eprintln!("failed to write BENCH_ntt_micro.json: {e}"),
    }
}
