//! Registry-free micro-benchmarks of the polynomial hot path: forward and
//! inverse NTTs, ct-ct multiplication and key switching (rotation) at
//! payload degrees 1024–16384, each measured **before** (the seed engine:
//! 128-bit `%` reduction, coefficient-domain operands, three transforms and
//! two operand clones per ring product) and **after** (the hot-path engine:
//! branch-light Goldilocks reduction, lazy NTT-domain ciphertexts, fused
//! pointwise key switching).
//!
//! Usage: `cargo run --release -p chehab-bench --bin ntt_micro --
//! [--quick] [--iters N]`
//!
//! Writes `BENCH_ntt_micro.json` with one row per (operation, degree) and a
//! `ct_ct_mul_speedup_at_4096` headline figure (the acceptance bar for this
//! optimization is >= 2x there).
//!
//! The "before" columns are a faithful in-binary reimplementation of the
//! seed algorithms (bit-identical outputs, same operation count and memory
//! traffic), kept here so the comparison survives the seed code's removal.

use chehab_bench::micro::{print_micro, time_micro};
use chehab_fhe::poly::{p_add, p_inv, p_mul, p_pow, p_sub, Domain, NttTables, Poly, MODULUS};
use chehab_fhe::{
    BfvParameters, CtPayload, Encryptor, Evaluator, FheContext, KeyGenerator, PolyArena,
    SecurityLevel,
};
use serde::Value;

/// The seed's modular multiplication: 128-bit product reduced with `%`.
#[inline]
fn slow_mul(a: u64, b: u64) -> u64 {
    ((u128::from(a) * u128::from(b)) % u128::from(MODULUS)) as u64
}

/// A faithful copy of the seed's NTT (same twiddle layout, butterflies
/// reduced through the 128-bit division).
struct BaselineNtt {
    degree: usize,
    psi_rev: Vec<u64>,
    inv_psi_rev: Vec<u64>,
    inv_degree: u64,
}

impl BaselineNtt {
    fn new(degree: usize) -> Self {
        let log2_2n = (2 * degree).trailing_zeros();
        let psi = p_pow(7, (MODULUS - 1) >> log2_2n);
        let inv_psi = p_inv(psi);
        let log_n = degree.trailing_zeros();
        let mut psi_rev = vec![0u64; degree];
        let mut inv_psi_rev = vec![0u64; degree];
        let (mut power, mut inv_power) = (1u64, 1u64);
        for i in 0..degree {
            let rev = ((i as u32).reverse_bits() >> (32 - log_n)) as usize;
            psi_rev[rev] = power;
            inv_psi_rev[rev] = inv_power;
            power = slow_mul(power, psi);
            inv_power = slow_mul(inv_power, inv_psi);
        }
        BaselineNtt {
            degree,
            psi_rev,
            inv_psi_rev,
            inv_degree: p_inv(degree as u64),
        }
    }

    fn forward(&self, a: &mut [u64]) {
        let n = self.degree;
        let mut t = n;
        let mut m = 1usize;
        while m < n {
            t /= 2;
            for i in 0..m {
                let j1 = 2 * i * t;
                let s = self.psi_rev[m + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = slow_mul(a[j + t], s);
                    a[j] = p_add(u, v);
                    a[j + t] = p_sub(u, v);
                }
            }
            m *= 2;
        }
    }

    fn inverse(&self, a: &mut [u64]) {
        let n = self.degree;
        let mut t = 1usize;
        let mut m = n;
        while m > 1 {
            let h = m / 2;
            let mut j1 = 0usize;
            for i in 0..h {
                let s = self.inv_psi_rev[h + i];
                for j in j1..j1 + t {
                    let u = a[j];
                    let v = a[j + t];
                    a[j] = p_add(u, v);
                    a[j + t] = slow_mul(p_sub(u, v), s);
                }
                j1 += 2 * t;
            }
            t *= 2;
            m = h;
        }
        for x in a.iter_mut() {
            *x = slow_mul(*x, self.inv_degree);
        }
    }

    /// The seed's `mul_ntt`: clone both operands, three transforms.
    fn mul_ntt(&self, a: &[u64], b: &[u64]) -> Vec<u64> {
        let mut x = a.to_vec();
        let mut y = b.to_vec();
        self.forward(&mut x);
        self.forward(&mut y);
        for (xi, yi) in x.iter_mut().zip(&y) {
            *xi = slow_mul(*xi, *yi);
        }
        self.inverse(&mut x);
        x
    }

    /// The seed's ct-ct multiplication payload: a coefficient-domain tensor
    /// product plus key switching — six `mul_ntt` ring products.
    fn tensor_product(
        &self,
        a0: &[u64],
        a1: &[u64],
        b0: &[u64],
        b1: &[u64],
    ) -> (Vec<u64>, Vec<u64>) {
        let c0 = self.mul_ntt(a0, b0);
        let c1a = self.mul_ntt(a0, b1);
        let c1b = self.mul_ntt(a1, b0);
        let c2 = self.mul_ntt(a1, b1);
        let c1: Vec<u64> = c1a.iter().zip(&c1b).map(|(&x, &y)| p_add(x, y)).collect();
        let k0 = self.mul_ntt(&c2, a0);
        let k1 = self.mul_ntt(&c2, b0);
        (
            c0.iter().zip(&k0).map(|(&x, &y)| p_add(x, y)).collect(),
            c1.iter().zip(&k1).map(|(&x, &y)| p_add(x, y)).collect(),
        )
    }

    /// The seed's rotation payload: coefficient-domain Galois automorphism
    /// plus one `mul_ntt` key-switch product per component.
    fn rotate_payload(&self, p0: &[u64], p1: &[u64], galois_elt: usize) -> (Vec<u64>, Vec<u64>) {
        let g0 = Poly::from_coeffs(p0.to_vec()).apply_galois(galois_elt);
        let g1 = Poly::from_coeffs(p1.to_vec()).apply_galois(galois_elt);
        (self.mul_ntt(g0.coeffs(), p0), self.mul_ntt(g1.coeffs(), p0))
    }
}

/// Deterministic pseudo-random canonical field elements.
fn random_values(n: usize, seed: u64) -> Vec<u64> {
    let mut state = seed | 1;
    (0..n)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state.wrapping_mul(0x2545_F491_4F6C_DD1D) % MODULUS
        })
        .collect()
}

struct Row {
    op: &'static str,
    degree: usize,
    before_ms: f64,
    after_ms: f64,
}

impl Row {
    fn speedup(&self) -> f64 {
        self.before_ms / self.after_ms.max(1e-9)
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let iters: usize = args
        .iter()
        .position(|a| a == "--iters")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(if quick { 3 } else { 7 });
    let degrees: &[usize] = if quick {
        &[1024, 4096]
    } else {
        &[1024, 2048, 4096, 8192, 16384]
    };

    println!(
        "== ntt_micro: seed engine (128-bit % reduction, coefficient-domain) vs hot-path engine \
         (Goldilocks reduction, lazy NTT domain); {iters} iters/row, medians"
    );
    let mut rows: Vec<Row> = Vec::new();

    for &degree in degrees {
        let baseline = BaselineNtt::new(degree);
        let tables = NttTables::new(degree);
        let a = random_values(degree, 0xA11CE ^ degree as u64);
        let b = random_values(degree, 0xB0B ^ degree as u64);

        // Parameters driving the real evaluator at this payload degree. The
        // slot ring is kept at the minimum width (8) so the measurement
        // isolates payload-polynomial work, which is what changed.
        let params = BfvParameters {
            poly_modulus_degree: 8,
            plain_modulus: 786_433,
            coeff_modulus_bits: 389,
            security_level: SecurityLevel::Tc128,
            payload_degree: degree,
            simulate_compute: true,
        };
        let ctx = FheContext::new(params).expect("valid parameters");
        let mut keygen = KeyGenerator::new(ctx.params(), 0xC4E4AB);
        let mut encryptor = Encryptor::new(&ctx, &keygen.public_key());
        let relin = keygen.relin_keys();
        let galois = keygen.galois_keys(&[1]);
        let mut evaluator = Evaluator::new(&ctx);
        let ct_a = encryptor.encrypt_values(&[1, 2, 3]).expect("encrypt");
        let ct_b = encryptor.encrypt_values(&[4, 5, 6]).expect("encrypt");

        // --- forward / inverse transforms.
        let mut scratch = a.clone();
        let before = time_micro(format!("forward_ntt/{degree} (before)"), 1, iters, || {
            scratch.copy_from_slice(&a);
            baseline.forward(&mut scratch);
        });
        print_micro(&before);
        let after = time_micro(format!("forward_ntt/{degree} (after)"), 1, iters, || {
            scratch.copy_from_slice(&a);
            tables.forward(&mut scratch);
        });
        print_micro(&after);
        rows.push(Row {
            op: "forward_ntt",
            degree,
            before_ms: before.median_ms(),
            after_ms: after.median_ms(),
        });

        let before = time_micro(format!("inverse_ntt/{degree} (before)"), 1, iters, || {
            scratch.copy_from_slice(&a);
            baseline.inverse(&mut scratch);
        });
        print_micro(&before);
        let after = time_micro(format!("inverse_ntt/{degree} (after)"), 1, iters, || {
            scratch.copy_from_slice(&a);
            tables.inverse(&mut scratch);
        });
        print_micro(&after);
        rows.push(Row {
            op: "inverse_ntt",
            degree,
            before_ms: before.median_ms(),
            after_ms: after.median_ms(),
        });

        // --- ct-ct multiplication: seed tensor product (six ring products,
        // eighteen transforms) vs the real evaluator's fused pointwise path.
        let a1 = random_values(degree, 0xA1 ^ degree as u64);
        let b1 = random_values(degree, 0xB1 ^ degree as u64);
        let mut sink = 0u64;
        let before = time_micro(format!("ct_ct_mul/{degree} (before)"), 1, iters, || {
            let (c0, c1) = baseline.tensor_product(&a, &a1, &b, &b1);
            sink = sink.wrapping_add(c0[0]).wrapping_add(c1[0]);
        });
        print_micro(&before);
        let mut product = None;
        let after = time_micro(format!("ct_ct_mul/{degree} (after)"), 1, iters, || {
            product = Some(evaluator.multiply(&ct_a, &ct_b, &relin));
        });
        print_micro(&after);
        assert!(product.is_some());
        rows.push(Row {
            op: "ct_ct_mul",
            degree,
            before_ms: before.median_ms(),
            after_ms: after.median_ms(),
        });

        // --- key switch (rotation): seed Galois + two ring products vs the
        // evaluator's permutation + pointwise key-switch path.
        let galois_elt = 3usize;
        let before = time_micro(format!("key_switch/{degree} (before)"), 1, iters, || {
            let (k0, k1) = baseline.rotate_payload(&a, &a1, galois_elt);
            sink = sink.wrapping_add(k0[0]).wrapping_add(k1[0]);
        });
        print_micro(&before);
        let mut rotated = None;
        let after = time_micro(format!("key_switch/{degree} (after)"), 1, iters, || {
            rotated = Some(evaluator.rotate(&ct_a, 1, &galois).expect("keyed step"));
        });
        print_micro(&after);
        assert!(rotated.is_some());
        rows.push(Row {
            op: "key_switch",
            degree,
            before_ms: before.median_ms(),
            after_ms: after.median_ms(),
        });

        // --- striped vs split pointwise product: the pre-stripe engine
        // walked c0 and c1 as separate polys (two passes over the shared
        // multiplier, two fresh output allocations); the striped engine
        // updates both components in one pass over the `[c0 | c1]` stripe
        // into an arena-recycled buffer.
        let c1_vals = random_values(degree, 0xC1 ^ degree as u64);
        let mult = random_values(degree, 0x717 ^ degree as u64);
        // Faithful to the replaced evaluator: per component, a zero-filled
        // fresh buffer then an indexed fill pass (the `vec![0; n]` +
        // `par_chunks` shape of the split-layout engine).
        let split_component = |src: &[u64]| -> Vec<u64> {
            let mut out = vec![0u64; degree];
            for (i, slot) in out.iter_mut().enumerate() {
                *slot = p_mul(src[i], mult[i]);
            }
            out
        };
        let before = time_micro(
            format!("ct_pt_pointwise/{degree} (before: split)"),
            1,
            iters,
            || {
                let out0 = split_component(&a);
                let out1 = split_component(&c1_vals);
                sink = sink.wrapping_add(out0[0]).wrapping_add(out1[0]);
            },
        );
        print_micro(&before);
        let payload = CtPayload::from_components(&a, &c1_vals, Domain::Eval);
        let mut arena = PolyArena::new();
        let after = time_micro(
            format!("ct_pt_pointwise/{degree} (after: striped)"),
            1,
            iters,
            || {
                let mut out = arena.take(2 * degree);
                payload.mul_eval2(&mult, &mut out, 1);
                sink = sink.wrapping_add(out[0]).wrapping_add(out[degree]);
                arena.put(out);
            },
        );
        print_micro(&after);
        rows.push(Row {
            op: "ct_pt_pointwise",
            degree,
            before_ms: before.median_ms(),
            after_ms: after.median_ms(),
        });
        if sink == u64::MAX {
            // Keeps the baseline results observable so the timed loops
            // cannot be optimized away.
            println!("(sink {sink})");
        }
    }

    println!(
        "\n{:<14} {:>7} {:>12} {:>12} {:>9}",
        "op", "degree", "before(ms)", "after(ms)", "speedup"
    );
    for row in &rows {
        println!(
            "{:<14} {:>7} {:>12.4} {:>12.4} {:>8.2}x",
            row.op,
            row.degree,
            row.before_ms,
            row.after_ms,
            row.speedup()
        );
    }

    let speedups: Vec<f64> = rows.iter().map(Row::speedup).collect();
    let ones = vec![1.0; speedups.len()];
    let geomean = chehab_bench::geometric_mean_ratio(&speedups, &ones);
    let mult_at_4096: Vec<&Row> = rows
        .iter()
        .filter(|r| r.op == "ct_ct_mul" && r.degree >= 4096)
        .collect();
    let mult_speedup_at_4096 = mult_at_4096
        .iter()
        .map(|r| r.speedup())
        .fold(f64::INFINITY, f64::min);
    println!("\ngeomean speedup across rows: {geomean:.2}x");
    if mult_speedup_at_4096.is_finite() {
        println!(
            "ct-ct multiply speedup at degree >= 4096 (worst row): {mult_speedup_at_4096:.2}x \
             (acceptance bar: 2x)"
        );
    }

    let json_rows: Vec<Value> = rows
        .iter()
        .map(|r| {
            Value::Object(vec![
                ("op".into(), Value::Str(r.op.to_string())),
                ("degree".into(), Value::Int(r.degree as i64)),
                ("before_ms".into(), Value::Float(r.before_ms)),
                ("after_ms".into(), Value::Float(r.after_ms)),
                ("speedup".into(), Value::Float(r.speedup())),
            ])
        })
        .collect();
    let document = Value::Object(vec![
        ("experiment".into(), Value::Str("ntt_micro".into())),
        ("quick".into(), Value::Bool(quick)),
        ("iters".into(), Value::Int(iters as i64)),
        (
            "host_cpus".into(),
            Value::Int(chehab_bench::available_cpus() as i64),
        ),
        (
            "semantics".into(),
            Value::Str(
                "before = seed polynomial engine (128-bit % reduction; coefficient-domain \
                 operands; ct-ct multiply = 6 ring products x 3 transforms each with 2 operand \
                 clones; rotation = coefficient Galois + 2 ring products). after = hot-path \
                 engine (branch-light Goldilocks reduction; ciphertext payloads lazily kept in \
                 NTT form, so ct-ct multiply and key switching are fused pointwise loops with \
                 zero transforms and zero temporaries). ct_pt_pointwise isolates the memory \
                 layout: before = split components, two passes, two fresh output allocations; \
                 after = one fused pass over the [c0|c1] stripe into an arena-recycled buffer. \
                 Medians over `iters` runs"
                    .into(),
            ),
        ),
        ("geomean_speedup".into(), Value::Float(geomean)),
        (
            "ct_ct_mul_speedup_at_4096".into(),
            if mult_speedup_at_4096.is_finite() {
                Value::Float(mult_speedup_at_4096)
            } else {
                Value::Null
            },
        ),
        ("rows".into(), Value::Array(json_rows)),
    ]);
    match std::fs::write(
        "BENCH_ntt_micro.json",
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible"),
    ) {
        Ok(()) => println!("wrote BENCH_ntt_micro.json"),
        Err(e) => eprintln!("failed to write BENCH_ntt_micro.json: {e}"),
    }
}
