//! Figure 10: training-reward curves against wall-clock time for ICI versus
//! BPE tokenization (ICI trains faster because its tokenizer is a single
//! linear pass with a small fixed vocabulary).
//!
//! Usage: `cargo run --release -p chehab-bench --bin fig10_tokenization -- [--timesteps N]`

use chehab_bench::{write_csv, HarnessConfig};
use chehab_core::training::{train_agent, AgentTrainingOptions, TokenizationKind};

fn main() {
    let config = HarnessConfig::from_args();
    println!("== Figure 10: ICI vs BPE tokenization (training curves)");
    let mut rows = Vec::new();
    let mut wall_clocks = Vec::new();
    for (label, tokenization) in [
        ("ICI", TokenizationKind::Ici),
        ("BPE", TokenizationKind::Bpe),
    ] {
        let trained = train_agent(&AgentTrainingOptions {
            timesteps: config.timesteps,
            tokenization,
            ..AgentTrainingOptions::default()
        });
        println!(
            "\n{label}: {} timesteps in {:.1}s (final mean reward {:.2})",
            trained.report.timesteps,
            trained.report.wall_clock_seconds,
            trained.report.final_mean_reward()
        );
        println!(
            "  {:>10} {:>12} {:>14}",
            "timestep", "seconds", "mean reward"
        );
        for point in &trained.report.curve {
            println!(
                "  {:>10} {:>12.2} {:>14.3}",
                point.timestep, point.wall_clock_seconds, point.mean_episode_reward
            );
            rows.push(format!(
                "{label},{},{:.3},{:.4}",
                point.timestep, point.wall_clock_seconds, point.mean_episode_reward
            ));
        }
        wall_clocks.push((label, trained.report.wall_clock_seconds));
    }
    if let [(_, ici), (_, bpe)] = wall_clocks[..] {
        println!(
            "\ntraining wall-clock: ICI {ici:.1}s vs BPE {bpe:.1}s ({:.2}x faster with ICI)",
            bpe / ici.max(1e-9)
        );
    }
    let _ = write_csv(
        "fig10_tokenization",
        "tokenizer,timestep,seconds,mean_reward",
        &rows,
    );
}
