//! Figure 11 / Table 7: reconstruction accuracy of a Transformer-based
//! sequence autoencoder versus a GRU-based one over tokenized IR programs
//! (the Appendix I.1 encoder-architecture ablation).
//!
//! Usage: `cargo run --release -p chehab-bench --bin fig11_autoencoder -- [--timesteps N]`
//! (`--timesteps` controls the number of training epochs here.)

use chehab_bench::{write_csv, HarnessConfig};
use chehab_datagen::generate_random_dataset;
use chehab_ir::{ici_tokens, Vocabulary};
use chehab_nn::{SequenceAutoencoder, TransformerConfig};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let config = HarnessConfig::from_args();
    let epochs = (config.timesteps / 50).clamp(10, 200);
    println!("== Figure 11 / Table 7: Transformer vs GRU autoencoder ({epochs} epochs)");

    // Corpus: random IR expressions, ICI-tokenized (the paper trains on 1.4M
    // random expressions; the scaled-down harness uses a few hundred).
    let vocab = Vocabulary::ici();
    let dataset = generate_random_dataset(240, 7);
    let corpus: Vec<Vec<usize>> = dataset
        .exprs()
        .iter()
        .map(|e| {
            ici_tokens(e)
                .iter()
                .map(|t| vocab.id(t))
                .take(24)
                .collect::<Vec<usize>>()
        })
        .filter(|seq| !seq.is_empty() && seq.len() >= 4)
        .collect();
    let split = corpus.len() * 4 / 5;
    let (train, test) = corpus.split_at(split);
    println!(
        "corpus: {} training sequences, {} held-out sequences",
        train.len(),
        test.len()
    );

    let mut rows = Vec::new();
    for label in ["Transformer", "GRU"] {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let mut autoencoder = match label {
            "Transformer" => SequenceAutoencoder::transformer(
                TransformerConfig {
                    vocab_size: vocab.len(),
                    model_dim: 48,
                    num_heads: 4,
                    num_layers: 2,
                    ffn_dim: 96,
                    max_len: 24,
                },
                vocab.pad_id(),
                &mut rng,
            ),
            _ => SequenceAutoencoder::gru(vocab.len(), 48, 2, 24, vocab.pad_id(), &mut rng),
        };
        let started = std::time::Instant::now();
        let final_loss = autoencoder.fit(train, epochs, 3e-3);
        let train_acc = autoencoder.evaluate(train);
        let test_acc = autoencoder.evaluate(test);
        println!(
            "{label:<12} loss {final_loss:.3}  train exact {:.1}% / token {:.1}%   test exact {:.1}% / token {:.1}%   ({:.1}s)",
            train_acc.exact_match * 100.0,
            train_acc.token_accuracy * 100.0,
            test_acc.exact_match * 100.0,
            test_acc.token_accuracy * 100.0,
            started.elapsed().as_secs_f64()
        );
        rows.push(format!(
            "{label},{final_loss:.4},{:.4},{:.4},{:.4},{:.4},{:.2}",
            train_acc.exact_match,
            train_acc.token_accuracy,
            test_acc.exact_match,
            test_acc.token_accuracy,
            started.elapsed().as_secs_f64()
        ));
    }
    let _ = write_csv(
        "fig11_autoencoder",
        "encoder,final_loss,train_exact,train_token,test_exact,test_token,train_seconds",
        &rows,
    );
}
