//! Figure 12: execution time of circuits produced by the original CHEHAB
//! (greedy term rewriting) versus CHEHAB RL.
//!
//! Usage: `cargo run --release -p chehab-bench --bin fig12_chehab_vs_rl -- [--full] [--timesteps N]`

use chehab_bench::{measure, ms, write_csv, CompilerUnderTest, HarnessConfig};
use chehab_core::training::{train_agent, AgentTrainingOptions};
use std::sync::Arc;

fn main() {
    let config = HarnessConfig::from_args();
    let params = config.params();
    println!("== Figure 12: CHEHAB (greedy) vs CHEHAB RL");
    let trained = train_agent(&AgentTrainingOptions {
        timesteps: config.timesteps,
        ..AgentTrainingOptions::default()
    });

    println!(
        "{:<22} {:>14} {:>16} {:>10}",
        "benchmark", "CHEHAB (ms)", "CHEHAB RL (ms)", "speedup"
    );
    let mut rows = Vec::new();
    let mut greedy_exec = Vec::new();
    let mut rl_exec = Vec::new();
    for benchmark in config.benchmarks() {
        let greedy = measure(
            &benchmark,
            &CompilerUnderTest::ChehabGreedy,
            &params,
            config.runs,
        );
        let rl = measure(
            &benchmark,
            &CompilerUnderTest::ChehabRl(Arc::clone(&trained.agent)),
            &params,
            config.runs,
        );
        let speedup = ms(greedy.exec_time) / ms(rl.exec_time).max(1e-9);
        println!(
            "{:<22} {:>14.3} {:>16.3} {:>9.2}x",
            benchmark.id(),
            ms(greedy.exec_time),
            ms(rl.exec_time),
            speedup
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.3}",
            benchmark.id(),
            ms(greedy.exec_time),
            ms(rl.exec_time),
            speedup
        ));
        greedy_exec.push(ms(greedy.exec_time));
        rl_exec.push(ms(rl.exec_time));
    }
    let geomean = chehab_bench::geometric_mean_ratio(&greedy_exec, &rl_exec);
    println!("\ngeometric-mean speedup of CHEHAB RL over greedy CHEHAB: {geomean:.2}x");
    let _ = write_csv(
        "fig12_chehab_vs_rl",
        "benchmark,chehab_ms,chehab_rl_ms,speedup",
        &rows,
    );
}
