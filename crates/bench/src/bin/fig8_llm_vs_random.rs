//! Figure 8: execution time of circuits produced by an agent trained on
//! LLM-style structured data versus the same agent trained on uniformly
//! random data.
//!
//! Usage: `cargo run --release -p chehab-bench --bin fig8_llm_vs_random -- [--timesteps N]`

use chehab_bench::{measure, ms, write_csv, CompilerUnderTest, HarnessConfig};
use chehab_core::training::{train_agent, AgentTrainingOptions};
use chehab_datagen::DataSource;
use std::sync::Arc;

fn main() {
    let config = HarnessConfig::from_args();
    let params = config.params();
    println!("== Figure 8: LLM-style vs random training data");
    let llm = train_agent(&AgentTrainingOptions {
        timesteps: config.timesteps,
        data_source: DataSource::LlmLike,
        ..AgentTrainingOptions::default()
    });
    let random = train_agent(&AgentTrainingOptions {
        timesteps: config.timesteps,
        data_source: DataSource::Random,
        ..AgentTrainingOptions::default()
    });
    println!(
        "final mean episode reward: LLM-style {:.2}, random {:.2}\n",
        llm.report.final_mean_reward(),
        random.report.final_mean_reward()
    );

    println!(
        "{:<22} {:>14} {:>14} {:>10}",
        "benchmark", "LLM data (ms)", "random (ms)", "speedup"
    );
    let mut rows = Vec::new();
    let mut llm_exec = Vec::new();
    let mut random_exec = Vec::new();
    for benchmark in config.benchmarks() {
        let m_llm = measure(
            &benchmark,
            &CompilerUnderTest::ChehabRl(Arc::clone(&llm.agent)),
            &params,
            config.runs,
        );
        let m_random = measure(
            &benchmark,
            &CompilerUnderTest::ChehabRl(Arc::clone(&random.agent)),
            &params,
            config.runs,
        );
        let speedup = ms(m_random.exec_time) / ms(m_llm.exec_time).max(1e-9);
        println!(
            "{:<22} {:>14.3} {:>14.3} {:>9.2}x",
            benchmark.id(),
            ms(m_llm.exec_time),
            ms(m_random.exec_time),
            speedup
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.3}",
            benchmark.id(),
            ms(m_llm.exec_time),
            ms(m_random.exec_time),
            speedup
        ));
        llm_exec.push(ms(m_llm.exec_time));
        random_exec.push(ms(m_random.exec_time));
    }
    let geomean = chehab_bench::geometric_mean_ratio(&random_exec, &llm_exec);
    println!("\ngeometric-mean speedup of LLM-style training data: {geomean:.2}x");
    let _ = write_csv(
        "fig8_llm_vs_random",
        "benchmark,llm_ms,random_ms,speedup",
        &rows,
    );
}
