//! Table 6: per-benchmark circuit metrics (depth, multiplicative depth,
//! ciphertext operation counts, consumed noise, compile time) for the
//! Initial / CHEHAB RL / Coyote / CHEHAB-RL-with-post-encryption-layout
//! configurations.
//!
//! Usage: `cargo run --release -p chehab-bench --bin table6_full_metrics -- [--full] [--runs N] [--timesteps N]`

use chehab_bench::{
    measure, print_measurements, write_csv, CompilerUnderTest, HarnessConfig,
    MEASUREMENT_CSV_HEADER,
};
use chehab_core::training::{train_agent, AgentTrainingOptions};
use std::sync::Arc;

fn main() {
    let config = HarnessConfig::from_args();
    let params = config.params();
    println!(
        "== Table 6: full per-benchmark metrics ({} benchmarks)",
        config.benchmarks().len()
    );
    println!(
        "training the CHEHAB RL agent ({} timesteps)...",
        config.timesteps
    );
    let trained = train_agent(&AgentTrainingOptions {
        timesteps: config.timesteps,
        ..AgentTrainingOptions::default()
    });
    println!(
        "agent trained on {} synthesized programs in {:.1}s\n",
        trained.dataset_size, trained.report.wall_clock_seconds
    );

    let compilers = [
        CompilerUnderTest::Initial,
        CompilerUnderTest::ChehabRl(Arc::clone(&trained.agent)),
        CompilerUnderTest::Coyote(config.coyote_config()),
        CompilerUnderTest::ChehabRlLayoutAfter(Arc::clone(&trained.agent)),
    ];

    let mut measurements = Vec::new();
    for benchmark in config.benchmarks() {
        for compiler in &compilers {
            measurements.push(measure(&benchmark, compiler, &params, config.runs));
        }
    }
    let rows = print_measurements(&measurements);
    match write_csv("table6_full_metrics", MEASUREMENT_CSV_HEADER, &rows) {
        Ok(path) => println!("\nwrote {}", path.display()),
        Err(e) => eprintln!("could not write CSV: {e}"),
    }
    chehab_bench::summarize_vs_baseline(&measurements, "CHEHAB RL", "Coyote");
}
