//! Figure 9: execution time of circuits produced by an agent trained with
//! the combined step + terminal reward versus the same agent trained with
//! the step reward only.
//!
//! Usage: `cargo run --release -p chehab-bench --bin fig9_reward_ablation -- [--timesteps N]`

use chehab_bench::{measure, ms, write_csv, CompilerUnderTest, HarnessConfig};
use chehab_core::training::{train_agent, AgentTrainingOptions};
use chehab_rl::RewardConfig;
use std::sync::Arc;

fn main() {
    let config = HarnessConfig::from_args();
    let params = config.params();
    println!("== Figure 9: step+terminal vs step-only reward");
    let combined = train_agent(&AgentTrainingOptions {
        timesteps: config.timesteps,
        reward: RewardConfig::default(),
        ..AgentTrainingOptions::default()
    });
    let step_only = train_agent(&AgentTrainingOptions {
        timesteps: config.timesteps,
        reward: RewardConfig::step_only(),
        ..AgentTrainingOptions::default()
    });

    println!(
        "{:<22} {:>18} {:>14} {:>10}",
        "benchmark", "step+terminal (ms)", "step only (ms)", "ratio"
    );
    let mut rows = Vec::new();
    let mut combined_exec = Vec::new();
    let mut step_exec = Vec::new();
    for benchmark in config.benchmarks() {
        let m_combined = measure(
            &benchmark,
            &CompilerUnderTest::ChehabRl(Arc::clone(&combined.agent)),
            &params,
            config.runs,
        );
        let m_step = measure(
            &benchmark,
            &CompilerUnderTest::ChehabRl(Arc::clone(&step_only.agent)),
            &params,
            config.runs,
        );
        let ratio = ms(m_step.exec_time) / ms(m_combined.exec_time).max(1e-9);
        println!(
            "{:<22} {:>18.3} {:>14.3} {:>9.2}x",
            benchmark.id(),
            ms(m_combined.exec_time),
            ms(m_step.exec_time),
            ratio
        );
        rows.push(format!(
            "{},{:.3},{:.3},{:.3}",
            benchmark.id(),
            ms(m_combined.exec_time),
            ms(m_step.exec_time),
            ratio
        ));
        combined_exec.push(ms(m_combined.exec_time));
        step_exec.push(ms(m_step.exec_time));
    }
    let geomean = chehab_bench::geometric_mean_ratio(&step_exec, &combined_exec);
    println!("\ngeometric-mean benefit of the terminal reward: {geomean:.3}x");
    let _ = write_csv(
        "fig9_reward_ablation",
        "benchmark,step_terminal_ms,step_only_ms,ratio",
        &rows,
    );
}
