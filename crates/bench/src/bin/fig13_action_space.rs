//! Figure 13: learning curves (mean episode reward over timesteps) of the
//! hierarchical rule/location policy versus the flat rule×location policy.
//!
//! Usage: `cargo run --release -p chehab-bench --bin fig13_action_space -- [--timesteps N]`

use chehab_bench::{write_csv, HarnessConfig};
use chehab_core::training::{train_agent, AgentTrainingOptions};

fn main() {
    let config = HarnessConfig::from_args();
    println!("== Figure 13: hierarchical vs flat action space (learning curves)");
    let mut rows = Vec::new();
    let mut finals = Vec::new();
    for (label, flat) in [("hierarchical", false), ("flat", true)] {
        let trained = train_agent(&AgentTrainingOptions {
            timesteps: config.timesteps,
            flat_action_space: flat,
            ..AgentTrainingOptions::default()
        });
        println!(
            "\n{label}: final mean reward {:.3} over {} episodes",
            trained.report.final_mean_reward(),
            trained.report.episodes
        );
        println!("  {:>10} {:>14}", "timestep", "mean reward");
        for point in &trained.report.curve {
            println!(
                "  {:>10} {:>14.3}",
                point.timestep, point.mean_episode_reward
            );
            rows.push(format!(
                "{label},{},{:.4}",
                point.timestep, point.mean_episode_reward
            ));
        }
        finals.push((label, trained.report.final_mean_reward()));
    }
    if let [(_, hier), (_, flat)] = finals[..] {
        println!(
            "\nfinal mean reward: hierarchical {hier:.3} vs flat {flat:.3}{}",
            if hier >= flat {
                "  (hierarchical learns better, as in the paper)"
            } else {
                ""
            }
        );
    }
    let _ = write_csv("fig13_action_space", "policy,timestep,mean_reward", &rows);
}
