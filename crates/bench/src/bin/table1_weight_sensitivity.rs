//! Table 1: sensitivity of execution time and consumed noise to the cost
//! weights `(w_ops, w_depth, w_mult)`; every variant is reported relative to
//! the default `(1, 1, 1)`.
//!
//! Usage: `cargo run --release -p chehab-bench --bin table1_weight_sensitivity -- [--timesteps N]`

use chehab_bench::{
    geometric_mean_ratio, measure, ms, write_csv, CompilerUnderTest, HarnessConfig,
};
use chehab_core::training::{train_agent, AgentTrainingOptions};
use chehab_ir::CostWeights;
use std::sync::Arc;

fn main() {
    let config = HarnessConfig::from_args();
    let params = config.params();
    println!("== Table 1: reward-weight sensitivity");
    let weight_sets = [
        ("(1,1,1)", CostWeights::new(1.0, 1.0, 1.0)),
        ("(1,50,50)", CostWeights::new(1.0, 50.0, 50.0)),
        ("(1,100,100)", CostWeights::new(1.0, 100.0, 100.0)),
        ("(1,150,150)", CostWeights::new(1.0, 150.0, 150.0)),
    ];

    // Measure every configuration on the benchmark subset.
    let mut exec_by_weights: Vec<(String, Vec<f64>, Vec<f64>)> = Vec::new();
    for (label, weights) in weight_sets {
        println!("training agent with weights {label}...");
        let trained = train_agent(&AgentTrainingOptions {
            timesteps: config.timesteps,
            cost_weights: weights,
            ..AgentTrainingOptions::default()
        });
        let compiler = CompilerUnderTest::ChehabRl(Arc::clone(&trained.agent));
        let mut exec = Vec::new();
        let mut noise = Vec::new();
        for benchmark in config.benchmarks() {
            let m = measure(&benchmark, &compiler, &params, config.runs);
            exec.push(ms(m.exec_time));
            noise.push(m.noise_consumed);
        }
        exec_by_weights.push((label.to_string(), exec, noise));
    }

    let (baseline_label, baseline_exec, baseline_noise) = exec_by_weights[0].clone();
    println!(
        "\n{:<14} {:>22} {:>20}",
        "weights", "exec time (x vs (1,1,1))", "noise (x vs (1,1,1))"
    );
    let mut rows = Vec::new();
    for (label, exec, noise) in &exec_by_weights {
        let exec_ratio = geometric_mean_ratio(exec, &baseline_exec);
        let noise_ratio = geometric_mean_ratio(noise, &baseline_noise);
        println!("{label:<14} {exec_ratio:>22.3} {noise_ratio:>20.3}");
        rows.push(format!("{label},{exec_ratio:.4},{noise_ratio:.4}"));
    }
    println!(
        "\n(baseline: {baseline_label}; values above 1 mean slower / noisier than the default)"
    );
    let _ = write_csv(
        "table1_weight_sensitivity",
        "weights,exec_ratio,noise_ratio",
        &rows,
    );
}
