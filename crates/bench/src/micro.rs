//! A registry-free micro-benchmark harness.
//!
//! The crates.io `criterion` crate is unavailable in hermetic builds, so the
//! micro-benchmarks under `benches/` and the `ntt_micro` binary share this
//! small timing loop instead: warm up, run a fixed number of timed
//! iterations, report the median (robust against scheduler stalls on busy
//! 1-CPU hosts, where a mean would drift).

use std::time::{Duration, Instant};

/// One timed micro-benchmark result.
#[derive(Debug, Clone)]
pub struct MicroResult {
    /// Label of the benchmark (e.g. `"forward_ntt/4096"`).
    pub label: String,
    /// Timed iterations.
    pub iters: usize,
    /// Median per-iteration time.
    pub median: Duration,
    /// Mean per-iteration time.
    pub mean: Duration,
    /// Fastest observed iteration.
    pub min: Duration,
}

impl MicroResult {
    /// Median time in milliseconds.
    pub fn median_ms(&self) -> f64 {
        self.median.as_secs_f64() * 1e3
    }
}

/// Times `body` for `iters` iterations after `warmup` untimed ones and
/// returns the per-iteration statistics. The closure's side effects are its
/// own sink — have it write into state the caller keeps alive (the usual
/// black-box pattern without the unstable intrinsics).
pub fn time_micro(
    label: impl Into<String>,
    warmup: usize,
    iters: usize,
    mut body: impl FnMut(),
) -> MicroResult {
    for _ in 0..warmup {
        body();
    }
    let iters = iters.max(1);
    let mut samples = Vec::with_capacity(iters);
    for _ in 0..iters {
        let started = Instant::now();
        body();
        samples.push(started.elapsed());
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let min = samples[0];
    let total: Duration = samples.iter().sum();
    MicroResult {
        label: label.into(),
        iters,
        median,
        mean: total / iters as u32,
        min,
    }
}

/// Prints one result row in the harness's standard format.
pub fn print_micro(result: &MicroResult) {
    println!(
        "{:<34} {:>10.4} ms median {:>10.4} ms mean ({} iters)",
        result.label,
        result.median_ms(),
        result.mean.as_secs_f64() * 1e3,
        result.iters
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timing_loop_reports_consistent_statistics() {
        let mut acc = 0u64;
        let result = time_micro("spin", 1, 9, || {
            for i in 0..1000u64 {
                acc = acc.wrapping_add(i * i);
            }
        });
        assert!(acc > 0);
        assert_eq!(result.iters, 9);
        assert!(result.min <= result.median);
        assert!(result.median > Duration::ZERO);
    }
}
