//! # chehab-bench
//!
//! The evaluation harness of the CHEHAB RL reproduction: shared measurement
//! code used by one experiment binary per figure/table of the paper
//! (Figures 5–13, Tables 1, 6 and 7) plus the Criterion micro-benchmarks.
//!
//! Every binary accepts a few command-line flags (see [`HarnessConfig`]) to
//! scale the run between a quick smoke test and a full-suite evaluation, and
//! writes its rows as CSV into `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod micro;

use chehab_benchsuite::Benchmark;
use chehab_core::{
    external_compile_stats, output_slots_of, select_rotation_keys, BatchPolicy, CompiledProgram,
    Compiler, ExecOptions, ExecutionReport, FaultPlan,
};
use chehab_fhe::{BfvParameters, FheError, SimdPolicy};
use chehab_ir::{circuit_depth, multiplicative_depth, rotation_steps};
use chehab_rl::Agent;
use coyote_baseline::{CoyoteCompiler, CoyoteConfig};
use std::collections::HashMap;
use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Command-line configuration shared by the experiment binaries.
#[derive(Debug, Clone)]
pub struct HarnessConfig {
    /// Number of timed executions per circuit (the median is reported).
    pub runs: usize,
    /// Payload polynomial degree of the BFV cost simulation.
    pub payload_degree: usize,
    /// PPO timesteps for agents trained inside the harness.
    pub timesteps: usize,
    /// If `true`, only a representative subset of benchmark instances is
    /// evaluated (the default); `--full` evaluates every instance.
    pub quick: bool,
    /// Maximum layout candidates the Coyote baseline explores.
    pub coyote_max_candidates: usize,
    /// Worker threads for parallel-runtime measurements (`--threads N`).
    pub threads: usize,
    /// Requests per kernel for serving measurements (`--requests N`).
    pub requests: usize,
}

impl Default for HarnessConfig {
    fn default() -> Self {
        HarnessConfig {
            runs: 3,
            payload_degree: 1024,
            timesteps: 2500,
            quick: true,
            coyote_max_candidates: 48,
            threads: 4,
            requests: 8,
        }
    }
}

impl HarnessConfig {
    /// Parses `--runs N`, `--payload N`, `--timesteps N`, `--full`,
    /// `--threads N`, `--requests N` and `--coyote-candidates N` from the
    /// process arguments.
    pub fn from_args() -> Self {
        let mut config = HarnessConfig::default();
        let args: Vec<String> = std::env::args().collect();
        let value_after = |flag: &str| -> Option<usize> {
            args.iter()
                .position(|a| a == flag)
                .and_then(|i| args.get(i + 1))
                .and_then(|v| v.parse().ok())
        };
        if let Some(v) = value_after("--runs") {
            config.runs = v.max(1);
        }
        if let Some(v) = value_after("--payload") {
            config.payload_degree = v.max(8).next_power_of_two();
        }
        if let Some(v) = value_after("--timesteps") {
            config.timesteps = v.max(64);
        }
        if let Some(v) = value_after("--coyote-candidates") {
            config.coyote_max_candidates = v.max(1);
        }
        if let Some(v) = value_after("--threads") {
            config.threads = v.max(1);
        }
        if let Some(v) = value_after("--requests") {
            config.requests = v.max(1);
        }
        if args.iter().any(|a| a == "--full") {
            config.quick = false;
        }
        config
    }

    /// The BFV parameters used for execution measurements.
    pub fn params(&self) -> BfvParameters {
        BfvParameters {
            payload_degree: self.payload_degree,
            ..BfvParameters::default_128()
        }
    }

    /// The Coyote search configuration the harness uses.
    pub fn coyote_config(&self) -> CoyoteConfig {
        CoyoteConfig {
            base_candidates: 8,
            candidates_per_op: 2,
            max_candidates: self.coyote_max_candidates,
            ..CoyoteConfig::default()
        }
    }

    /// The benchmark instances to evaluate under this configuration.
    pub fn benchmarks(&self) -> Vec<Benchmark> {
        let all = chehab_benchsuite::full_suite();
        if !self.quick {
            return all;
        }
        // Representative quick subset: the smaller instance sizes of every
        // kernel family.
        let keep = [
            "Box Blur 3x3",
            "Box Blur 4x4",
            "Dot Product 4",
            "Dot Product 16",
            "Dot Product 32",
            "Hamm. Dist. 4",
            "Hamm. Dist. 16",
            "L2 Distance 4",
            "L2 Distance 16",
            "L2 Distance 32",
            "Linear Reg. 4",
            "Linear Reg. 16",
            "Linear Reg. 32",
            "Poly. Reg. 4",
            "Poly. Reg. 16",
            "Poly. Reg. 32",
            "Gx 3x3",
            "Gx 4x4",
            "Gy 3x3",
            "Rob. Cross 3x3",
            "Mat. Mul. 3x3",
            "Mat. Mul. 4x4",
            "Max 3",
            "Max 4",
            "Sort 3",
            "Tree 50-50-5",
            "Tree 100-50-5",
            "Tree 100-100-5",
        ];
        all.into_iter()
            .filter(|b| keep.contains(&b.id().as_str()))
            .collect()
    }
}

/// The compiler configurations the evaluation compares.
#[derive(Clone)]
pub enum CompilerUnderTest {
    /// The naive, unoptimized lowering ("Initial" in Table 6).
    Initial,
    /// The original CHEHAB greedy term rewriting.
    ChehabGreedy,
    /// CHEHAB RL with a trained agent.
    ChehabRl(Arc<Agent>),
    /// CHEHAB RL with the input-layout transformation applied after
    /// encryption (the last configuration of Table 6).
    ChehabRlLayoutAfter(Arc<Agent>),
    /// The Coyote-style search baseline.
    Coyote(CoyoteConfig),
}

impl CompilerUnderTest {
    /// Short label used in tables and CSV files.
    pub fn label(&self) -> &'static str {
        match self {
            CompilerUnderTest::Initial => "Initial",
            CompilerUnderTest::ChehabGreedy => "CHEHAB",
            CompilerUnderTest::ChehabRl(_) => "CHEHAB RL",
            CompilerUnderTest::ChehabRlLayoutAfter(_) => "CHEHAB RL (layout after enc.)",
            CompilerUnderTest::Coyote(_) => "Coyote",
        }
    }

    /// Compiles a benchmark program under this configuration.
    pub fn compile(&self, benchmark: &Benchmark) -> CompiledProgram {
        match self {
            CompilerUnderTest::Initial => {
                Compiler::without_optimizer().compile(benchmark.id(), benchmark.program())
            }
            CompilerUnderTest::ChehabGreedy => {
                Compiler::greedy().compile(benchmark.id(), benchmark.program())
            }
            CompilerUnderTest::ChehabRl(agent) => Compiler::with_rl_agent(Arc::clone(agent))
                .compile(benchmark.id(), benchmark.program()),
            CompilerUnderTest::ChehabRlLayoutAfter(agent) => {
                let mut compiler = Compiler::with_rl_agent(Arc::clone(agent));
                compiler.options_mut().layout_before_encryption = false;
                compiler.compile(benchmark.id(), benchmark.program())
            }
            CompilerUnderTest::Coyote(config) => {
                let result =
                    CoyoteCompiler::with_config(config.clone()).compile(benchmark.program());
                let steps: Vec<i64> = rotation_steps(&result.circuit).keys().copied().collect();
                CompiledProgram::from_circuit(
                    benchmark.id(),
                    result.circuit.clone(),
                    output_slots_of(benchmark.program()),
                    select_rotation_keys(&steps, 28),
                    true,
                    external_compile_stats(&result.circuit, result.compile_time),
                )
            }
        }
    }
}

/// One measured (benchmark, compiler) pair.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Benchmark identifier (e.g. `"Dot Product 32"`).
    pub benchmark: String,
    /// Compiler label.
    pub compiler: String,
    /// Wall-clock compilation time.
    pub compile_time: Duration,
    /// Median server-side execution time over the configured runs.
    pub exec_time: Duration,
    /// Noise budget consumed by the output ciphertext (bits).
    pub noise_consumed: f64,
    /// Whether decryption succeeded (noise budget not exhausted).
    pub decryption_ok: bool,
    /// Circuit depth of the compiled circuit.
    pub depth: usize,
    /// Multiplicative depth of the compiled circuit.
    pub mult_depth: usize,
    /// Executed ciphertext–ciphertext multiplications.
    pub ct_ct_muls: usize,
    /// Executed ciphertext–plaintext multiplications.
    pub ct_pt_muls: usize,
    /// Executed rotations.
    pub rotations: usize,
    /// Executed ciphertext additions/subtractions/negations.
    pub additions: usize,
    /// Whether the homomorphic result matched the plaintext reference.
    pub correct: bool,
}

/// Compiles and measures one benchmark under one compiler.
pub fn measure(
    benchmark: &Benchmark,
    compiler: &CompilerUnderTest,
    params: &BfvParameters,
    runs: usize,
) -> Measurement {
    let compiled = compiler.compile(benchmark);
    let inputs: HashMap<String, i64> = benchmark
        .program()
        .variables()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v.to_string(), (i as i64 % 7) + 1))
        .collect();
    let expected = {
        let mut env = chehab_ir::Env::new();
        for (k, v) in &inputs {
            env.bind(k.clone(), *v);
        }
        chehab_ir::evaluate(benchmark.program(), &env)
            .map(|v| {
                v.slots()
                    .into_iter()
                    .take(benchmark.output_slots())
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default()
    };

    let session = compiled
        .session(params)
        .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
    let mut reports: Vec<ExecutionReport> = Vec::with_capacity(runs);
    for _ in 0..runs.max(1) {
        match session.run(&inputs) {
            Ok(report) => reports.push(report),
            Err(e) => panic!("{}: execution failed: {e}", benchmark.id()),
        }
    }
    reports.sort_by_key(|r| r.server_time);
    let median = reports[reports.len() / 2].clone();
    let correct = median.decryption_ok
        && median
            .outputs
            .iter()
            .take(expected.len())
            .copied()
            .collect::<Vec<_>>()
            == expected;

    Measurement {
        benchmark: benchmark.id(),
        compiler: compiler.label().to_string(),
        compile_time: compiled.stats().compile_time,
        exec_time: median.server_time,
        noise_consumed: median.noise_budget_consumed,
        decryption_ok: median.decryption_ok,
        depth: circuit_depth(compiled.circuit()),
        mult_depth: multiplicative_depth(compiled.circuit()),
        ct_ct_muls: median.operation_stats.ct_ct_multiplications,
        ct_pt_muls: median.operation_stats.ct_pt_multiplications,
        rotations: median.operation_stats.rotations,
        additions: median.operation_stats.additions + median.operation_stats.negations,
        correct,
    }
}

/// One sequential-vs-parallel comparison of a compiled kernel.
#[derive(Debug, Clone)]
pub struct ParallelMeasurement {
    /// Benchmark identifier.
    pub benchmark: String,
    /// Compiler label the circuit came from.
    pub compiler: String,
    /// Worker threads of the parallel run.
    pub threads: usize,
    /// Median sequential server time (ms).
    pub sequential_ms: f64,
    /// Median parallel wall time (ms) as measured on this host — bounded by
    /// the host's actual core count.
    pub parallel_wall_ms: f64,
    /// `sequential_ms / parallel_wall_ms` on this host.
    pub wall_speedup: f64,
    /// Projected `threads`-worker makespan (ms) of the leveled schedule,
    /// computed from measured per-instruction latencies
    /// ([`chehab_core::CompiledProgram::schedule`] +
    /// `Schedule::makespan`) — what the wavefront runtime delivers once the
    /// host has that many free cores.
    pub projected_parallel_ms: f64,
    /// Sequential sum of the same measured per-instruction latencies (ms),
    /// the numerator of the projected speedup.
    pub compute_ms: f64,
    /// `compute_ms / projected_parallel_ms`: the timer-augmented speedup of
    /// the schedule at `threads` workers.
    pub speedup: f64,
    /// Wavefront levels of the schedule (critical-path length).
    pub schedule_levels: usize,
    /// Widest level (available intra-request parallelism).
    pub schedule_width: usize,
    /// Live output slots of the kernel.
    pub output_slots: usize,
}

/// Measures one benchmark under one compiler, sequentially and with the
/// parallel wavefront runtime, reporting median times over `runs`.
pub fn measure_parallel(
    benchmark: &Benchmark,
    compiler: &CompilerUnderTest,
    params: &BfvParameters,
    runs: usize,
    threads: usize,
) -> ParallelMeasurement {
    let compiled = compiler.compile(benchmark);
    let inputs: HashMap<String, i64> = benchmark
        .program()
        .variables()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v.to_string(), (i as i64 % 7) + 1))
        .collect();
    let median = |times: &mut Vec<Duration>| -> Duration {
        times.sort_unstable();
        times[times.len() / 2]
    };
    // One session serves every timed run: keys and schedule are built once,
    // so the medians measure execution, not setup.
    let session = compiled
        .session(params)
        .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
    let schedule = session.schedule();
    let parallel_options = ExecOptions::sequential().with_threads_per_request(threads);
    let mut sequential = Vec::with_capacity(runs.max(1));
    let mut parallel = Vec::with_capacity(runs.max(1));
    let mut compute = Vec::with_capacity(runs.max(1));
    let mut projected = Vec::with_capacity(runs.max(1));
    let mut reference: Option<Vec<u64>> = None;
    for _ in 0..runs.max(1) {
        let seq = session
            .run(&inputs)
            .unwrap_or_else(|e| panic!("{}: sequential execution failed: {e}", benchmark.id()));
        let par = session
            .run_parallel(&inputs, &parallel_options)
            .unwrap_or_else(|e| panic!("{}: parallel execution failed: {e}", benchmark.id()));
        assert_eq!(
            seq.outputs,
            par.outputs,
            "{}: parallel outputs diverged from sequential",
            benchmark.id()
        );
        if let Some(expected) = &reference {
            assert_eq!(
                &par.outputs,
                expected,
                "{}: nondeterministic outputs",
                benchmark.id()
            );
        } else {
            reference = Some(par.outputs.clone());
        }
        // Project the N-worker makespan from the *measured* per-instruction
        // latencies of the sequential run (timer-augmented cost function).
        compute.push(schedule.makespan(&seq.timing.instr_times, 1));
        projected.push(schedule.makespan(&seq.timing.instr_times, threads));
        sequential.push(seq.server_time);
        parallel.push(par.server_time);
    }
    let sequential_ms = ms(median(&mut sequential));
    let parallel_wall_ms = ms(median(&mut parallel));
    let compute_ms = ms(median(&mut compute));
    let projected_parallel_ms = ms(median(&mut projected));
    ParallelMeasurement {
        benchmark: benchmark.id(),
        compiler: compiler.label().to_string(),
        threads,
        sequential_ms,
        parallel_wall_ms,
        wall_speedup: sequential_ms / parallel_wall_ms.max(1e-9),
        projected_parallel_ms,
        compute_ms,
        speedup: compute_ms / projected_parallel_ms.max(1e-9),
        schedule_levels: schedule.level_count(),
        schedule_width: schedule.max_width(),
        output_slots: benchmark.output_slots(),
    }
}

/// Writes parallel measurements as JSON into `path` and returns it.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_parallel_json(
    path: impl AsRef<std::path::Path>,
    threads: usize,
    measurements: &[ParallelMeasurement],
) -> std::io::Result<std::path::PathBuf> {
    use serde::Value;
    let rows: Vec<Value> = measurements
        .iter()
        .map(|m| {
            Value::Object(vec![
                ("benchmark".into(), Value::Str(m.benchmark.clone())),
                ("compiler".into(), Value::Str(m.compiler.clone())),
                ("threads".into(), Value::Int(m.threads as i64)),
                ("sequential_ms".into(), Value::Float(m.sequential_ms)),
                ("parallel_wall_ms".into(), Value::Float(m.parallel_wall_ms)),
                ("wall_speedup".into(), Value::Float(m.wall_speedup)),
                ("compute_ms".into(), Value::Float(m.compute_ms)),
                (
                    "projected_parallel_ms".into(),
                    Value::Float(m.projected_parallel_ms),
                ),
                ("speedup".into(), Value::Float(m.speedup)),
                (
                    "schedule_levels".into(),
                    Value::Int(m.schedule_levels as i64),
                ),
                ("schedule_width".into(), Value::Int(m.schedule_width as i64)),
                ("output_slots".into(), Value::Int(m.output_slots as i64)),
            ])
        })
        .collect();
    let speedups: Vec<f64> = measurements.iter().map(|m| m.speedup).collect();
    let ones = vec![1.0; speedups.len()];
    let document = Value::Object(vec![
        ("experiment".into(), Value::Str("parallel_exec".into())),
        ("threads".into(), Value::Int(threads as i64)),
        ("host_cpus".into(), Value::Int(available_cpus() as i64)),
        (
            "simd_policy".into(),
            Value::Str(SimdPolicy::global().name().into()),
        ),
        (
            "speedup_semantics".into(),
            Value::Str(
                "speedup = compute_ms / projected_parallel_ms: the N-worker makespan of the \
                 leveled schedule projected from measured per-instruction latencies \
                 (timer-augmented); wall_speedup is the raw wall-clock ratio on this host and \
                 is bounded by host_cpus"
                    .into(),
            ),
        ),
        (
            "geomean_speedup".into(),
            Value::Float(geometric_mean_ratio(&speedups, &ones)),
        ),
        (
            "max_speedup".into(),
            Value::Float(speedups.iter().copied().fold(0.0, f64::max)),
        ),
        ("kernels".into(), Value::Array(rows)),
    ]);
    let path = path.as_ref().to_path_buf();
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible"),
    )?;
    Ok(path)
}

/// One session-reuse vs per-call-rebuild serving comparison of a kernel.
///
/// "Rebuild" is the historical shim path: every request pays key generation
/// and schedule lowering again ([`CompiledProgram::execute`]). "Serving" is
/// the session path: one [`chehab_core::FheSession`] built up front, then
/// every request submitted through a persistent
/// [`chehab_runtime::ServingEngine`].
#[derive(Debug, Clone)]
pub struct ServingMeasurement {
    /// Benchmark identifier.
    pub benchmark: String,
    /// Compiler label the circuit came from.
    pub compiler: String,
    /// Requests per measured pass.
    pub requests: usize,
    /// Median one-time session construction cost (keygen + lowering), ms.
    pub setup_ms: f64,
    /// Median per-request execution time under session reuse, ms.
    pub request_ms: f64,
    /// Median wall time of serving all requests via per-call rebuild, ms.
    pub rebuild_wall_ms: f64,
    /// Median wall time of one session + all requests through the serving
    /// engine, ms.
    pub serving_wall_ms: f64,
    /// `rebuild_wall_ms / requests`: amortized per-request latency of the
    /// rebuild path.
    pub rebuild_per_request_ms: f64,
    /// `serving_wall_ms / requests`: amortized per-request latency of the
    /// serving path (setup divided across the stream).
    pub serving_per_request_ms: f64,
    /// Measured amortized speedup: `rebuild_wall_ms / serving_wall_ms`, the
    /// raw wall-clock ratio on the measuring host (noise-prone on busy
    /// 1-CPU hosts, where the setup signal is a few percent of a pass).
    pub wall_amortized_speedup: f64,
    /// Amortized speedup derived from the median measured component times:
    /// `(setup + request) / (setup / requests + request)` — the same
    /// timer-derived convention as [`ParallelMeasurement::speedup`]. It
    /// quantifies *how much* reuse saves, not *whether* it wins: with any
    /// nonzero setup cost this ratio exceeds 1.0 by construction, so
    /// per-kernel win/loss claims must use
    /// [`ServingMeasurement::wall_amortized_speedup`].
    pub amortized_speedup: f64,
}

/// Measures one kernel's amortized per-request latency under session reuse
/// (one [`chehab_core::FheSession`] + serving engine) versus per-call
/// rebuild (the [`CompiledProgram::execute`] shim), with medians over `runs`
/// passes of `requests` requests each.
pub fn measure_serving(
    benchmark: &Benchmark,
    compiler: &CompilerUnderTest,
    params: &BfvParameters,
    runs: usize,
    requests: usize,
) -> ServingMeasurement {
    let compiled = compiler.compile(benchmark);
    let requests = requests.max(1);
    let input_sets: Vec<HashMap<String, i64>> = (0..requests)
        .map(|seed| {
            benchmark
                .program()
                .variables()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v.to_string(), ((seed + i) as i64 % 11) + 1))
                .collect()
        })
        .collect();
    let median = |times: &mut Vec<Duration>| -> Duration {
        times.sort_unstable();
        times[times.len() / 2]
    };

    // Median one-time setup (keygen + schedule lowering + fallbacks).
    let mut setups = Vec::with_capacity(runs.max(1));
    for _ in 0..runs.max(1) {
        let started = Instant::now();
        let session = compiled
            .session(params)
            .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
        setups.push(started.elapsed());
        drop(session);
    }

    // Median per-request execution time under reuse (one warm session),
    // sampled across `runs` passes over the request stream so a scheduler
    // stall in any single pass cannot skew the median.
    let warm = compiled.session(params).unwrap();
    let mut request_times = Vec::with_capacity(runs.max(1) * requests);
    let mut reuse_outputs = Vec::with_capacity(requests);
    for run in 0..runs.max(1) {
        for inputs in &input_sets {
            let started = Instant::now();
            let report = warm
                .run(inputs)
                .unwrap_or_else(|e| panic!("{}: session run failed: {e}", benchmark.id()));
            request_times.push(started.elapsed());
            if run == 0 {
                reuse_outputs.push(report.outputs);
            }
        }
    }

    // Per-call rebuild: every request pays keygen + lowering again.
    let mut rebuild_walls = Vec::with_capacity(runs.max(1));
    for run in 0..runs.max(1) {
        let started = Instant::now();
        for (inputs, expected) in input_sets.iter().zip(&reuse_outputs) {
            let report = compiled
                .execute(inputs, params)
                .unwrap_or_else(|e| panic!("{}: per-call execution failed: {e}", benchmark.id()));
            if run == 0 {
                assert_eq!(
                    &report.outputs,
                    expected,
                    "{}: rebuild and session-reuse outputs diverged",
                    benchmark.id()
                );
            }
        }
        rebuild_walls.push(started.elapsed());
    }

    // Session reuse through the persistent serving engine (sequential worker
    // so the comparison is apples-to-apples on any host).
    let mut serving_walls = Vec::with_capacity(runs.max(1));
    for _ in 0..runs.max(1) {
        let started = Instant::now();
        let session = Arc::new(compiled.session(params).unwrap());
        let engine = session.serve(&ExecOptions::sequential());
        let handles: Vec<_> = input_sets
            .iter()
            .map(|inputs| {
                engine
                    .submit(inputs.clone())
                    .expect("engine accepts while live")
            })
            .collect();
        for (handle, expected) in handles.into_iter().zip(&reuse_outputs) {
            let report = handle
                .wait()
                .unwrap_or_else(|e| panic!("{}: served request failed: {e}", benchmark.id()));
            assert_eq!(
                &report.outputs,
                expected,
                "{}: served outputs diverged",
                benchmark.id()
            );
        }
        engine.shutdown();
        serving_walls.push(started.elapsed());
    }

    let setup_ms = ms(median(&mut setups));
    let request_ms = ms(median(&mut request_times));
    let rebuild_wall_ms = ms(median(&mut rebuild_walls));
    let serving_wall_ms = ms(median(&mut serving_walls));
    ServingMeasurement {
        benchmark: benchmark.id(),
        compiler: compiler.label().to_string(),
        requests,
        setup_ms,
        request_ms,
        rebuild_wall_ms,
        serving_wall_ms,
        rebuild_per_request_ms: rebuild_wall_ms / requests as f64,
        serving_per_request_ms: serving_wall_ms / requests as f64,
        wall_amortized_speedup: rebuild_wall_ms / serving_wall_ms.max(1e-9),
        amortized_speedup: (setup_ms + request_ms)
            / (setup_ms / requests as f64 + request_ms).max(1e-9),
    }
}

/// Writes serving measurements as JSON into `path` (same artifact family as
/// [`write_parallel_json`]) and returns it.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_serving_json(
    path: impl AsRef<std::path::Path>,
    requests: usize,
    measurements: &[ServingMeasurement],
) -> std::io::Result<std::path::PathBuf> {
    use serde::Value;
    let rows: Vec<Value> = measurements
        .iter()
        .map(|m| {
            Value::Object(vec![
                ("benchmark".into(), Value::Str(m.benchmark.clone())),
                ("compiler".into(), Value::Str(m.compiler.clone())),
                ("requests".into(), Value::Int(m.requests as i64)),
                ("setup_ms".into(), Value::Float(m.setup_ms)),
                ("request_ms".into(), Value::Float(m.request_ms)),
                ("rebuild_wall_ms".into(), Value::Float(m.rebuild_wall_ms)),
                ("serving_wall_ms".into(), Value::Float(m.serving_wall_ms)),
                (
                    "rebuild_per_request_ms".into(),
                    Value::Float(m.rebuild_per_request_ms),
                ),
                (
                    "serving_per_request_ms".into(),
                    Value::Float(m.serving_per_request_ms),
                ),
                (
                    "wall_amortized_speedup".into(),
                    Value::Float(m.wall_amortized_speedup),
                ),
                (
                    "amortized_speedup".into(),
                    Value::Float(m.amortized_speedup),
                ),
            ])
        })
        .collect();
    let wall: Vec<f64> = measurements
        .iter()
        .map(|m| m.wall_amortized_speedup)
        .collect();
    let amortized: Vec<f64> = measurements.iter().map(|m| m.amortized_speedup).collect();
    let ones = vec![1.0; measurements.len()];
    let reuse_wins = measurements
        .iter()
        .filter(|m| m.wall_amortized_speedup > 1.0)
        .count();
    let document = Value::Object(vec![
        ("experiment".into(), Value::Str("serving".into())),
        ("requests".into(), Value::Int(requests as i64)),
        ("host_cpus".into(), Value::Int(available_cpus() as i64)),
        (
            "simd_policy".into(),
            Value::Str(SimdPolicy::global().name().into()),
        ),
        (
            "speedup_semantics".into(),
            Value::Str(
                "wall_amortized_speedup = rebuild_wall_ms / serving_wall_ms: measured total wall \
                 time of serving `requests` requests with a throwaway session per call (the \
                 historical execute shim) over one persistent FheSession + ServingEngine; \
                 reuse_wins counts kernels where this measured ratio exceeds 1.0. \
                 amortized_speedup = (setup + request) / (setup/requests + request) from median \
                 measured component times quantifies the magnitude of the saving (it exceeds 1.0 \
                 by construction whenever setup takes nonzero time, so it carries no win/loss \
                 information)"
                    .into(),
            ),
        ),
        ("kernel_count".into(), Value::Int(measurements.len() as i64)),
        ("reuse_wins".into(), Value::Int(reuse_wins as i64)),
        (
            "geomean_amortized_speedup".into(),
            Value::Float(geometric_mean_ratio(&amortized, &ones)),
        ),
        (
            "geomean_wall_amortized_speedup".into(),
            Value::Float(geometric_mean_ratio(&wall, &ones)),
        ),
        ("kernels".into(), Value::Array(rows)),
    ]);
    let path = path.as_ref().to_path_buf();
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible"),
    )?;
    Ok(path)
}

/// Resilience figures of one kernel: a clean serving pass versus the same
/// request stream under a seeded fault storm (planned worker panics, latency
/// spikes, forced queue-full rejections, one explicit cancellation).
#[derive(Debug, Clone)]
pub struct ChaosMeasurement {
    /// Benchmark identifier.
    pub benchmark: String,
    /// Compiler label.
    pub compiler: String,
    /// Requests per pass.
    pub requests: usize,
    /// p95 request wall latency of the fault-free pass, ms.
    pub clean_p95_ms: f64,
    /// p95 request wall latency under the fault storm, ms.
    pub chaos_p95_ms: f64,
    /// Storm requests that completed with a report.
    pub ok: usize,
    /// Storm requests that failed with an isolated worker panic.
    pub panicked: usize,
    /// Storm requests resolved as cancelled (one is cancelled on purpose).
    pub cancelled: usize,
    /// Worker panics recorded by the storm session's resilience counters.
    pub worker_panics: u64,
    /// Whether every non-faulted storm request's outputs were bit-identical
    /// to a clean solo run of the same inputs.
    pub non_faulted_exact: bool,
}

impl ChaosMeasurement {
    /// Every storm request resolved — the zero-hang criterion (a hang would
    /// strand the harness on `wait` instead of producing a measurement).
    pub fn completed_all(&self) -> bool {
        self.ok + self.panicked + self.cancelled == self.requests
    }
}

/// Serves one kernel's request stream twice — once clean, once under a
/// seeded [`FaultPlan`] storm plus two forced queue-full rejections and one
/// explicit mid-flight cancellation — and reports error counts, resilience
/// counters and the p95 latency of both passes. The same `seed` always
/// yields the same fault points.
pub fn measure_chaos(
    benchmark: &Benchmark,
    compiler: &CompilerUnderTest,
    params: &BfvParameters,
    requests: usize,
    seed: u64,
) -> ChaosMeasurement {
    let compiled = compiler.compile(benchmark);
    let requests = requests.max(2);
    let input_sets: Vec<HashMap<String, i64>> = (0..requests)
        .map(|seed| {
            benchmark
                .program()
                .variables()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v.to_string(), ((seed + i) as i64 % 11) + 1))
                .collect()
        })
        .collect();
    let serve_options = ExecOptions::new().with_request_threads(2);

    // Clean pass: the expected outputs and the fault-free latency profile.
    let session = Arc::new(
        compiled
            .session(params)
            .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id())),
    );
    let expected: Vec<Vec<u64>> = input_sets
        .iter()
        .map(|inputs| {
            session
                .run(inputs)
                .unwrap_or_else(|e| panic!("{}: clean run failed: {e}", benchmark.id()))
                .outputs
        })
        .collect();
    let engine = session.serve_resilient(&serve_options, None, None);
    let handles: Vec<_> = input_sets
        .iter()
        .map(|inputs| {
            engine
                .submit(inputs.clone())
                .expect("engine accepts while live")
        })
        .collect();
    for handle in handles {
        handle
            .wait()
            .unwrap_or_else(|e| panic!("{}: clean served request failed: {e}", benchmark.id()));
    }
    let clean = engine.shutdown();

    // Storm pass on a fresh session so the resilience counters start at
    // zero. Fault points are derived from `seed` over the stream's total
    // dispatch range; submission retries ride out the forced rejections.
    let session = Arc::new(
        compiled
            .session(params)
            .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id())),
    );
    let span = (session.schedule().instrs().len() * requests) as u64;
    let plan = FaultPlan::storm(seed, span.max(1), 2);
    plan.force_queue_full(2);
    let engine = session.serve_resilient(&serve_options, None, Some(plan));
    let handles: Vec<_> = input_sets
        .iter()
        .map(|inputs| {
            engine
                .submit_with_retry(inputs.clone(), 8, Duration::from_millis(1))
                .expect("retries outlast the forced queue-full budget")
        })
        .collect();
    if let Some(victim) = handles.last() {
        victim.cancel();
    }
    let (mut ok, mut panicked, mut cancelled) = (0usize, 0usize, 0usize);
    let mut non_faulted_exact = true;
    for (i, handle) in handles.into_iter().enumerate() {
        match handle.wait() {
            Ok(report) => {
                ok += 1;
                non_faulted_exact &= report.outputs == expected[i];
            }
            Err(FheError::WorkerPanic { .. }) => panicked += 1,
            Err(FheError::Cancelled) => cancelled += 1,
            Err(e) => panic!("{}: unexpected storm error: {e}", benchmark.id()),
        }
    }
    let chaos = engine.shutdown();
    let p95 =
        |stats: &chehab_runtime::ServingStats| stats.latency.request_wall.p95().map_or(0.0, ms);
    ChaosMeasurement {
        benchmark: benchmark.id(),
        compiler: compiler.label().to_string(),
        requests,
        clean_p95_ms: p95(&clean),
        chaos_p95_ms: p95(&chaos),
        ok,
        panicked,
        cancelled,
        worker_panics: chaos.resilience.worker_panics,
        non_faulted_exact,
    }
}

/// Writes chaos measurements as JSON into `path` (same artifact family as
/// [`write_serving_json`]) and returns it.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_chaos_json(
    path: impl AsRef<std::path::Path>,
    requests: usize,
    seed: u64,
    measurements: &[ChaosMeasurement],
) -> std::io::Result<std::path::PathBuf> {
    use serde::Value;
    let rows: Vec<Value> = measurements
        .iter()
        .map(|m| {
            Value::Object(vec![
                ("benchmark".into(), Value::Str(m.benchmark.clone())),
                ("requests".into(), Value::Int(m.requests as i64)),
                ("clean_p95_ms".into(), Value::Float(m.clean_p95_ms)),
                ("chaos_p95_ms".into(), Value::Float(m.chaos_p95_ms)),
                ("ok".into(), Value::Int(m.ok as i64)),
                ("panicked".into(), Value::Int(m.panicked as i64)),
                ("cancelled".into(), Value::Int(m.cancelled as i64)),
                ("worker_panics".into(), Value::Int(m.worker_panics as i64)),
                ("non_faulted_exact".into(), Value::Bool(m.non_faulted_exact)),
                ("completed_all".into(), Value::Bool(m.completed_all())),
            ])
        })
        .collect();
    let total = |f: fn(&ChaosMeasurement) -> usize| -> i64 {
        measurements.iter().map(f).sum::<usize>() as i64
    };
    let document = Value::Object(vec![
        ("experiment".into(), Value::Str("chaos".into())),
        ("requests".into(), Value::Int(requests as i64)),
        ("seed".into(), Value::UInt(seed)),
        ("host_cpus".into(), Value::Int(available_cpus() as i64)),
        (
            "semantics".into(),
            Value::Str(
                "Each kernel's request stream is served twice: clean, then under a seeded \
                 FaultPlan storm (2 planned worker panics, latency spikes, 2 forced queue-full \
                 rejections ridden out by submission retries, 1 explicit cancellation). \
                 completed_all = every storm request resolved (zero hangs); non_faulted_exact = \
                 every storm request that completed produced outputs bit-identical to a clean \
                 solo run; panicked is bounded by the planned panic points"
                    .into(),
            ),
        ),
        ("kernel_count".into(), Value::Int(measurements.len() as i64)),
        ("total_ok".into(), Value::Int(total(|m| m.ok))),
        ("total_panicked".into(), Value::Int(total(|m| m.panicked))),
        ("total_cancelled".into(), Value::Int(total(|m| m.cancelled))),
        (
            "all_exact".into(),
            Value::Bool(measurements.iter().all(|m| m.non_faulted_exact)),
        ),
        (
            "zero_hangs".into(),
            Value::Bool(measurements.iter().all(ChaosMeasurement::completed_all)),
        ),
        ("kernels".into(), Value::Array(rows)),
    ]);
    let path = path.as_ref().to_path_buf();
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible"),
    )?;
    Ok(path)
}

/// One hot-path re-measurement of a kernel's per-request serving latency,
/// compared against the request latency recorded in a previous
/// `BENCH_serving.json` (the pre-optimization baseline).
#[derive(Debug, Clone)]
pub struct HotpathMeasurement {
    /// Benchmark identifier.
    pub benchmark: String,
    /// Median per-request wall time under session reuse now, ms.
    pub request_ms: f64,
    /// The same quantity from the baseline artifact, if the kernel appears
    /// there.
    pub baseline_request_ms: Option<f64>,
    /// `baseline_request_ms / request_ms` (above 1.0 = the hot path got
    /// faster).
    pub improvement: Option<f64>,
    /// Whether every request's decrypted outputs matched the plaintext
    /// reference (the same bit-exactness bar the seed executor met).
    pub correct: bool,
}

/// Re-measures one kernel's per-request latency the way `measure_serving`
/// does (one warm session, `requests` requests per pass, medians over
/// `runs` passes), checking every output against the plaintext reference.
pub fn measure_hotpath(
    benchmark: &Benchmark,
    compiler: &CompilerUnderTest,
    params: &BfvParameters,
    runs: usize,
    requests: usize,
    baseline_request_ms: Option<f64>,
) -> HotpathMeasurement {
    let compiled = compiler.compile(benchmark);
    let requests = requests.max(1);
    let input_sets: Vec<HashMap<String, i64>> = (0..requests)
        .map(|seed| {
            benchmark
                .program()
                .variables()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v.to_string(), ((seed + i) as i64 % 11) + 1))
                .collect()
        })
        .collect();
    let expected: Vec<Vec<u64>> = input_sets
        .iter()
        .map(|inputs| {
            let mut env = chehab_ir::Env::new();
            for (k, v) in inputs {
                env.bind(k.clone(), *v);
            }
            chehab_ir::evaluate(benchmark.program(), &env)
                .map(|v| {
                    v.slots()
                        .into_iter()
                        .take(benchmark.output_slots())
                        .collect()
                })
                .unwrap_or_default()
        })
        .collect();

    let session = compiled
        .session(params)
        .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
    let mut request_times = Vec::with_capacity(runs.max(1) * requests);
    let mut correct = true;
    for _ in 0..runs.max(1) {
        for (inputs, expected) in input_sets.iter().zip(&expected) {
            let started = Instant::now();
            let report = session
                .run(inputs)
                .unwrap_or_else(|e| panic!("{}: session run failed: {e}", benchmark.id()));
            request_times.push(started.elapsed());
            let got: Vec<u64> = report
                .outputs
                .iter()
                .copied()
                .take(expected.len())
                .collect();
            correct &= report.decryption_ok && &got == expected;
        }
    }
    request_times.sort_unstable();
    let request_ms = ms(request_times[request_times.len() / 2]);
    HotpathMeasurement {
        benchmark: benchmark.id(),
        request_ms,
        baseline_request_ms,
        improvement: baseline_request_ms.map(|b| b / request_ms.max(1e-9)),
        correct,
    }
}

/// One dataflow-vs-leveled scheduling comparison of a kernel, against the
/// sequential per-request latency recorded in `BENCH_hotpath.json` (the
/// leveled-engine baseline).
#[derive(Debug, Clone)]
pub struct DataflowMeasurement {
    /// Benchmark identifier.
    pub benchmark: String,
    /// Workers of the dataflow/leveled projections and the threaded runs.
    pub threads: usize,
    /// Median sequential (1-worker, leveled) per-request wall now, ms —
    /// the same quantity `BENCH_hotpath.json` records.
    pub sequential_request_ms: f64,
    /// Median sequential server-side (scheduled-execution) time, ms.
    pub sequential_server_ms: f64,
    /// Median measured per-request wall of the dataflow executor at
    /// `threads` workers *on this host* — bounded by the host's core count,
    /// so on a 1-CPU builder it shows scheduling overhead, not speedup.
    pub dataflow_wall_ms: f64,
    /// Leveled (barrier-synchronized) makespan projection at `threads`
    /// workers from the measured per-instruction latencies, ms.
    pub leveled_projected_ms: f64,
    /// Barrier-free dataflow makespan projection at `threads` workers from
    /// the same measured latencies, ms.
    pub dataflow_projected_ms: f64,
    /// The true critical-path (infinite-worker) makespan, ms — the floor no
    /// scheduler can beat.
    pub critical_path_ms: f64,
    /// Barrier slack the dataflow scheduler reclaims versus the leveled one:
    /// `leveled_projected_ms - dataflow_projected_ms`.
    pub reclaimed_slack_ms: f64,
    /// Projected per-request wall at `threads` workers: the sequential
    /// request wall with its server portion replaced by the dataflow
    /// makespan projection (client-side binding and decryption are
    /// per-request costs parallelism does not touch).
    pub projected_request_ms: f64,
    /// The baseline per-request wall from `BENCH_hotpath.json`, if present.
    pub baseline_request_ms: Option<f64>,
    /// `baseline_request_ms / projected_request_ms` (above 1.0 = the
    /// dataflow engine serves a request faster than the leveled baseline).
    pub improvement: Option<f64>,
    /// Ready instructions stolen between workers, median per threaded run.
    pub steals: u64,
    /// Median per-instruction queue wait of the threaded runs, microseconds.
    pub queue_wait_p50_us: f64,
    /// Whether every output (sequential, threaded dataflow) matched the
    /// plaintext reference bit-exactly.
    pub correct: bool,
}

/// Measures one kernel under the dataflow scheduler: sequential and
/// `threads`-worker runs through one warm session (medians over `runs`
/// passes of `requests` requests), makespan projections from the measured
/// per-instruction latencies, and bit-exactness against the plaintext
/// reference and the sequential outputs.
pub fn measure_dataflow(
    benchmark: &Benchmark,
    compiler: &CompilerUnderTest,
    params: &BfvParameters,
    runs: usize,
    requests: usize,
    threads: usize,
    baseline_request_ms: Option<f64>,
) -> DataflowMeasurement {
    let compiled = compiler.compile(benchmark);
    let requests = requests.max(1);
    let input_sets: Vec<HashMap<String, i64>> = (0..requests)
        .map(|seed| {
            benchmark
                .program()
                .variables()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v.to_string(), ((seed + i) as i64 % 11) + 1))
                .collect()
        })
        .collect();
    let expected: Vec<Vec<u64>> = input_sets
        .iter()
        .map(|inputs| {
            let mut env = chehab_ir::Env::new();
            for (k, v) in inputs {
                env.bind(k.clone(), *v);
            }
            // A failed reference evaluation must abort the measurement, not
            // silently vacuate the bit-exactness check.
            let value = chehab_ir::evaluate(benchmark.program(), &env).unwrap_or_else(|e| {
                panic!(
                    "{}: plaintext reference evaluation failed: {e}",
                    benchmark.id()
                )
            });
            value
                .slots()
                .into_iter()
                .take(benchmark.output_slots())
                .collect()
        })
        .collect();

    let session = compiled
        .session(params)
        .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
    let schedule = session.schedule();
    let dataflow_options = ExecOptions::sequential().with_threads_per_request(threads);
    let median_d = |times: &mut Vec<Duration>| -> f64 {
        times.sort_unstable();
        ms(times[times.len() / 2])
    };
    let median_f = |values: &mut Vec<f64>| -> f64 {
        values.sort_by(f64::total_cmp);
        values[values.len() / 2]
    };

    let mut seq_requests = Vec::new();
    let mut seq_servers = Vec::new();
    let mut df_walls = Vec::new();
    let mut leveled_proj = Vec::new();
    let mut dataflow_proj = Vec::new();
    let mut critical = Vec::new();
    let mut steals = Vec::new();
    let mut waits = Vec::new();
    let mut correct = true;
    for _ in 0..runs.max(1) {
        for (inputs, expected) in input_sets.iter().zip(&expected) {
            let started = Instant::now();
            let seq = session
                .run(inputs)
                .unwrap_or_else(|e| panic!("{}: sequential run failed: {e}", benchmark.id()));
            seq_requests.push(started.elapsed());
            seq_servers.push(seq.server_time);

            let started = Instant::now();
            let par = session
                .run_parallel(inputs, &dataflow_options)
                .unwrap_or_else(|e| panic!("{}: dataflow run failed: {e}", benchmark.id()));
            df_walls.push(started.elapsed());

            let got: Vec<u64> = seq.outputs.iter().copied().take(expected.len()).collect();
            correct &= seq.decryption_ok && &got == expected;
            correct &= par.outputs == seq.outputs && par.decryption_ok == seq.decryption_ok;

            // Projections from the *sequential* run's measured latencies
            // (clean per-op times, no worker interference).
            leveled_proj.push(ms(schedule.makespan(&seq.timing.instr_times, threads)));
            dataflow_proj.push(ms(
                schedule.dataflow_makespan(&seq.timing.instr_times, threads)
            ));
            critical.push(ms(schedule.critical_path_makespan(&seq.timing.instr_times)));
            steals.push(par.timing.steals);
            if let Some(p50) = par.timing.queue_wait_percentile(0.5) {
                waits.push(p50.as_secs_f64() * 1e6);
            }
        }
    }

    let sequential_request_ms = median_d(&mut seq_requests);
    let sequential_server_ms = median_d(&mut seq_servers);
    let dataflow_wall_ms = median_d(&mut df_walls);
    let leveled_projected_ms = median_f(&mut leveled_proj);
    let dataflow_projected_ms = median_f(&mut dataflow_proj);
    let critical_path_ms = median_f(&mut critical);
    steals.sort_unstable();
    let projected_request_ms =
        (sequential_request_ms - sequential_server_ms).max(0.0) + dataflow_projected_ms;
    DataflowMeasurement {
        benchmark: benchmark.id(),
        threads,
        sequential_request_ms,
        sequential_server_ms,
        dataflow_wall_ms,
        leveled_projected_ms,
        dataflow_projected_ms,
        critical_path_ms,
        reclaimed_slack_ms: (leveled_projected_ms - dataflow_projected_ms).max(0.0),
        projected_request_ms,
        baseline_request_ms,
        improvement: baseline_request_ms.map(|b| b / projected_request_ms.max(1e-9)),
        steals: steals[steals.len() / 2],
        queue_wait_p50_us: if waits.is_empty() {
            0.0
        } else {
            median_f(&mut waits)
        },
        correct,
    }
}

/// Writes dataflow measurements as JSON into `path` and returns it.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_dataflow_json(
    path: impl AsRef<std::path::Path>,
    requests: usize,
    threads: usize,
    measurements: &[DataflowMeasurement],
) -> std::io::Result<std::path::PathBuf> {
    use serde::Value;
    let rows: Vec<Value> = measurements
        .iter()
        .map(|m| {
            Value::Object(vec![
                ("benchmark".into(), Value::Str(m.benchmark.clone())),
                ("threads".into(), Value::Int(m.threads as i64)),
                (
                    "sequential_request_ms".into(),
                    Value::Float(m.sequential_request_ms),
                ),
                (
                    "sequential_server_ms".into(),
                    Value::Float(m.sequential_server_ms),
                ),
                ("dataflow_wall_ms".into(), Value::Float(m.dataflow_wall_ms)),
                (
                    "leveled_projected_ms".into(),
                    Value::Float(m.leveled_projected_ms),
                ),
                (
                    "dataflow_projected_ms".into(),
                    Value::Float(m.dataflow_projected_ms),
                ),
                ("critical_path_ms".into(), Value::Float(m.critical_path_ms)),
                (
                    "reclaimed_slack_ms".into(),
                    Value::Float(m.reclaimed_slack_ms),
                ),
                (
                    "projected_request_ms".into(),
                    Value::Float(m.projected_request_ms),
                ),
                (
                    "baseline_request_ms".into(),
                    m.baseline_request_ms.map_or(Value::Null, Value::Float),
                ),
                (
                    "improvement".into(),
                    m.improvement.map_or(Value::Null, Value::Float),
                ),
                ("steals".into(), Value::Int(m.steals as i64)),
                (
                    "queue_wait_p50_us".into(),
                    Value::Float(m.queue_wait_p50_us),
                ),
                ("correct".into(), Value::Bool(m.correct)),
            ])
        })
        .collect();
    let improvements: Vec<f64> = measurements.iter().filter_map(|m| m.improvement).collect();
    let reclaimed: Vec<f64> = measurements.iter().map(|m| m.reclaimed_slack_ms).collect();
    let ones = vec![1.0; improvements.len()];
    let document = Value::Object(vec![
        ("experiment".into(), Value::Str("dataflow".into())),
        ("requests".into(), Value::Int(requests as i64)),
        ("threads".into(), Value::Int(threads as i64)),
        ("host_cpus".into(), Value::Int(available_cpus() as i64)),
        (
            "simd_policy".into(),
            Value::Str(SimdPolicy::global().name().into()),
        ),
        (
            "speedup_semantics".into(),
            Value::Str(
                "improvement = baseline request_ms (from BENCH_hotpath.json, the leveled \
                 sequential engine) / projected_request_ms, where projected_request_ms replaces \
                 the measured sequential server span with the barrier-free dataflow makespan at \
                 `threads` workers projected from measured per-instruction latencies \
                 (Schedule::dataflow_makespan, same timer-augmented convention as \
                 BENCH_parallel_exec.json; wall speedups are unattainable on this host — see \
                 host_cpus — so dataflow_wall_ms records the raw measured wall for honesty). \
                 reclaimed_slack_ms = leveled_projected_ms - dataflow_projected_ms is the \
                 barrier slack the dataflow scheduler reclaims at the same worker count; \
                 critical_path_ms is the dependency-limited floor. correct asserts sequential \
                 and dataflow outputs are bit-identical and match the plaintext reference"
                    .into(),
            ),
        ),
        (
            "kernels_measured".into(),
            Value::Int(measurements.len() as i64),
        ),
        (
            "kernels_with_baseline".into(),
            Value::Int(improvements.len() as i64),
        ),
        (
            "geomean_improvement".into(),
            Value::Float(geometric_mean_ratio(&improvements, &ones)),
        ),
        (
            "total_reclaimed_slack_ms".into(),
            Value::Float(reclaimed.iter().sum()),
        ),
        ("kernels".into(), Value::Array(rows)),
    ]);
    let path = path.as_ref().to_path_buf();
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible"),
    )?;
    Ok(path)
}

/// Loads `benchmark -> request_ms` from a previous `BENCH_serving.json`
/// artifact, or `None` if the file is missing or unparseable.
pub fn load_serving_request_baseline(
    path: impl AsRef<std::path::Path>,
) -> Option<HashMap<String, f64>> {
    load_kernel_field_baseline(path, "request_ms")
}

/// Loads `benchmark -> <field>` from any of the `BENCH_*.json` artifacts
/// (every artifact stores a `kernels` array of per-benchmark objects), or
/// `None` if the file is missing or unparseable. Kernels without the field
/// are skipped.
pub fn load_kernel_field_baseline(
    path: impl AsRef<std::path::Path>,
    field: &str,
) -> Option<HashMap<String, f64>> {
    let text = std::fs::read_to_string(path).ok()?;
    let value: serde::Value = serde_json::from_str(&text).ok()?;
    let kernels = value.field("kernels").ok()?.as_array("kernels").ok()?;
    let mut baseline = HashMap::new();
    for kernel in kernels {
        let name = match kernel.field("benchmark") {
            Ok(serde::Value::Str(s)) => s.clone(),
            _ => continue,
        };
        let entry = match kernel.field(field) {
            Ok(serde::Value::Float(f)) => *f,
            Ok(serde::Value::Int(i)) => *i as f64,
            _ => continue,
        };
        baseline.insert(name, entry);
    }
    Some(baseline)
}

/// One memory-layout measurement of a kernel: warm per-request latency of
/// the striped/arena-backed engine against the `BENCH_dataflow.json`
/// sequential baseline, plus the allocation counters that prove the
/// zero-allocation steady state.
#[derive(Debug, Clone)]
pub struct MemlayoutMeasurement {
    /// Benchmark identifier.
    pub benchmark: String,
    /// Workers of the threaded bit-equivalence check.
    pub threads: usize,
    /// Median warm per-request wall under session reuse (sequential), ms.
    pub request_ms: f64,
    /// The same quantity recorded by the pre-stripe engine in
    /// `BENCH_dataflow.json` (`sequential_request_ms`), if present.
    pub baseline_request_ms: Option<f64>,
    /// `baseline_request_ms / request_ms` (above 1.0 = the memory engine
    /// made requests faster).
    pub improvement: Option<f64>,
    /// Fresh buffer allocations of the *first* (cold) request — the price
    /// every request paid before the arena existed.
    pub cold_allocs: u64,
    /// Fresh buffer allocations per warm request (steady state; the
    /// acceptance bar is ~0).
    pub warm_allocs_per_request: f64,
    /// Arena buffer reuses per warm request (how many allocations the pool
    /// absorbs each request).
    pub warm_reuses_per_request: f64,
    /// Whether every output matched the plaintext reference, and the
    /// threaded dataflow run matched the sequential run bit for bit.
    pub correct: bool,
}

/// Measures one kernel under the zero-allocation memory engine: cold vs
/// warm arena-miss counts (process-global `PolyArena` counters — run one
/// kernel at a time), warm sequential per-request latency (medians over
/// `runs` passes of `requests` requests), and bit-equivalence of a
/// `threads`-worker dataflow pass against the sequential outputs and the
/// plaintext reference.
pub fn measure_memlayout(
    benchmark: &Benchmark,
    compiler: &CompilerUnderTest,
    params: &BfvParameters,
    runs: usize,
    requests: usize,
    threads: usize,
    baseline_request_ms: Option<f64>,
) -> MemlayoutMeasurement {
    use chehab_fhe::PolyArena;
    let compiled = compiler.compile(benchmark);
    let requests = requests.max(1);
    let input_sets: Vec<HashMap<String, i64>> = (0..requests)
        .map(|seed| {
            benchmark
                .program()
                .variables()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v.to_string(), ((seed + i) as i64 % 11) + 1))
                .collect()
        })
        .collect();
    let expected: Vec<Vec<u64>> = input_sets
        .iter()
        .map(|inputs| {
            let mut env = chehab_ir::Env::new();
            for (k, v) in inputs {
                env.bind(k.clone(), *v);
            }
            let value = chehab_ir::evaluate(benchmark.program(), &env).unwrap_or_else(|e| {
                panic!(
                    "{}: plaintext reference evaluation failed: {e}",
                    benchmark.id()
                )
            });
            value
                .slots()
                .into_iter()
                .take(benchmark.output_slots())
                .collect()
        })
        .collect();

    let session = compiled
        .session(params)
        .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
    let mut correct = true;

    // Cold request: every buffer is a pool miss — the allocation bill every
    // request footed before the arena existed.
    PolyArena::reset_counters();
    let cold = session
        .run(&input_sets[0])
        .unwrap_or_else(|e| panic!("{}: cold run failed: {e}", benchmark.id()));
    let cold_allocs = PolyArena::fresh_allocations();
    correct &= cold.decryption_ok
        && cold
            .outputs
            .iter()
            .take(expected[0].len())
            .eq(expected[0].iter());

    // Warm the pool across the whole request stream once.
    for inputs in &input_sets {
        let _ = session.run(inputs).unwrap();
    }

    // Measured warm passes: latency medians plus the steady-state counters.
    PolyArena::reset_counters();
    let mut request_times = Vec::with_capacity(runs.max(1) * requests);
    for _ in 0..runs.max(1) {
        for (inputs, expected) in input_sets.iter().zip(&expected) {
            let started = Instant::now();
            let report = session
                .run(inputs)
                .unwrap_or_else(|e| panic!("{}: warm run failed: {e}", benchmark.id()));
            request_times.push(started.elapsed());
            let got: Vec<u64> = report
                .outputs
                .iter()
                .copied()
                .take(expected.len())
                .collect();
            correct &= report.decryption_ok && &got == expected;
        }
    }
    let measured_requests = request_times.len() as f64;
    let warm_allocs_per_request = PolyArena::fresh_allocations() as f64 / measured_requests;
    let warm_reuses_per_request = PolyArena::reuses() as f64 / measured_requests;
    request_times.sort_unstable();
    let request_ms = ms(request_times[request_times.len() / 2]);

    // Threaded bit-equivalence: the recycling register file must not change
    // a single output bit under concurrent execution.
    let dataflow_options = ExecOptions::sequential().with_threads_per_request(threads);
    for (inputs, expected) in input_sets.iter().zip(&expected) {
        let seq = session.run(inputs).unwrap();
        let par = session
            .run_parallel(inputs, &dataflow_options)
            .unwrap_or_else(|e| panic!("{}: threaded run failed: {e}", benchmark.id()));
        correct &= par.outputs == seq.outputs && par.decryption_ok == seq.decryption_ok;
        let got: Vec<u64> = seq.outputs.iter().copied().take(expected.len()).collect();
        correct &= &got == expected;
    }

    MemlayoutMeasurement {
        benchmark: benchmark.id(),
        threads,
        request_ms,
        baseline_request_ms,
        improvement: baseline_request_ms.map(|b| b / request_ms.max(1e-9)),
        cold_allocs,
        warm_allocs_per_request,
        warm_reuses_per_request,
        correct,
    }
}

/// Writes memory-layout measurements as JSON into `path` and returns it.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_memlayout_json(
    path: impl AsRef<std::path::Path>,
    requests: usize,
    threads: usize,
    measurements: &[MemlayoutMeasurement],
) -> std::io::Result<std::path::PathBuf> {
    use serde::Value;
    let rows: Vec<Value> = measurements
        .iter()
        .map(|m| {
            Value::Object(vec![
                ("benchmark".into(), Value::Str(m.benchmark.clone())),
                ("threads".into(), Value::Int(m.threads as i64)),
                ("request_ms".into(), Value::Float(m.request_ms)),
                (
                    "baseline_request_ms".into(),
                    m.baseline_request_ms.map_or(Value::Null, Value::Float),
                ),
                (
                    "improvement".into(),
                    m.improvement.map_or(Value::Null, Value::Float),
                ),
                ("cold_allocs".into(), Value::Int(m.cold_allocs as i64)),
                (
                    "warm_allocs_per_request".into(),
                    Value::Float(m.warm_allocs_per_request),
                ),
                (
                    "warm_reuses_per_request".into(),
                    Value::Float(m.warm_reuses_per_request),
                ),
                ("correct".into(), Value::Bool(m.correct)),
            ])
        })
        .collect();
    let improvements: Vec<f64> = measurements.iter().filter_map(|m| m.improvement).collect();
    let ones = vec![1.0; improvements.len()];
    let zero_alloc_kernels = measurements
        .iter()
        .filter(|m| m.warm_allocs_per_request == 0.0)
        .count();
    let document = Value::Object(vec![
        ("experiment".into(), Value::Str("memlayout".into())),
        ("requests".into(), Value::Int(requests as i64)),
        ("threads".into(), Value::Int(threads as i64)),
        ("host_cpus".into(), Value::Int(available_cpus() as i64)),
        (
            "simd_policy".into(),
            Value::Str(SimdPolicy::global().name().into()),
        ),
        (
            "speedup_semantics".into(),
            Value::Str(
                "improvement = baseline sequential_request_ms (from BENCH_dataflow.json, the \
                 split-layout engine with per-op heap allocation) / request_ms re-measured under \
                 the striped zero-allocation engine, per kernel on measured warm wall time. \
                 cold_allocs counts fresh buffer allocations (slot vectors + payload stripes) of \
                 the first request against an empty arena — the per-request allocation bill of \
                 the old engine; warm_allocs_per_request is the same counter in steady state and \
                 the acceptance bar is ~0 (warm_reuses_per_request shows how many allocations \
                 the arena absorbs instead). Arc control blocks, per-request bookkeeping vectors \
                 and plaintext encodes are not pooled and not counted. correct asserts plaintext \
                 reference equality and sequential == threaded dataflow outputs bit for bit"
                    .into(),
            ),
        ),
        (
            "kernels_measured".into(),
            Value::Int(measurements.len() as i64),
        ),
        (
            "kernels_with_baseline".into(),
            Value::Int(improvements.len() as i64),
        ),
        (
            "zero_alloc_kernels".into(),
            Value::Int(zero_alloc_kernels as i64),
        ),
        (
            "geomean_improvement".into(),
            Value::Float(geometric_mean_ratio(&improvements, &ones)),
        ),
        ("kernels".into(), Value::Array(rows)),
    ]);
    let path = path.as_ref().to_path_buf();
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible"),
    )?;
    Ok(path)
}

/// One traced request of a kernel: summary figures of a full structured
/// span capture (session phases + per-worker instruction spans) exported as
/// Chrome-trace JSON, with bit-identity asserted against an untraced run.
#[derive(Debug, Clone)]
pub struct TraceMeasurement {
    /// Benchmark identifier.
    pub benchmark: String,
    /// Workers of the traced dataflow run.
    pub threads: usize,
    /// Wall time of the traced request, ms.
    pub request_ms: f64,
    /// Recorded spans (session phases + instructions).
    pub span_count: usize,
    /// Trace tracks (one session track + one per executor worker).
    pub track_count: usize,
    /// Instruction spans recorded with steal provenance.
    pub stolen_spans: usize,
    /// Whether the traced outputs matched both the untraced run (bit for
    /// bit) and the plaintext reference.
    pub correct: bool,
    /// The Chrome/Perfetto `traceEvents` JSON of the capture.
    pub chrome_json: String,
}

/// Serves one request of a kernel with tracing on (dataflow scheduler,
/// `threads` workers) and one with tracing off, asserts the outputs are
/// bit-identical and match the plaintext reference, and exports the capture
/// as Chrome-trace JSON.
pub fn measure_trace(
    benchmark: &Benchmark,
    compiler: &CompilerUnderTest,
    params: &BfvParameters,
    threads: usize,
) -> TraceMeasurement {
    let compiled = compiler.compile(benchmark);
    let inputs: HashMap<String, i64> = benchmark
        .program()
        .variables()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v.to_string(), (i as i64 % 7) + 1))
        .collect();
    let expected = {
        let mut env = chehab_ir::Env::new();
        for (k, v) in &inputs {
            env.bind(k.clone(), *v);
        }
        chehab_ir::evaluate(benchmark.program(), &env)
            .map(|v| {
                v.slots()
                    .into_iter()
                    .take(benchmark.output_slots())
                    .collect::<Vec<_>>()
            })
            .unwrap_or_default()
    };

    let session = compiled
        .session(params)
        .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
    let options = ExecOptions::sequential().with_threads_per_request(threads);
    let untraced = session
        .run_parallel(&inputs, &options)
        .unwrap_or_else(|e| panic!("{}: untraced run failed: {e}", benchmark.id()));
    let started = Instant::now();
    let (traced, trace) = session
        .trace_request(&inputs, &options)
        .unwrap_or_else(|e| panic!("{}: traced run failed: {e}", benchmark.id()));
    let request_ms = ms(started.elapsed());

    let got: Vec<u64> = traced
        .outputs
        .iter()
        .copied()
        .take(expected.len())
        .collect();
    let correct = traced.outputs == untraced.outputs
        && traced.decryption_ok == untraced.decryption_ok
        && traced.decryption_ok
        && got == expected;

    TraceMeasurement {
        benchmark: benchmark.id(),
        threads,
        request_ms,
        span_count: trace.events().len(),
        track_count: trace.track_labels().len(),
        stolen_spans: trace
            .events()
            .iter()
            .filter(|e| e.stolen_from.is_some())
            .count(),
        correct,
        chrome_json: trace.to_chrome_json(),
    }
}

/// Writes trace-capture summaries as JSON into `path` and returns it. The
/// full Chrome-trace JSON of each capture is *not* embedded — callers write
/// the sample capture they want to keep as its own artifact (loadable
/// directly in `chrome://tracing`).
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_trace_json(
    path: impl AsRef<std::path::Path>,
    threads: usize,
    measurements: &[TraceMeasurement],
) -> std::io::Result<std::path::PathBuf> {
    use serde::Value;
    let rows: Vec<Value> = measurements
        .iter()
        .map(|m| {
            Value::Object(vec![
                ("benchmark".into(), Value::Str(m.benchmark.clone())),
                ("threads".into(), Value::Int(m.threads as i64)),
                ("request_ms".into(), Value::Float(m.request_ms)),
                ("span_count".into(), Value::Int(m.span_count as i64)),
                ("track_count".into(), Value::Int(m.track_count as i64)),
                ("stolen_spans".into(), Value::Int(m.stolen_spans as i64)),
                ("correct".into(), Value::Bool(m.correct)),
            ])
        })
        .collect();
    let document = Value::Object(vec![
        ("experiment".into(), Value::Str("trace".into())),
        ("threads".into(), Value::Int(threads as i64)),
        ("host_cpus".into(), Value::Int(available_cpus() as i64)),
        (
            "simd_policy".into(),
            Value::Str(SimdPolicy::global().name().into()),
        ),
        (
            "semantics".into(),
            Value::Str(
                "One traced request per kernel under the dataflow scheduler at `threads` \
                 workers: span_count counts recorded spans (session bind/execute/decrypt \
                 phases plus one span per executed instruction), track_count the trace tracks \
                 (one session track + one per executor worker), stolen_spans the instruction \
                 spans carrying steal provenance. correct asserts the traced outputs are \
                 bit-identical to an untraced run and match the plaintext reference — tracing \
                 observes, never perturbs"
                    .into(),
            ),
        ),
        (
            "kernels_measured".into(),
            Value::Int(measurements.len() as i64),
        ),
        (
            "all_correct".into(),
            Value::Bool(measurements.iter().all(|m| m.correct)),
        ),
        (
            "total_spans".into(),
            Value::Int(measurements.iter().map(|m| m.span_count as i64).sum()),
        ),
        ("kernels".into(), Value::Array(rows)),
    ]);
    let path = path.as_ref().to_path_buf();
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible"),
    )?;
    Ok(path)
}

/// Writes hot-path measurements as JSON into `path` and returns it.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_hotpath_json(
    path: impl AsRef<std::path::Path>,
    requests: usize,
    measurements: &[HotpathMeasurement],
) -> std::io::Result<std::path::PathBuf> {
    use serde::Value;
    let rows: Vec<Value> = measurements
        .iter()
        .map(|m| {
            Value::Object(vec![
                ("benchmark".into(), Value::Str(m.benchmark.clone())),
                ("request_ms".into(), Value::Float(m.request_ms)),
                (
                    "baseline_request_ms".into(),
                    m.baseline_request_ms.map_or(Value::Null, Value::Float),
                ),
                (
                    "improvement".into(),
                    m.improvement.map_or(Value::Null, Value::Float),
                ),
                ("correct".into(), Value::Bool(m.correct)),
            ])
        })
        .collect();
    let improvements: Vec<f64> = measurements.iter().filter_map(|m| m.improvement).collect();
    let ones = vec![1.0; improvements.len()];
    let document = Value::Object(vec![
        ("experiment".into(), Value::Str("hotpath".into())),
        ("requests".into(), Value::Int(requests as i64)),
        ("host_cpus".into(), Value::Int(available_cpus() as i64)),
        (
            "simd_policy".into(),
            Value::Str(SimdPolicy::global().name().into()),
        ),
        (
            "speedup_semantics".into(),
            Value::Str(
                "improvement = baseline request_ms (from BENCH_serving.json, the pre-hot-path \
                 engine) / request_ms re-measured under the current engine, per kernel on \
                 measured wall time; geomean_improvement aggregates kernels present in the \
                 baseline. correct asserts every request's outputs matched the plaintext \
                 reference"
                    .into(),
            ),
        ),
        (
            "kernels_measured".into(),
            Value::Int(measurements.len() as i64),
        ),
        (
            "kernels_with_baseline".into(),
            Value::Int(improvements.len() as i64),
        ),
        (
            "geomean_improvement".into(),
            Value::Float(geometric_mean_ratio(&improvements, &ones)),
        ),
        ("kernels".into(), Value::Array(rows)),
    ]);
    let path = path.as_ref().to_path_buf();
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible"),
    )?;
    Ok(path)
}

/// One per-limb-count timing point of the RNS modulus-chain sweep.
#[derive(Debug, Clone)]
pub struct RnsPoint {
    /// RNS limbs carried by every ciphertext payload at this point.
    pub limbs: usize,
    /// Median per-request wall time at this limb count, ms.
    pub request_ms: f64,
    /// `request_ms / request_ms(k = 1)`: the measured per-limb cost scaling
    /// (the arithmetic grows linearly in `k`; everything per-request that is
    /// not payload arithmetic does not).
    pub scaling_vs_k1: f64,
}

/// One kernel measured end to end across RNS limb counts: the decrypted
/// outputs must be identical at every `k` (the slot pipeline is exact and
/// limb count only widens the cost-model payload), so the sweep is both a
/// correctness check and a per-limb scaling record.
#[derive(Debug, Clone)]
pub struct RnsMeasurement {
    /// Benchmark identifier.
    pub benchmark: String,
    /// One timing point per requested limb count, in the order given.
    pub points: Vec<RnsPoint>,
    /// Whether the decrypted outputs were bit-identical across every limb
    /// count.
    pub identical_across_limbs: bool,
    /// Whether every run decrypted correctly against the plaintext
    /// reference.
    pub correct: bool,
}

/// Measures one kernel's warm per-request latency at each limb count in
/// `limb_counts` (one warm-up pass, then `runs` timed requests per count,
/// median reported), asserting outputs against the plaintext reference and
/// against each other across limb counts.
pub fn measure_rns(
    benchmark: &Benchmark,
    compiler: &CompilerUnderTest,
    params: &BfvParameters,
    runs: usize,
    limb_counts: &[usize],
) -> RnsMeasurement {
    let compiled = compiler.compile(benchmark);
    let inputs: HashMap<String, i64> = benchmark
        .program()
        .variables()
        .into_iter()
        .enumerate()
        .map(|(i, v)| (v.to_string(), (i as i64 % 11) + 1))
        .collect();
    let expected: Vec<u64> = {
        let mut env = chehab_ir::Env::new();
        for (k, v) in &inputs {
            env.bind(k.clone(), *v);
        }
        chehab_ir::evaluate(benchmark.program(), &env)
            .map(|v| {
                v.slots()
                    .into_iter()
                    .take(benchmark.output_slots())
                    .collect()
            })
            .unwrap_or_default()
    };
    let mut points = Vec::with_capacity(limb_counts.len());
    let mut correct = true;
    let mut identical = true;
    let mut reference: Option<Vec<u64>> = None;
    let mut base_ms: Option<f64> = None;
    for &k in limb_counts {
        let session = compiled
            .session(&params.clone().with_limb_count(k))
            .unwrap_or_else(|e| {
                panic!(
                    "{}: session construction failed at k={k}: {e}",
                    benchmark.id()
                )
            });
        let warm = session
            .run(&inputs)
            .unwrap_or_else(|e| panic!("{}: warm-up run failed at k={k}: {e}", benchmark.id()));
        match &reference {
            None => reference = Some(warm.outputs.clone()),
            Some(r) => identical &= &warm.outputs == r,
        }
        let mut times = Vec::with_capacity(runs.max(1));
        for _ in 0..runs.max(1) {
            let started = Instant::now();
            let report = session
                .run(&inputs)
                .unwrap_or_else(|e| panic!("{}: run failed at k={k}: {e}", benchmark.id()));
            times.push(started.elapsed());
            let got: Vec<u64> = report
                .outputs
                .iter()
                .copied()
                .take(expected.len())
                .collect();
            correct &= report.decryption_ok && got == expected;
        }
        times.sort_unstable();
        let request_ms = ms(times[times.len() / 2]);
        let base = *base_ms.get_or_insert(request_ms);
        points.push(RnsPoint {
            limbs: k,
            request_ms,
            scaling_vs_k1: request_ms / base.max(1e-9),
        });
    }
    RnsMeasurement {
        benchmark: benchmark.id(),
        points,
        identical_across_limbs: identical,
        correct,
    }
}

/// Re-snapshots the timer-augmented per-op cost model
/// ([`chehab_runtime::CalibratedCostModel`]) with every ciphertext carrying
/// `limbs` RNS stripes, projecting the measured per-limb op latencies into
/// an [`chehab_ir::OpCosts`] table (vec_add = 1.0 convention) for the
/// dataflow scheduler's critical-path priorities.
pub fn calibrate_rns_costs(
    params: &BfvParameters,
    limbs: usize,
    iters: usize,
) -> chehab_ir::OpCosts {
    use chehab_fhe::{Encryptor, Evaluator, FheContext, KeyGenerator};
    use chehab_runtime::{CalibratedCostModel, OpKind};
    let ctx = FheContext::new(params.clone().with_limb_count(limbs)).expect("valid parameters");
    let mut keygen = KeyGenerator::new(ctx.params(), 0xCA11B);
    let mut encryptor = Encryptor::new(&ctx, &keygen.public_key());
    let relin = keygen.relin_keys();
    let galois = keygen.galois_keys(&[1]);
    let mut evaluator = Evaluator::new(&ctx);
    let ct_a = encryptor.encrypt_values(&[1, 2, 3]).expect("encrypt");
    let ct_b = encryptor.encrypt_values(&[4, 5, 6]).expect("encrypt");
    let pt = ctx.encode(&[7, 8, 9]).expect("encode");
    let mut model = CalibratedCostModel::new();
    // One untimed warm-up of each op primes twiddle tables and the arena.
    std::hint::black_box(evaluator.add(&ct_a, &ct_b));
    std::hint::black_box(evaluator.multiply(&ct_a, &ct_b, &relin));
    for _ in 0..iters.max(1) {
        let t = Instant::now();
        std::hint::black_box(evaluator.add(&ct_a, &ct_b));
        model.record(OpKind::Addition, t.elapsed());

        let t = Instant::now();
        std::hint::black_box(evaluator.negate(&ct_a));
        model.record(OpKind::Negation, t.elapsed());

        let t = Instant::now();
        std::hint::black_box(evaluator.multiply(&ct_a, &ct_b, &relin));
        model.record(OpKind::MulCtCt, t.elapsed());

        let t = Instant::now();
        std::hint::black_box(evaluator.multiply_plain(&ct_a, &pt));
        model.record(OpKind::MulCtPt, t.elapsed());

        let t = Instant::now();
        let rotated = evaluator.rotate(&ct_a, 1, &galois).expect("keyed step");
        model.record(OpKind::Rotation, t.elapsed());

        let t = Instant::now();
        let mut acc = evaluator.rotate(&ct_b, 1, &galois).expect("keyed step");
        evaluator.add_assign(&mut acc, &rotated);
        model.record(OpKind::Pack, t.elapsed());
        std::hint::black_box(&acc);
    }
    model.to_op_costs(&chehab_ir::OpCosts::default())
}

/// Writes the RNS limb-count sweep (`measure_rns` rows plus the per-`k`
/// calibrated [`chehab_ir::OpCosts`] tables) as `BENCH_rns.json`.
pub fn write_rns_json(
    path: impl AsRef<std::path::Path>,
    runs: usize,
    measurements: &[RnsMeasurement],
    calibrations: &[(usize, chehab_ir::OpCosts)],
) -> std::io::Result<std::path::PathBuf> {
    use serde::Value;
    let op_costs_json = |c: &chehab_ir::OpCosts| {
        Value::Object(vec![
            ("vec_add".into(), Value::Float(c.vec_add)),
            ("vec_mul_ct_ct".into(), Value::Float(c.vec_mul_ct_ct)),
            ("vec_mul_ct_pt".into(), Value::Float(c.vec_mul_ct_pt)),
            ("rotation".into(), Value::Float(c.rotation)),
            ("scalar_op".into(), Value::Float(c.scalar_op)),
            ("plaintext_op".into(), Value::Float(c.plaintext_op)),
        ])
    };
    let rows: Vec<Value> = measurements
        .iter()
        .map(|m| {
            let points: Vec<Value> = m
                .points
                .iter()
                .map(|p| {
                    Value::Object(vec![
                        ("limbs".into(), Value::Int(p.limbs as i64)),
                        ("request_ms".into(), Value::Float(p.request_ms)),
                        ("scaling_vs_k1".into(), Value::Float(p.scaling_vs_k1)),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("benchmark".into(), Value::Str(m.benchmark.clone())),
                ("points".into(), Value::Array(points)),
                (
                    "identical_across_limbs".into(),
                    Value::Bool(m.identical_across_limbs),
                ),
                ("correct".into(), Value::Bool(m.correct)),
            ])
        })
        .collect();
    // Geomean scaling per limb count beyond the first, across kernels.
    let limb_counts: Vec<usize> = measurements
        .first()
        .map(|m| m.points.iter().map(|p| p.limbs).collect())
        .unwrap_or_default();
    let scaling_summary: Vec<Value> = limb_counts
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, &k)| {
            let scalings: Vec<f64> = measurements
                .iter()
                .filter_map(|m| m.points.get(i).map(|p| p.scaling_vs_k1))
                .collect();
            let ones = vec![1.0; scalings.len()];
            Value::Object(vec![
                ("limbs".into(), Value::Int(k as i64)),
                (
                    "geomean_scaling_vs_k1".into(),
                    Value::Float(geometric_mean_ratio(&scalings, &ones)),
                ),
            ])
        })
        .collect();
    let calibration_rows: Vec<Value> = calibrations
        .iter()
        .map(|(k, costs)| {
            Value::Object(vec![
                ("limbs".into(), Value::Int(*k as i64)),
                ("op_costs".into(), op_costs_json(costs)),
            ])
        })
        .collect();
    let document = Value::Object(vec![
        ("experiment".into(), Value::Str("rns".into())),
        ("runs".into(), Value::Int(runs as i64)),
        ("host_cpus".into(), Value::Int(available_cpus() as i64)),
        (
            "simd_policy".into(),
            Value::Str(SimdPolicy::global().name().into()),
        ),
        (
            "semantics".into(),
            Value::Str(
                "Each kernel runs end to end at every limb count with a ModulusChain of \
                 NTT-friendly primes (limb 0 = Goldilocks, generic limbs Barrett-reduced); \
                 request_ms is the median warm per-request wall time, scaling_vs_k1 divides it \
                 by the k=1 figure of the same kernel (payload arithmetic grows linearly in k; \
                 slots, scheduling and noise accounting do not). identical_across_limbs asserts \
                 the decrypted outputs are bit-identical at every k; correct asserts them \
                 against the plaintext reference. calibration re-snapshots the per-op cost \
                 model with k-limb ciphertexts and projects the measured latencies into \
                 OpCosts tables (vec_add = 1.0 convention)"
                    .into(),
            ),
        ),
        (
            "kernels_measured".into(),
            Value::Int(measurements.len() as i64),
        ),
        ("scaling_summary".into(), Value::Array(scaling_summary)),
        ("kernels".into(), Value::Array(rows)),
        ("calibration".into(), Value::Array(calibration_rows)),
    ]);
    let path = path.as_ref().to_path_buf();
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible"),
    )?;
    Ok(path)
}

/// One (batch size, latency) point of a cross-request batching sweep.
#[derive(Debug, Clone)]
pub struct BatchingPoint {
    /// Users packed into the shared ciphertexts of one execution.
    pub batch: usize,
    /// Median wall time of serving the whole batch through
    /// [`chehab_core::FheSession::run_batched`], ms.
    pub wall_ms: f64,
    /// `wall_ms / batch`: amortized per-request latency at this batch size.
    pub amortized_ms: f64,
}

/// One cross-request SIMD batching sweep of a kernel: amortized per-request
/// latency at batch sizes 1, 2, 4, ... up to the program's lane capacity,
/// against the unbatched serving latency recorded in `BENCH_serving.json`.
#[derive(Debug, Clone)]
pub struct BatchingMeasurement {
    /// Benchmark identifier.
    pub benchmark: String,
    /// Slot distance between consecutive users' lane windows (the
    /// rotation-envelope span of one user's data).
    pub lane_stride: usize,
    /// Users one ciphertext can carry under that stride.
    pub batch_capacity: usize,
    /// The sweep, ascending in batch size (first point is always batch 1).
    pub points: Vec<BatchingPoint>,
    /// Unbatched per-request latency from `BENCH_serving.json`, if present.
    pub baseline_request_ms: Option<f64>,
    /// Smallest amortized per-request latency across the sweep, ms.
    pub best_amortized_ms: f64,
    /// `points[0].amortized_ms / best_amortized_ms`: how much batching
    /// shrinks the per-request latency versus running the same engine at
    /// batch 1 (above 1.0 = batching pays for itself).
    pub batching_speedup: f64,
    /// `baseline_request_ms / best_amortized_ms`, if a baseline exists.
    pub improvement: Option<f64>,
    /// Whether batch 1 was bit-identical to the unbatched session path and
    /// every verified user of the largest batch read exactly its own solo
    /// outputs.
    pub correct: bool,
}

/// Batch sizes a sweep visits, capped at the kernel's effective capacity.
const BATCH_SWEEP: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

/// Sweeps one kernel's amortized per-request latency across batch sizes
/// (medians over `runs` passes per size), verifying per-user bit-exactness:
/// batch 1 against the unbatched path, and the first users of the largest
/// batch (up to 8, to bound verification cost) against their solo runs.
pub fn measure_batching(
    benchmark: &Benchmark,
    compiler: &CompilerUnderTest,
    params: &BfvParameters,
    runs: usize,
    baseline_request_ms: Option<f64>,
) -> BatchingMeasurement {
    let compiled = compiler.compile(benchmark);
    let session = compiled
        .session(params)
        .unwrap_or_else(|e| panic!("{}: session construction failed: {e}", benchmark.id()));
    let capacity = session.batch_capacity().min(*BATCH_SWEEP.last().unwrap());
    let sizes: Vec<usize> = BATCH_SWEEP
        .iter()
        .copied()
        .filter(|&b| b <= capacity)
        .collect();
    let largest = *sizes.last().unwrap();

    let input_sets: Vec<HashMap<String, i64>> = (0..largest)
        .map(|seed| {
            benchmark
                .program()
                .variables()
                .into_iter()
                .enumerate()
                .map(|(i, v)| (v.to_string(), ((seed + i) as i64 % 11) + 1))
                .collect()
        })
        .collect();

    // Solo references for the verified prefix (the batch must scatter these
    // exact outputs back to their lanes).
    let verified = largest.min(8);
    let solo: Vec<ExecutionReport> = input_sets[..verified]
        .iter()
        .map(|inputs| {
            session
                .run(inputs)
                .unwrap_or_else(|e| panic!("{}: solo run failed: {e}", benchmark.id()))
        })
        .collect();

    let mut correct = true;
    let mut points = Vec::with_capacity(sizes.len());
    for &batch in &sizes {
        let options =
            ExecOptions::sequential().with_batching(BatchPolicy::default().with_max_batch(batch));
        let mut walls = Vec::with_capacity(runs.max(1));
        for run in 0..runs.max(1) {
            let started = Instant::now();
            let reports = session
                .run_batched(&input_sets[..batch], &options)
                .unwrap_or_else(|e| panic!("{}: batched run failed: {e}", benchmark.id()));
            walls.push(started.elapsed());
            if run == 0 {
                for (lane, report) in reports.iter().take(verified).enumerate() {
                    correct &= report.outputs == solo[lane].outputs;
                }
                if batch == 1 {
                    // Batch 1 must be *bit-identical*, not merely correct.
                    correct &= reports[0].operation_stats == solo[0].operation_stats
                        && reports[0].noise_budget_consumed == solo[0].noise_budget_consumed;
                }
            }
        }
        walls.sort_unstable();
        let wall_ms = ms(walls[walls.len() / 2]);
        points.push(BatchingPoint {
            batch,
            wall_ms,
            amortized_ms: wall_ms / batch as f64,
        });
    }

    let best_amortized_ms = points
        .iter()
        .map(|p| p.amortized_ms)
        .fold(f64::INFINITY, f64::min);
    BatchingMeasurement {
        benchmark: benchmark.id(),
        lane_stride: session.lane_stride(),
        batch_capacity: session.batch_capacity(),
        baseline_request_ms,
        batching_speedup: points[0].amortized_ms / best_amortized_ms.max(1e-9),
        improvement: baseline_request_ms.map(|b| b / best_amortized_ms.max(1e-9)),
        best_amortized_ms,
        points,
        correct,
    }
}

/// Writes batching sweeps as JSON into `path` (same artifact family as
/// [`write_serving_json`]) and returns it.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_batching_json(
    path: impl AsRef<std::path::Path>,
    runs: usize,
    measurements: &[BatchingMeasurement],
) -> std::io::Result<std::path::PathBuf> {
    use serde::Value;
    let rows: Vec<Value> = measurements
        .iter()
        .map(|m| {
            let sweep: Vec<Value> = m
                .points
                .iter()
                .map(|p| {
                    Value::Object(vec![
                        ("batch".into(), Value::Int(p.batch as i64)),
                        ("wall_ms".into(), Value::Float(p.wall_ms)),
                        ("amortized_ms".into(), Value::Float(p.amortized_ms)),
                    ])
                })
                .collect();
            Value::Object(vec![
                ("benchmark".into(), Value::Str(m.benchmark.clone())),
                ("lane_stride".into(), Value::Int(m.lane_stride as i64)),
                ("batch_capacity".into(), Value::Int(m.batch_capacity as i64)),
                ("points".into(), Value::Array(sweep)),
                (
                    "baseline_request_ms".into(),
                    m.baseline_request_ms.map_or(Value::Null, Value::Float),
                ),
                (
                    "best_amortized_ms".into(),
                    Value::Float(m.best_amortized_ms),
                ),
                ("batching_speedup".into(), Value::Float(m.batching_speedup)),
                (
                    "improvement".into(),
                    m.improvement.map_or(Value::Null, Value::Float),
                ),
                ("correct".into(), Value::Bool(m.correct)),
            ])
        })
        .collect();
    let speedups: Vec<f64> = measurements.iter().map(|m| m.batching_speedup).collect();
    let improvements: Vec<f64> = measurements.iter().filter_map(|m| m.improvement).collect();
    let batching_wins = measurements
        .iter()
        .filter(|m| m.batching_speedup > 1.0)
        .count();
    let document = Value::Object(vec![
        ("experiment".into(), Value::Str("batching".into())),
        ("runs".into(), Value::Int(runs as i64)),
        ("host_cpus".into(), Value::Int(available_cpus() as i64)),
        (
            "simd_policy".into(),
            Value::Str(SimdPolicy::global().name().into()),
        ),
        (
            "speedup_semantics".into(),
            Value::Str(
                "each kernel sweeps batch sizes 1,2,4,... up to its lane capacity through \
                 FheSession::run_batched (many users packed into the slot lanes of shared \
                 ciphertexts, one homomorphic execution per batch); amortized_ms = median batch \
                 wall / batch. batching_speedup = amortized_ms at batch 1 / best amortized_ms \
                 across the sweep (above 1.0 = batching shrank per-request latency); \
                 improvement = the unbatched request_ms from BENCH_serving.json / best \
                 amortized_ms. correct asserts batch 1 is bit-identical to the unbatched path \
                 and verified users of the largest batch read exactly their solo outputs"
                    .into(),
            ),
        ),
        (
            "kernels_measured".into(),
            Value::Int(measurements.len() as i64),
        ),
        ("batching_wins".into(), Value::Int(batching_wins as i64)),
        (
            "geomean_batching_speedup".into(),
            Value::Float(geometric_mean_ratio(&speedups, &vec![1.0; speedups.len()])),
        ),
        (
            "geomean_improvement".into(),
            Value::Float(geometric_mean_ratio(
                &improvements,
                &vec![1.0; improvements.len()],
            )),
        ),
        ("kernels".into(), Value::Array(rows)),
    ]);
    let path = path.as_ref().to_path_buf();
    std::fs::write(
        &path,
        serde_json::to_string_pretty(&document).expect("stub serializer is infallible"),
    )?;
    Ok(path)
}

/// Number of CPUs available to this process.
pub fn available_cpus() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

/// Geometric mean of the ratios `numerator[i] / denominator[i]`.
pub fn geometric_mean_ratio(numerators: &[f64], denominators: &[f64]) -> f64 {
    let ratios: Vec<f64> = numerators
        .iter()
        .zip(denominators)
        .filter(|(n, d)| **n > 0.0 && **d > 0.0)
        .map(|(n, d)| n / d)
        .collect();
    if ratios.is_empty() {
        return 1.0;
    }
    (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp()
}

/// Writes `rows` under `header` into `results/<name>.csv` (creating the
/// directory if needed) and returns the path.
///
/// # Errors
///
/// Propagates filesystem errors.
pub fn write_csv(name: &str, header: &str, rows: &[String]) -> std::io::Result<std::path::PathBuf> {
    let dir = std::path::Path::new("results");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut file = std::fs::File::create(&path)?;
    writeln!(file, "{header}")?;
    for row in rows {
        writeln!(file, "{row}")?;
    }
    Ok(path)
}

/// Formats a duration in milliseconds.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// The CSV header matching [`print_measurements`] rows.
pub const MEASUREMENT_CSV_HEADER: &str = "benchmark,compiler,compile_ms,exec_ms,noise_bits,depth,mult_depth,ct_ct_muls,ct_pt_muls,rotations,additions,correct";

/// Prints a standard measurement table and returns the rows as CSV strings.
pub fn print_measurements(measurements: &[Measurement]) -> Vec<String> {
    println!(
        "{:<22} {:<30} {:>12} {:>12} {:>10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8}",
        "benchmark",
        "compiler",
        "compile(ms)",
        "exec(ms)",
        "noise(b)",
        "depth",
        "mdep",
        "ct-ct",
        "ct-pt",
        "rot",
        "correct"
    );
    let mut rows = Vec::new();
    for m in measurements {
        println!(
            "{:<22} {:<30} {:>12.2} {:>12.3} {:>10.1} {:>6} {:>6} {:>6} {:>6} {:>6} {:>8}",
            m.benchmark,
            m.compiler,
            ms(m.compile_time),
            ms(m.exec_time),
            m.noise_consumed,
            m.depth,
            m.mult_depth,
            m.ct_ct_muls,
            m.ct_pt_muls,
            m.rotations,
            if m.decryption_ok {
                if m.correct {
                    "yes"
                } else {
                    "NO"
                }
            } else {
                "budget!"
            }
        );
        rows.push(format!(
            "{},{},{:.3},{:.3},{:.1},{},{},{},{},{},{},{}",
            m.benchmark,
            m.compiler,
            ms(m.compile_time),
            ms(m.exec_time),
            m.noise_consumed,
            m.depth,
            m.mult_depth,
            m.ct_ct_muls,
            m.ct_pt_muls,
            m.rotations,
            m.additions,
            m.correct
        ));
    }
    rows
}

/// Prints the geometric-mean comparison line used by Figures 5–7 and writes
/// nothing; returns (exec ratio, compile ratio, noise ratio) of
/// `baseline / subject` so values above 1 mean the subject wins.
pub fn summarize_vs_baseline(
    measurements: &[Measurement],
    subject: &str,
    baseline: &str,
) -> (f64, f64, f64) {
    let mut subject_exec = Vec::new();
    let mut baseline_exec = Vec::new();
    let mut subject_compile = Vec::new();
    let mut baseline_compile = Vec::new();
    let mut subject_noise = Vec::new();
    let mut baseline_noise = Vec::new();
    let by_benchmark: HashMap<&str, Vec<&Measurement>> =
        measurements.iter().fold(HashMap::new(), |mut acc, m| {
            acc.entry(m.benchmark.as_str()).or_default().push(m);
            acc
        });
    for group in by_benchmark.values() {
        let find = |label: &str| group.iter().find(|m| m.compiler == label);
        if let (Some(s), Some(b)) = (find(subject), find(baseline)) {
            subject_exec.push(s.exec_time.as_secs_f64());
            baseline_exec.push(b.exec_time.as_secs_f64());
            subject_compile.push(s.compile_time.as_secs_f64());
            baseline_compile.push(b.compile_time.as_secs_f64());
            subject_noise.push(s.noise_consumed);
            baseline_noise.push(b.noise_consumed);
        }
    }
    let exec = geometric_mean_ratio(&baseline_exec, &subject_exec);
    let compile = geometric_mean_ratio(&baseline_compile, &subject_compile);
    let noise = geometric_mean_ratio(&baseline_noise, &subject_noise);
    println!(
        "\ngeometric means ({baseline} / {subject}): execution {exec:.2}x, compilation {compile:.2}x, consumed noise {noise:.2}x"
    );
    (exec, compile, noise)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometric_mean_of_equal_series_is_one() {
        let a = [1.0, 2.0, 4.0];
        assert!((geometric_mean_ratio(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_matches_hand_computation() {
        let num = [2.0, 8.0];
        let den = [1.0, 2.0];
        assert!((geometric_mean_ratio(&num, &den) - 8f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn quick_subset_is_a_subset_of_the_full_suite() {
        let quick = HarnessConfig::default().benchmarks();
        let full = HarnessConfig {
            quick: false,
            ..HarnessConfig::default()
        }
        .benchmarks();
        assert!(quick.len() < full.len());
        assert_eq!(full.len(), 46);
        for b in &quick {
            assert!(full.iter().any(|f| f.id() == b.id()));
        }
    }

    #[test]
    fn measuring_a_small_benchmark_works_end_to_end() {
        let benchmark = chehab_benchsuite::by_id("Dot Product 4").unwrap();
        let params = BfvParameters::insecure_test();
        let m = measure(&benchmark, &CompilerUnderTest::ChehabGreedy, &params, 1);
        assert!(m.correct, "greedy-compiled dot product must be correct");
        assert!(m.exec_time > Duration::from_nanos(0));
        let naive = measure(&benchmark, &CompilerUnderTest::Initial, &params, 1);
        assert!(naive.correct);
        assert!(m.ct_ct_muls <= naive.ct_ct_muls);
    }

    #[test]
    fn coyote_measurements_work_end_to_end() {
        let benchmark = chehab_benchsuite::by_id("Linear Reg. 4").unwrap();
        let params = BfvParameters::insecure_test();
        let config = coyote_baseline::CoyoteConfig::fast();
        let m = measure(&benchmark, &CompilerUnderTest::Coyote(config), &params, 1);
        assert!(m.correct);
        assert!(m.rotations > 0 || m.ct_pt_muls > 0);
    }
}
