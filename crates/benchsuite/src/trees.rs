//! The randomly generated irregular polynomials `tree-X-Y-Z`
//! (Section 7.2, Appendix H.3).
//!
//! * `X` controls the tree shape: `100` means full and complete, lower values
//!   make the tree sparse and imbalanced (many operations have a leaf input).
//! * `Y` controls operation homogeneity: `100` means all operations are the
//!   same (multiplication), `50` gives a 50/50 mix of additions and
//!   multiplications.
//! * `Z` is the depth of the tree.
//!
//! Generation is deterministic: each named instance uses a seed derived from
//! its parameters, so every run of the harness evaluates the same circuits.

use crate::benchmark::{Benchmark, Suite};
use chehab_ir::{BinOp, Expr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Parameters of one `tree-X-Y-Z` instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeParams {
    /// Fullness percentage `X` (100 = full and complete).
    pub fullness: u32,
    /// Homogeneity percentage `Y` (100 = all multiplications).
    pub homogeneity: u32,
    /// Tree depth `Z`.
    pub depth: usize,
}

impl TreeParams {
    /// The benchmark label, e.g. `"100-50-10"`.
    pub fn label(&self) -> String {
        format!("{}-{}-{}", self.fullness, self.homogeneity, self.depth)
    }
}

struct TreeBuilder {
    rng: StdRng,
    params: TreeParams,
    next_leaf: usize,
}

impl TreeBuilder {
    fn leaf(&mut self) -> Expr {
        let id = self.next_leaf;
        self.next_leaf += 1;
        Expr::ct(format!("x_{id}"))
    }

    fn op(&mut self) -> BinOp {
        if self.rng.gen_range(0..100) < self.params.homogeneity {
            BinOp::Mul
        } else {
            BinOp::Add
        }
    }

    fn build(&mut self, depth: usize) -> Expr {
        if depth == 0 {
            return self.leaf();
        }
        let op = self.op();
        // In a full tree both children recurse to the next level. In sparse
        // trees a child collapses to a leaf with probability growing as the
        // fullness drops, producing the imbalanced chains Coyote's stress
        // test is about.
        let collapse_pct = 100 - self.params.fullness.min(100);
        let left = if self.rng.gen_range(0..100) < collapse_pct {
            self.leaf()
        } else {
            self.build(depth - 1)
        };
        let right = if self.rng.gen_range(0..100) < collapse_pct {
            self.leaf()
        } else {
            self.build(depth - 1)
        };
        Expr::Bin(op, Box::new(left), Box::new(right))
    }
}

/// Generates the `tree-X-Y-Z` benchmark for the given parameters.
pub fn tree(params: TreeParams) -> Benchmark {
    let seed = 0xC4E4AB
        ^ (u64::from(params.fullness) << 32)
        ^ (u64::from(params.homogeneity) << 16)
        ^ params.depth as u64;
    let mut builder = TreeBuilder {
        rng: StdRng::seed_from_u64(seed),
        params,
        next_leaf: 0,
    };
    let program = builder.build(params.depth);
    Benchmark::new("Tree", &params.label(), Suite::RandomTree, program)
}

/// The six `tree-X-Y-Z` instances evaluated in the paper.
pub fn suite() -> Vec<Benchmark> {
    [
        TreeParams {
            fullness: 50,
            homogeneity: 50,
            depth: 5,
        },
        TreeParams {
            fullness: 50,
            homogeneity: 50,
            depth: 10,
        },
        TreeParams {
            fullness: 100,
            homogeneity: 50,
            depth: 5,
        },
        TreeParams {
            fullness: 100,
            homogeneity: 50,
            depth: 10,
        },
        TreeParams {
            fullness: 100,
            homogeneity: 100,
            depth: 5,
        },
        TreeParams {
            fullness: 100,
            homogeneity: 100,
            depth: 10,
        },
    ]
    .into_iter()
    .map(tree)
    .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::{circuit_depth, count_ops};

    #[test]
    fn full_trees_are_complete() {
        let b = tree(TreeParams {
            fullness: 100,
            homogeneity: 50,
            depth: 5,
        });
        assert_eq!(circuit_depth(b.program()), 5);
        let counts = count_ops(b.program());
        assert_eq!(
            counts.scalar_mul_ct_ct + counts.scalar_add_sub,
            31,
            "2^5 - 1 operations"
        );
    }

    #[test]
    fn homogeneous_trees_are_all_multiplications() {
        let b = tree(TreeParams {
            fullness: 100,
            homogeneity: 100,
            depth: 5,
        });
        let counts = count_ops(b.program());
        assert_eq!(counts.scalar_add_sub, 0);
        assert_eq!(counts.scalar_mul_ct_ct, 31);
    }

    #[test]
    fn sparse_trees_are_smaller_than_full_trees() {
        let sparse = tree(TreeParams {
            fullness: 50,
            homogeneity: 50,
            depth: 10,
        });
        let full = tree(TreeParams {
            fullness: 100,
            homogeneity: 50,
            depth: 10,
        });
        assert!(sparse.program().node_count() < full.program().node_count() / 2);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = TreeParams {
            fullness: 100,
            homogeneity: 50,
            depth: 10,
        };
        assert_eq!(tree(p).program(), tree(p).program());
    }

    #[test]
    fn suite_has_the_six_paper_instances() {
        let s = suite();
        assert_eq!(s.len(), 6);
        assert!(s.iter().any(|b| b.id() == "Tree 100-100-10"));
        assert!(s.iter().any(|b| b.id() == "Tree 50-50-5"));
    }

    #[test]
    fn deep_full_trees_are_large() {
        let b = tree(TreeParams {
            fullness: 100,
            homogeneity: 50,
            depth: 10,
        });
        let counts = count_ops(b.program());
        assert_eq!(counts.scalar_mul_ct_ct + counts.scalar_add_sub, 1023);
    }
}
