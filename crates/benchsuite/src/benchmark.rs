//! The [`Benchmark`] type: a named, sized kernel expressed as unvectorized
//! (scalar) CHEHAB IR, plus a canonical input assignment used by correctness
//! checks.

use chehab_ir::{Env, Expr, Ty};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Which benchmark suite a kernel belongs to (Section 7.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// Kernels used to evaluate Porcupine: image filters and ML building blocks.
    Porcupine,
    /// Kernels used to evaluate Coyote: matrix multiplication, sorting, max.
    Coyote,
    /// Randomly generated irregular polynomials (`tree-X-Y-Z`).
    RandomTree,
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Suite::Porcupine => write!(f, "Porcupine"),
            Suite::Coyote => write!(f, "Coyote"),
            Suite::RandomTree => write!(f, "RandomTree"),
        }
    }
}

/// A single benchmark instance: an unvectorized program plus metadata.
#[derive(Debug, Clone)]
pub struct Benchmark {
    name: String,
    size_label: String,
    suite: Suite,
    program: Expr,
}

impl Benchmark {
    /// Creates a benchmark from its parts.
    ///
    /// # Panics
    ///
    /// Panics if the program does not type-check (benchmarks are embedded in
    /// the crate, so this indicates a programming error).
    pub fn new(name: &str, size_label: &str, suite: Suite, program: Expr) -> Self {
        assert!(
            program.is_well_typed(),
            "benchmark {name} {size_label} is ill-typed"
        );
        Benchmark {
            name: name.to_string(),
            size_label: size_label.to_string(),
            suite,
            program,
        }
    }

    /// The kernel's name (e.g. `"Dot Product"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instance label (e.g. `"32"` or `"3x3"`).
    pub fn size_label(&self) -> &str {
        &self.size_label
    }

    /// The full identifier as it appears in the paper's figures
    /// (e.g. `"Dot Product 32"`).
    pub fn id(&self) -> String {
        format!("{} {}", self.name, self.size_label)
    }

    /// The suite the kernel belongs to.
    pub fn suite(&self) -> Suite {
        self.suite
    }

    /// The unvectorized program.
    pub fn program(&self) -> &Expr {
        &self.program
    }

    /// Number of live output slots of the program (1 for scalar kernels).
    pub fn output_slots(&self) -> usize {
        self.program.ty().map(Ty::slots).unwrap_or(1)
    }

    /// Builds a deterministic input assignment for correctness checks:
    /// every input variable is bound to a small pseudo-random value derived
    /// from `seed`.
    pub fn input_env(&self, seed: u64) -> Env {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
        let mut env = Env::new();
        env.bind_all(&self.program, |_| rng.gen_range(0..=16));
        env
    }

    /// Builds an input assignment restricted to binary values (used by the
    /// Hamming-distance style kernels whose semantics assume bits).
    pub fn binary_input_env(&self, seed: u64) -> Env {
        let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
        let mut env = Env::new();
        env.bind_all(&self.program, |_| i64::from(rng.gen_bool(0.5)));
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::evaluate;

    #[test]
    fn id_combines_name_and_size() {
        let b = Benchmark::new(
            "Dot Product",
            "4",
            Suite::Porcupine,
            chehab_ir::parse("(+ a b)").unwrap(),
        );
        assert_eq!(b.id(), "Dot Product 4");
        assert_eq!(b.suite(), Suite::Porcupine);
        assert_eq!(b.output_slots(), 1);
    }

    #[test]
    fn input_env_binds_every_variable() {
        let program = chehab_ir::parse("(Vec (+ x0 y0) (+ x1 y1))").unwrap();
        let b = Benchmark::new("Test", "2", Suite::Coyote, program);
        let env = b.input_env(1);
        assert!(evaluate(b.program(), &env).is_ok());
        assert_eq!(b.output_slots(), 2);
    }

    #[test]
    fn input_env_is_deterministic_per_seed() {
        let program = chehab_ir::parse("(+ a (* b c))").unwrap();
        let b = Benchmark::new("Test", "1", Suite::Coyote, program);
        assert_eq!(b.input_env(3).get("a"), b.input_env(3).get("a"));
    }

    #[test]
    #[should_panic(expected = "ill-typed")]
    fn ill_typed_benchmarks_are_rejected() {
        let bad = Expr::vec_add(Expr::ct("a"), Expr::ct("b"));
        let _ = Benchmark::new("Bad", "1", Suite::Porcupine, bad);
    }
}
