//! The Coyote benchmark suite (Section 7.2): matrix multiplication plus the
//! unstructured `Max` and `Sort` kernels.
//!
//! `Max` and `Sort` cannot be expressed with branches in FHE; like Coyote,
//! they are arithmetic circuits whose *structure* mirrors comparison-based
//! selection: every element is combined with every other element through
//! multiplication chains, giving the quadratic multiplication counts and the
//! linearly growing multiplicative depth reported in Table 6. The concrete
//! combining polynomial is a surrogate (documented in DESIGN.md); compiler
//! correctness is always checked against the IR interpreter, so the exact
//! function computed is irrelevant to the evaluation.

use crate::benchmark::{Benchmark, Suite};
use chehab_ir::Expr;

fn ct(name: String) -> Expr {
    Expr::ct(name)
}

/// Matrix multiplication of two encrypted `k × k` matrices
/// (`C[i][j] = Σ_m A[i][m] · B[m][j]`), fully unrolled.
pub fn mat_mul(k: usize) -> Benchmark {
    let mut outputs = Vec::with_capacity(k * k);
    for i in 0..k {
        for j in 0..k {
            let terms: Vec<Expr> = (0..k)
                .map(|m| Expr::mul(ct(format!("a_{i}_{m}")), ct(format!("b_{m}_{j}"))))
                .collect();
            let mut iter = terms.into_iter();
            let first = iter.next().expect("k >= 1");
            outputs.push(iter.fold(first, Expr::add));
        }
    }
    Benchmark::new(
        "Mat. Mul.",
        &format!("{k}x{k}"),
        Suite::Coyote,
        Expr::Vec(outputs),
    )
}

/// The `Max` kernel over `n` encrypted values: an unstructured selection
/// circuit where every element is weighted by a chain product over its
/// pairwise differences with every other element,
/// `Σ_i x_i · Π_{j≠i} (x_i - x_j)`.
pub fn max(n: usize) -> Benchmark {
    let xs: Vec<Expr> = (0..n).map(|i| ct(format!("x_{i}"))).collect();
    let mut terms = Vec::with_capacity(n);
    for i in 0..n {
        let mut product: Option<Expr> = None;
        for (j, xj) in xs.iter().enumerate() {
            if i == j {
                continue;
            }
            let diff = Expr::sub(xs[i].clone(), xj.clone());
            product = Some(match product {
                None => diff,
                Some(p) => Expr::mul(p, diff),
            });
        }
        let weight = product.expect("n >= 2");
        terms.push(Expr::mul(xs[i].clone(), weight));
    }
    let mut iter = terms.into_iter();
    let first = iter.next().expect("n >= 1");
    let program = iter.fold(first, Expr::add);
    Benchmark::new("Max", &n.to_string(), Suite::Coyote, program)
}

/// The `Sort` kernel over `n` encrypted values (the tree-based sorting
/// circuit of Malik et al.): pairwise "comparison" terms
/// `c_{ij} = (x_i - x_j)²` feed, for every output rank `k`, a selection sum
/// `out_k = Σ_i x_i · Π_{j≠i} (c_{ij} + k)`.
pub fn sort(n: usize) -> Benchmark {
    let xs: Vec<Expr> = (0..n).map(|i| ct(format!("x_{i}"))).collect();
    let comparison = |i: usize, j: usize| {
        let d = Expr::sub(xs[i].clone(), xs[j].clone());
        Expr::mul(d.clone(), d)
    };
    let mut outputs = Vec::with_capacity(n);
    for k in 0..n {
        let mut terms = Vec::with_capacity(n);
        for (i, x) in xs.iter().enumerate() {
            let mut product: Option<Expr> = None;
            for j in 0..n {
                if i == j {
                    continue;
                }
                let c = Expr::add(comparison(i.min(j), i.max(j)), Expr::constant(k as i64));
                product = Some(match product {
                    None => c,
                    Some(p) => Expr::mul(p, c),
                });
            }
            terms.push(Expr::mul(x.clone(), product.expect("n >= 2")));
        }
        let mut iter = terms.into_iter();
        let first = iter.next().expect("n >= 1");
        outputs.push(iter.fold(first, Expr::add));
    }
    Benchmark::new("Sort", &n.to_string(), Suite::Coyote, Expr::Vec(outputs))
}

/// The full Coyote suite at the instance sizes used in the paper.
pub fn suite() -> Vec<Benchmark> {
    let mut out = Vec::new();
    for k in [3, 4, 5] {
        out.push(mat_mul(k));
    }
    for n in [3, 4, 5] {
        out.push(max(n));
    }
    for n in [3, 4] {
        out.push(sort(n));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::{count_ops, evaluate, multiplicative_depth, Value};

    #[test]
    fn mat_mul_counts_match_the_definition() {
        let b = mat_mul(3);
        let counts = count_ops(b.program());
        assert_eq!(counts.scalar_mul_ct_ct, 27);
        assert_eq!(counts.scalar_add_sub, 18);
        assert_eq!(multiplicative_depth(b.program()), 1);
        assert_eq!(b.output_slots(), 9);
    }

    #[test]
    fn mat_mul_evaluates_like_a_matrix_product() {
        let b = mat_mul(2);
        let mut env = chehab_ir::Env::new();
        // A = [[1,2],[3,4]], B = [[5,6],[7,8]]  ->  C = [[19,22],[43,50]].
        let a = [[1, 2], [3, 4]];
        let bm = [[5, 6], [7, 8]];
        for i in 0..2 {
            for j in 0..2 {
                env.bind(format!("a_{i}_{j}"), a[i][j]);
                env.bind(format!("b_{i}_{j}"), bm[i][j]);
            }
        }
        assert_eq!(
            evaluate(b.program(), &env).unwrap(),
            Value::Vector(vec![19, 22, 43, 50])
        );
    }

    #[test]
    fn max_has_quadratic_multiplications_and_linear_depth() {
        for n in [3usize, 4, 5] {
            let b = max(n);
            let counts = count_ops(b.program());
            assert_eq!(
                counts.scalar_mul_ct_ct,
                n * (n - 1),
                "Max {n} multiplications"
            );
            assert_eq!(multiplicative_depth(b.program()), n - 1, "Max {n} depth");
        }
    }

    #[test]
    fn sort_produces_one_output_per_rank() {
        let b = sort(3);
        assert_eq!(b.output_slots(), 3);
        assert!(multiplicative_depth(b.program()) >= 3);
        assert!(count_ops(b.program()).scalar_mul_ct_ct >= 9);
    }

    #[test]
    fn sort_four_is_substantially_larger_than_sort_three() {
        let three = count_ops(sort(3).program()).scalar_mul_ct_ct;
        let four = count_ops(sort(4).program()).scalar_mul_ct_ct;
        assert!(four > 2 * three);
    }

    #[test]
    fn suite_contains_all_instances() {
        let s = suite();
        assert_eq!(s.len(), 8);
        assert!(s.iter().all(|b| b.suite() == Suite::Coyote));
        assert!(s.iter().any(|b| b.id() == "Sort 4"));
        assert!(s.iter().any(|b| b.id() == "Max 5"));
    }
}
