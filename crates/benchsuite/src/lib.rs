//! # chehab-benchsuite
//!
//! The benchmark kernels of the CHEHAB RL evaluation (Section 7.2):
//!
//! * the **Porcupine** suite — image filters (Box Blur, Gx, Gy, Roberts
//!   Cross) and ML building blocks (Dot Product, Hamming Distance, L2
//!   Distance, Linear and Polynomial Regression), each at several input
//!   sizes;
//! * the **Coyote** suite — Matrix Multiplication, `Max`, and `Sort`;
//! * the **randomly generated irregular polynomials** `tree-X-Y-Z`.
//!
//! Every benchmark is an unvectorized scalar IR program, exactly what the
//! CHEHAB DSL front end emits before optimization; the compilers under test
//! (CHEHAB RL, the greedy CHEHAB baseline, the Coyote-style baseline) all
//! start from the same programs.
//!
//! ## Example
//!
//! ```
//! use chehab_benchsuite::{full_suite, porcupine};
//!
//! let dot = porcupine::dot_product(8);
//! assert_eq!(dot.id(), "Dot Product 8");
//! assert_eq!(full_suite().len(), 46);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod benchmark;
pub mod coyote_kernels;
pub mod porcupine;
pub mod trees;

pub use benchmark::{Benchmark, Suite};

/// The full 46-instance benchmark suite of the paper, in the order of
/// Table 6: Porcupine kernels, then the Coyote kernels, then the random
/// polynomial trees.
pub fn full_suite() -> Vec<Benchmark> {
    let mut out = porcupine::suite();
    out.extend(coyote_kernels::suite());
    out.extend(trees::suite());
    out
}

/// Looks a benchmark up by its full identifier (e.g. `"Dot Product 32"`).
pub fn by_id(id: &str) -> Option<Benchmark> {
    full_suite().into_iter().find(|b| b.id() == id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_suite_has_45_instances_with_unique_ids() {
        let suite = full_suite();
        assert_eq!(suite.len(), 46);
        let ids: std::collections::HashSet<_> = suite.iter().map(Benchmark::id).collect();
        assert_eq!(ids.len(), suite.len());
    }

    #[test]
    fn lookup_by_id_finds_known_benchmarks() {
        assert!(by_id("Dot Product 32").is_some());
        assert!(by_id("Tree 100-100-10").is_some());
        assert!(by_id("Nonexistent 7").is_none());
    }

    #[test]
    fn every_benchmark_type_checks_and_evaluates() {
        for b in full_suite() {
            let env = b.input_env(7);
            assert!(
                chehab_ir::evaluate(b.program(), &env).is_ok(),
                "benchmark {} failed to evaluate",
                b.id()
            );
        }
    }
}
