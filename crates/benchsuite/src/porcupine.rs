//! The Porcupine benchmark suite (Section 7.2): image-processing filters and
//! machine-learning building blocks, expressed as fully unrolled scalar IR
//! exactly the way the CHEHAB DSL front end would emit them.

use crate::benchmark::{Benchmark, Suite};
use chehab_ir::Expr;

fn ct(name: String) -> Expr {
    Expr::ct(name)
}

fn pixel(prefix: &str, row: usize, col: usize) -> Expr {
    ct(format!("{prefix}_{row}_{col}"))
}

fn chain_sum(terms: Vec<Expr>) -> Expr {
    let mut iter = terms.into_iter();
    let first = iter.next().expect("at least one term");
    iter.fold(first, Expr::add)
}

/// Box blur: a 3×3 box filter over a `k × k` image with zero padding; one
/// output per pixel, each summing its in-bounds neighbours.
pub fn box_blur(k: usize) -> Benchmark {
    let mut outputs = Vec::with_capacity(k * k);
    for i in 0..k {
        for j in 0..k {
            let mut terms = Vec::new();
            for di in -1i64..=1 {
                for dj in -1i64..=1 {
                    let (r, c) = (i as i64 + di, j as i64 + dj);
                    if r >= 0 && c >= 0 && (r as usize) < k && (c as usize) < k {
                        terms.push(pixel("img", r as usize, c as usize));
                    }
                }
            }
            outputs.push(chain_sum(terms));
        }
    }
    Benchmark::new(
        "Box Blur",
        &format!("{k}x{k}"),
        Suite::Porcupine,
        Expr::Vec(outputs),
    )
}

/// Horizontal Sobel gradient (`Gx`) over a `k × k` image with zero padding.
pub fn gx(k: usize) -> Benchmark {
    sobel(
        k,
        "Gx",
        &[
            (-1, -1, -1),
            (-1, 1, 1),
            (0, -1, -2),
            (0, 1, 2),
            (1, -1, -1),
            (1, 1, 1),
        ],
    )
}

/// Vertical Sobel gradient (`Gy`) over a `k × k` image with zero padding.
pub fn gy(k: usize) -> Benchmark {
    sobel(
        k,
        "Gy",
        &[
            (-1, -1, -1),
            (-1, 0, -2),
            (-1, 1, -1),
            (1, -1, 1),
            (1, 0, 2),
            (1, 1, 1),
        ],
    )
}

/// Shared Sobel builder: each output is a weighted sum of neighbours, the
/// weights being plaintext constants (±1, ±2).
fn sobel(k: usize, name: &str, taps: &[(i64, i64, i64)]) -> Benchmark {
    let mut outputs = Vec::with_capacity(k * k);
    for i in 0..k {
        for j in 0..k {
            let mut terms = Vec::new();
            for &(di, dj, w) in taps {
                let (r, c) = (i as i64 + di, j as i64 + dj);
                if r >= 0 && c >= 0 && (r as usize) < k && (c as usize) < k {
                    let p = pixel("img", r as usize, c as usize);
                    let term = match w {
                        1 => p,
                        -1 => Expr::neg(p),
                        w if w > 0 => Expr::mul(p, Expr::constant(w)),
                        w => Expr::neg(Expr::mul(p, Expr::constant(-w))),
                    };
                    terms.push(term);
                }
            }
            // Corner pixels of tiny images may have no in-bounds taps.
            if terms.is_empty() {
                terms.push(Expr::constant(0));
            }
            outputs.push(chain_sum(terms));
        }
    }
    Benchmark::new(
        name,
        &format!("{k}x{k}"),
        Suite::Porcupine,
        Expr::Vec(outputs),
    )
}

/// Roberts cross edge detector over a `k × k` image: per pixel,
/// `(I[i,j] - I[i+1,j+1])² + (I[i+1,j] - I[i,j+1])²` (valid region extended
/// by clamping at the border).
pub fn roberts_cross(k: usize) -> Benchmark {
    let clamp = |x: usize| x.min(k - 1);
    let mut outputs = Vec::with_capacity(k * k);
    for i in 0..k {
        for j in 0..k {
            let d1 = Expr::sub(pixel("img", i, j), pixel("img", clamp(i + 1), clamp(j + 1)));
            let d2 = Expr::sub(pixel("img", clamp(i + 1), j), pixel("img", i, clamp(j + 1)));
            outputs.push(Expr::add(
                Expr::mul(d1.clone(), d1),
                Expr::mul(d2.clone(), d2),
            ));
        }
    }
    Benchmark::new(
        "Rob. Cross",
        &format!("{k}x{k}"),
        Suite::Porcupine,
        Expr::Vec(outputs),
    )
}

/// Dot product of two length-`n` encrypted vectors: `Σ a_i · b_i`.
pub fn dot_product(n: usize) -> Benchmark {
    let terms: Vec<Expr> = (0..n)
        .map(|i| Expr::mul(ct(format!("a_{i}")), ct(format!("b_{i}"))))
        .collect();
    Benchmark::new(
        "Dot Product",
        &n.to_string(),
        Suite::Porcupine,
        chain_sum(terms),
    )
}

/// Hamming distance between two length-`n` binary vectors:
/// `Σ (a_i + b_i - 2·a_i·b_i)`.
pub fn hamming_distance(n: usize) -> Benchmark {
    let terms: Vec<Expr> = (0..n)
        .map(|i| {
            let (a, b) = (ct(format!("a_{i}")), ct(format!("b_{i}")));
            Expr::sub(
                Expr::add(a.clone(), b.clone()),
                Expr::mul(Expr::constant(2), Expr::mul(a, b)),
            )
        })
        .collect();
    Benchmark::new(
        "Hamm. Dist.",
        &n.to_string(),
        Suite::Porcupine,
        chain_sum(terms),
    )
}

/// Squared L2 distance between two length-`n` vectors: `Σ (a_i - b_i)²`.
pub fn l2_distance(n: usize) -> Benchmark {
    let terms: Vec<Expr> = (0..n)
        .map(|i| {
            let d = Expr::sub(ct(format!("a_{i}")), ct(format!("b_{i}")));
            Expr::mul(d.clone(), d)
        })
        .collect();
    Benchmark::new(
        "L2 Distance",
        &n.to_string(),
        Suite::Porcupine,
        chain_sum(terms),
    )
}

/// Linear-regression residuals over `n` points: `e_i = y_i - (w·x_i + b)`,
/// with encrypted model parameters `w`, `b`.
pub fn linear_regression(n: usize) -> Benchmark {
    let (w, b) = (ct("w".into()), ct("b".into()));
    let outputs: Vec<Expr> = (0..n)
        .map(|i| {
            let (x, y) = (ct(format!("x_{i}")), ct(format!("y_{i}")));
            Expr::sub(y, Expr::add(Expr::mul(w.clone(), x), b.clone()))
        })
        .collect();
    Benchmark::new(
        "Linear Reg.",
        &n.to_string(),
        Suite::Porcupine,
        Expr::Vec(outputs),
    )
}

/// Polynomial-regression residuals over `n` points:
/// `e_i = y_i - (c0 + c1·x_i + c2·x_i²)`, with encrypted coefficients.
pub fn polynomial_regression(n: usize) -> Benchmark {
    let (c0, c1, c2) = (ct("c0".into()), ct("c1".into()), ct("c2".into()));
    let outputs: Vec<Expr> = (0..n)
        .map(|i| {
            let (x, y) = (ct(format!("x_{i}")), ct(format!("y_{i}")));
            let prediction = Expr::add(
                Expr::add(c0.clone(), Expr::mul(c1.clone(), x.clone())),
                Expr::mul(c2.clone(), Expr::mul(x.clone(), x)),
            );
            Expr::sub(y, prediction)
        })
        .collect();
    Benchmark::new(
        "Poly. Reg.",
        &n.to_string(),
        Suite::Porcupine,
        Expr::Vec(outputs),
    )
}

/// The full Porcupine suite at the instance sizes used in the paper.
pub fn suite() -> Vec<Benchmark> {
    let mut out = Vec::new();
    for k in [3, 4, 5] {
        out.push(box_blur(k));
    }
    for n in [4, 8, 16, 32] {
        out.push(dot_product(n));
    }
    for n in [4, 8, 16, 32] {
        out.push(hamming_distance(n));
    }
    for n in [4, 8, 16, 32] {
        out.push(l2_distance(n));
    }
    for n in [4, 8, 16, 32] {
        out.push(linear_regression(n));
    }
    for n in [4, 8, 16, 32] {
        out.push(polynomial_regression(n));
    }
    for k in [3, 4, 5] {
        out.push(gx(k));
        out.push(gy(k));
        out.push(roberts_cross(k));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_ir::{circuit_depth, count_ops, evaluate, multiplicative_depth, Value};

    #[test]
    fn dot_product_counts_match_the_definition() {
        let b = dot_product(8);
        let counts = count_ops(b.program());
        assert_eq!(counts.scalar_mul_ct_ct, 8);
        assert_eq!(counts.scalar_add_sub, 7);
        assert_eq!(multiplicative_depth(b.program()), 1);
    }

    #[test]
    fn dot_product_evaluates_correctly() {
        let b = dot_product(4);
        let mut env = chehab_ir::Env::new();
        for i in 0..4 {
            env.bind(format!("a_{i}"), i as i64 + 1);
            env.bind(format!("b_{i}"), 10);
        }
        // 1*10 + 2*10 + 3*10 + 4*10 = 100.
        assert_eq!(evaluate(b.program(), &env).unwrap(), Value::Scalar(100));
    }

    #[test]
    fn l2_distance_has_multiplicative_depth_one() {
        let b = l2_distance(16);
        assert_eq!(multiplicative_depth(b.program()), 1);
        assert_eq!(count_ops(b.program()).scalar_mul_ct_ct, 16);
    }

    #[test]
    fn hamming_distance_counts_zero_on_equal_inputs() {
        let b = hamming_distance(8);
        let mut env = chehab_ir::Env::new();
        for i in 0..8 {
            env.bind(format!("a_{i}"), 1);
            env.bind(format!("b_{i}"), 1);
        }
        assert_eq!(evaluate(b.program(), &env).unwrap(), Value::Scalar(0));
        let mut env = chehab_ir::Env::new();
        for i in 0..8 {
            env.bind(format!("a_{i}"), i64::from(i < 3));
            env.bind(format!("b_{i}"), 0);
        }
        assert_eq!(evaluate(b.program(), &env).unwrap(), Value::Scalar(3));
    }

    #[test]
    fn box_blur_output_count_and_depth() {
        let b = box_blur(3);
        assert_eq!(b.output_slots(), 9);
        assert!(circuit_depth(b.program()) <= 9);
        assert_eq!(
            count_ops(b.program()).scalar_mul_ct_ct,
            0,
            "box blur is additions only"
        );
        // Centre output of a 3x3 image sums all nine pixels.
        let env = b.input_env(1);
        let out = evaluate(b.program(), &env).unwrap();
        let slots = out.slots();
        let all: u64 = (0..3)
            .flat_map(|i| (0..3).map(move |j| (i, j)))
            .map(|(i, j)| env.get(&format!("img_{i}_{j}")).unwrap())
            .sum();
        assert_eq!(slots[4], all % chehab_ir::DEFAULT_PLAIN_MODULUS);
    }

    #[test]
    fn sobel_kernels_use_plaintext_weights() {
        for b in [gx(4), gy(4)] {
            let counts = count_ops(b.program());
            assert_eq!(
                counts.scalar_mul_ct_ct,
                0,
                "{}: weights are plaintext",
                b.id()
            );
            assert!(counts.scalar_mul_ct_pt > 0);
            assert_eq!(b.output_slots(), 16);
        }
    }

    #[test]
    fn roberts_cross_squares_differences() {
        let b = roberts_cross(3);
        let counts = count_ops(b.program());
        assert!(counts.scalar_mul_ct_ct >= 9);
        assert_eq!(multiplicative_depth(b.program()), 1);
    }

    #[test]
    fn regressions_have_expected_multiplicative_depth() {
        assert_eq!(multiplicative_depth(linear_regression(8).program()), 1);
        assert_eq!(multiplicative_depth(polynomial_regression(8).program()), 2);
    }

    #[test]
    fn suite_contains_all_instances() {
        let s = suite();
        assert_eq!(s.len(), 3 + 4 * 5 + 3 * 3);
        assert!(s.iter().all(|b| b.suite() == Suite::Porcupine));
        assert!(s.iter().any(|b| b.id() == "Poly. Reg. 32"));
        assert!(s.iter().any(|b| b.id() == "Rob. Cross 5x5"));
    }
}
