//! Proximal Policy Optimization (Section 7.1, Appendix G): rollout storage,
//! generalized advantage estimation, and the clipped-surrogate update.

use crate::env::Action;
use crate::policy::Policy;
use chehab_nn::{Adam, Module, Tensor};
use serde::{Deserialize, Serialize};

/// PPO hyper-parameters (defaults follow Table 4 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PpoConfig {
    /// Adam learning rate.
    pub learning_rate: f32,
    /// Discount factor `γ`.
    pub gamma: f64,
    /// GAE parameter `λ`.
    pub gae_lambda: f64,
    /// Clip range `ε`.
    pub clip_range: f64,
    /// Number of optimization epochs per update.
    pub update_epochs: usize,
    /// Environment steps collected per update.
    pub steps_per_update: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Entropy bonus coefficient.
    pub entropy_coefficient: f32,
    /// Value-loss coefficient.
    pub value_coefficient: f32,
    /// Global gradient-norm clip.
    pub max_grad_norm: f32,
}

impl Default for PpoConfig {
    fn default() -> Self {
        PpoConfig {
            learning_rate: 1e-4,
            gamma: 0.99,
            gae_lambda: 0.95,
            clip_range: 0.2,
            update_epochs: 20,
            steps_per_update: 2048,
            batch_size: 256,
            entropy_coefficient: 0.01,
            value_coefficient: 0.5,
            max_grad_norm: 0.5,
        }
    }
}

impl PpoConfig {
    /// A reduced configuration for the scaled-down experiment harness and
    /// tests (fewer steps per update, fewer epochs).
    pub fn small() -> Self {
        PpoConfig {
            steps_per_update: 128,
            batch_size: 32,
            update_epochs: 4,
            ..PpoConfig::default()
        }
    }
}

/// One stored transition.
#[derive(Debug, Clone)]
pub struct Transition {
    /// Observation token ids.
    pub observation: Vec<usize>,
    /// The action taken.
    pub action: Action,
    /// Rule applicability mask at the time of the action.
    pub rule_mask: Vec<bool>,
    /// Number of match locations of the chosen rule (0 for `END`).
    pub location_count: usize,
    /// Log-probability of the action under the behaviour policy.
    pub log_prob: f32,
    /// Critic value estimate of the observation.
    pub value: f32,
    /// Reward received.
    pub reward: f64,
    /// Whether the episode terminated after this transition.
    pub done: bool,
}

/// A rollout buffer with computed advantages and returns.
#[derive(Debug, Default)]
pub struct RolloutBuffer {
    /// Stored transitions in collection order.
    pub transitions: Vec<Transition>,
    advantages: Vec<f64>,
    returns: Vec<f64>,
}

impl RolloutBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a transition.
    pub fn push(&mut self, transition: Transition) {
        self.transitions.push(transition);
    }

    /// Number of stored transitions.
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Returns `true` if the buffer holds no transitions.
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Clears the buffer.
    pub fn clear(&mut self) {
        self.transitions.clear();
        self.advantages.clear();
        self.returns.clear();
    }

    /// Computes generalized advantage estimates and discounted returns.
    /// Episodes are delimited by the `done` flags; the value after a terminal
    /// state is zero.
    pub fn compute_advantages(&mut self, gamma: f64, lambda: f64) {
        let n = self.transitions.len();
        self.advantages = vec![0.0; n];
        self.returns = vec![0.0; n];
        let mut gae = 0.0;
        for i in (0..n).rev() {
            let t = &self.transitions[i];
            let next_value = if t.done || i + 1 >= n {
                0.0
            } else {
                f64::from(self.transitions[i + 1].value)
            };
            let next_non_terminal = if t.done { 0.0 } else { 1.0 };
            let delta = t.reward + gamma * next_value * next_non_terminal - f64::from(t.value);
            gae = delta + gamma * lambda * next_non_terminal * gae;
            self.advantages[i] = gae;
            self.returns[i] = gae + f64::from(t.value);
        }
        // Normalize advantages for stable updates.
        let mean = self.advantages.iter().sum::<f64>() / n.max(1) as f64;
        let var = self
            .advantages
            .iter()
            .map(|a| (a - mean).powi(2))
            .sum::<f64>()
            / n.max(1) as f64;
        let std = var.sqrt().max(1e-8);
        for a in &mut self.advantages {
            *a = (*a - mean) / std;
        }
    }

    /// The normalized advantage of transition `i`.
    pub fn advantage(&self, i: usize) -> f64 {
        self.advantages[i]
    }

    /// The discounted return of transition `i`.
    pub fn return_at(&self, i: usize) -> f64 {
        self.returns[i]
    }
}

/// Diagnostics of one PPO update.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct UpdateStats {
    /// Mean clipped-surrogate policy loss.
    pub policy_loss: f32,
    /// Mean value loss.
    pub value_loss: f32,
    /// Mean policy entropy.
    pub entropy: f32,
}

/// The PPO learner: owns the optimizer state for a policy.
#[derive(Debug)]
pub struct PpoLearner {
    config: PpoConfig,
    optimizer: Adam,
}

impl PpoLearner {
    /// Creates a learner for `policy`.
    pub fn new(policy: &Policy, config: PpoConfig) -> Self {
        let optimizer = Adam::new(policy.parameters(), config.learning_rate)
            .with_grad_clip(config.max_grad_norm);
        PpoLearner { config, optimizer }
    }

    /// The learner's configuration.
    pub fn config(&self) -> &PpoConfig {
        &self.config
    }

    /// Runs the clipped PPO update over a filled rollout buffer.
    pub fn update(&mut self, policy: &Policy, buffer: &mut RolloutBuffer) -> UpdateStats {
        buffer.compute_advantages(self.config.gamma, self.config.gae_lambda);
        let n = buffer.len();
        if n == 0 {
            return UpdateStats::default();
        }
        let mut stats = UpdateStats::default();
        let mut updates = 0usize;
        for _ in 0..self.config.update_epochs {
            let mut start = 0;
            while start < n {
                let end = (start + self.config.batch_size).min(n);
                let batch: Vec<usize> = (start..end).collect();
                let s = self.update_minibatch(policy, buffer, &batch);
                stats.policy_loss += s.policy_loss;
                stats.value_loss += s.value_loss;
                stats.entropy += s.entropy;
                updates += 1;
                start = end;
            }
        }
        if updates > 0 {
            stats.policy_loss /= updates as f32;
            stats.value_loss /= updates as f32;
            stats.entropy /= updates as f32;
        }
        stats
    }

    fn update_minibatch(
        &mut self,
        policy: &Policy,
        buffer: &RolloutBuffer,
        batch: &[usize],
    ) -> UpdateStats {
        policy.zero_grad();
        let mut policy_losses: Option<Tensor> = None;
        let mut value_losses: Option<Tensor> = None;
        let mut entropies: Option<Tensor> = None;
        for &i in batch {
            let t = &buffer.transitions[i];
            let eval = policy.evaluate(&t.observation, t.action, &t.rule_mask, t.location_count);
            let advantage = buffer.advantage(i) as f32;
            let ret = buffer.return_at(i) as f32;
            // ratio = exp(log_prob_new - log_prob_old)
            let old_log_prob = Tensor::constant(chehab_nn::Matrix::full(1, 1, t.log_prob));
            let ratio = eval.log_prob.sub(&old_log_prob).exp();
            let clipped = clamp_tensor(
                &ratio,
                1.0 - self.config.clip_range as f32,
                1.0 + self.config.clip_range as f32,
            );
            let advantage_t = Tensor::constant(chehab_nn::Matrix::full(1, 1, advantage));
            let unclipped_obj = ratio.mul(&advantage_t);
            let clipped_obj = clipped.mul(&advantage_t);
            let policy_loss = min_tensor(&unclipped_obj, &clipped_obj).scale(-1.0);
            let value_target = Tensor::constant(chehab_nn::Matrix::full(1, 1, ret));
            let value_diff = eval.value.sub(&value_target);
            let value_loss = value_diff.mul(&value_diff);
            policy_losses = Some(match policy_losses {
                None => policy_loss.clone(),
                Some(acc) => acc.add(&policy_loss),
            });
            value_losses = Some(match value_losses {
                None => value_loss.clone(),
                Some(acc) => acc.add(&value_loss),
            });
            entropies = Some(match entropies {
                None => eval.entropy.clone(),
                Some(acc) => acc.add(&eval.entropy),
            });
        }
        let count = batch.len().max(1) as f32;
        let policy_loss = policy_losses.expect("non-empty batch").scale(1.0 / count);
        let value_loss = value_losses.expect("non-empty batch").scale(1.0 / count);
        let entropy = entropies.expect("non-empty batch").scale(1.0 / count);
        let total = policy_loss
            .add(&value_loss.scale(self.config.value_coefficient))
            .sub(&entropy.scale(self.config.entropy_coefficient));
        total.backward();
        self.optimizer.step();
        UpdateStats {
            policy_loss: policy_loss.value().get(0, 0),
            value_loss: value_loss.value().get(0, 0),
            entropy: entropy.value().get(0, 0),
        }
    }
}

/// Element-wise clamp with straight-through gradient inside the interval.
fn clamp_tensor(x: &Tensor, low: f32, high: f32) -> Tensor {
    // clamp(x) = low + relu(x - low) - relu(x - high)
    let low_t = Tensor::constant(chehab_nn::Matrix::full(1, 1, low));
    let high_t = Tensor::constant(chehab_nn::Matrix::full(1, 1, high));
    low_t.add(&x.sub(&low_t).relu()).sub(&x.sub(&high_t).relu())
}

/// Element-wise minimum with subgradient routing to the smaller operand.
fn min_tensor(a: &Tensor, b: &Tensor) -> Tensor {
    // min(a, b) = a - relu(a - b)
    a.sub(&a.sub(b).relu())
}

#[cfg(test)]
mod tests {
    use super::*;
    use chehab_nn::Matrix;

    #[test]
    fn gae_computes_known_values_for_a_short_episode() {
        let mut buffer = RolloutBuffer::new();
        for (reward, value, done) in [(1.0, 0.5, false), (1.0, 0.5, false), (1.0, 0.5, true)] {
            buffer.push(Transition {
                observation: vec![0],
                action: Action::Stop,
                rule_mask: vec![true],
                location_count: 0,
                log_prob: -0.1,
                value,
                reward,
                done,
            });
        }
        buffer.compute_advantages(1.0, 1.0);
        // With gamma = lambda = 1 the (unnormalized) advantage of step 0 is
        // (r0 + r1 + r2) - v0 = 2.5; after normalization the ordering must be
        // preserved: earlier steps have larger advantages.
        assert!(buffer.advantage(0) > buffer.advantage(1));
        assert!(buffer.advantage(1) > buffer.advantage(2));
        assert!(buffer.return_at(0) > buffer.return_at(2));
    }

    #[test]
    fn advantages_are_normalized() {
        let mut buffer = RolloutBuffer::new();
        for i in 0..10 {
            buffer.push(Transition {
                observation: vec![0],
                action: Action::Stop,
                rule_mask: vec![true],
                location_count: 0,
                log_prob: -0.1,
                value: 0.0,
                reward: i as f64,
                done: i == 9,
            });
        }
        buffer.compute_advantages(0.99, 0.95);
        let mean: f64 = (0..10).map(|i| buffer.advantage(i)).sum::<f64>() / 10.0;
        assert!(mean.abs() < 1e-6);
    }

    #[test]
    fn ratio_exponential_matches_the_true_exponential() {
        for x in [-1.5f32, -0.2, 0.0, 0.3, 1.0] {
            let t = Tensor::parameter(Matrix::full(1, 1, x));
            let e = t.exp();
            assert!((e.value().get(0, 0) - x.exp()).abs() < 1e-3, "exp({x})");
            e.mean().backward();
            assert!((t.grad().get(0, 0) - x.exp()).abs() < 2e-2, "d exp({x})/dx");
        }
    }

    #[test]
    fn clamp_and_min_behave_like_their_scalar_counterparts() {
        for x in [-0.5f32, 0.9, 1.05, 1.5] {
            let t = Tensor::constant(Matrix::full(1, 1, x));
            let clamped = clamp_tensor(&t, 0.8, 1.2).value().get(0, 0);
            assert!((clamped - x.clamp(0.8, 1.2)).abs() < 1e-6);
        }
        let a = Tensor::constant(Matrix::full(1, 1, 0.7));
        let b = Tensor::constant(Matrix::full(1, 1, 0.3));
        assert!((min_tensor(&a, &b).value().get(0, 0) - 0.3).abs() < 1e-6);
    }

    #[test]
    fn default_hyperparameters_match_table_4() {
        let c = PpoConfig::default();
        assert_eq!(c.learning_rate, 1e-4);
        assert_eq!(c.gamma, 0.99);
        assert_eq!(c.gae_lambda, 0.95);
        assert_eq!(c.clip_range, 0.2);
        assert_eq!(c.update_epochs, 20);
        assert_eq!(c.steps_per_update, 2048);
        assert_eq!(c.batch_size, 256);
    }
}
