//! Reward shaping (Section 5.3.2): an immediate step reward equal to the
//! relative cost improvement, plus a terminal reward proportional to the
//! total end-to-end improvement.

use serde::{Deserialize, Serialize};

/// Configuration of the reward signal.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RewardConfig {
    /// Whether the step (immediate) reward is emitted.
    pub use_step_reward: bool,
    /// Whether the terminal reward is emitted at the end of the episode.
    pub use_terminal_reward: bool,
    /// Scale of the terminal reward (the paper multiplies the relative
    /// improvement by 100).
    pub terminal_scale: f64,
    /// Penalty for selecting an action that does not apply.
    pub invalid_penalty: f64,
}

impl Default for RewardConfig {
    fn default() -> Self {
        RewardConfig {
            use_step_reward: true,
            use_terminal_reward: true,
            terminal_scale: 100.0,
            invalid_penalty: -0.05,
        }
    }
}

impl RewardConfig {
    /// The step-only ablation configuration (Figure 9).
    pub fn step_only() -> Self {
        RewardConfig {
            use_terminal_reward: false,
            ..RewardConfig::default()
        }
    }

    /// `R_step = (C_t - C_{t+1}) / C_t`.
    pub fn step(&self, cost_before: f64, cost_after: f64) -> f64 {
        if !self.use_step_reward || cost_before <= 0.0 {
            return 0.0;
        }
        (cost_before - cost_after) / cost_before
    }

    /// `R_final = (C_initial - C_final) / C_initial × terminal_scale`.
    pub fn terminal(&self, initial_cost: f64, final_cost: f64) -> f64 {
        if !self.use_terminal_reward || initial_cost <= 0.0 {
            return 0.0;
        }
        (initial_cost - final_cost) / initial_cost * self.terminal_scale
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_reward_is_the_relative_improvement() {
        let r = RewardConfig::default();
        assert!((r.step(200.0, 150.0) - 0.25).abs() < 1e-12);
        assert!(
            r.step(100.0, 120.0) < 0.0,
            "cost increases give negative reward"
        );
        assert_eq!(
            r.step(0.0, 10.0),
            0.0,
            "degenerate zero-cost programs give no signal"
        );
    }

    #[test]
    fn terminal_reward_scales_the_total_improvement() {
        let r = RewardConfig::default();
        assert!((r.terminal(400.0, 100.0) - 75.0).abs() < 1e-12);
    }

    #[test]
    fn step_only_configuration_disables_the_terminal_reward() {
        let r = RewardConfig::step_only();
        assert_eq!(r.terminal(400.0, 100.0), 0.0);
        assert!(r.step(400.0, 100.0) > 0.0);
    }

    #[test]
    fn invalid_penalty_is_negative() {
        assert!(RewardConfig::default().invalid_penalty < 0.0);
    }
}
