//! The deployed agent: applying a trained policy to optimize a program at
//! compile time.
//!
//! At inference the agent rolls the policy out on the program's rewrite
//! environment; because the policy is stochastic, the agent can draw several
//! rollouts (plus one deterministic greedy rollout) and keep the best final
//! circuit — a cheap way to recover most of the quality of a long-trained
//! policy under the scaled-down training budgets used by the harness
//! (documented in EXPERIMENTS.md).

use crate::env::{EnvConfig, ObservationTokenizer, RewriteEnv};
use crate::policy::Policy;
use chehab_ir::Expr;
use chehab_trs::RewriteEngine;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::sync::Arc;

/// Configuration of compile-time rollouts.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Environment configuration (cost model, step limit).
    pub env: EnvConfig,
    /// Number of stochastic rollouts to draw in addition to the greedy one.
    pub sampled_rollouts: usize,
    /// RNG seed for the stochastic rollouts.
    pub seed: u64,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            env: EnvConfig::default(),
            sampled_rollouts: 4,
            seed: 0,
        }
    }
}

/// Result of optimizing one program with the agent.
#[derive(Debug, Clone)]
pub struct OptimizationOutcome {
    /// The best program found.
    pub optimized: Expr,
    /// Cost of the initial program under the agent's cost model.
    pub initial_cost: f64,
    /// Cost of the optimized program.
    pub final_cost: f64,
    /// Number of rewrite steps in the best rollout.
    pub steps: usize,
    /// Total rollouts performed (greedy + sampled).
    pub rollouts: usize,
}

impl OptimizationOutcome {
    /// Relative improvement achieved (0 means no improvement).
    pub fn improvement(&self) -> f64 {
        if self.initial_cost <= 0.0 {
            0.0
        } else {
            (self.initial_cost - self.final_cost) / self.initial_cost
        }
    }
}

/// A trained policy packaged for compile-time use.
#[derive(Debug)]
pub struct Agent {
    policy: Policy,
    engine: Arc<RewriteEngine>,
    tokenizer: Arc<ObservationTokenizer>,
    config: AgentConfig,
}

impl Agent {
    /// Wraps a trained policy.
    pub fn new(
        policy: Policy,
        engine: Arc<RewriteEngine>,
        tokenizer: Arc<ObservationTokenizer>,
        config: AgentConfig,
    ) -> Self {
        Agent {
            policy,
            engine,
            tokenizer,
            config,
        }
    }

    /// The underlying policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The rewrite engine whose catalog the policy was trained over.
    pub fn engine(&self) -> &Arc<RewriteEngine> {
        &self.engine
    }

    /// Optimizes a program: one deterministic (greedy) rollout plus
    /// `sampled_rollouts` stochastic rollouts; the cheapest final program wins.
    pub fn optimize(&self, program: &Expr) -> OptimizationOutcome {
        let initial_cost = self.config.env.cost_model.cost(program);
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut best: Option<(Expr, f64, usize)> = None;
        let rollouts = 1 + self.config.sampled_rollouts;
        for rollout in 0..rollouts {
            let deterministic = rollout == 0;
            let (candidate, steps) = self.rollout(program, deterministic, &mut rng);
            let cost = self.config.env.cost_model.cost(&candidate);
            if best
                .as_ref()
                .is_none_or(|(_, best_cost, _)| cost < *best_cost)
            {
                best = Some((candidate, cost, steps));
            }
        }
        let (optimized, final_cost, steps) = best.expect("at least one rollout");
        OptimizationOutcome {
            optimized,
            initial_cost,
            final_cost,
            steps,
            rollouts,
        }
    }

    fn rollout(&self, program: &Expr, deterministic: bool, rng: &mut StdRng) -> (Expr, usize) {
        let mut env = RewriteEnv::new(
            program.clone(),
            Arc::clone(&self.engine),
            Arc::clone(&self.tokenizer),
            self.config.env.clone(),
        );
        let mut best_seen = program.clone();
        let mut best_cost = env.initial_cost();
        while !env.is_finished() {
            let observation = env.observe();
            let rule_mask = env.rule_mask();
            let sample = self.policy.act(
                &observation,
                &rule_mask,
                |rule| env.location_count(rule),
                rng,
                deterministic,
            );
            env.step(sample.action);
            if env.current_cost() < best_cost {
                best_cost = env.current_cost();
                best_seen = env.current().clone();
            }
            // Deterministic rollouts can loop on cost-neutral rewrites; the
            // step limit in the environment bounds them.
        }
        (best_seen, env.steps_taken())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyConfig;
    use chehab_ir::{count_ops, equivalent_on_live_slots, parse, Env};
    use rand_chacha::ChaCha8Rng;

    fn untrained_agent(sampled_rollouts: usize) -> Agent {
        let engine = Arc::new(RewriteEngine::new());
        let tokenizer = Arc::new(ObservationTokenizer::ici());
        let mut rng = ChaCha8Rng::seed_from_u64(3);
        let policy = Policy::new(
            PolicyConfig::small(tokenizer.vocab_size(), engine.rule_count(), 8),
            &mut rng,
        );
        Agent::new(
            policy,
            engine,
            tokenizer,
            AgentConfig {
                env: EnvConfig {
                    max_steps: 20,
                    ..EnvConfig::default()
                },
                sampled_rollouts,
                seed: 7,
            },
        )
    }

    #[test]
    fn optimization_never_returns_a_worse_program() {
        let agent = untrained_agent(3);
        let program = parse("(Vec (+ a b) (+ c d))").unwrap();
        let outcome = agent.optimize(&program);
        assert!(outcome.final_cost <= outcome.initial_cost);
        assert!(outcome.improvement() >= 0.0);
        assert_eq!(outcome.rollouts, 4);
    }

    #[test]
    fn optimization_preserves_semantics() {
        let agent = untrained_agent(4);
        let program = parse("(Vec (* a b) (* c d) (* e f))").unwrap();
        let outcome = agent.optimize(&program);
        let mut env = Env::new();
        env.bind_all(&program, |s| {
            s.as_str().bytes().map(i64::from).sum::<i64>() % 29
        });
        assert!(equivalent_on_live_slots(&program, &outcome.optimized, &env, 3).unwrap());
    }

    #[test]
    fn more_rollouts_never_hurt() {
        let program = parse("(Vec (+ (* a b) (* c d)) (+ (* e f) (* g h)))").unwrap();
        let few = untrained_agent(0).optimize(&program);
        let many = untrained_agent(6).optimize(&program);
        assert!(many.final_cost <= few.final_cost + 1e-9);
        // With several rollouts even an untrained policy usually stumbles on
        // some vectorization for this small kernel.
        let counts = count_ops(&many.optimized);
        assert!(counts.total_ciphertext_ops() <= count_ops(&program).total_ciphertext_ops());
    }
}
