//! The training loop (Section 7.1, Appendix G): episodes are sampled from a
//! dataset of programs, experience is collected into a rollout buffer, and
//! PPO updates the hierarchical (or flat) actor-critic policy.

use crate::env::{Action, EnvConfig, ObservationTokenizer, RewriteEnv};
use crate::policy::Policy;
use crate::ppo::{PpoConfig, PpoLearner, RolloutBuffer, Transition, UpdateStats};
use chehab_ir::Expr;
use chehab_trs::RewriteEngine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use std::time::Instant;

/// Configuration of a training run.
#[derive(Debug, Clone)]
pub struct TrainerConfig {
    /// Total environment steps to collect.
    pub total_timesteps: usize,
    /// PPO hyper-parameters.
    pub ppo: PpoConfig,
    /// Environment configuration (reward, step limit, observation length).
    pub env: EnvConfig,
    /// Number of logical environments cycled through round-robin when
    /// collecting experience (the paper uses 8 parallel workers; collection
    /// here is sequential but interleaves the same number of episodes).
    pub num_envs: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            total_timesteps: 2_000_000,
            ppo: PpoConfig::default(),
            env: EnvConfig::default(),
            num_envs: 8,
            seed: 0,
        }
    }
}

impl TrainerConfig {
    /// A reduced configuration for tests and the scaled-down harness.
    pub fn small(total_timesteps: usize, seed: u64) -> Self {
        TrainerConfig {
            total_timesteps,
            ppo: PpoConfig::small(),
            env: EnvConfig {
                max_steps: 12,
                observation_len: 96,
                ..EnvConfig::default()
            },
            num_envs: 2,
            seed,
        }
    }
}

/// One point of the training curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Environment steps collected so far.
    pub timestep: usize,
    /// Wall-clock seconds since training started.
    pub wall_clock_seconds: f64,
    /// Mean episode return over the last collection window.
    pub mean_episode_reward: f64,
    /// Mean relative cost improvement of finished episodes in the window.
    pub mean_improvement: f64,
}

/// The outcome of a training run: the learning curve plus summary statistics.
#[derive(Debug, Clone, Default)]
pub struct TrainingReport {
    /// Learning-curve samples, one per PPO update.
    pub curve: Vec<CurvePoint>,
    /// Total episodes finished.
    pub episodes: usize,
    /// Total environment steps collected.
    pub timesteps: usize,
    /// Total wall-clock time in seconds.
    pub wall_clock_seconds: f64,
    /// Diagnostics of the final PPO update.
    pub final_update: UpdateStats,
}

impl TrainingReport {
    /// Mean episode reward over the last quarter of the curve (a stable
    /// "final performance" summary used by the ablation figures).
    pub fn final_mean_reward(&self) -> f64 {
        if self.curve.is_empty() {
            return 0.0;
        }
        let start = self.curve.len() - self.curve.len().div_ceil(4);
        let tail = &self.curve[start..];
        tail.iter().map(|p| p.mean_episode_reward).sum::<f64>() / tail.len() as f64
    }
}

/// Trains a policy on a dataset of programs.
#[derive(Debug)]
pub struct Trainer {
    config: TrainerConfig,
    engine: Arc<RewriteEngine>,
    tokenizer: Arc<ObservationTokenizer>,
}

impl Trainer {
    /// Creates a trainer with the default ICI tokenizer.
    pub fn new(config: TrainerConfig) -> Self {
        Self::with_tokenizer(config, ObservationTokenizer::ici())
    }

    /// Creates a trainer with an explicit observation tokenizer (used by the
    /// ICI-vs-BPE ablation).
    pub fn with_tokenizer(config: TrainerConfig, tokenizer: ObservationTokenizer) -> Self {
        Trainer {
            config,
            engine: Arc::new(RewriteEngine::new()),
            tokenizer: Arc::new(tokenizer),
        }
    }

    /// The rewrite engine whose catalog defines the action space.
    pub fn engine(&self) -> &Arc<RewriteEngine> {
        &self.engine
    }

    /// The observation tokenizer.
    pub fn tokenizer(&self) -> &Arc<ObservationTokenizer> {
        &self.tokenizer
    }

    /// Runs training of `policy` on `dataset`, returning the learning curve.
    ///
    /// # Panics
    ///
    /// Panics if the dataset is empty.
    pub fn train(&self, policy: &Policy, dataset: &[Expr]) -> TrainingReport {
        assert!(!dataset.is_empty(), "cannot train on an empty dataset");
        let start = Instant::now();
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut learner = PpoLearner::new(policy, self.config.ppo);
        let mut report = TrainingReport::default();

        // Round-robin environments, each holding its own episode.
        let mut envs: Vec<RewriteEnv> = (0..self.config.num_envs.max(1))
            .map(|_| {
                let program = dataset[rng.gen_range(0..dataset.len())].clone();
                RewriteEnv::new(
                    program,
                    Arc::clone(&self.engine),
                    Arc::clone(&self.tokenizer),
                    self.config.env.clone(),
                )
            })
            .collect();

        let mut buffer = RolloutBuffer::new();
        let mut collected = 0usize;
        let mut window_rewards: Vec<f64> = Vec::new();
        let mut window_improvements: Vec<f64> = Vec::new();
        let mut episode_rewards: Vec<f64> = vec![0.0; envs.len()];

        while collected < self.config.total_timesteps {
            for (env_idx, env) in envs.iter_mut().enumerate() {
                if collected >= self.config.total_timesteps {
                    break;
                }
                if env.is_finished() {
                    let program = dataset[rng.gen_range(0..dataset.len())].clone();
                    env.reset(program);
                    episode_rewards[env_idx] = 0.0;
                }
                let observation = env.observe();
                let rule_mask = env.rule_mask();
                let sample = policy.act(
                    &observation,
                    &rule_mask,
                    |rule| env.location_count(rule),
                    &mut rng,
                    false,
                );
                let location_count = match sample.action {
                    Action::Apply { rule, .. } => env.location_count(rule),
                    Action::Stop => 0,
                };
                let outcome = env.step(sample.action);
                episode_rewards[env_idx] += outcome.reward;
                buffer.push(Transition {
                    observation,
                    action: sample.action,
                    rule_mask,
                    location_count,
                    log_prob: sample.log_prob,
                    value: sample.value,
                    reward: outcome.reward,
                    done: outcome.done,
                });
                collected += 1;
                if outcome.done {
                    report.episodes += 1;
                    window_rewards.push(episode_rewards[env_idx]);
                    let improvement = if env.initial_cost() > 0.0 {
                        (env.initial_cost() - env.current_cost()) / env.initial_cost()
                    } else {
                        0.0
                    };
                    window_improvements.push(improvement);
                }
            }

            if buffer.len() >= self.config.ppo.steps_per_update
                || collected >= self.config.total_timesteps
            {
                report.final_update = learner.update(policy, &mut buffer);
                buffer.clear();
                let mean_reward = if window_rewards.is_empty() {
                    0.0
                } else {
                    window_rewards.iter().sum::<f64>() / window_rewards.len() as f64
                };
                let mean_improvement = if window_improvements.is_empty() {
                    0.0
                } else {
                    window_improvements.iter().sum::<f64>() / window_improvements.len() as f64
                };
                report.curve.push(CurvePoint {
                    timestep: collected,
                    wall_clock_seconds: start.elapsed().as_secs_f64(),
                    mean_episode_reward: mean_reward,
                    mean_improvement,
                });
                window_rewards.clear();
                window_improvements.clear();
            }
        }

        report.timesteps = collected;
        report.wall_clock_seconds = start.elapsed().as_secs_f64();
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyConfig;
    use chehab_ir::parse;
    use rand_chacha::ChaCha8Rng;

    fn tiny_dataset() -> Vec<Expr> {
        [
            "(Vec (+ a b) (+ c d))",
            "(Vec (* a b) (* c d))",
            "(Vec (- a b) (- c d))",
            "(Vec (+ a b) (+ c d) (+ e f))",
        ]
        .iter()
        .map(|s| parse(s).unwrap())
        .collect()
    }

    #[test]
    fn training_produces_a_learning_curve_and_finishes_episodes() {
        let config = TrainerConfig::small(300, 1);
        let trainer = Trainer::new(config);
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let policy_config = PolicyConfig::small(
            trainer.tokenizer().vocab_size(),
            trainer.engine().rule_count(),
            8,
        );
        let policy = Policy::new(policy_config, &mut rng);
        let report = trainer.train(&policy, &tiny_dataset());
        assert!(report.timesteps >= 300);
        assert!(report.episodes > 0);
        assert!(!report.curve.is_empty());
        assert!(report.wall_clock_seconds > 0.0);
        assert!(report.final_mean_reward().is_finite());
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn training_on_an_empty_dataset_panics() {
        let trainer = Trainer::new(TrainerConfig::small(10, 1));
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let policy = Policy::new(
            PolicyConfig::small(
                trainer.tokenizer().vocab_size(),
                trainer.engine().rule_count(),
                8,
            ),
            &mut rng,
        );
        let _ = trainer.train(&policy, &[]);
    }
}
